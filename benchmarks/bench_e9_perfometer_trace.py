"""E9: the perfometer real-time FLOPS trace (Figure 2).

Paper content: "the tool provides a runtime trace of a user-selected
PAPI metric, as shown in Figure 2 for floating point operations per
second (FLOPS)" -- a rate-vs-time series whose humps and valleys expose
where an application does its floating point work.

Reproduction: a three-phase application (solver / exchange /
bookkeeping, repeated) monitored by the perfometer backend; the series
is rendered in ASCII and its structure checked: fp activity concentrates
in the solver intervals and vanishes elsewhere, once per repetition.
"""

from _shared import emit, run_once
from repro.tools.perfometer import Perfometer
from repro.platforms import create
from repro.workloads import phased

REPEATS = 3
INTERVAL = 12_000


def run_experiment():
    substrate = create("simPOWER")
    pm = Perfometer(
        substrate, metric="PAPI_FP_OPS", interval_cycles=INTERVAL
    )
    work = phased(
        [("fp", 4000), ("mem", 4000), ("br", 3000)],
        repeats=REPEATS,
        names=("solver", "exchange", "bookkeeping"),
    )
    substrate.machine.load(work.program)
    trace = pm.monitor()
    return pm, trace


def count_bursts(rates, threshold):
    """Count rising edges above *threshold* (one per fp phase)."""
    bursts = 0
    above = False
    for r in rates:
        if r > threshold and not above:
            bursts += 1
            above = True
        elif r <= threshold:
            above = False
    return bursts


def bench_e9_perfometer_trace(benchmark, capsys):
    pm, trace = run_once(benchmark, run_experiment)

    rates = trace.rates("PAPI_FP_OPS")
    art = pm.render(width=66, height=8)
    emit(
        capsys,
        art
        + f"\n({len(trace.points)} intervals of {INTERVAL} cycles; "
        f"{REPEATS} solver phases)",
    )

    assert len(rates) >= 3 * REPEATS  # at least one interval per phase
    assert max(rates) > 0
    assert min(rates) == 0.0          # exchange/bookkeeping do no fp work
    # one fp burst per repetition, as in the Figure-2 style trace
    bursts = count_bursts(rates, max(rates) * 0.25)
    assert bursts == REPEATS, f"expected {REPEATS} fp bursts, saw {bursts}"
    # the trace is renderable and carries the metric name
    assert "PAPI_FP_OPS" in art and "#" in art

"""papid: the supervised fleet-scale monitoring daemon.

The paper's substrate catalogue already contains a daemon-mediated
path — on Alpha/Tru64 the PAPI substrate talks to DCPI's ``dcpid``
rather than programming counters itself — and LIKWID's access daemon
(PAPERS.md) generalizes the shape: one long-running privileged process
mediates counter access for many short-lived clients.  ``papid`` is
that shape grown to fleet scale over the simulated substrates: a
registry of thousands of monitoring sessions sharded across a
supervised ``multiprocessing`` worker pool, with batched
create/start/read/stop/destroy RPCs, crash recovery from an
append-only journal, deadlines + jittered retry, admission control
with load shedding and stale-read degradation, and idempotent graceful
drain.  See DESIGN.md, "Fleet daemon & supervision".

Entry points:

- :class:`PapidServer` / :class:`DaemonConfig` — the daemon core;
- :class:`PapidClient` — the retrying in-process client (use it as a
  context manager, or papi-lint PL018 will have words with you);
- :class:`SessionSpec` — one session's full description;
- ``python -m repro.tools.cli papid`` — the CLI verb.
"""

from repro.daemon.client import DAEMON_RETRY_POLICY, PapidClient, ReadResult
from repro.daemon.health import DaemonHealth
from repro.daemon.journal import Journal, SessionImage, recover_sessions
from repro.daemon.protocol import (
    PAPID_EAGAIN,
    PAPID_EDRAIN,
    PAPID_EFATAL,
    PAPID_ESHED,
    PAPID_OK,
    Op,
    OpResult,
    SessionSpec,
    raise_for_result,
    shard_of,
)
from repro.daemon.server import DaemonConfig, PapidServer, SessionRecord

__all__ = [
    "DAEMON_RETRY_POLICY",
    "DaemonConfig",
    "DaemonHealth",
    "Journal",
    "Op",
    "OpResult",
    "PAPID_EAGAIN",
    "PAPID_EDRAIN",
    "PAPID_EFATAL",
    "PAPID_ESHED",
    "PAPID_OK",
    "PapidClient",
    "PapidServer",
    "ReadResult",
    "SessionImage",
    "SessionRecord",
    "SessionSpec",
    "raise_for_result",
    "recover_sessions",
    "shard_of",
]

"""Components plane: mixed CPU/uncore/energy EventSets vs derived truth.

The component architecture's contract is that one EventSet can mix
events from several counting domains and every domain still reads
correctly: CPU counts match the architectural oracle, uncore bandwidth
tallies match the socket's memory traffic, and the energy model's parts
sum to its package total.  Each cell here checks one clause of that
contract on one platform:

- ``mixed:PAPI_TOT_INS`` -- the CPU member of a mixed set is undisturbed
  by its component co-members (exact on direct substrates, sampling
  tolerance on simALPHA);
- ``uncore:::MEM_BW_WR`` -- write bandwidth equals ``8 * stores`` where
  the store count comes from the *independent* reference interpreter,
  not the machine (an architecturally determined oracle);
- ``energy:::CORE_ENERGY`` -- the activity-derived energy model equals
  its documented closed form over cycles and oracle instructions;
- ``energy:::PKG_ENERGY`` -- package energy is exactly core + DRAM, read
  from the same run (the merge of per-component snapshots is coherent);
- ``uncore:all-events`` -- the whole uncore event table counts at once:
  directly where the bank is wide enough, rotating within the component
  where it is not, and on the sampling substrate -- whose two-wide bank
  cannot multiplex -- by raising the documented capacity conflict.

Free-running component counters make every component-side equality
*exact* even under multiplexing and even on simALPHA; only the
sample-derived CPU member carries a tolerance.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.errors import ConflictError, PapiError
from repro.core.library import Papi
from repro.core.sampling import relative_error
from repro.hw.events import Signal
from repro.platforms import create
from repro.validate.matrix import MatrixCell
from repro.validate.oracle import expected_signal_counts
from repro.workloads import conformance_mix

#: tolerance for the sample-derived CPU member on the sampling substrate
#: (same budget as the oracle plane's sampling rung).
MIXED_SAMPLING_TOLERANCE = 0.20

#: the mixed EventSet exercised by the first four cells.
MIXED_EVENTS = (
    "PAPI_TOT_INS",
    "uncore:::MEM_BW_WR",
    "energy:::PKG_ENERGY",
    "energy:::CORE_ENERGY",
    "energy:::DRAM_ENERGY",
)


def _cell(platform: str, name: str, expected: int, actual: int,
          exact: bool = True, tolerance: float = 0.0,
          detail: str = "") -> MatrixCell:
    err = relative_error(actual, expected)
    ok = actual == expected if exact else err <= tolerance
    return MatrixCell(
        plane="components", platform=platform, name=name,
        status="pass" if ok else "fail",
        expected=expected, actual=actual, error=err, detail=detail,
    )


def _mixed_cells(platform: str, papi: Papi, workload,
                 oracle_counts) -> List[MatrixCell]:
    """Run the mixed EventSet once; score its four contract cells."""
    machine = papi.substrate.machine
    if papi.substrate.supports_sampling_counts():
        # fine-grained ProfileMe period, as on the oracle plane's
        # sampling rung: enough matches for the 20% budget.
        papi.sampling_period = 64
    # availability check first: component events are only addressable on
    # substrates that register the component.
    papi.component("uncore")
    papi.component("energy")
    es = papi.create_eventset()
    try:
        es.add_named(*MIXED_EVENTS)
        machine.load(workload.program)
        es.start()
        machine.run_to_completion()
        values = dict(zip(es.event_names, es.stop()))
    finally:
        if es.running:  # an exception left the set running
            es.stop()
        papi.destroy_eventset(es)

    sampling = papi.substrate.supports_sampling_counts()
    cells = [_cell(
        platform, "mixed:PAPI_TOT_INS",
        expected=oracle_counts[Signal.TOT_INS],
        actual=values["PAPI_TOT_INS"],
        exact=not sampling,
        tolerance=MIXED_SAMPLING_TOLERANCE,
        detail=(f"sample-derived, tolerance "
                f"{MIXED_SAMPLING_TOLERANCE:.0%}" if sampling
                else "CPU member of a mixed set, exact"),
    )]
    cells.append(_cell(
        platform, "uncore:::MEM_BW_WR",
        expected=8 * oracle_counts[Signal.SR_INS],
        actual=values["uncore:::MEM_BW_WR"],
        detail="8 bytes per oracle store, exact even while sampling",
    ))
    cells.append(_cell(
        platform, "energy:::CORE_ENERGY",
        expected=(3 * machine.signal_total(Signal.TOT_CYC)
                  + 2 * oracle_counts[Signal.TOT_INS]),
        actual=values["energy:::CORE_ENERGY"],
        detail="3*cycles + 2*instructions closed form",
    ))
    cells.append(_cell(
        platform, "energy:::PKG_ENERGY",
        expected=(values["energy:::CORE_ENERGY"]
                  + values["energy:::DRAM_ENERGY"]),
        actual=values["energy:::PKG_ENERGY"],
        detail="package = core + DRAM from one merged read",
    ))
    return cells


def _uncore_bank_cell(platform: str, papi: Papi, workload,
                      oracle_counts) -> MatrixCell:
    """The whole uncore table at once: direct, rotating, or refused."""
    substrate = papi.substrate
    uncore = papi.component("uncore")
    machine = substrate.machine
    shorts = [f"uncore:::{s}" for s in uncore.event_names()]
    fits = len(shorts) <= uncore.n_counters

    if substrate.supports_sampling_counts() and not fits:
        # the sampling substrate's two-wide bank cannot hold four events
        # and (having no cycle timer for rotation) cannot multiplex:
        # the add must fail with the documented capacity conflict.
        es = papi.create_eventset()
        try:
            try:
                es.add_named(*shorts)
            except ConflictError:
                return MatrixCell(
                    plane="components", platform=platform,
                    name="uncore:all-events", status="pass",
                    detail=(f"{uncore.n_counters}-wide bank refuses "
                            f"{len(shorts)} events (no multiplexing on "
                            "a sampling substrate)"),
                )
            return MatrixCell(
                plane="components", platform=platform,
                name="uncore:all-events", status="fail",
                detail="over-capacity add was not refused",
            )
        finally:
            papi.destroy_eventset(es)

    es = papi.create_eventset()
    rotations = 0
    try:
        if not fits:
            es.set_multiplex()
        es.add_named(*shorts)
        machine.load(workload.program)
        es.start()
        if not fits:
            rotations_src = es._mpx
        machine.run_to_completion()
        values = dict(zip(es.event_names, es.stop()))
        if not fits:
            rotations = rotations_src.rotations
    finally:
        if es.running:  # an exception left the set running
            es.stop()
        papi.destroy_eventset(es)

    expected = 8 * oracle_counts[Signal.SR_INS]
    actual = values["uncore:::MEM_BW_WR"]
    lines_ok = (values["uncore:::UNC_L2_LINES_IN"]
                == machine.signal_total(Signal.L2_MISS))
    if not fits and rotations == 0:
        return MatrixCell(
            plane="components", platform=platform,
            name="uncore:all-events", status="fail",
            expected=expected, actual=actual,
            detail="window rotation never ticked",
        )
    mode = ("rotating within the bank" if not fits
            else "whole table fits the bank")
    return MatrixCell(
        plane="components", platform=platform, name="uncore:all-events",
        status="pass" if actual == expected and lines_ok else "fail",
        expected=expected, actual=actual,
        error=relative_error(actual, expected),
        detail=f"{mode}; free-running reads stay exact",
    )


def run_components_plane(
    platforms: Sequence[str],
    thorough: bool = False,
    seed: int = 12345,
) -> List[MatrixCell]:
    """Score the component-architecture contract on every platform."""
    n = 400 if thorough else 120
    cells: List[MatrixCell] = []
    for platform in platforms:
        substrate = create(platform, seed=seed)
        papi = Papi(substrate)
        workload = conformance_mix(n, use_fma=substrate.HAS_FMA)
        oracle_counts = expected_signal_counts(workload.program)
        try:
            cells.extend(_mixed_cells(platform, papi, workload,
                                      oracle_counts))
        except PapiError as exc:
            cells.append(MatrixCell(
                plane="components", platform=platform, name="mixed",
                status="fail", detail=f"mixed EventSet run failed: {exc}",
            ))
        # fresh machine: the bank cell's oracle assumes a cold cache.
        substrate = create(platform, seed=seed)
        papi = Papi(substrate)
        try:
            cells.append(_uncore_bank_cell(platform, papi, workload,
                                           oracle_counts))
        except PapiError as exc:
            cells.append(MatrixCell(
                plane="components", platform=platform,
                name="uncore:all-events", status="fail",
                detail=f"uncore bank run failed: {exc}",
            ))
    return cells

"""Unit tests: the sampling substrate (DCPI/DADD model)."""

import pytest

from repro.hw.events import Signal
from repro.platforms import SubstrateError, create
from repro.platforms.simalpha import sample_matches
from repro.workloads import dot, matmul


@pytest.fixture
def alpha():
    return create("simALPHA")


class TestDirectCountingUnavailable:
    def test_all_direct_ops_raise(self, alpha):
        ev = alpha.query_native("RET_INS")
        with pytest.raises(SubstrateError):
            alpha.program_counter(0, ev)
        with pytest.raises(SubstrateError):
            alpha.start_counters([0])
        with pytest.raises(SubstrateError):
            alpha.stop_counters([0])
        with pytest.raises(SubstrateError):
            alpha.read_counters([0])
        with pytest.raises(SubstrateError):
            alpha.reset_counters([0])
        with pytest.raises(SubstrateError):
            alpha.clear_counter(0)

    def test_supports_sampling_flag(self, alpha):
        assert alpha.supports_sampling_counts()
        assert not create("simT3E").supports_sampling_counts()


class TestSamplingSession:
    def _run(self, alpha, wl, period=None):
        events = [alpha.query_native(n) for n in
                  ("CYCLES", "RET_INS", "RET_FLOPS", "RET_LOADS")]
        session = alpha.sampling_session(events, period=period)
        alpha.machine.load(wl.program)
        session.start()
        alpha.machine.run_to_completion()
        session.stop()
        return session

    def test_cycles_exact(self, alpha):
        wl = dot(2000, use_fma=True)
        session = self._run(alpha, wl)
        cyc = session.estimate(alpha.query_native("CYCLES"))
        assert cyc == session.elapsed_cycles()
        assert cyc > 0

    def test_tot_ins_estimate_unbiased(self, alpha):
        wl = matmul(20, use_fma=False)
        session = self._run(alpha, wl, period=256)
        est = session.estimate(alpha.query_native("RET_INS"))
        true = alpha.machine.counts[Signal.TOT_INS]
        assert est == pytest.approx(true, rel=0.15)

    def test_flops_estimate_converges_with_run_length(self, alpha):
        errors = []
        for n in (8, 32):
            sub = create("simALPHA")
            wl = matmul(n, use_fma=False)
            events = [sub.query_native("RET_FLOPS")]
            session = sub.sampling_session(events, period=512)
            sub.machine.load(wl.program)
            session.start()
            sub.machine.run_to_completion()
            session.stop()
            est = session.estimate(events[0])
            true = 2 * n ** 3
            errors.append(abs(est - true) / true)
        assert errors[1] < errors[0] or errors[1] < 0.05

    def test_session_reset_discards(self, alpha):
        wl = dot(4000, use_fma=True)
        events = [alpha.query_native("RET_INS")]
        session = alpha.sampling_session(events, period=128)
        alpha.machine.load(wl.program)
        session.start()
        alpha.machine.run(max_instructions=5000)
        assert session.n_samples > 0
        session.reset()
        assert session.n_samples == 0
        alpha.machine.run_to_completion()
        session.stop()
        assert session.n_samples > 0

    def test_double_start_rejected(self, alpha):
        session = alpha.sampling_session([alpha.query_native("RET_INS")])
        wl = dot(100, use_fma=True)
        alpha.machine.load(wl.program)
        session.start()
        with pytest.raises(SubstrateError):
            session.start()

    def test_stop_without_start_rejected(self, alpha):
        session = alpha.sampling_session([alpha.query_native("RET_INS")])
        with pytest.raises(SubstrateError):
            session.stop()

    def test_sampling_charges_interrupt_costs(self, alpha):
        """Samples cost interrupt cycles (the amortized overhead)."""
        wl = dot(4000, use_fma=True)
        session = alpha.sampling_session(
            [alpha.query_native("RET_INS")], period=64
        )
        alpha.machine.load(wl.program)
        session.start()
        alpha.machine.run_to_completion()
        session.stop()
        assert alpha.machine.counts[Signal.HW_INT] == session.n_samples


class TestSampleMatching:
    def test_matchers_partition_sensibly(self, alpha):
        wl = matmul(12, use_fma=False)
        events = {n: alpha.query_native(n) for n in
                  ("RET_INS", "RET_FLOPS", "RET_LOADS", "RET_STORES",
                   "RET_BRANCHES")}
        session = alpha.sampling_session(list(events.values()), period=64)
        alpha.machine.load(wl.program)
        session.start()
        alpha.machine.run_to_completion()
        session.stop()
        samples = session.samples()
        assert samples
        for s in samples:
            assert sample_matches(events["RET_INS"], s)
            # an instruction is at most one of load/store/fp-arith/branch
            kinds = sum([
                sample_matches(events["RET_FLOPS"], s),
                sample_matches(events["RET_LOADS"], s),
                sample_matches(events["RET_STORES"], s),
                sample_matches(events["RET_BRANCHES"], s),
            ])
            assert kinds <= 1

"""Integration tests: full pipelines spanning the whole stack."""

import pytest

from repro.core.library import Papi
from repro.core.lowlevel import LowLevelAPI
from repro.core.profile import ProfileBuffer, Profil
from repro.hw.isa import INS_BYTES
from repro.platforms import PLATFORM_NAMES, create
from repro.tools import (
    Perfometer,
    Profiler,
    papirun,
)
from repro.workloads import demo_app, dot, matmul


class TestPortableQuickstart:
    """The README quickstart must work verbatim on every platform."""

    @pytest.mark.parametrize("platform", PLATFORM_NAMES)
    def test_quickstart_flow(self, platform):
        from repro import HighLevel

        substrate = create(platform)
        papi = Papi(substrate)
        hl = HighLevel(papi)
        work = matmul(8, use_fma=substrate.HAS_FMA)
        substrate.machine.load(work.program)
        hl.start_counters(["PAPI_FP_OPS", "PAPI_TOT_CYC"])
        substrate.machine.run_to_completion()
        fp_ops, cycles = hl.stop_counters()
        assert cycles > 0
        if substrate.COUNTING == "direct":
            assert fp_ops == 2 * 8 ** 3
        else:
            assert fp_ops >= 0  # sampled estimate on short runs is noisy


class TestSamePortableCodeEverywhere:
    """One measurement function, five platforms: PAPI's whole point."""

    @staticmethod
    def measure_everywhere(symbols, make_workload):
        results = {}
        for name in PLATFORM_NAMES:
            sub = create(name)
            papi = Papi(sub)
            es = papi.create_eventset()
            usable = []
            for s in symbols:
                try:
                    es.add_event(papi.event_name_to_code(s))
                    usable.append(s)
                except Exception:
                    pass
            sub.machine.load(make_workload(sub).program)
            es.start()
            sub.machine.run_to_completion()
            results[name] = dict(zip(usable, es.stop()))
        return results

    def test_cycles_and_instructions_everywhere(self):
        # long enough that the sampling platform collects samples too
        results = self.measure_everywhere(
            ["PAPI_TOT_CYC", "PAPI_TOT_INS"],
            lambda sub: dot(8000, use_fma=sub.HAS_FMA),
        )
        for name, values in results.items():
            assert values["PAPI_TOT_CYC"] > values["PAPI_TOT_INS"] > 0, name

    def test_availability_driven_degradation(self):
        results = self.measure_everywhere(
            ["PAPI_TOT_CYC", "PAPI_TLB_DM"],
            lambda sub: dot(200, use_fma=sub.HAS_FMA),
        )
        assert "PAPI_TLB_DM" not in results["simT3E"]
        assert "PAPI_TLB_DM" in results["simIA64"]


class TestToolPipeline:
    def test_dynaprof_profiler_perfometer_stack(self):
        """dynaprof -> profiles, then perfometer on a second machine."""
        report = Profiler(
            "simPOWER", ["PAPI_TOT_CYC", "PAPI_L1_DCM"]
        ).profile(lambda: demo_app(scale=20))
        assert report.hottest("PAPI_L1_DCM") == "memwalk"

        sub = create("simPOWER")
        pm = Perfometer(sub, metric="PAPI_L1_DCM", interval_cycles=10_000)
        sub.machine.load(demo_app(scale=20).program)
        trace = pm.monitor()
        assert max(trace.rates()) > 0

    def test_papirun_matches_manual_measurement(self):
        wl_result = papirun("simIA64", dot(600, use_fma=True),
                            events=["PAPI_FP_OPS"])
        sub = create("simIA64")
        papi = Papi(sub)
        es = papi.create_eventset()
        es.add_named("PAPI_FP_OPS")
        sub.machine.load(dot(600, use_fma=True).program)
        es.start()
        sub.machine.run_to_completion()
        manual = es.stop()[0]
        assert wl_result.values["PAPI_FP_OPS"] == manual == 1200

    def test_profil_and_dynaprof_agree_on_hotspot(self):
        """Statistical profiling and probe-based profiling must agree."""
        # dynaprof says memwalk is the cycle hog...
        report = Profiler("simIA64", ["PAPI_TOT_CYC"]).profile(
            lambda: demo_app(scale=25)
        )
        hot_fn = report.hottest("PAPI_TOT_CYC")
        assert hot_fn == "memwalk"

        # ...and PAPI_profil's histogram puts the most samples there too
        sub = create("simIA64")
        papi = Papi(sub)
        wl = demo_app(scale=25)
        sub.machine.load(wl.program)
        es = papi.create_eventset()
        es.add_named("PAPI_TOT_CYC")
        buf = ProfileBuffer.covering(0, len(wl.program) * INS_BYTES)
        prof = Profil(es, buf, papi.event_name_to_code("PAPI_TOT_CYC"), 500)
        prof.install()
        es.start()
        sub.machine.run_to_completion()
        es.stop()
        prof.collect()
        fn = wl.program.functions[hot_fn]
        hot_hits = sum(
            buf.buckets[b]
            for pc in range(fn.start, fn.end)
            if (b := buf.bucket_index(pc * INS_BYTES)) is not None
        )
        assert hot_hits / buf.hits > 0.5


class TestThreadedCounting:
    def test_attached_eventset_counts_one_thread(self):
        """PAPI attach + OS scheduling: per-thread counts, as DADD enabled
        on the Tru64 platform (Section 2)."""
        sub = create("simPOWER")
        papi = Papi(sub)
        os_ = sub.os
        t1 = os_.spawn(dot(1500, use_fma=True).program, name="hot")
        t2 = os_.spawn(dot(1500, use_fma=True).program, name="other")
        es = papi.create_eventset()
        es.add_named("PAPI_FP_OPS")
        es.attach(t1)
        es.start()
        os_.run()
        values = es.stop()
        assert values[0] == 2 * 1500          # t1 only
        # both threads really ran
        assert t1.finished and t2.finished

    def test_virtual_timers_with_threads(self):
        sub = create("simPOWER")
        papi = Papi(sub)
        os_ = sub.os
        t1 = os_.spawn(dot(2000, use_fma=True).program)
        t2 = os_.spawn(dot(500, use_fma=True).program)
        os_.run()
        assert papi.get_virt_cyc(t1) > papi.get_virt_cyc(t2) > 0
        assert papi.get_real_cyc() >= papi.get_virt_cyc(t1)


class TestLowLevelMixedWithHighLevel:
    def test_mixing_interfaces(self):
        """"high-level and low-level calls can be mixed" (Section 2)."""
        from repro import HighLevel

        sub = create("simIA64")
        api = LowLevelAPI(sub)
        api.library_init()
        hl = HighLevel(api.papi)
        wl = dot(800, use_fma=True)
        sub.machine.load(wl.program)
        hl.start_counters(["PAPI_FP_OPS"])
        sub.machine.run(max_instructions=2000)
        # low-level timer reads interleave fine with high-level counting
        assert api.get_real_usec() > 0
        sub.machine.run_to_completion()
        values = hl.stop_counters()
        assert values[0] == 1600

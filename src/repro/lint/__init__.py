"""papi-lint: static analysis for PAPI counter programs.

Three analyzers behind one diagnostic engine (see DESIGN.md):

- **API misuse** (:mod:`repro.lint.apilint`, rules PL0xx): an AST
  state machine over Papi/EventSet/HighLevel call sequences;
- **static feasibility** (:mod:`repro.lint.feasibility`, PL1xx):
  decides counter allocability without executing, reusing the runtime
  allocator's bipartite matching over the platform tables;
- **preset-table validation** (:mod:`repro.lint.presetlint`, PL2xx):
  dangling natives, malformed mappings, FMA normalization, semantic
  drift versus the catalogue's reference vectors.

CLI: ``python -m repro.tools.cli lint | check-events | check-presets``.
"""

from repro.lint.diagnostics import (
    Diagnostic,
    apply_suppressions,
    parse_suppressions,
    render_json,
    render_text,
    sort_diagnostics,
    worst_severity,
)
from repro.lint.engine import lint_file, lint_source
from repro.lint.feasibility import (
    EventResolution,
    FeasibilityReport,
    check_events,
    portability_matrix,
    resolve_event,
)
from repro.lint.presetlint import (
    lint_mapping,
    lint_platform_table,
    lint_preset_tables,
)
from repro.lint.rules import RULES, Rule, Severity, rule

__all__ = [
    "Diagnostic",
    "EventResolution",
    "FeasibilityReport",
    "RULES",
    "Rule",
    "Severity",
    "apply_suppressions",
    "check_events",
    "lint_file",
    "lint_mapping",
    "lint_platform_table",
    "lint_preset_tables",
    "lint_source",
    "parse_suppressions",
    "portability_matrix",
    "render_json",
    "render_text",
    "resolve_event",
    "rule",
    "sort_diagnostics",
    "worst_severity",
]

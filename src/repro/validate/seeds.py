"""One master seed, many reproducible streams.

Every stochastic consumer inside the validate harness -- plane
substrates, the refutation generator, injected fault profiles -- derives
its own seed from the single ``--seed`` the user passes, through
:func:`derive_seed`.  The derivation is a pure function of
``(master, label)`` using BLAKE2b, so:

- one command-line seed reproduces the *entire* run, every plane and
  every fault schedule included;
- streams with different labels are statistically independent (changing
  the refute plane's draw count cannot perturb the convergence plane);
- the mapping is stable across Python versions and machines (unlike
  ``hash()``, which is salted per process).

The scheme is documented in DESIGN.md ("Seed derivation"); tests pin
specific derived values so an accidental change to the function shows up
as a failure, not as a silently different fault schedule.
"""

from __future__ import annotations

import hashlib

#: Derived seeds fit in 48 bits: comfortably inside every consumer's
#: accepted range (``random.Random`` takes arbitrary ints; fault specs
#: print as decimal and should stay readable).
_SEED_BITS = 48


def derive_seed(master: int, label: str) -> int:
    """Derive the sub-seed for stream *label* from one *master* seed."""
    digest = hashlib.blake2b(
        f"{int(master)}:{label}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") & ((1 << _SEED_BITS) - 1)

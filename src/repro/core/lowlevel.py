"""The PAPI low-level interface: a C-flavoured functional facade.

"The fully programmable low-level interface provides additional features
and options and is intended for third-party tool developers or
application developers with more sophisticated needs."  (Section 1)

:class:`LowLevelAPI` exposes the familiar C entry points (minus the
``PAPI_`` prefix) over integer EventSet handles, so code ported from C
PAPI reads almost unchanged::

    api = LowLevelAPI(create("simPOWER"))
    api.library_init()
    es = api.create_eventset()
    api.add_event(es, api.event_name_to_code("PAPI_FP_OPS"))
    api.start(es)
    ... run the application ...
    values = api.stop(es)

High-level and low-level calls can be mixed, as the paper notes; both
drive the same :class:`~repro.core.library.Papi` object.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core import constants as C
from repro.core.errors import InvalidArgumentError, strerror as _strerror
from repro.core.library import EventInfo, Papi
from repro.core.overflow import OverflowInfo
from repro.core.profile import Profil, ProfileBuffer
from repro.platforms.base import Substrate
from repro.simos.thread import Thread
from repro.simos.vmem import MemoryInfo


class LowLevelAPI:
    """C-style PAPI surface over integer EventSet handles."""

    #: value returned by library_init, mirroring PAPI_VER_CURRENT checks.
    PAPI_VER_CURRENT = 0x02030400

    def __init__(self, substrate: Substrate) -> None:
        self.substrate = substrate
        self.papi: Optional[Papi] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def library_init(self, version: Optional[int] = None) -> int:
        """PAPI_library_init: must be called before anything else."""
        if version is not None and version != self.PAPI_VER_CURRENT:
            raise InvalidArgumentError(
                f"version mismatch: linked 0x{self.PAPI_VER_CURRENT:08x}, "
                f"requested 0x{version:08x}"
            )
        self.papi = Papi(self.substrate)
        return self.PAPI_VER_CURRENT

    def is_initialized(self) -> bool:
        return self.papi is not None and self.papi.initialized

    def shutdown(self) -> None:
        """PAPI_shutdown."""
        if self.papi is not None:
            self.papi.shutdown()
            self.papi = None

    def _lib(self) -> Papi:
        if self.papi is None:
            raise InvalidArgumentError(
                "PAPI is not initialized; call library_init() first"
            )
        return self.papi

    # ------------------------------------------------------------------
    # event namespace
    # ------------------------------------------------------------------

    def query_event(self, code: int) -> bool:
        return self._lib().query_event(code)

    def event_name_to_code(self, name: str) -> int:
        return self._lib().event_name_to_code(name)

    def event_code_to_name(self, code: int) -> str:
        return self._lib().event_code_to_name(code)

    def get_event_info(self, code: int) -> EventInfo:
        return self._lib().event_info(code)

    def enum_presets(self, available_only: bool = False) -> List[EventInfo]:
        return self._lib().list_presets(available_only=available_only)

    def enum_native(self) -> List[int]:
        return self._lib().list_native_codes()

    def num_counters(self) -> int:
        """PAPI_num_counters / PAPI_num_hwctrs."""
        return self._lib().num_counters

    num_hwctrs = num_counters

    # ------------------------------------------------------------------
    # eventset management
    # ------------------------------------------------------------------

    def create_eventset(self) -> int:
        return self._lib().create_eventset().handle

    def cleanup_eventset(self, handle: int) -> None:
        self._lib().eventset(handle).cleanup()

    def destroy_eventset(self, handle: int) -> None:
        lib = self._lib()
        lib.destroy_eventset(lib.eventset(handle))

    def add_event(self, handle: int, code: int) -> None:
        self._lib().eventset(handle).add_event(code)

    def add_events(self, handle: int, codes: Sequence[int]) -> None:
        self._lib().eventset(handle).add_events(list(codes))

    def add_named(self, handle: int, *names: str) -> None:
        self._lib().eventset(handle).add_named(*names)

    def remove_event(self, handle: int, code: int) -> None:
        self._lib().eventset(handle).remove_event(code)

    def list_events(self, handle: int) -> List[int]:
        return self._lib().eventset(handle).events

    def num_events(self, handle: int) -> int:
        return self._lib().eventset(handle).num_events

    def state(self, handle: int) -> int:
        return self._lib().eventset(handle).state()

    def set_multiplex(self, handle: int) -> None:
        """PAPI_set_multiplex: the explicit low-level opt-in (Section 2)."""
        self._lib().eventset(handle).set_multiplex()

    def get_multiplex(self, handle: int) -> bool:
        return self._lib().eventset(handle).multiplexed

    def set_domain(self, handle: int, domain: int) -> None:
        """PAPI_set_domain (per-EventSet variant)."""
        self._lib().eventset(handle).set_domain(domain)

    def get_domain(self, handle: int) -> int:
        return self._lib().eventset(handle).get_domain()

    def attach(self, handle: int, thread: Thread) -> None:
        self._lib().eventset(handle).attach(thread)

    def detach(self, handle: int) -> None:
        self._lib().eventset(handle).detach()

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------

    def start(self, handle: int) -> None:
        self._lib().eventset(handle).start()

    def stop(self, handle: int) -> List[int]:
        return self._lib().eventset(handle).stop()

    def read(self, handle: int) -> List[int]:
        return self._lib().eventset(handle).read()

    def accum(self, handle: int, values: List[int]) -> List[int]:
        return self._lib().eventset(handle).accum(values)

    def reset(self, handle: int) -> None:
        self._lib().eventset(handle).reset()

    # ------------------------------------------------------------------
    # overflow / profiling
    # ------------------------------------------------------------------

    def overflow(
        self,
        handle: int,
        code: int,
        threshold: int,
        handler: Callable[[OverflowInfo], None],
    ) -> None:
        self._lib().eventset(handle).overflow(code, threshold, handler)

    def clear_overflow(self, handle: int, code: int) -> None:
        self._lib().eventset(handle).clear_overflow(code)

    def profil(
        self,
        buffer: ProfileBuffer,
        handle: int,
        code: int,
        threshold: int,
        flags: int = C.PAPI_PROFIL_POSIX,
    ) -> Profil:
        """PAPI_profil: returns the registration (call .collect() at the end)."""
        prof = Profil(
            self._lib().eventset(handle), buffer, code, threshold, flags
        )
        prof.install()
        return prof

    # ------------------------------------------------------------------
    # timers & memory
    # ------------------------------------------------------------------

    def get_real_cyc(self) -> int:
        return self._lib().get_real_cyc()

    def get_real_usec(self) -> float:
        return self._lib().get_real_usec()

    def get_virt_cyc(self, thread: Optional[Thread] = None) -> int:
        return self._lib().get_virt_cyc(thread)

    def get_virt_usec(self, thread: Optional[Thread] = None) -> float:
        return self._lib().get_virt_usec(thread)

    def get_dmem_info(self, thread: Optional[Thread] = None) -> MemoryInfo:
        return self._lib().get_dmem_info(thread)

    # ------------------------------------------------------------------

    @staticmethod
    def strerror(code: int) -> str:
        return _strerror(code)

#!/usr/bin/env python
"""Cache study: using PAPI_L1_DCM to evaluate loop blocking.

The motivating use case of hardware counters in the paper's introduction:
application performance tuning.  We compare naive and blocked matrix
multiply on every direct-counting platform, reading L1 miss and cycle
counters through the same portable code.  The verdict is *platform
dependent*: blocking slashes misses 13x on the small-cache simX86 and
pays off in cycles, while on the direct-mapped simT3E the tile working
set conflicts with itself and blocking actually loses.  That is the
paper's Section-4 lesson made concrete: counter data must be interpreted
in the context of the platform that produced it.

Run:  python examples/cache_study.py
"""

from repro import Papi, create
from repro.analysis import Table
from repro.platforms import DIRECT_PLATFORMS
from repro.workloads import matmul

N = 32
BLOCK = 8


def measure(platform_name: str, blocked: bool):
    substrate = create(platform_name)
    papi = Papi(substrate)
    es = papi.create_eventset()
    es.add_named("PAPI_TOT_CYC", "PAPI_L1_DCM")
    work = matmul(N, use_fma=substrate.HAS_FMA, blocked=blocked, block=BLOCK)
    substrate.machine.load(work.program)
    es.start()
    substrate.machine.run_to_completion()
    cycles, misses = es.stop()
    return cycles, misses


def main() -> None:
    table = Table(
        ["platform", "naive L1_DCM", "blocked L1_DCM", "miss ratio",
         "naive cyc", "blocked cyc", "speedup"],
        title=f"matmul {N}x{N}, blocking factor {BLOCK} "
              f"(same portable measurement code on every platform)",
    )
    for name in DIRECT_PLATFORMS:
        cyc_naive, miss_naive = measure(name, blocked=False)
        cyc_blk, miss_blk = measure(name, blocked=True)
        table.add_row(
            name,
            miss_naive,
            miss_blk,
            round(miss_naive / max(1, miss_blk), 2),
            cyc_naive,
            cyc_blk,
            round(cyc_naive / cyc_blk, 3),
        )
    print(table.render())
    print()
    print("reading the table:")
    print(" - simX86 (4KB 4-way L1): blocking removes ~93% of misses and")
    print("   wins outright -- the textbook result;")
    print(" - simT3E (8KB direct-mapped): the 8x8 tiles conflict-miss against")
    print("   each other, so blocking *adds* misses; the counters catch it;")
    print(" - simPOWER/simIA64 (big lines, higher associativity): misses drop")
    print("   but the blocked code's extra index arithmetic costs more cycles")
    print("   than the saved memory stalls at this problem size.")
    print("one portable measurement harness, four different right answers --")
    print("which is precisely why PAPI exists.")


if __name__ == "__main__":
    main()

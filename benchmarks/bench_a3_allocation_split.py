"""A3 (ablation): the hardware-independent/dependent allocation split.

Section 5's PAPI-3 plan: "separate the counter allocation into
hardware-independent and hardware-dependent portions ... This separation
will hopefully make implementing optimal counter allocation on a new
platform easier."  The question a designer asks: does routing every
platform through the generic split (translate -> graph matcher / group
search) lose anything versus per-platform exhaustive search, and what
does it cost?

Reproduction: on the constraint platform (simX86) and the group platform
(simPOWER), compare the split allocator against brute-force-optimal
placement over random EventSets -- quality must be identical -- and let
pytest-benchmark time the split allocator itself.
"""

import random

from _shared import emit
from repro.analysis import Table
from repro.core.allocation import allocate
from repro.platforms import create

TRIALS = 200
SEED = 7


def brute_force_constraint(substrate, events):
    """Exhaustive search for the max placeable subset (constraint model)."""
    best = 0
    names = [e.name for e in events]
    allowed = {e.name: (e.allowed_counters
                        if e.allowed_counters is not None
                        else tuple(range(substrate.n_counters)))
               for e in events}

    def recurse(i, used, placed):
        nonlocal best
        if i == len(names):
            best = max(best, placed)
            return
        recurse(i + 1, used, placed)
        for c in allowed[names[i]]:
            if c not in used:
                recurse(i + 1, used | {c}, placed + 1)

    recurse(0, frozenset(), 0)
    return best


def brute_force_groups(substrate, events):
    """Exhaustive group search: best single-group coverage."""
    names = [e.name for e in events]
    return max(
        sum(1 for n in names if n in g.assignments)
        for g in substrate.groups
    )


def sample_sets(substrate, rng):
    names = sorted(substrate.native_events)
    for _ in range(TRIALS):
        k = rng.randint(2, min(len(names), substrate.n_counters + 2))
        yield [substrate.query_native(n) for n in rng.sample(names, k)]


def compare_platform(platform, brute_force):
    substrate = create(platform)
    rng = random.Random(SEED)
    agreements = 0
    split_total = brute_total = 0
    cases = []
    for events in sample_sets(substrate, rng):
        split = allocate(substrate, events).n_placed
        brute = brute_force(substrate, events)
        split_total += split
        brute_total += brute
        agreements += split == brute
        cases.append((len(events), split, brute))
    return agreements, split_total, brute_total, cases


def allocation_workload():
    """The operation pytest-benchmark times: a full random-set sweep."""
    substrate = create("simX86")
    rng = random.Random(SEED)
    total = 0
    for events in sample_sets(substrate, rng):
        total += allocate(substrate, events).n_placed
    return total


def bench_a3_allocation_split(benchmark, capsys):
    placed = benchmark(allocation_workload)
    assert placed > 0

    table = Table(
        ["platform", "scheme", "split==brute-force", "split placed",
         "brute placed"],
        title=f"A3: generic split allocator vs per-platform exhaustive "
              f"search ({TRIALS} random EventSets)",
    )
    rows = {}
    for platform, bf, scheme in (
        ("simX86", brute_force_constraint, "constraint pairs -> matching"),
        ("simPOWER", brute_force_groups, "groups -> group search"),
    ):
        agreements, split_total, brute_total, _ = compare_platform(
            platform, bf
        )
        rows[platform] = (agreements, split_total, brute_total)
        table.add_row(platform, scheme, f"{agreements}/{TRIALS}",
                      split_total, brute_total)
    emit(capsys, table.render())

    # the generic split loses nothing on either counter scheme
    for platform, (agreements, split_total, brute_total) in rows.items():
        assert agreements == TRIALS, platform
        assert split_total == brute_total, platform

"""simSPARC: a Sun Solaris / UltraSPARC-II-like platform over libcpc.

The paper's supported-platform list includes Sun Solaris; its native
interface is the ``libcpc`` vendor library over the UltraSPARC PIC
counters.  The modelled machine has exactly **two** counters (``PIC0``,
``PIC1``) with the UltraSPARC-II's signature constraint style: most
events are readable on only one specific PIC (the %pcr encodes one event
selector per PIC), which makes it the second pairing-constrained
platform in the E4 allocation study -- with even tighter constraints
than simX86.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.hw.cache import CacheConfig, HierarchyConfig, TLBConfig
from repro.hw.cpu import CPUConfig
from repro.hw.events import Signal
from repro.hw.machine import MachineConfig
from repro.hw.pmu import PMUConfig
from repro.platforms.base import AccessCosts, CounterGroup, NativeEvent, Substrate


class SimSPARC(Substrate):
    NAME = "simSPARC"
    STYLE = "library"
    COUNTING = "direct"
    DESCRIPTION = "Sun UltraSPARC-II-like: libcpc library, 2 PIC counters"
    COSTS = AccessCosts(
        read=700,
        read_per_counter=60,
        start=950,
        stop=900,
        program=1000,
        reset=600,
        pollute_lines=3,
    )
    HAS_FMA = False  # UltraSPARC-II has no fused multiply-add
    #: moderate out-of-order window: interrupt pc skids.
    PROFILING = "overflow"

    def _machine_config(self, seed: int) -> MachineConfig:
        return MachineConfig(
            name=self.NAME,
            cpu=CPUConfig(predictor="two-bit", branch_penalty=7),
            hierarchy=HierarchyConfig(
                l1d=CacheConfig("L1D", size_bytes=16384, line_bytes=32, assoc=1),
                l1i=CacheConfig("L1I", size_bytes=16384, line_bytes=32, assoc=2),
                l2=CacheConfig("L2", size_bytes=262144, line_bytes=64, assoc=1),
                tlb=TLBConfig(entries=64, page_bytes=8192),
                l2_latency=8,
                mem_latency=75,
                tlb_walk_latency=26,
            ),
            pmu=PMUConfig(n_counters=2, skid_max=6, interrupt_cost=130),
            mhz=400,
            seed=seed,
        )

    def _native_events(self) -> Sequence[NativeEvent]:
        # PIC0-only vs PIC1-only split, as in the UltraSPARC-II PCR:
        # the cycle and instruction counters exist on both PICs, but
        # cache and stall events are pinned to one side each.
        return [
            NativeEvent("Cycle_cnt", (Signal.TOT_CYC,), "cycles"),
            NativeEvent("Instr_cnt", (Signal.TOT_INS,), "instructions"),
            NativeEvent(
                "FP_instr_cnt",
                (Signal.FP_ADD, Signal.FP_MUL, Signal.FP_DIV, Signal.FP_SQRT),
                "fp instructions completed",
                allowed_counters=(1,),
            ),
            NativeEvent(
                "DC_rd", (Signal.LD_INS,), "D-cache read references",
                allowed_counters=(0,),
            ),
            NativeEvent(
                "DC_wr", (Signal.SR_INS,), "D-cache write references",
                allowed_counters=(1,),
            ),
            NativeEvent(
                "DC_rd_miss", (Signal.L1D_MISS,), "D-cache misses",
                allowed_counters=(1,),
            ),
            NativeEvent(
                "IC_ref", (Signal.L1I_ACC,), "I-cache references",
                allowed_counters=(0,),
            ),
            NativeEvent(
                "IC_miss", (Signal.L1I_MISS,), "I-cache misses",
                allowed_counters=(1,),
            ),
            NativeEvent(
                "EC_misses", (Signal.L2_MISS,), "E-cache (L2) misses",
                allowed_counters=(1,),
            ),
            NativeEvent(
                "EC_ref", (Signal.L2_ACC,), "E-cache references",
                allowed_counters=(0,),
            ),
            NativeEvent(
                "Dispatch0_br", (Signal.BR_INS,), "branches dispatched",
                allowed_counters=(0,),
            ),
            NativeEvent(
                "Dispatch0_mispred", (Signal.BR_MSP,), "branches mispredicted",
                allowed_counters=(1,),
            ),
            NativeEvent(
                "Load_use_stall", (Signal.MEM_RCY,), "load-use stall cycles",
                allowed_counters=(1,),
            ),
        ]

    def _groups(self) -> Optional[List[CounterGroup]]:
        return None

    def _uncore_counters(self) -> int:
        # libcpc mirrors the two-PIC layout on the E-cache/bus bank too.
        return 2

"""Unit tests: analysis helpers (stats, tables, plots)."""

import math

import pytest

from repro.analysis import (
    Table,
    ascii_plot,
    geometric_mean,
    mean,
    overhead_pct,
    pearson,
    rank_by,
    rel_error_pct,
    sparkline,
    stddev,
    top_share,
)


class TestStats:
    def test_mean_and_stddev(self):
        assert mean([1, 2, 3]) == 2
        assert stddev([2, 2, 2]) == 0
        assert stddev([1, 3]) == pytest.approx(math.sqrt(2))
        assert stddev([5]) == 0.0

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([1, 0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_pearson_perfect_correlation(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
        assert pearson([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)

    def test_pearson_degenerate(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0
        with pytest.raises(ValueError):
            pearson([1], [1])

    def test_overhead_pct(self):
        assert overhead_pct(130, 100) == pytest.approx(30.0)
        with pytest.raises(ValueError):
            overhead_pct(1, 0)

    def test_rel_error_pct(self):
        assert rel_error_pct(90, 100) == pytest.approx(10.0)
        assert rel_error_pct(0, 0) == 0.0
        assert rel_error_pct(1, 0) == math.inf

    def test_rank_and_top_share(self):
        values = {"a": 1.0, "b": 8.0, "c": 1.0}
        assert rank_by(values)[0] == ("b", 8.0)
        name, share = top_share(values)
        assert name == "b" and share == pytest.approx(0.8)
        with pytest.raises(ValueError):
            top_share({"a": 0.0})


class TestTable:
    def test_render_aligns_columns(self):
        t = Table(["name", "value"], title="demo")
        t.add_row("x", 1)
        t.add_row("longer", 2.5)
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert len({len(l) for l in lines[1:]}) == 1  # aligned width

    def test_cell_formatting(self):
        t = Table(["a", "b", "c", "d"])
        t.add_row(None, True, 0.123456, "s")
        rendered = t.render()
        assert "-" in rendered and "yes" in rendered and "0.123" in rendered

    def test_row_arity_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)


class TestPlots:
    def test_sparkline_spans_range(self):
        line = sparkline([0, 5, 10])
        assert len(line) == 3
        assert line[0] == " " and line[-1] == "@"

    def test_sparkline_pools_to_width(self):
        assert len(sparkline(list(range(100)), width=10)) == 10

    def test_sparkline_constant_series(self):
        assert sparkline([3, 3, 3]) == "   "

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_ascii_plot_dimensions(self):
        art = ascii_plot([1, 5, 2, 8, 3], height=4, width=5, label="L")
        lines = art.splitlines()
        assert lines[0] == "L"
        assert lines[1].startswith("max")
        assert lines[-1].startswith("min")
        assert len(lines) == 4 + 3

    def test_ascii_plot_empty(self):
        assert "empty" in ascii_plot([])


class TestFormatCell:
    def test_custom_float_format(self):
        from repro.analysis.report import format_cell

        assert format_cell(0.123456, "{:.5f}") == "0.12346"
        assert format_cell(None) == "-"
        assert format_cell(True) == "yes" and format_cell(False) == "no"
        assert format_cell(42) == "42"

    def test_table_str_matches_render(self):
        t = Table(["a"])
        t.add_row(1)
        assert str(t) == t.render()

    def test_table_row_arity_message_names_counts(self):
        t = Table(["a", "b", "c"])
        with pytest.raises(ValueError, match="expected 3 cells, got 1"):
            t.add_row("only")


class TestPlotEdgeCases:
    def test_sparkline_ignores_nonpositive_width(self):
        assert len(sparkline(list(range(10)), width=0)) == 10

    def test_sparkline_pooling_averages(self):
        # two pools of [0,0] and [10,10] -> extremes of the charset
        line = sparkline([0, 0, 10, 10], width=2)
        assert line == " @"

    def test_ascii_plot_pools_long_series(self):
        art = ascii_plot(list(range(200)), height=3, width=40)
        grid_rows = art.splitlines()[1:-1]
        assert all(len(row) == 40 for row in grid_rows)

    def test_ascii_plot_constant_series(self):
        art = ascii_plot([5.0, 5.0, 5.0], height=3)
        lines = art.splitlines()
        assert lines[0] == "max 5"
        assert lines[-1] == "min 5"

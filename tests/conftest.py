"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.hw import Assembler, Machine
from repro.hw.machine import MachineConfig
from repro.platforms import PLATFORM_NAMES, create


@pytest.fixture
def machine() -> Machine:
    """A default machine (generic config, 4 counters, no sampling hw)."""
    return Machine(MachineConfig())


@pytest.fixture
def fma_loop_program():
    """1000-iteration FMA/store loop with exactly known counts."""
    asm = Assembler(name="fma_loop")
    asm.func("main")
    asm.li("r1", 1000)
    asm.li("r2", 0)
    base = asm.reserve_data(2048)
    asm.li("r3", base)
    asm.fli("f1", 1.5)
    asm.fli("f2", 2.0)
    asm.label("loop")
    asm.fma("f3", "f1", "f2", "f3")
    asm.fstore("f3", "r3", 0)
    asm.addi("r3", "r3", 1)
    asm.addi("r2", "r2", 1)
    asm.blt("r2", "r1", "loop")
    asm.halt()
    asm.endfunc()
    return asm.build()


def _platform_fixture(name):
    @pytest.fixture(name=name.lower())
    def fixture():
        return create(name)

    return fixture


# one fixture per platform
simt3e = _platform_fixture("simT3E")
simx86 = _platform_fixture("simX86")
simpower = _platform_fixture("simPOWER")
simalpha = _platform_fixture("simALPHA")
simia64 = _platform_fixture("simIA64")
simsparc = _platform_fixture("simSPARC")


@pytest.fixture(params=PLATFORM_NAMES)
def any_platform(request):
    """Parametrized over every platform (fresh substrate each)."""
    return create(request.param)


@pytest.fixture(
    params=["simT3E", "simX86", "simPOWER", "simIA64", "simSPARC"]
)
def direct_platform(request):
    """Parametrized over the direct-counting platforms."""
    return create(request.param)

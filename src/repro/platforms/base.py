"""The substrate interface: PAPI's machine-dependent layer.

The paper (Figure 1) splits the PAPI implementation into a portable
library over a per-platform *substrate* -- "all that needs to be
rewritten to port PAPI to a new architecture".  A substrate bundles:

- the simulated :class:`~repro.hw.machine.Machine` (with its platform-
  specific PMU geometry, predictor, cache sizes and clock rate);
- the **native event table**: the events this platform documents, each a
  combination of one or more hardware signals, possibly restricted to a
  subset of the physical counters or organized into counter *groups*
  (the POWER model);
- the **access cost model**: how many simulated cycles each counter
  operation costs through this platform's native interface -- register
  reads (Cray T3E) are cheap, kernel-patch syscalls (Linux/x86) are
  expensive, vendor libraries (AIX pmtoolkit) sit in between, and
  sampling daemons (Tru64 DCPI/DADD) amortize their cost over interrupt
  deliveries instead of read calls;
- the **counting style**: ``direct`` substrates program physical
  counters; the ``sampling`` substrate (simALPHA) cannot count directly
  at all and estimates aggregate counts from ProfileMe samples.

Everything above the substrate -- EventSets, presets, multiplexing,
overflow dispatch, profiling -- is the portable library in
:mod:`repro.core` and never touches the machine directly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.hw.machine import Machine, MachineConfig
from repro.simos.scheduler import OS

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector
    from repro.hw.pmu import OverflowRecord


class SubstrateError(Exception):
    """Raised for substrate-level failures (bad events, unsupported ops)."""


@dataclass(frozen=True)
class NativeEvent:
    """One documented native event of a platform.

    ``signals`` is the set of hardware signals whose sum this event
    counts -- most are single-signal, but platform quirks are expressed
    here (e.g. simPOWER's ``PM_FPU_INS`` includes the precision-convert
    signal, reproducing the POWER3 rounding-instruction discrepancy).

    ``allowed_counters`` restricts which physical counters can host the
    event (``None`` = any); this is the raw material of the counter
    allocation problem.
    """

    name: str
    signals: Tuple[int, ...]
    description: str = ""
    allowed_counters: Optional[Tuple[int, ...]] = None

    def can_use(self, counter: int) -> bool:
        return self.allowed_counters is None or counter in self.allowed_counters


@dataclass(frozen=True)
class CounterGroup:
    """A POWER-style counter group: a fixed event->counter assignment.

    On group-managed platforms an EventSet must be satisfiable by a
    single group; the hardware-dependent half of the allocator picks the
    group (see :mod:`repro.core.allocation.translate`).
    """

    gid: int
    assignments: Dict[str, int]  # native event name -> counter index

    def covers(self, names: Sequence[str]) -> bool:
        return all(n in self.assignments for n in names)


@dataclass(frozen=True)
class AccessCosts:
    """Simulated-cycle cost of each native-interface operation."""

    read: int           #: one read call (all of an EventSet's counters)
    read_per_counter: int
    start: int
    stop: int
    program: int        #: programming one control register
    reset: int
    #: distinct cache lines the interface touches per call (pollution).
    pollute_lines: int = 0


class Substrate:
    """Base class for the five simulated platforms.

    Subclasses define class attributes ``NAME``, ``STYLE``, ``COUNTING``,
    ``COSTS``, build their machine config in :meth:`_machine_config` and
    their event table in :meth:`_native_events` (plus optional
    :meth:`_groups`).
    """

    NAME = "abstract"
    STYLE = "abstract"          # register | syscall | library | sampling
    COUNTING = "direct"         # direct | sampling
    COSTS = AccessCosts(read=0, read_per_counter=0, start=0, stop=0,
                        program=0, reset=0)
    DESCRIPTION = ""
    #: whether the modelled FPU has fused multiply-add; drives workload
    #: generation and the preset-table FMA-normalization lint (PL203).
    HAS_FMA = False
    #: the attribution mechanism ``PAPI_profil`` rides on here:
    #: ``overflow`` (interrupt pc, subject to skid), ``profileme``
    #: (precise retire-time hardware sampling).  The validate harness's
    #: skid plane keys its pass criteria on this plus :attr:`skid_max`.
    PROFILING = "overflow"

    def __init__(self, seed: int = 12345, block_engine: bool = True,
                 ncpus: int = 1, engine: Optional[str] = None) -> None:
        config = self._machine_config(seed)
        if config.block_engine != block_engine:
            config = dataclasses.replace(config, block_engine=block_engine)
        if engine is not None and config.engine != engine:
            config = dataclasses.replace(config, engine=engine)
        if config.ncpus != ncpus:
            config = dataclasses.replace(config, ncpus=ncpus)
        self.machine = Machine(config)
        self.os = OS(self.machine)
        self.native_events: Dict[str, NativeEvent] = {
            ev.name: ev for ev in self._native_events()
        }
        self.groups: Optional[List[CounterGroup]] = self._groups()
        self._validate_tables()
        # the PAPI-C component registry: this substrate's PMU is component
        # 0 (the CPU component), followed by the socket-scoped uncore and
        # energy planes.  Imported at function level: repro.components
        # pulls in repro.core, whose package init imports this module.
        from repro.components import build_components

        self.components = build_components(
            self, uncore_counters=self._uncore_counters()
        )
        self._component_by_name = {c.name: c for c in self.components}
        #: cumulative cycles this substrate's interface has charged.
        self.interface_cycles = 0
        #: attached fault injector (:mod:`repro.faults`); ``None`` keeps
        #: every counter op on the byte-identical clean path.
        self.faults: Optional["FaultInjector"] = None

    # -- subclass hooks ---------------------------------------------------

    def _machine_config(self, seed: int) -> MachineConfig:
        raise NotImplementedError

    def _native_events(self) -> Sequence[NativeEvent]:
        raise NotImplementedError

    def _groups(self) -> Optional[List[CounterGroup]]:
        return None

    def _uncore_counters(self) -> int:
        """Physical counters in this platform's uncore bank (override)."""
        return 2

    # -- validation ---------------------------------------------------------

    def _validate_tables(self) -> None:
        n = self.n_counters
        for ev in self.native_events.values():
            if ev.allowed_counters is not None:
                for c in ev.allowed_counters:
                    if not 0 <= c < n:
                        raise SubstrateError(
                            f"{self.NAME}: event {ev.name} allows counter {c} "
                            f"but the PMU has only {n}"
                        )
        if self.groups is not None:
            for g in self.groups:
                for name, c in g.assignments.items():
                    if name not in self.native_events:
                        raise SubstrateError(
                            f"{self.NAME}: group {g.gid} references unknown "
                            f"event {name!r}"
                        )
                    if not 0 <= c < n:
                        raise SubstrateError(
                            f"{self.NAME}: group {g.gid} uses counter {c}"
                        )

    # -- properties ---------------------------------------------------------

    @property
    def n_counters(self) -> int:
        return self.machine.pmu.config.n_counters

    @property
    def skid_max(self) -> int:
        """Worst-case overflow-interrupt skid, in retired instructions.

        0 means interrupt-pc profiling is precise here (in-order cores);
        larger values smear ``PAPI_profil`` histograms downstream of the
        causing instruction -- the Section 4 attribution hazard the
        validate harness's skid plane measures.
        """
        return self.machine.pmu.config.skid_max

    @property
    def uses_groups(self) -> bool:
        return self.groups is not None

    def query_native(self, name: str) -> NativeEvent:
        try:
            return self.native_events[name]
        except KeyError:
            raise SubstrateError(
                f"{self.NAME}: no native event named {name!r}"
            ) from None

    def list_native(self) -> List[NativeEvent]:
        return sorted(self.native_events.values(), key=lambda e: e.name)

    # -- components -----------------------------------------------------------

    @property
    def num_components(self) -> int:
        return len(self.components)

    @property
    def component_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.components)

    def component(self, name: str):
        """Look up a component by name; raises ``PAPI_ENOCMP`` if absent."""
        comp = self._component_by_name.get(name)
        if comp is None:
            from repro.core.errors import NoSuchComponentError

            raise NoSuchComponentError(
                f"{self.NAME}: no component named {name!r} "
                f"(have {', '.join(self.component_names)})"
            )
        return comp

    def component_by_id(self, cid: int):
        if 0 <= cid < len(self.components):
            return self.components[cid]
        from repro.core.errors import NoSuchComponentError

        raise NoSuchComponentError(f"{self.NAME}: no component id {cid}")

    # -- fault injection ------------------------------------------------------

    def attach_faults(self, injector: "FaultInjector") -> None:
        """Route every counter op through *injector* (see repro.faults)."""
        injector.bind(self)
        self.faults = injector

    def detach_faults(self) -> None:
        if self.faults is not None:
            self.faults.unbind()
            self.faults = None

    def _gate(self, op: str, indices: Sequence[int], cpu: int) -> None:
        """Fault-injection gate; a no-op unless an injector is attached."""
        if self.faults is not None:
            self.faults.before_op(op, indices, cpu)

    def unavailable_counters(self, cpu: int = 0) -> FrozenSet[int]:
        """Counters currently held by other users of the machine.

        Only ever non-empty under fault injection; the allocator's
        recovery path bans these indices when re-acquiring after
        ``PAPI_ECLOST``.
        """
        if self.faults is not None:
            return self.faults.unavailable(cpu)
        return frozenset()

    # -- cost charging --------------------------------------------------------

    def _charge(self, cycles: int) -> None:
        self.machine.charge(cycles, pollute_lines=self.COSTS.pollute_lines)
        self.interface_cycles += cycles

    # -- direct counting operations --------------------------------------------
    # The PAPI core calls these with concrete counter assignments produced
    # by the allocator.  Sampling substrates override them to raise, and
    # provide the sampling session API instead.  *cpu* selects which
    # per-CPU PMU the operation targets (CPU 0 = the classic single-CPU
    # path; EventSets pinned elsewhere pass their bound CPU).

    def _cpu_pmu(self, cpu: int):
        return self.machine.cpus[cpu].pmu

    def program_counter(self, index: int, event: NativeEvent,
                        cpu: int = 0) -> None:
        self._charge(self.COSTS.program)
        self._gate("program", (index,), cpu)
        self._cpu_pmu(cpu).program(index, event.signals)

    def clear_counter(self, index: int, cpu: int = 0) -> None:
        self._charge(self.COSTS.program)
        self._gate("clear", (index,), cpu)
        self._cpu_pmu(cpu).clear(index)

    def start_counters(self, indices: Sequence[int], cpu: int = 0) -> None:
        self._charge(self.COSTS.start)
        self._gate("start", indices, cpu)
        pmu = self._cpu_pmu(cpu)
        for i in indices:
            pmu.start(i)

    def stop_counters(self, indices: Sequence[int], cpu: int = 0) -> List[int]:
        self._charge(self.COSTS.stop)
        self._gate("stop", indices, cpu)
        pmu = self._cpu_pmu(cpu)
        values = [pmu.stop(i) for i in indices]
        if self.faults is not None:
            values = self.faults.filter_values("stop", indices, values, cpu)
        return values

    def read_counters(self, indices: Sequence[int], cpu: int = 0) -> List[int]:
        self._charge(self.COSTS.read + self.COSTS.read_per_counter * len(indices))
        self._gate("read", indices, cpu)
        pmu = self._cpu_pmu(cpu)
        values = [pmu.read(i) for i in indices]
        if self.faults is not None:
            values = self.faults.filter_values("read", indices, values, cpu)
        return values

    def reset_counters(self, indices: Sequence[int], cpu: int = 0) -> None:
        self._charge(self.COSTS.reset)
        self._gate("reset", indices, cpu)
        pmu = self._cpu_pmu(cpu)
        for i in indices:
            pmu.write(i, 0)

    # -- overflow arming --------------------------------------------------------
    # Arming goes through the substrate (rather than the library poking
    # the PMU directly) so injected faults can make it fail, driving the
    # software-emulation fallback.  Arming is control-plane work batched
    # into the surrounding program/start calls, so it charges nothing --
    # the clean path stays bit-exact with the historical behaviour.

    def arm_overflow(self, index: int, threshold: int,
                     handler: Callable[["OverflowRecord"], None],
                     cpu: int = 0) -> None:
        self._gate("arm", (index,), cpu)
        self._cpu_pmu(cpu).set_overflow(index, threshold, handler)

    def disarm_overflow(self, index: int, cpu: int = 0) -> None:
        self._cpu_pmu(cpu).clear_overflow(index)

    # -- sampling (overridden by simALPHA) -----------------------------------

    def supports_sampling_counts(self) -> bool:
        return self.COUNTING == "sampling"

    # -- timers -----------------------------------------------------------------

    def real_cyc(self) -> int:
        """Wall-clock cycles (user + interface/system work)."""
        return self.machine.real_cycles

    def real_usec(self) -> float:
        return self.machine.real_cycles / self.machine.config.mhz

    def virt_cyc(self, thread=None) -> int:
        """Process/thread-virtual cycles (excludes other threads' time)."""
        if thread is None:
            return self.machine.user_cycles
        return thread.user_cycles

    def virt_usec(self, thread=None) -> float:
        return self.virt_cyc(thread) / self.machine.config.mhz

    # -- info ----------------------------------------------------------------

    def describe(self) -> str:
        kind = f"{self.STYLE} interface, {self.COUNTING} counting"
        return (
            f"{self.NAME}: {self.DESCRIPTION} ({kind}; "
            f"{self.n_counters} counters, "
            f"{len(self.native_events)} native events)"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Substrate {self.NAME}>"

"""E8: the portability matrix (Figure 1's layered architecture at work).

Paper claim (Section 1): "For each platform, the reference
implementation attempts to map as many of the PAPI standard events as
possible to native events on that platform" -- directly where a native
event exists, *derived* where a signed combination does, unavailable
otherwise.

Reproduction: the full preset x platform availability matrix, plus an
end-to-end check that every available preset actually counts (adds to an
EventSet and returns a value) on its platform, exercising the portable
layer over all five substrates.
"""

from _shared import emit, run_once
from repro.analysis import Table
from repro.core.library import Papi
from repro.core.presets import NUM_PRESETS, PRESETS
from repro.platforms import PLATFORM_NAMES, create
from repro.workloads import demo_app

MARK = {"direct": "D", "derived": "d", "-": "."}


def run_experiment():
    summaries = {}
    counted = {}
    for name in PLATFORM_NAMES:
        substrate = create(name)
        papi = Papi(substrate)
        summaries[name] = papi.availability_summary()
        # drive every available preset through a real measurement
        work = demo_app(scale=8, use_fma=substrate.HAS_FMA)
        ok = 0
        for preset in PRESETS:
            if summaries[name][preset.symbol] == "-":
                continue
            sub = create(name)
            papi2 = Papi(sub)
            es = papi2.create_eventset()
            es.add_event(preset.code)
            sub.machine.load(
                demo_app(scale=8, use_fma=sub.HAS_FMA).program
            )
            es.start()
            sub.machine.run_to_completion()
            values = es.stop()
            assert len(values) == 1 and values[0] >= 0
            ok += 1
        counted[name] = ok
        del work
    return summaries, counted


def bench_e8_portability_matrix(benchmark, capsys):
    summaries, counted = run_once(benchmark, run_experiment)

    table = Table(
        ["preset"] + PLATFORM_NAMES,
        title="E8: preset availability (D=direct, d=derived, .=unavailable)",
    )
    for preset in PRESETS:
        table.add_row(
            preset.symbol,
            *[MARK[summaries[p][preset.symbol]] for p in PLATFORM_NAMES],
        )
    totals = {
        p: sum(1 for v in summaries[p].values() if v != "-")
        for p in PLATFORM_NAMES
    }
    table.add_row("TOTAL available", *[totals[p] for p in PLATFORM_NAMES])
    table.add_row("verified counting", *[counted[p] for p in PLATFORM_NAMES])
    emit(capsys, table.render())

    # every platform maps a substantial share of the standard events
    # (simT3E's 21164-era counter set is legitimately the sparsest)...
    for p in PLATFORM_NAMES:
        assert totals[p] >= int(NUM_PRESETS * 0.4), p
        # ...and every claimed-available preset actually counted
        assert counted[p] == totals[p], p
    # ...but no platform maps everything, and coverage differs (the
    # portability matrix has holes, as the paper discusses)
    assert all(totals[p] < NUM_PRESETS for p in PLATFORM_NAMES)
    assert len(set(totals.values())) > 1
    # derived mappings exist (the layered design's value-add)
    assert any(
        v == "derived" for s in summaries.values() for v in s.values()
    )

"""Differential lockdown: the SMP scheduler at ``ncpus=1`` is the seed.

Every experiment table (E1--E10, A1--A4) is re-derived on the current
tree -- which routes *all* scheduling, counter virtualization and
multiplexing through the SMP code paths -- and compared bit-exactly
against ``goldens_seed.json``, captured from the single-CPU seed tree
before the SMP layer existed.  All three engine tiers are locked down:
"off" compares against the seed's interpreter capture, while "block"
and "trace" must match the seed's engine capture (the tiers are
bit-exact by contract, so one golden serves both).

A mismatch here means the refactor changed observable behaviour of the
classic single-CPU configuration; fix the regression, do not recapture
the goldens.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from tables import EXPERIMENTS, GOLDENS_PATH, build_table  # noqa: E402


@pytest.fixture(scope="module")
def goldens():
    assert GOLDENS_PATH.exists(), (
        "goldens_seed.json missing; run capture_goldens.py on the seed tree"
    )
    return json.loads(GOLDENS_PATH.read_text())


@pytest.mark.skipif(
    bool(os.environ.get("REPRO_FAULT_PROFILE")),
    reason="goldens were captured fault-free; under REPRO_FAULT_PROFILE the "
           "contract is determinism, not golden equality",
)
@pytest.mark.parametrize("key", EXPERIMENTS)
@pytest.mark.parametrize("mode", ["engine_off", "engine_block", "engine_trace"])
def test_table_matches_seed(goldens, key, mode):
    tier = mode.split("_", 1)[1]
    golden_key = "engine_off" if tier == "off" else "engine_on"
    got = json.loads(json.dumps(build_table(key, tier)))
    assert got == goldens[key][golden_key], (
        f"experiment {key} ({mode}) diverged from the seed capture"
    )


@pytest.mark.parametrize("mode", ["off", "block", "trace"])
def test_tables_deterministic_under_faults(monkeypatch, mode):
    """Under a fixed fault profile an experiment table is still a pure
    function of its inputs: two derivations must agree bit-exactly,
    faults and recoveries included."""
    monkeypatch.setenv("REPRO_FAULT_PROFILE", "97:transient")
    first = json.loads(json.dumps(build_table("e7", mode)))
    second = json.loads(json.dumps(build_table("e7", mode)))
    assert first == second

"""E10: the third-party tool story -- multi-metric profiles and correlation.

Paper claims (Sections 2-3): dynaprof inserts PAPI probes per function;
TAU generates "a separate profile ... for each [of up to 25 metrics]";
"These profiles for the same run can then be compared to see important
correlations, such as for example the correlation of time with operation
counts and cache or TLB misses"; and "Correlations between profiles
based on different events, as well as event-based ratios, provide
derived information ... to quickly identify and diagnose performance
problems."

Reproduction: the demo application (a compute-bound, a memory-bound and
a branchy routine) profiled with four metrics; the per-metric hot spot,
cross-metric correlations and derived ratios must each finger the right
routine.
"""

from _shared import emit, run_once
from repro.tools.profiler import Profiler
from repro.workloads import demo_app

METRICS = ["PAPI_TOT_CYC", "PAPI_FP_OPS", "PAPI_L1_DCM", "PAPI_BR_MSP"]
SCALE = 40


def run_experiment():
    profiler = Profiler("simPOWER", METRICS)
    return profiler.profile(lambda: demo_app(scale=SCALE))


def bench_e10_tool_integration(benchmark, capsys):
    report = run_once(benchmark, run_experiment)

    lines = [report.to_text()]
    hot = {m: report.hottest(m) for m in METRICS}
    lines.append("")
    lines.append("hot spot per metric: " + ", ".join(
        f"{m.split('_', 1)[1]}->{fn}" for m, fn in hot.items()
    ))
    corr_cyc_miss = report.correlation("PAPI_TOT_CYC", "PAPI_L1_DCM")
    corr_cyc_fp = report.correlation("PAPI_TOT_CYC", "PAPI_FP_OPS")
    lines.append(
        f"corr(cycles, L1 misses) = {corr_cyc_miss:+.2f}   "
        f"corr(cycles, fp ops) = {corr_cyc_fp:+.2f}"
    )
    ratios = report.derived_ratio("PAPI_L1_DCM", "PAPI_TOT_CYC")
    ranked = sorted(ratios.items(), key=lambda kv: kv[1], reverse=True)
    lines.append(
        "misses-per-cycle ranking: "
        + " > ".join(f"{fn}({r:.5f})" for fn, r in ranked[:3])
    )
    emit(capsys, "E10: multi-metric profile on simPOWER\n" + "\n".join(lines))

    # each metric's hot spot is the routine designed to dominate it
    assert hot["PAPI_FP_OPS"] == "compute"
    assert hot["PAPI_L1_DCM"] == "memwalk"
    assert hot["PAPI_BR_MSP"] == "branchy"
    # time correlates with misses (memwalk is the cycle hog here),
    # much more than with fp work
    assert corr_cyc_miss > 0.6
    assert corr_cyc_miss > corr_cyc_fp
    # the derived ratio ranks the memory-bound routine first
    assert ranked[0][0] == "memwalk"
    # every function got all metrics (merged across counter batches)
    for fn in ("compute", "memwalk", "branchy"):
        assert set(report.exclusive[fn]) == set(METRICS)

"""Canonical experiment tables for differential (golden) testing.

Every paper experiment (E1--E10) and ablation (A1--A4) is reduced to a
JSON-serializable *canonical table*: dataclasses become dicts, tuples
become lists, dict keys become strings.  The committed goldens in
``goldens_seed.json`` were captured from the single-CPU seed tree with
``capture_goldens.py`` *before* the SMP refactor landed; the
differential suite re-derives the tables on the current tree with
``ncpus=1`` at every engine tier (off / block / trace) and asserts
bit-exact equality against the same goldens: a tier that changes any
observable is a correctness bug, not a new baseline.

The bench modules bind ``create`` at import time (``from
repro.platforms import create``), so the block-engine mode is forced by
patching each imported bench module's ``create`` attribute -- not the
global -- which keeps both modes runnable in a single process.
"""

from __future__ import annotations

import dataclasses
import importlib
import sys
from pathlib import Path
from typing import Any, Callable, Dict

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_DIR = REPO_ROOT / "benchmarks"
GOLDENS_PATH = Path(__file__).parent / "goldens_seed.json"

#: every experiment table under differential lockdown, in paper order.
EXPERIMENTS = (
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10",
    "a1", "a2", "a3", "a4",
)

_MODULES = {
    "e1": "bench_e1_overhead_by_substrate",
    "e2": "bench_e2_calibrate_convergence",
    "e3": "bench_e3_multiplex_accuracy",
    "e4": "bench_e4_allocation",
    "e5": "bench_e5_attribution",
    "e6": "bench_e6_flops_normalization",
    "e7": "bench_e7_read_granularity",
    "e8": "bench_e8_portability_matrix",
    "e9": "bench_e9_perfometer_trace",
    "e10": "bench_e10_tool_integration",
    "a1": "bench_a1_multiplex_quantum",
    "a2": "bench_a2_sampling_period",
    "a3": "bench_a3_allocation_split",
    "a4": "bench_a4_call_sampling",
}


def canonical(obj: Any) -> Any:
    """Reduce an experiment result to JSON-roundtrippable primitives.

    Deliberately strict: an unknown object type raises instead of
    degrading to ``repr`` so nondeterministic junk (addresses, handles)
    can never leak into a golden.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {
            str(k): canonical(v)
            for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(obj, (list, tuple)):
        return [canonical(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonical(x) for x in obj)
    if type(obj).__name__ == "ConvergenceStudy":  # plain class, not dataclass
        return {"label": obj.label, "points": canonical(obj.points)}
    raise TypeError(f"non-canonical experiment value: {type(obj)!r}")


def _load_bench(key: str):
    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))
    return importlib.import_module(_MODULES[key])


def _forced_create(engine: str) -> Callable:
    from repro.platforms import create as real_create

    def wrapped(name, *args, **kwargs):
        kwargs["engine"] = engine
        return real_create(name, *args, **kwargs)

    return wrapped


def _tier(engine) -> str:
    """Accept a tier name or the legacy block-engine boolean."""
    if isinstance(engine, bool):
        return "trace" if engine else "off"
    if engine not in ("off", "block", "trace"):
        raise ValueError(f"unknown engine tier {engine!r}")
    return engine


def _patch_targets(mod):
    """Modules whose import-time ``create`` binding must be overridden."""
    import repro.tools.profiler as profiler_mod

    targets = [profiler_mod]
    if hasattr(mod, "create"):
        targets.append(mod)
    return targets


def build_table(key: str, engine) -> Any:
    """Run one experiment at the given engine tier; canonical output.

    *engine* is a tier name (``"off"``/``"block"``/``"trace"``); the
    legacy boolean still works (True -> "trace", False -> "off").
    """
    mod = _load_bench(key)
    targets = _patch_targets(mod)
    saved = [t.create for t in targets]
    for t in targets:
        t.create = _forced_create(_tier(engine))
    try:
        if key == "a3":
            raw = {
                "simX86": mod.compare_platform(
                    "simX86", mod.brute_force_constraint
                ),
                "simPOWER": mod.compare_platform(
                    "simPOWER", mod.brute_force_groups
                ),
            }
        elif key == "e9":
            pm, trace = mod.run_experiment()
            raw = {
                "points": trace.points,
                "render": pm.render(width=66, height=8),
            }
        else:
            raw = mod.run_experiment()
    finally:
        for t, orig in zip(targets, saved):
            t.create = orig
    return canonical(raw)


def build_all(engine) -> Dict[str, Any]:
    return {key: build_table(key, engine) for key in EXPERIMENTS}

"""AST-based API-misuse linting for PAPI instrumentation scripts.

The checker walks a script's AST and tracks, per scope, an abstract
state machine for every ``Papi`` / ``EventSet`` / ``HighLevel`` object
it can identify statically: which platform it is bound to (from a
``create("simX86")`` literal), which events were added (from string
literals, ``event_name_to_code`` calls, or module-level constant
lists), and whether it is running, multiplexed, or has overflow
registered.  Illegal or hazardous call sequences become PL0xx
diagnostics; when the platform and event names are all statically
known, the set is additionally handed to the static feasibility
checker (:mod:`repro.lint.feasibility`) for PL1xx diagnostics, and
assignments into ``PLATFORM_PRESET_TABLES`` are validated by the
preset lint (PL2xx).

Design points:

- **Linear control flow.**  Statements are interpreted in source
  order; both branches of an ``if`` are walked with the same entry
  state and loop bodies are walked once.  This is the usual lint
  trade-off: simple, fast, and right for straight-line instrumentation
  code, which is what counter-measurement scripts overwhelmingly are.
- **Guard awareness.**  A call inside ``try: ... except ConflictError``
  demonstrates intent (the script *expects* the failure -- e.g. the
  multiplexing example that shows the ECNFLCT path), so rules whose
  failure the handler catches are suppressed there.  ``except
  Exception`` guards every guardable rule.
- **No execution.**  Only substrate/preset tables are consulted; the
  linted script is never imported or run.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.presets import PRESET_BY_SYMBOL
from repro.lint.diagnostics import Diagnostic
from repro.lint.feasibility import _substrate, check_events, portability_matrix
from repro.lint.rules import RULES
from repro.platforms import PLATFORM_NAMES

#: below this many instructions, a multiplexed run has too few timer
#: rotations for the time-slice extrapolation to converge (the E3
#: regime where estimates are badly wrong).  Default quantum is 5000
#: cycles; tens of rotations are needed to average over phases.
MIN_MPX_RUN_INSTRUCTIONS = 50_000


class _PapiState:
    """Abstract state of one Papi library instance."""

    def __init__(self, platform: Optional[str]) -> None:
        self.platform = platform
        self.hl_line: Optional[int] = None     # first high-level use
        self.ll_line: Optional[int] = None     # first low-level start
        self.mixing_reported = False
        self.running: Set[int] = set()         # ids of running EventSets
        #: component names whose registration the script has checked
        #: (papi.component("x"), or query_named of a ::: name)
        self.components_checked: Set[str] = set()
        #: True once the script enumerated the registry as a whole
        #: (num_components() / components)
        self.all_components_checked = False


class _EventSetState:
    """Abstract state of one EventSet variable."""

    def __init__(self, papi: Optional[_PapiState], line: int) -> None:
        self.papi = papi
        self.created_line = line
        self.events: List[Tuple[Optional[str], int]] = []  # (name, line)
        self.multiplexed = False
        self.running = False
        self.overflow = False
        self.started_line: Optional[int] = None
        self.ever_stopped = False
        self.conflict_reported = False
        #: identity of the thread this set is attached to (a _ThreadRef
        #: for tracked spawn() results, else the argument's source text)
        self.attached: Optional[object] = None
        self.attached_line: Optional[int] = None

    @property
    def platform(self) -> Optional[str]:
        return self.papi.platform if self.papi else None

    @property
    def names(self) -> List[str]:
        return [n for n, _line in self.events if n is not None]

    @property
    def fully_resolved(self) -> bool:
        return bool(self.events) and all(
            n is not None for n, _line in self.events
        )


class _HighLevelState:
    """Abstract state of one HighLevel interface instance."""

    def __init__(self, papi: Optional[_PapiState]) -> None:
        self.papi = papi
        self.started = False
        self.started_line: Optional[int] = None


class ApiLinter:
    """Lints one module's AST; collect results from :attr:`diagnostics`."""

    def __init__(
        self, path: str, default_platform: Optional[str] = None
    ) -> None:
        self.path = path
        self.default_platform = default_platform
        self.diagnostics: List[Diagnostic] = []
        #: module-level literal constants (lists of event names etc.)
        self.module_env: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def lint(self, tree: ast.Module) -> List[Diagnostic]:
        self._collect_module_constants(tree)
        # module top level is one scope; every function body another.
        self._run_scope(tree.body)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._run_scope(node.body)
        return self.diagnostics

    def _collect_module_constants(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = self._literal(stmt.value)
            if value is not None:
                self.module_env[target.id] = value

    @staticmethod
    def _literal(node: ast.AST) -> Optional[object]:
        """Evaluate a literal expression (str/int/list/tuple) or None."""
        try:
            return ast.literal_eval(node)
        except (ValueError, SyntaxError):
            return None

    # ------------------------------------------------------------------
    # one scope
    # ------------------------------------------------------------------

    def _run_scope(self, body: Sequence[ast.stmt]) -> None:
        scope = _ScopeInterpreter(self)
        scope.run(body)

    def report(
        self,
        code: str,
        node: ast.AST,
        message: str,
        hint: str = "",
        guards: Optional[Set[str]] = None,
    ) -> None:
        rule = RULES[code]
        if guards and rule.guards:
            catchable = set(rule.guards) | {"Exception", "BaseException"}
            if guards & catchable:
                return  # statically guarded: the script expects this
        self.diagnostics.append(Diagnostic(
            code, self.path,
            getattr(node, "lineno", 0), getattr(node, "col_offset", 0),
            message, hint,
        ))


class _ScopeInterpreter:
    """Interprets one scope's statements over abstract PAPI objects."""

    def __init__(self, linter: ApiLinter) -> None:
        self.linter = linter
        self.env: Dict[str, object] = dict(linter.module_env)
        self.vars: Dict[str, object] = {}     # name -> abstract object
        self.eventsets: List[_EventSetState] = []
        self.highlevels: List[_HighLevelState] = []
        self.clients: List["_ClientState"] = []
        self.guard_stack: List[Set[str]] = []
        #: counter index -> (thread identity, bind line) for OS-level
        #: bind_counter calls (a PMU register is exclusive machine-wide)
        self.counter_binds: Dict[int, Tuple[object, int]] = {}
        #: running count of method calls on tracked PAPI objects; a
        #: try-body that raises it contains counter calls (PL017).
        self.papi_calls = 0

    # -- plumbing ------------------------------------------------------

    @property
    def guards(self) -> Set[str]:
        out: Set[str] = set()
        for g in self.guard_stack:
            out |= g
        return out

    def report(
        self, code: str, node: ast.AST, message: str, hint: str = ""
    ) -> None:
        self.linter.report(code, node, message, hint, guards=self.guards)

    # -- statement dispatch --------------------------------------------

    def run(self, body: Sequence[ast.stmt]) -> None:
        self.visit_block(body)
        self._end_of_scope(body)

    def visit_block(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.visit_stmt(stmt)

    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Expr):
            self.eval_expr(stmt.value)
        elif isinstance(stmt, ast.Assign):
            self._handle_assign(stmt)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value = self.eval_expr(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self._bind(stmt.target.id, stmt.value, value)
        elif isinstance(stmt, ast.AugAssign):
            self.eval_expr(stmt.value)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            value = self.eval_expr(stmt.value)
            if isinstance(value, _ClientState):
                # the client outlives this scope; closing is the
                # caller's job (PL018 suppression)
                value.escaped = True
        elif isinstance(stmt, ast.If):
            self.eval_expr(stmt.test)
            refined = self._running_test(stmt.test)
            if refined is not None:
                # ``if es.running:`` -- walk each branch under the
                # state the condition proves, then keep the branch the
                # entry state would actually have taken.  This is the
                # guarded-cleanup idiom (stop before destroy); without
                # it the linear walk reports a spurious PL001/PL002.
                es, truth = refined
                entry = es.running
                es.running = truth
                self.visit_block(stmt.body)
                after_body = es.running
                es.running = not truth
                self.visit_block(stmt.orelse)
                after_orelse = es.running
                es.running = (
                    after_body if entry == truth else after_orelse
                )
            else:
                self.visit_block(stmt.body)
                self.visit_block(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.eval_expr(stmt.iter)
            self.visit_block(stmt.body)
            self.visit_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval_expr(stmt.test)
            self.visit_block(stmt.body)
            self.visit_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval_expr(item.context_expr)
                if isinstance(value, _ClientState):
                    # __exit__ calls close(): the with-statement is the
                    # blessed idiom PL018 asks for
                    value.closed = True
                    if isinstance(item.optional_vars, ast.Name):
                        self.vars[item.optional_vars.id] = value
            self.visit_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            calls_before = self.papi_calls
            self.guard_stack.append(self._handler_names(stmt))
            try:
                self.visit_block(stmt.body)
            finally:
                self.guard_stack.pop()
            if self.papi_calls > calls_before:
                self._check_swallowed_errors(stmt)
            for handler in stmt.handlers:
                self.visit_block(handler.body)
            self.visit_block(stmt.orelse)
            self.visit_block(stmt.finalbody)
        # FunctionDef/ClassDef bodies are linted as separate scopes.

    def _running_test(
        self, test: ast.expr
    ) -> Optional[Tuple["_EventSetState", bool]]:
        """Match ``<eventset>.running`` (optionally negated) conditions."""
        truth = True
        while isinstance(test, ast.UnaryOp) and isinstance(
            test.op, ast.Not
        ):
            test, truth = test.operand, not truth
        if isinstance(test, ast.Attribute) and test.attr == "running":
            target = self.eval_expr(test.value)
            if isinstance(target, _EventSetState):
                return target, truth
        return None

    @staticmethod
    def _one_handler_names(handler: ast.excepthandler) -> Set[str]:
        names: Set[str] = set()

        def add(node: Optional[ast.expr]) -> None:
            if node is None:
                names.add("BaseException")  # bare except
            elif isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, ast.Attribute):
                names.add(node.attr)
            elif isinstance(node, ast.Tuple):
                for elt in node.elts:
                    add(elt)

        add(handler.type)
        return names

    @classmethod
    def _handler_names(cls, stmt: ast.Try) -> Set[str]:
        names: Set[str] = set()
        for handler in stmt.handlers:
            names |= cls._one_handler_names(handler)
        return names

    #: handler types broad enough to hide *which* PAPI error occurred.
    #: Catching a specific subclass (ConflictError, NoSuchEventError...)
    #: names the expected failure and is the guard idiom the other rules
    #: honour; catching the base class or wider hides the error code.
    _BROAD_CATCHES = frozenset({"PapiError", "Exception", "BaseException"})

    def _check_swallowed_errors(self, stmt: ast.Try) -> None:
        """PL017: a broad handler with a pass-only body around PAPI calls.

        ``except PapiError: pass`` (or a bare ``except``) around counter
        calls discards the error code, and with it the difference
        between "event unavailable here" and "your counts are wrong"
        (PAPI_ECLOST).  A handler that does *anything* with the
        exception -- logs it, inspects ``exc.code``, re-raises -- shows
        intent and is left alone.
        """
        for handler in stmt.handlers:
            names = self._one_handler_names(handler)
            if not names & self._BROAD_CATCHES:
                continue
            if not all(
                isinstance(s, ast.Pass)
                or (isinstance(s, ast.Expr)
                    and isinstance(s.value, ast.Constant))
                for s in handler.body
            ):
                continue
            caught = (
                "bare except" if handler.type is None
                else "except " + ", ".join(sorted(names))
            )
            self.report(
                "PL017", handler,
                f"{caught}: pass swallows PAPI errors from the calls "
                f"above without inspecting the error code",
                hint="catch the specific PapiError subclass you expect, "
                     "or check exc.code -- PAPI_ECLOST here means the "
                     "counts are silently wrong",
            )

    # -- assignment ----------------------------------------------------

    def _handle_assign(self, stmt: ast.Assign) -> None:
        if self._maybe_preset_table_assign(stmt):
            return
        value = self.eval_expr(stmt.value)
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                self._bind(target.id, stmt.value, value)
            elif isinstance(target, (ast.Tuple, ast.List)):
                # tuple unpacking of stop() results etc.: nothing tracked
                pass
            elif isinstance(target, ast.Attribute):
                if isinstance(value, _ClientState):
                    # stored on an object (self.client = ...): lifetime
                    # is managed elsewhere, so PL018 stays quiet
                    value.escaped = True

    def _bind(
        self, name: str, rhs: ast.expr, value: Optional[object]
    ) -> None:
        if isinstance(
            value, (_PapiState, _EventSetState, _HighLevelState, str)
        ) or value.__class__.__name__ in (
            "_SubstrateRef", "_ThreadRef", "_ClientState"
        ):
            self.vars[name] = value
            return
        if isinstance(rhs, ast.Name) and rhs.id in self.vars:
            self.vars[name] = self.vars[rhs.id]  # aliasing
            return
        literal = self.linter._literal(rhs)
        if literal is not None:
            self.env[name] = literal
        else:
            # rebinding kills any stale tracking for this name
            self.vars.pop(name, None)

    # -- preset table edits --------------------------------------------

    def _maybe_preset_table_assign(self, stmt: ast.Assign) -> bool:
        """``PLATFORM_PRESET_TABLES["plat"]["SYM"] = [...]`` in a script."""
        if len(stmt.targets) != 1:
            return False
        target = stmt.targets[0]
        if not (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Subscript)
        ):
            return False
        base = target.value.value
        base_name = (
            base.id if isinstance(base, ast.Name)
            else base.attr if isinstance(base, ast.Attribute)
            else None
        )
        if base_name != "PLATFORM_PRESET_TABLES":
            return False
        platform = self.linter._literal(target.value.slice)
        symbol = self.linter._literal(target.slice)
        terms = self.linter._literal(stmt.value)
        if not (
            isinstance(platform, str)
            and platform in PLATFORM_NAMES
            and isinstance(symbol, str)
            and isinstance(terms, (list, tuple))
        ):
            return False
        from repro.lint.presetlint import lint_mapping

        term_lines: Dict[int, int] = {}
        if isinstance(stmt.value, (ast.List, ast.Tuple)):
            for i, elt in enumerate(stmt.value.elts):
                term_lines[i] = elt.lineno
        try:
            normalized = tuple((str(n), int(c)) for n, c in terms)
        except (TypeError, ValueError):
            self.report(
                "PL202", stmt,
                f"{platform}: {symbol} terms are not (name, coeff) pairs",
            )
            return True
        for diag in lint_mapping(
            platform, symbol, normalized,
            path=self.linter.path, line=stmt.lineno, term_lines=term_lines,
        ):
            self.linter.diagnostics.append(diag)
        return True

    # -- expression evaluation -----------------------------------------

    def eval_expr(self, node: ast.expr) -> Optional[object]:
        """Evaluate an expression; returns an abstract object or None.

        Recurses so that nested calls (``dict(zip(a, es.stop()))``) are
        still interpreted in evaluation order.
        """
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Name):
            return self.vars.get(node.id)
        if isinstance(node, ast.Attribute):
            self.eval_expr(node.value)
            return None
        if isinstance(node, ast.Constant):
            return None
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval_expr(child)
        return None

    def _eval_call(self, node: ast.Call) -> Optional[object]:
        for arg in node.args:
            value = self.eval_expr(
                arg.value if isinstance(arg, ast.Starred) else arg
            )
            if isinstance(value, _ClientState):
                # handed to another callable (a thread target, a helper
                # that closes it): assume the callee owns it (PL018)
                value.escaped = True
        for kw in node.keywords:
            value = self.eval_expr(kw.value)
            if isinstance(value, _ClientState):
                value.escaped = True

        func = node.func
        if isinstance(func, ast.Name):
            return self._call_by_name(func.id, node)
        if isinstance(func, ast.Attribute):
            return self._call_method(func, node)
        self.eval_expr(func)
        return None

    def _call_by_name(self, name: str, node: ast.Call) -> Optional[object]:
        if name == "create" and node.args:
            platform = self.linter._literal(node.args[0])
            if not isinstance(platform, str):
                platform = None
            return _SubstrateRef(platform)
        if name == "Papi":
            platform = self._platform_of_arg(node)
            return _PapiState(platform)
        if name == "HighLevel" and node.args:
            papi = self.eval_expr(node.args[0])
            hl = _HighLevelState(
                papi if isinstance(papi, _PapiState) else None
            )
            self.highlevels.append(hl)
            return hl
        if name == "PapidClient":
            return self._new_client(node)
        return None

    def _new_client(self, node: ast.Call) -> "_ClientState":
        client = _ClientState(node.lineno)
        self.clients.append(client)
        return client

    def _platform_of_arg(self, node: ast.Call) -> Optional[str]:
        if not node.args:
            return None
        arg = self.eval_expr(node.args[0])
        if isinstance(arg, _SubstrateRef):
            return arg.platform
        return None

    # -- method dispatch -----------------------------------------------

    def _call_method(
        self, func: ast.Attribute, node: ast.Call
    ) -> Optional[object]:
        base = self.eval_expr(func.value)
        method = func.attr

        if isinstance(
            base, (_PapiState, _EventSetState, _HighLevelState,
                   _ClientState)
        ):
            self.papi_calls += 1
        if isinstance(base, _ClientState):
            if method in ("close", "__exit__"):
                base.closed = True
            return None
        if isinstance(base, _PapiState):
            if method == "create_eventset":
                es = _EventSetState(base, node.lineno)
                self.eventsets.append(es)
                return es
            if method in ("num_components", "component_names"):
                base.all_components_checked = True
            elif method in ("component", "component_by_id"):
                from repro.components import STANDARD_COMPONENTS

                comp_name = (
                    self.linter._literal(node.args[0])
                    if node.args else None
                )
                if isinstance(comp_name, str):
                    base.components_checked.add(comp_name)
                elif (isinstance(comp_name, int)
                        and 0 <= comp_name < len(STANDARD_COMPONENTS)):
                    base.components_checked.add(
                        STANDARD_COMPONENTS[comp_name]
                    )
                else:
                    # unresolvable argument: assume the script checked
                    base.all_components_checked = True
            elif method == "query_named" and node.args:
                name = self.linter._literal(node.args[0])
                if isinstance(name, str) and ":::" in name:
                    base.components_checked.add(name.split(":::", 1)[0])
            return None
        if isinstance(base, _EventSetState):
            return self._eventset_method(base, method, node)
        if isinstance(base, _HighLevelState):
            return self._highlevel_method(base, method, node)
        if method == "create_eventset":
            # the receiver is untracked (e.g. a function parameter),
            # but the method name is unambiguous: still track the set
            # so feasibility checks work under --platform.
            es = _EventSetState(None, node.lineno)
            self.eventsets.append(es)
            return es
        if method == "PapidClient":
            # attribute-form constructor (daemon.PapidClient(...)): the
            # receiver is a module, the class name is unambiguous
            return self._new_client(node)
        if method == "spawn":
            # OS thread creation (os_.spawn / sub.os.spawn): track the
            # result so bind_counter exclusivity sees through aliases.
            return _ThreadRef(node.lineno)
        if method == "bind_counter":
            self._os_bind_counter(node)
        if method == "unbind_counter":
            self._os_unbind_counter(node)
        if method == "run":
            self._check_short_mpx_run(node)
        return None

    # -- OS-level counter virtualization --------------------------------

    def _thread_identity(self, node: ast.expr) -> Optional[object]:
        """Resolve a thread-valued argument to a stable identity."""
        if isinstance(node, ast.Name):
            value = self.vars.get(node.id)
            if isinstance(value, _ThreadRef):
                return value
            return node.id
        try:
            return ast.unparse(node)
        except Exception:  # pragma: no cover - malformed expression
            return None

    def _os_bind_counter(self, node: ast.Call) -> None:
        """``os.bind_counter(thread, index)``: one thread per index."""
        if len(node.args) < 2:
            return
        thread = self._thread_identity(node.args[0])
        index = self.linter._literal(node.args[1])
        if thread is None or not isinstance(index, int):
            return
        previous = self.counter_binds.get(index)
        if previous is not None and previous[0] != thread:
            self.report(
                "PL016", node,
                f"counter {index} is bound here but was already bound "
                f"to another thread at line {previous[1]}",
                hint="unbind_counter() first, or use a different index "
                     "(a counter register is exclusive machine-wide)",
            )
            return
        self.counter_binds[index] = (thread, node.lineno)

    def _os_unbind_counter(self, node: ast.Call) -> None:
        if len(node.args) < 2:
            return
        index = self.linter._literal(node.args[1])
        if isinstance(index, int):
            self.counter_binds.pop(index, None)

    # -- EventSet state machine ----------------------------------------

    def _eventset_method(
        self, es: _EventSetState, method: str, node: ast.Call
    ) -> Optional[object]:
        if method in ("add_event", "add_events", "add_named"):
            self._es_add(es, method, node)
        elif method in ("remove_event", "cleanup"):
            if es.running:
                self.report(
                    "PL007", node,
                    f"{method} on a running EventSet",
                    hint="stop() it first",
                )
            if method == "cleanup":
                es.events.clear()
            else:
                self._es_remove(es, node)
        elif method == "set_multiplex":
            self._es_set_multiplex(es, node)
        elif method == "set_domain":
            if es.running:
                self.report(
                    "PL007", node,
                    f"{method} on a running EventSet",
                    hint="stop() it first",
                )
        elif method == "attach":
            self._es_attach(es, node)
        elif method == "detach":
            if es.running:
                self.report(
                    "PL014", node,
                    "detach on a running EventSet",
                    hint="stop() it first; the running counters belong "
                         "to the attached thread",
                )
            es.attached = None
            es.attached_line = None
        elif method == "overflow":
            self._es_overflow(es, node)
        elif method == "start":
            self._es_start(es, node)
        elif method == "stop":
            self._es_expect_running(es, "stop", node)
            if es.running and es.papi is not None:
                es.papi.running.discard(id(es))
            es.running = False
            es.ever_stopped = True
        elif method in ("read", "reset", "accum"):
            self._es_expect_running(es, method, node)
        return None

    def _es_expect_running(
        self, es: _EventSetState, method: str, node: ast.Call
    ) -> None:
        if not es.running:
            self.report(
                "PL001", node,
                f"{method}() on an EventSet that was never started "
                f"(created at line {es.created_line})"
                if es.started_line is None else
                f"{method}() on an EventSet that is already stopped",
                hint="call start() first",
            )

    def _es_add(
        self, es: _EventSetState, method: str, node: ast.Call
    ) -> None:
        if es.running:
            self.report(
                "PL007", node,
                f"{method} on a running EventSet",
                hint="stop() before changing membership",
            )
        for name in self._event_names_of_call(method, node):
            self._es_add_one(es, name, node)

    def _event_names_of_call(
        self, method: str, node: ast.Call
    ) -> List[Optional[str]]:
        """Event names added by one add_* call (None = unresolvable)."""
        if method == "add_event":
            return [self._event_name(a) for a in node.args[:1]]
        if method == "add_named":
            names: List[Optional[str]] = []
            for arg in node.args:
                if isinstance(arg, ast.Starred):
                    seq = self._name_sequence(arg.value)
                    names.extend(seq if seq is not None else [None])
                else:
                    names.append(self._event_name(arg))
            return names
        # add_events([codes...])
        if node.args:
            arg = node.args[0]
            if isinstance(arg, (ast.List, ast.Tuple)):
                return [self._event_name(e) for e in arg.elts]
        return [None]

    def _name_sequence(self, node: ast.expr) -> Optional[List[str]]:
        value: object = None
        if isinstance(node, ast.Name):
            value = self.env.get(node.id)
        else:
            value = self.linter._literal(node)
        if isinstance(value, (list, tuple)) and all(
            isinstance(v, str) for v in value
        ):
            return list(value)
        return None

    def _event_name(self, node: ast.expr) -> Optional[str]:
        """Statically resolve one event-spec expression to a name."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            value = self.env.get(node.id)
            return value if isinstance(value, str) else None
        if isinstance(node, ast.Call):
            func = node.func
            fname = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None
            )
            if fname == "event_name_to_code" and node.args:
                return self._event_name(node.args[0])
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "code"
            and isinstance(node.value, ast.Call)
        ):
            func = node.value.func
            fname = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None
            )
            if fname in ("preset_from_symbol", "preset_from_code") and \
                    node.value.args:
                return self._event_name(node.value.args[0])
        return None

    def _es_add_one(
        self, es: _EventSetState, name: Optional[str], node: ast.Call
    ) -> None:
        if name is not None:
            self._check_event_known(name, es.platform, node, papi=es.papi)
            if name in es.names:
                self.report(
                    "PL012", node,
                    f"event {name} is already in this EventSet",
                )
        es.events.append((name, node.lineno))
        self._check_feasibility_incremental(es, node)

    def _es_remove(self, es: _EventSetState, node: ast.Call) -> None:
        if not node.args:
            return
        name = self._event_name(node.args[0])
        if name is None:
            # unknown removal: previous membership is no longer reliable
            es.events.append((None, node.lineno))
            return
        for i, (n, _line) in enumerate(es.events):
            if n == name:
                del es.events[i]
                return

    def _check_event_known(
        self, name: str, platform: Optional[str], node: ast.Call,
        papi: Optional[_PapiState] = None,
    ) -> None:
        platform = platform or self.linter.default_platform
        if ":::" in name:
            self._check_component_event(name, node, papi)
            return
        if name.startswith("PAPI_"):
            if name not in PRESET_BY_SYMBOL:
                self.report(
                    "PL010", node,
                    f"{name} is not a preset in the catalogue",
                    hint="see `papi-lint` docs or papi_avail for symbols",
                )
            elif platform is not None:
                from repro.core.presets import PLATFORM_PRESET_TABLES

                if name not in PLATFORM_PRESET_TABLES.get(platform, {}):
                    self.report(
                        "PL011", node,
                        f"{name} is not available on {platform}",
                        hint=f"check `cli avail {platform}`; guard with "
                             f"query_event() for portable code",
                    )
        elif platform is not None:
            if name not in _substrate(platform).native_events:
                self.report(
                    "PL010", node,
                    f"{name!r} is neither a preset symbol nor a native "
                    f"event of {platform}",
                )

    def _check_component_event(
        self, name: str, node: ast.Call, papi: Optional[_PapiState]
    ) -> None:
        """A ``comp:::EVENT`` name: namespace validity, then PL019."""
        comp_name, short = name.split(":::", 1)
        if comp_name == "cpu":
            # aliases the native table; defer to the per-platform check
            platform = self.linter.default_platform
            if (platform is not None
                    and short not in _substrate(platform).native_events):
                self.report(
                    "PL010", node,
                    f"{short!r} is not a native event of {platform} "
                    f"(the cpu::: namespace aliases the native table)",
                )
            return
        from repro.components import COMPONENT_EVENT_SHORTS

        shorts = COMPONENT_EVENT_SHORTS.get(comp_name)
        if shorts is None:
            self.report(
                "PL010", node,
                f"{comp_name!r} is not a registered component "
                f"(PAPI_ENOCMP at runtime)",
                hint="see `cli component-avail <platform>` for the "
                     "component registry",
            )
            return
        if short not in shorts:
            self.report(
                "PL010", node,
                f"{short!r} is not an event of component {comp_name!r} "
                f"(have {', '.join(shorts)})",
            )
            return
        if papi is not None and not (
            papi.all_components_checked
            or comp_name in papi.components_checked
        ):
            self.report(
                "PL019", node,
                f"component event {name} used without checking the "
                f"{comp_name!r} component is registered",
                hint=f"call papi.component({comp_name!r}) or "
                     f"num_components() first; component sets differ "
                     f"across substrates (PAPI_ENOCMP)",
            )

    # -- feasibility hooks ---------------------------------------------

    def _feasibility_platform(
        self, es: _EventSetState
    ) -> Optional[str]:
        return es.platform or self.linter.default_platform

    def _check_feasibility_incremental(
        self, es: _EventSetState, node: ast.Call
    ) -> None:
        """Mirror add_event: the add that overflows the counters errs."""
        platform = self._feasibility_platform(es)
        if (
            platform is None
            or es.conflict_reported
            or not es.fully_resolved
        ):
            return
        report = check_events(tuple(es.names), platform)
        if report.unknown or report.unavailable or report.sampling:
            return
        if es.multiplexed:
            # every event only needs to be placeable alone
            if not report.feasible_multiplexed:
                es.conflict_reported = True
                self.report(
                    "PL101", node,
                    f"{report.conflict_witness or es.names} cannot be "
                    f"counted on {platform} even with multiplexing",
                )
            return
        if not report.feasible_direct:
            es.conflict_reported = True
            witness = ", ".join(report.conflict_witness)
            hint = "enable set_multiplex() before adding, or split " \
                   "the measurement into multiple runs"
            if report.hall_witness is not None:
                natives, counters = report.hall_witness
                hint += (
                    f"; Hall violation: natives {list(natives)} share "
                    f"only counters {list(counters)}"
                )
            self.report(
                "PL101", node,
                f"adding this event makes the set unallocatable on "
                f"{platform}: minimal conflicting subset {{{witness}}}",
                hint=hint,
            )

    def _es_set_multiplex(
        self, es: _EventSetState, node: ast.Call
    ) -> None:
        if es.running:
            self.report(
                "PL007", node,
                "set_multiplex on a running EventSet",
                hint="stop() it first",
            )
        if es.overflow:
            self.report(
                "PL009", node,
                "set_multiplex on an EventSet with overflow registered",
                hint="overflow interrupts and time-slicing are exclusive",
            )
        if es.events:
            self.report(
                "PL003", node,
                f"set_multiplex after {len(es.events)} event(s) were "
                f"already added",
                hint="enable multiplexing first so conflicts surface as "
                     "capacity, not ECNFLCT",
            )
        es.multiplexed = True

    def _es_attach(self, es: _EventSetState, node: ast.Call) -> None:
        if es.running:
            self.report(
                "PL014", node,
                "attach on a running EventSet",
                hint="stop() it first; per-thread counters cannot be "
                     "re-homed mid-run",
            )
        thread = (
            self._thread_identity(node.args[0]) if node.args else None
        )
        if (
            es.attached is not None
            and thread is not None
            and thread != es.attached
        ):
            self.report(
                "PL015", node,
                f"EventSet is re-attached to a different thread without "
                f"detach (attached at line {es.attached_line})",
                hint="detach() first; re-attaching discards the first "
                     "thread's virtual counts",
            )
        if thread is not None:
            es.attached = thread
            es.attached_line = node.lineno

    def _es_overflow(self, es: _EventSetState, node: ast.Call) -> None:
        if node.args:
            name = self._event_name(node.args[0])
            if name is not None and ":::" in name and \
                    not name.startswith("cpu:::"):
                self.report(
                    "PL019", node,
                    f"overflow registered on component event {name}",
                    hint="component counters are free-running snapshots; "
                         "PAPI_overflow needs a programmed PMU counter "
                         "(the runtime raises PAPI_EINVAL)",
                )
        if es.running:
            self.report(
                "PL005", node,
                "overflow registered while the EventSet is running",
                hint="register before start() for portable behaviour",
            )
        if es.multiplexed:
            self.report(
                "PL009", node,
                "overflow on a multiplexed EventSet",
                hint="overflow interrupts and time-slicing are exclusive",
            )
        es.overflow = True

    def _es_start(self, es: _EventSetState, node: ast.Call) -> None:
        if es.running:
            self.report(
                "PL002", node,
                "start() on an EventSet that is already running",
            )
        papi = es.papi
        if papi is not None:
            if papi.running - {id(es)}:
                self.report(
                    "PL013", node,
                    "start() while another EventSet of the same library "
                    "is still running",
                    hint="stop the other set first (one running EventSet "
                         "per library)",
                )
            papi.running.add(id(es))
            papi.ll_line = papi.ll_line or node.lineno
            self._check_mixing(papi, node)
        es.running = True
        es.started_line = node.lineno
        self._check_feasibility_at_start(es, node)

    def _check_feasibility_at_start(
        self, es: _EventSetState, node: ast.Call
    ) -> None:
        platform = self._feasibility_platform(es)
        if platform is None or not es.fully_resolved:
            return
        report = check_events(tuple(es.names), platform)
        if report.unknown or report.unavailable:
            return
        if (
            es.multiplexed
            and not report.sampling
            and report.feasible_direct
        ):
            natives: Set[str] = set()
            for res in report.resolutions:
                natives.update(res.natives)
            self.report(
                "PL102", node,
                f"multiplexing is enabled but {len(natives)} native "
                f"event(s) fit {platform}'s counters directly",
                hint="drop set_multiplex() to count exactly instead of "
                     "estimating",
            )
        if report.status in ("ok", "mpx", "sampling"):
            # a script that already multiplexes is fine on platforms
            # where the set *needs* multiplexing.
            acceptable = ("ok", "sampling") + (
                ("mpx",) if es.multiplexed else ()
            )
            matrix = portability_matrix(tuple(es.names))
            broken = {
                name: rep.status
                for name, rep in matrix.items()
                if name != platform and rep.status not in acceptable
            }
            if broken:
                detail = ", ".join(
                    f"{name} ({status})"
                    for name, status in sorted(broken.items())
                )
                self.report(
                    "PL103", node,
                    f"this EventSet is not portable as-is: {detail}",
                    hint="see `cli check-events ... --matrix` for the "
                         "full portability matrix (E8)",
                )

    # -- HighLevel ------------------------------------------------------

    def _highlevel_method(
        self, hl: _HighLevelState, method: str, node: ast.Call
    ) -> Optional[object]:
        papi = hl.papi
        if method == "start_counters":
            if hl.started:
                self.report(
                    "PL002", node,
                    "start_counters while high-level counters are "
                    "already started",
                )
            hl.started = True
            hl.started_line = node.lineno
            self._hl_mark_use(papi, node)
            self._hl_check_events(hl, node)
        elif method in ("read_counters", "accum_counters"):
            if not hl.started:
                self.report(
                    "PL001", node,
                    f"{method} before start_counters",
                )
        elif method == "stop_counters":
            if not hl.started:
                self.report(
                    "PL001", node,
                    "stop_counters before start_counters",
                )
            hl.started = False
        elif method in ("flops", "flips", "ipc"):
            self._hl_mark_use(papi, node)
        return None

    def _hl_mark_use(
        self, papi: Optional[_PapiState], node: ast.Call
    ) -> None:
        if papi is None:
            return
        papi.hl_line = papi.hl_line or node.lineno
        self._check_mixing(papi, node)

    def _check_mixing(self, papi: _PapiState, node: ast.Call) -> None:
        if (
            papi.hl_line is not None
            and papi.ll_line is not None
            and not papi.mixing_reported
        ):
            papi.mixing_reported = True
            self.report(
                "PL006", node,
                f"high-level (line {papi.hl_line}) and low-level "
                f"(line {papi.ll_line}) counting mixed on one library",
                hint="use one interface per measurement region",
            )

    def _hl_check_events(
        self, hl: _HighLevelState, node: ast.Call
    ) -> None:
        if not node.args:
            return
        arg = node.args[0]
        names: Optional[List[Optional[str]]] = None
        if isinstance(arg, (ast.List, ast.Tuple)):
            names = [self._event_name(e) for e in arg.elts]
        else:
            seq = self._name_sequence(arg)
            if seq is not None:
                names = list(seq)
        if names is None:
            return
        platform = (
            hl.papi.platform if hl.papi else None
        ) or self.linter.default_platform
        for name in names:
            if name is not None:
                self._check_event_known(name, platform, node,
                                        papi=hl.papi)
        if platform is None or any(n is None for n in names):
            return
        report = check_events(tuple(n for n in names if n), platform)
        if (
            not report.unknown
            and not report.unavailable
            and not report.sampling
            and not report.feasible_direct
        ):
            witness = ", ".join(report.conflict_witness)
            self.report(
                "PL101", node,
                f"start_counters set is unallocatable on {platform}: "
                f"minimal conflicting subset {{{witness}}}",
                hint="the high-level interface never multiplexes "
                     "(Section 2); use fewer events or the low-level "
                     "API with set_multiplex",
            )

    # -- short multiplexed runs ----------------------------------------

    def _check_short_mpx_run(self, node: ast.Call) -> None:
        """``machine.run(max_instructions=N)`` under a multiplexed set."""
        bound: Optional[int] = None
        for kw in node.keywords:
            if kw.arg == "max_instructions":
                value = self.linter._literal(kw.value)
                if isinstance(value, int):
                    bound = value
        if bound is None or bound >= MIN_MPX_RUN_INSTRUCTIONS:
            return
        for es in self.eventsets:
            if es.running and es.multiplexed:
                self.report(
                    "PL004", node,
                    f"multiplexed EventSet (started at line "
                    f"{es.started_line}) measures a run bounded to "
                    f"{bound} instructions; time-slice estimates will "
                    f"not converge",
                    hint=f"run at least ~{MIN_MPX_RUN_INSTRUCTIONS} "
                         f"instructions or count directly (E3)",
                )

    # -- scope exit -----------------------------------------------------

    def _end_of_scope(self, body: Sequence[ast.stmt]) -> None:
        for es in self.eventsets:
            if es.running and es.started_line is not None:
                self.linter.diagnostics.append(Diagnostic(
                    "PL008", self.linter.path, es.started_line, 0,
                    "EventSet is started here but never stopped in "
                    "this scope",
                    hint="stop() releases the hardware counters",
                ))
        for hl in self.highlevels:
            if hl.started and hl.started_line is not None:
                self.linter.diagnostics.append(Diagnostic(
                    "PL008", self.linter.path, hl.started_line, 0,
                    "high-level counters are started here but never "
                    "stopped in this scope",
                    hint="stop_counters() releases the counters",
                ))
        for client in self.clients:
            if not client.closed and not client.escaped:
                self.linter.diagnostics.append(Diagnostic(
                    "PL018", self.linter.path, client.created_line, 0,
                    "PapidClient is constructed here but neither used "
                    "as a context manager nor close()d in this scope",
                    hint="a departing client must close() so its owned "
                         "daemon sessions are stopped and destroyed",
                ))


class _SubstrateRef:
    """Marker for a ``create("...")`` result bound to a variable."""

    def __init__(self, platform: Optional[str]) -> None:
        self.platform = platform


class _ThreadRef:
    """Marker for an ``os.spawn(...)`` result bound to a variable."""

    def __init__(self, line: int) -> None:
        self.line = line


class _ClientState:
    """Abstract state of one ``PapidClient`` (PL018).

    ``closed`` is set by an explicit ``close()`` / ``__exit__`` call or
    by entering the client as a context manager; ``escaped`` suppresses
    the rule when the client demonstrably outlives the scope (returned,
    stored on an attribute, or passed to another callable).
    """

    def __init__(self, line: int) -> None:
        self.created_line = line
        self.closed = False
        self.escaped = False

#!/usr/bin/env python
"""Quickstart: count hardware events around a kernel with the high level API.

This is the 60-second tour of the reproduction:

1. pick a simulated platform (here: the POWER3-like one),
2. initialize PAPI on it,
3. load a workload onto the simulated machine,
4. bracket the run with high-level start/stop calls,
5. read the portable timers and the PAPI_flops rate call.

Run:  python examples/quickstart.py
"""

from repro import HighLevel, Papi, create
from repro.workloads import matmul


def main() -> None:
    # -- 1. pick a platform -------------------------------------------------
    substrate = create("simPOWER")
    print(substrate.describe())
    print()

    # -- 2. initialize PAPI (PAPI_library_init) ------------------------------
    papi = Papi(substrate)
    hl = HighLevel(papi)
    print(f"PAPI initialized: {papi.num_counters} hardware counters")
    print()

    # -- 3. build and load a workload ---------------------------------------
    n = 20
    work = matmul(n, use_fma=substrate.HAS_FMA)
    substrate.machine.load(work.program)
    print(f"workload: {work.name}, expected FLOPs = {work.expect.flops}")
    print()

    # -- 4. measure with the high-level interface ----------------------------
    # (this trio coexists in one POWER counter group; see DESIGN.md E8)
    hl.start_counters(["PAPI_TOT_INS", "PAPI_L1_DCM", "PAPI_TLB_DM"])
    substrate.machine.run_to_completion()
    tot_ins, l1_miss, tlb_miss = hl.stop_counters()

    # -- 5. the PAPI_flops rate call on a fresh run ---------------------------
    substrate.machine.load(matmul(n, use_fma=substrate.HAS_FMA).program)
    hl.flops()  # first call arms the measurement and returns zeros
    substrate.machine.run_to_completion()
    report = hl.flops()
    hl.stop_rates()

    print("measured:")
    print(f"  PAPI_TOT_INS = {tot_ins}")
    print(f"  PAPI_L1_DCM  = {l1_miss}")
    print(f"  PAPI_TLB_DM  = {tlb_miss}")
    print(f"  PAPI_flops   -> {report.count} flops, "
          f"{report.mrate:.1f} MFLOPS "
          f"({report.real_time * 1e6:.0f} usec real time)")
    assert report.count == work.expect.flops, "normalization must be exact"
    print()
    print("the same code runs unchanged on:",)
    from repro import PLATFORM_NAMES

    print(" ", ", ".join(PLATFORM_NAMES))


if __name__ == "__main__":
    main()

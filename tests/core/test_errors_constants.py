"""Unit tests: error hierarchy and constants."""

import inspect

import pytest

import repro.core.errors
from repro.core import constants as C
from repro.core.errors import (
    ConflictError,
    CountersLostError,
    InvalidArgumentError,
    NoSuchEventError,
    PapiError,
    SystemError_,
    error_for_code,
    is_transient,
    strerror,
)


class TestErrorHierarchy:
    def test_every_error_code_has_a_class(self):
        for code in C.ERROR_NAMES:
            if code == C.PAPI_OK:
                continue
            exc = error_for_code(code)
            assert isinstance(exc, PapiError)
            assert exc.code == code or type(exc) is PapiError

    def test_message_includes_name_and_detail(self):
        exc = ConflictError("FLOPS vs DTLB_MISS")
        text = str(exc)
        assert "PAPI_ECNFLCT" in text
        assert "FLOPS vs DTLB_MISS" in text

    def test_code_attribute_matches_c_values(self):
        assert ConflictError.code == C.PAPI_ECNFLCT == -8
        assert NoSuchEventError.code == C.PAPI_ENOEVNT == -7
        assert InvalidArgumentError.code == C.PAPI_EINVAL == -1

    def test_catchable_as_papi_error(self):
        with pytest.raises(PapiError):
            raise ConflictError()

    def test_strerror(self):
        assert strerror(C.PAPI_OK) == "PAPI_OK: no error"
        assert "conflicts" in strerror(C.PAPI_ECNFLCT)
        assert "unknown" in strerror(-12345)


class TestErrorExhaustiveness:
    """Every error code maps to exactly one typed class, round-trips
    through ``error_for_code``, and carries the right transient/fatal
    classification -- so the recovery ladder never misjudges a fault."""

    def _all_classes(self):
        return [
            cls
            for _name, cls in inspect.getmembers(
                repro.core.errors, inspect.isclass
            )
            if issubclass(cls, PapiError)
        ]

    def test_by_code_covers_every_code(self):
        assert set(repro.core.errors._BY_CODE) == \
               set(C.ERROR_NAMES) - {C.PAPI_OK}

    def test_exactly_one_class_per_code(self):
        codes = [cls.code for cls in self._all_classes()]
        assert len(codes) == len(set(codes)), (
            "two exception classes claim the same error code"
        )
        # and every defined class is reachable through the lookup table
        for cls in self._all_classes():
            assert repro.core.errors._BY_CODE[cls.code] is cls

    def test_round_trip_code_and_name(self):
        for code, name in C.ERROR_NAMES.items():
            if code == C.PAPI_OK:
                continue
            exc = error_for_code(code, "detail here")
            assert exc.code == code
            assert name in str(exc)
            assert "detail here" in str(exc)

    def test_transient_classification(self):
        """Only ESYS and ECLOST may clear on their own; everything else
        is a permanent property of the request and must fail fast."""
        transient_codes = {C.PAPI_ESYS, C.PAPI_ECLOST}
        for code in C.ERROR_NAMES:
            if code == C.PAPI_OK:
                continue
            expected = code in transient_codes
            assert is_transient(code) == expected
            assert error_for_code(code).transient == expected
        assert SystemError_("x").transient
        assert CountersLostError("x").transient
        assert not ConflictError("x").transient
        assert is_transient(ConflictError()) is False
        assert is_transient(SystemError_()) is True


class TestConstants:
    def test_error_tables_aligned(self):
        assert set(C.ERROR_NAMES) == set(C.ERROR_MESSAGES)

    def test_code_namespaces_disjoint(self):
        preset = C.PAPI_PRESET_MASK | 3
        native = C.PAPI_NATIVE_MASK | 3
        assert C.is_preset(preset) and not C.is_native(preset)
        assert C.is_native(native) and not C.is_preset(native)
        assert C.preset_index(preset) == 3
        assert C.native_index(native) == 3

    def test_domain_composition(self):
        assert C.PAPI_DOM_ALL == C.PAPI_DOM_USER | C.PAPI_DOM_KERNEL

    def test_state_flags_distinct_bits(self):
        flags = [
            C.PAPI_STOPPED, C.PAPI_RUNNING, C.PAPI_PAUSED, C.PAPI_NOT_INIT,
            C.PAPI_OVERFLOWING, C.PAPI_PROFILING, C.PAPI_MULTIPLEXING,
            C.PAPI_ATTACHED,
        ]
        for i, a in enumerate(flags):
            for b in flags[i + 1:]:
                assert a & b == 0

    def test_profil_scale_constant(self):
        assert C.PAPI_PROFIL_SCALE_ONE == 65536

"""CFG construction: shapes the flow pass depends on."""

import ast

from repro.lint.cfg import build_cfg, reachable


def _cfg(src):
    return build_cfg(ast.parse(src).body)


def _kinds(cfg):
    return [node.kind for node in cfg.nodes]


def _edge_kinds(cfg):
    return [
        kind for edges in cfg.succs.values() for _dst, kind in edges
    ]


class TestBranches:
    def test_if_creates_assume_nodes_on_both_edges(self):
        cfg = _cfg("if cond:\n    a = 1\nelse:\n    b = 2\n")
        kinds = _kinds(cfg)
        assert kinds.count("assume_true") == 1
        assert kinds.count("assume_false") == 1

    def test_while_gets_assume_nodes_too(self):
        cfg = _cfg("while cond:\n    a = 1\n")
        kinds = _kinds(cfg)
        assert kinds.count("assume_true") == 1
        assert kinds.count("assume_false") == 1

    def test_loop_back_edge_exists(self):
        cfg = _cfg("while cond:\n    a = 1\n")
        # some edge must point backwards (to an earlier node id)
        assert any(
            dst < src
            for src, edges in cfg.succs.items()
            for dst, _kind in edges
        )

    def test_break_exits_the_loop(self):
        cfg = _cfg(
            "while cond:\n    break\na = 1\n"
        )
        assert cfg.exit in reachable(cfg)


class TestExceptions:
    def test_plain_statements_have_no_exc_edges_outside_try(self):
        cfg = _cfg("a = f()\nb = g()\n")
        assert "exc" not in _edge_kinds(cfg)

    def test_try_body_gets_exc_edges(self):
        cfg = _cfg(
            "try:\n    a = f()\nexcept ValueError:\n    b = 1\n"
        )
        assert "exc" in _edge_kinds(cfg)

    def test_finally_is_materialized_per_exit_kind(self):
        cfg = _cfg(
            "try:\n    a = f()\nfinally:\n    b = g()\n"
        )
        kinds = _kinds(cfg)
        # one normal-exit copy and one exception-unwind copy
        assert "finally" in kinds
        assert "finally_exc" in kinds

    def test_finally_recurses_into_compound_statements(self):
        # the guarded-stop idiom inside a finally must become real
        # nodes (If + assume edges), not one opaque statement
        cfg = _cfg(
            "try:\n"
            "    a = f()\n"
            "finally:\n"
            "    if b:\n"
            "        c = g()\n"
        )
        assume_kinds = [
            k for k in _kinds(cfg) if k.startswith("assume_")
        ]
        # two materializations x (assume_true + assume_false)
        assert len(assume_kinds) == 4

    def test_guards_recorded_on_try_body(self):
        cfg = _cfg(
            "try:\n    a = f()\nexcept ValueError:\n    b = g()\n"
        )
        guarded = [
            node for node in cfg.nodes
            if node.stmt is not None and "ValueError" in node.guards
        ]
        assert guarded, "try-body nodes must carry the guard set"


class TestEarlyExit:
    def test_raise_routes_to_raise_exit(self):
        cfg = _cfg("if cond:\n    raise ValueError\na = 1\n")
        preds = cfg.preds()
        assert preds[cfg.raise_exit], "raise must reach the raise exit"

    def test_return_routes_to_exit(self):
        fn = ast.parse("def f():\n    return 1\n    a = 2\n").body[0]
        inner = build_cfg(fn.body)
        assert inner.preds()[inner.exit]

    def test_code_after_raise_is_dropped(self):
        cfg = _cfg("raise ValueError\na = 1\n")
        # the builder never materializes statements after a bare raise
        assigns = [
            n for n in cfg.nodes if isinstance(n.stmt, ast.Assign)
        ]
        assert not assigns, "code after bare raise must not get nodes"

"""Per-thread memory accounting for the PAPI-3 memory extensions.

The paper's planned version-3 routines (Section 5) report: memory
available on a node, total memory used (high-water mark), memory used by
process/thread, and disk swapping by process.  The CPU records the set of
distinct pages each thread has touched (first touch always misses the
TLB, which is where the hook lives); this module turns those sets into
resident-set sizes, high-water marks and a simple swap model against a
configurable physical-memory capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.simos.thread import Thread


@dataclass(frozen=True)
class MemoryInfo:
    """Snapshot returned to PAPI's memory routines."""

    page_bytes: int
    total_pages: int          #: physical pages on the simulated node
    used_pages: int           #: pages resident across all threads
    free_pages: int
    thread_rss_pages: int     #: resident set of the queried thread
    thread_hwm_pages: int     #: that thread's high-water mark
    swapped_pages: int        #: pages currently swapped out (node-wide)
    swap_events: int          #: cumulative swap-out events

    @property
    def used_bytes(self) -> int:
        return self.used_pages * self.page_bytes

    @property
    def thread_rss_bytes(self) -> int:
        return self.thread_rss_pages * self.page_bytes


class MemoryAccounting:
    """Tracks residency and swapping across a set of threads.

    The swap model is deliberately simple: whenever total residency
    exceeds physical capacity, the excess pages are considered swapped
    out and a swap event is recorded per newly swapped page.  This gives
    the memory-utilization routines meaningful, monotonic numbers without
    simulating a paging policy the paper never describes.
    """

    def __init__(self, page_bytes: int, total_pages: int) -> None:
        if page_bytes < 1 or total_pages < 1:
            raise ValueError("page size and capacity must be positive")
        self.page_bytes = page_bytes
        self.total_pages = total_pages
        self.swap_events = 0
        self._swapped_now = 0

    def update(self, threads: Iterable["Thread"]) -> None:
        """Refresh high-water marks and the swap state.

        Called by the scheduler at the end of every time slice.
        """
        total = 0
        for thread in threads:
            rss = len(thread.touched_pages())
            if rss > thread.hwm_pages:
                thread.hwm_pages = rss
            total += rss
        excess = max(0, total - self.total_pages)
        if excess > self._swapped_now:
            self.swap_events += excess - self._swapped_now
        self._swapped_now = excess

    def info(self, thread: "Thread", all_threads: Iterable["Thread"]) -> MemoryInfo:
        total_used = sum(len(t.touched_pages()) for t in all_threads)
        resident = min(total_used, self.total_pages)
        return MemoryInfo(
            page_bytes=self.page_bytes,
            total_pages=self.total_pages,
            used_pages=resident,
            free_pages=max(0, self.total_pages - total_used),
            thread_rss_pages=len(thread.touched_pages()),
            thread_hwm_pages=thread.hwm_pages,
            swapped_pages=self._swapped_now,
            swap_events=self.swap_events,
        )

    def locality_histogram(self, thread: "Thread", buckets: int = 8) -> Dict[int, int]:
        """Pages-touched histogram over equal address ranges.

        Supports the "location of memory used by an object" extension:
        callers bucket a thread's footprint by address region.
        """
        pages = thread.touched_pages()
        if not pages:
            return {}
        lo, hi = min(pages), max(pages)
        span = max(1, (hi - lo + 1 + buckets - 1) // buckets)
        hist: Dict[int, int] = {}
        for p in pages:
            b = (p - lo) // span
            hist[b] = hist.get(b, 0) + 1
        return hist

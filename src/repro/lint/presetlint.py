"""Preset-table cross-validation: linting the preset->native tables.

The paper's Section 4 lesson is that preset tables are where
portability quietly breaks: a table can reference a native event the
platform does not document (dangling name), combine natives
incoherently (malformed terms), or realize a preset with semantics
that drift from the catalogue's reference definition -- the POWER3
case, where ``PM_FPU_INS`` silently included precision-convert
(rounding) instructions.  All three hazards are checkable mechanically
against the substrate tables, with no execution:

- **PL201** dangling native event name;
- **PL202** malformed mapping (unknown preset symbol, duplicate native
  in one term list, zero coefficient, empty terms);
- **PL203** missing FMA normalization: on an FMA-capable platform
  ``PAPI_FP_OPS`` must count a fused multiply-add as *two* operations
  (the E6 normalization story);
- **PL204** (info) semantic drift: the mapping's signal vector differs
  from the preset's reference vector -- the POWER3 discrepancy caught
  statically, reported as the exact per-signal delta.

Diagnostics for the shipped tables point at the real source lines in
``repro/core/presets.py`` (located by parsing its AST), so
``papi-lint check-presets`` output is clickable like any linter's.
"""

from __future__ import annotations

import ast
import inspect
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.presets import (
    PLATFORM_PRESET_TABLES,
    PRESET_BY_SYMBOL,
    mapping_signal_vector,
    reference_vector,
)
from repro.hw.events import signal_name
from repro.lint.diagnostics import Diagnostic
from repro.lint.feasibility import _substrate
from repro.platforms import PLATFORM_NAMES

#: terms type: ((native name, coefficient), ...)
Terms = Sequence[Tuple[str, int]]

#: position key -> line: (platform, symbol) or (platform, symbol, term_i)
Positions = Dict[Tuple, int]


def shipped_table_positions() -> Tuple[str, Positions]:
    """Locate every shipped table entry in ``repro/core/presets.py``.

    Parses the module source and walks the ``PLATFORM_PRESET_TABLES``
    dict literal, recording the line of each ``platform -> symbol``
    entry and of each individual term tuple.
    """
    import repro.core.presets as presets_module

    path = inspect.getsourcefile(presets_module) or "repro/core/presets.py"
    with open(path, "r", encoding="utf-8") as fh:
        tree = ast.parse(fh.read())
    positions: Positions = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.AnnAssign) and not isinstance(
            node, ast.Assign
        ):
            continue
        targets = (
            [node.target] if isinstance(node, ast.AnnAssign)
            else node.targets
        )
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if "PLATFORM_PRESET_TABLES" not in names:
            continue
        if not isinstance(node.value, ast.Dict):
            continue
        for pkey, ptable in zip(node.value.keys, node.value.values):
            if not isinstance(pkey, ast.Constant) or not isinstance(
                ptable, ast.Dict
            ):
                continue
            platform = pkey.value
            for skey, terms in zip(ptable.keys, ptable.values):
                if not isinstance(skey, ast.Constant):
                    continue
                symbol = skey.value
                positions[(platform, symbol)] = skey.lineno
                if isinstance(terms, (ast.List, ast.Tuple)):
                    for i, term in enumerate(terms.elts):
                        positions[(platform, symbol, i)] = term.lineno
    return path, positions


def lint_mapping(
    platform: str,
    symbol: str,
    terms: Terms,
    *,
    path: str = "<table>",
    line: int = 0,
    term_lines: Optional[Dict[int, int]] = None,
) -> List[Diagnostic]:
    """Validate one ``symbol -> terms`` entry of one platform's table."""
    substrate = _substrate(platform)
    term_lines = term_lines or {}
    diags: List[Diagnostic] = []

    preset = PRESET_BY_SYMBOL.get(symbol)
    if preset is None:
        return [Diagnostic(
            "PL202", path, line, 0,
            f"{platform}: {symbol!r} is not a preset symbol in the "
            f"catalogue",
            hint="fix the symbol or add the preset to PRESETS",
        )]
    if not terms:
        return [Diagnostic(
            "PL202", path, line, 0,
            f"{platform}: {symbol} has an empty term list",
            hint="remove the entry to mark the preset unavailable",
        )]

    seen: Dict[str, int] = {}
    for i, (name, coeff) in enumerate(terms):
        term_line = term_lines.get(i, line)
        if coeff == 0:
            diags.append(Diagnostic(
                "PL202", path, term_line, 0,
                f"{platform}: {symbol} term {name!r} has coefficient 0",
                hint="drop the term; zero-weight natives never count",
            ))
        if name in seen:
            diags.append(Diagnostic(
                "PL202", path, term_line, 0,
                f"{platform}: {symbol} lists native {name!r} twice "
                f"(first at term {seen[name]})",
                hint="merge the coefficients into one term",
            ))
        seen.setdefault(name, i)
        if name not in substrate.native_events:
            diags.append(Diagnostic(
                "PL201", path, term_line, 0,
                f"{platform}: {symbol} references native event {name!r}, "
                f"which {platform} does not define",
                hint=f"known natives: papi_native_avail {platform}",
            ))

    # semantic drift vs the reference vector (only meaningful when every
    # native resolved -- dangling names already got PL201 above).
    if all(name in substrate.native_events for name, _ in terms):
        native_signals = {
            name: substrate.native_events[name].signals for name, _ in terms
        }
        actual = mapping_signal_vector(tuple(terms), native_signals)
        expected = reference_vector(preset)
        if actual != expected:
            deltas = []
            for sig in sorted(set(actual) | set(expected)):
                diff = actual.get(sig, 0) - expected.get(sig, 0)
                if diff:
                    deltas.append(f"{signal_name(sig)}{diff:+d}")
            diags.append(Diagnostic(
                "PL204", path, line, 0,
                f"{platform}: {symbol} counts {', '.join(deltas)} "
                f"relative to the reference semantics",
                hint="interpret cross-platform comparisons accordingly "
                     "(Section 4)",
            ))
    return diags


def lint_platform_table(
    platform: str,
    table: Optional[Dict[str, Terms]] = None,
    *,
    path: str = "<table>",
    positions: Optional[Positions] = None,
) -> List[Diagnostic]:
    """Validate one platform's whole preset table."""
    if table is None:
        table = PLATFORM_PRESET_TABLES[platform]
    positions = positions or {}
    substrate = _substrate(platform)
    diags: List[Diagnostic] = []
    for symbol, terms in table.items():
        line = positions.get((platform, symbol), 0)
        term_lines = {
            i: positions[(platform, symbol, i)]
            for i in range(len(terms))
            if (platform, symbol, i) in positions
        }
        diags.extend(lint_mapping(
            platform, symbol, terms,
            path=path, line=line, term_lines=term_lines,
        ))

    # the FMA-normalization flag: checked per table, not per entry,
    # because *absence* of a normalized FP_OPS is also a finding.
    if substrate.HAS_FMA:
        from repro.hw.events import Signal

        fp_ops = table.get("PAPI_FP_OPS")
        line = positions.get((platform, "PAPI_FP_OPS"), 0)
        if fp_ops is None:
            diags.append(Diagnostic(
                "PL203", path, line, 0,
                f"{platform} has FMA hardware but no PAPI_FP_OPS mapping "
                f"(PAPI_flops cannot normalize)",
                hint="add a derived mapping counting FMA as two",
            ))
        elif all(n in substrate.native_events for n, _ in fp_ops):
            vec = mapping_signal_vector(
                tuple(fp_ops),
                {n: substrate.native_events[n].signals for n, _ in fp_ops},
            )
            if vec.get(Signal.FP_FMA, 0) != 2:
                diags.append(Diagnostic(
                    "PL203", path, line, 0,
                    f"{platform}: PAPI_FP_OPS counts a fused multiply-add "
                    f"as {vec.get(Signal.FP_FMA, 0)} operation(s), not 2",
                    hint="add the FMA native once more to the term list "
                         "(the E6 normalization)",
                ))
    return diags


def lint_preset_tables(
    platforms: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """Validate the shipped tables for *platforms* (default: all six).

    Diagnostics carry real ``repro/core/presets.py`` line numbers.
    """
    path, positions = shipped_table_positions()
    diags: List[Diagnostic] = []
    for platform in platforms or PLATFORM_NAMES:
        diags.extend(lint_platform_table(
            platform, path=path, positions=positions,
        ))
    return diags

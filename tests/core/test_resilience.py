"""Unit tests: RetryPolicy backoff ladder and the jitter extension.

The jitter knob (new for the papid client) must be strictly opt-in:
without an RNG — or with ``jitter_frac=0`` — the ladder and therefore
every billed-backoff account in the EventSet path is bit-identical to
the pre-jitter behaviour.  These tests pin that.
"""

import random

from repro.core.errors import SystemError_
from repro.core.resilience import (
    DEFAULT_RETRY_POLICY,
    EventSetHealth,
    RetryPolicy,
    call_with_retry,
)
from repro.platforms import create


class TestExactLadder:
    def test_default_policy_ladder(self):
        policy = DEFAULT_RETRY_POLICY
        assert [policy.backoff(a) for a in range(4)] == [200, 400, 800, 1600]

    def test_rng_without_jitter_frac_changes_nothing(self):
        policy = RetryPolicy()  # jitter_frac defaults to 0.0
        rng = random.Random(123)
        assert [policy.backoff(a, rng=rng) for a in range(4)] == [
            200, 400, 800, 1600,
        ]

    def test_jitter_frac_without_rng_changes_nothing(self):
        policy = RetryPolicy(jitter_frac=0.5)
        assert [policy.backoff(a) for a in range(4)] == [200, 400, 800, 1600]


class TestJitter:
    def test_jitter_bounded_and_never_below_one(self):
        policy = RetryPolicy(backoff_cycles=10, jitter_frac=0.25)
        rng = random.Random(7)
        for attempt in range(6):
            exact = 10 * 2 ** attempt
            for _ in range(50):
                wait = policy.backoff(attempt, rng=rng)
                assert wait >= 1
                assert exact * 0.75 - 1 <= wait <= exact * 1.25 + 1

    def test_jitter_is_deterministic_per_rng_seed(self):
        policy = RetryPolicy(jitter_frac=0.25)
        a = [policy.backoff(i, rng=random.Random(5)) for i in range(1)]
        b = [policy.backoff(i, rng=random.Random(5)) for i in range(1)]
        assert a == b

    def test_jitter_actually_spreads(self):
        policy = RetryPolicy(backoff_cycles=1000, jitter_frac=0.25)
        rng = random.Random(11)
        waits = {policy.backoff(0, rng=rng) for _ in range(32)}
        assert len(waits) > 1


class TestBilledBackoffAccounting:
    def _flaky(self, failures):
        state = {"left": failures}

        def fn():
            if state["left"] > 0:
                state["left"] -= 1
                raise SystemError_("transient")
            return "ok"

        return fn

    def test_eventset_path_accounting_is_unchanged(self):
        # the EventSet path passes no rng: with 2 transient failures the
        # billed cycles are exactly 200 + 400, as before the jitter knob
        sub = create("simX86", seed=1)
        health = EventSetHealth()
        before = sub.real_cyc()
        out = call_with_retry(sub, self._flaky(2), health=health)
        assert out == "ok"
        assert health.retries == 2
        assert health.backoff_cycles == 600
        assert sub.real_cyc() - before == 600

    def test_jittered_path_bills_what_it_waits(self):
        sub = create("simX86", seed=1)
        health = EventSetHealth()
        policy = RetryPolicy(jitter_frac=0.25)
        before = sub.real_cyc()
        call_with_retry(sub, self._flaky(2), policy=policy,
                        health=health, rng=random.Random(3))
        billed = sub.real_cyc() - before
        assert billed == health.backoff_cycles
        assert 600 * 0.75 - 2 <= billed <= 600 * 1.25 + 2

    def test_exhausted_budget_raises_after_max_retries(self):
        sub = create("simX86", seed=1)
        health = EventSetHealth()
        try:
            call_with_retry(sub, self._flaky(10), health=health)
        except SystemError_:
            pass
        else:
            raise AssertionError("expected SystemError_")
        assert health.retries == DEFAULT_RETRY_POLICY.max_retries

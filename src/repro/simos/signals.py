"""Per-thread routing of overflow interrupt records.

The PMU delivers :class:`~repro.hw.pmu.OverflowRecord` objects
synchronously from the CPU loop.  Real systems deliver those as signals
to the thread whose counter overflowed; the router reproduces that: the
PAPI layer registers handlers keyed by counter index, optionally scoped
to a thread, and the router dispatches to whichever handler matches the
currently running thread.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.hw.pmu import OverflowRecord

Handler = Callable[[OverflowRecord], None]


class SignalRouter:
    """Dispatch overflow records to per-thread handlers.

    ``current_tid`` is maintained by the scheduler; handlers registered
    with ``tid=None`` fire regardless of the running thread (the
    single-threaded fast path).
    """

    def __init__(self) -> None:
        self.current_tid: Optional[int] = None
        self._handlers: Dict[Tuple[int, Optional[int]], Handler] = {}
        self.delivered = 0
        self.dropped = 0

    def register(self, counter: int, handler: Handler, tid: Optional[int] = None) -> None:
        key = (counter, tid)
        if key in self._handlers:
            raise ValueError(f"handler already registered for counter {counter}, tid {tid}")
        self._handlers[key] = handler

    def unregister(self, counter: int, tid: Optional[int] = None) -> None:
        self._handlers.pop((counter, tid), None)

    def dispatch(self, record: OverflowRecord) -> None:
        """Route *record*; unmatched records are counted as dropped."""
        handler = self._handlers.get((record.counter, self.current_tid))
        if handler is None:
            handler = self._handlers.get((record.counter, None))
        if handler is None:
            self.dropped += 1
            return
        self.delivered += 1
        handler(record)

    def handlers_for(self, counter: int) -> List[Optional[int]]:
        """Thread ids (None = any) with a handler on *counter* (for tests)."""
        return [tid for (ctr, tid) in self._handlers if ctr == counter]

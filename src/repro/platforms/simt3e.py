"""simT3E: a Cray T3E-like platform (Alpha 21164 style).

The paper singles out the T3E substrate as the one using *register level
operations* -- the cheapest possible native interface.  The modelled
machine is in-order (zero overflow skid), has a simple static branch
predictor, a modest event table with no TLB/L2/misprediction events
(holes that show up in the E8 portability matrix), and dirt-cheap
counter access costs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.hw.cache import CacheConfig, HierarchyConfig, TLBConfig
from repro.hw.cpu import CPUConfig
from repro.hw.events import Signal
from repro.hw.machine import MachineConfig
from repro.hw.pmu import PMUConfig
from repro.platforms.base import AccessCosts, CounterGroup, NativeEvent, Substrate


class SimT3E(Substrate):
    NAME = "simT3E"
    STYLE = "register"
    COUNTING = "direct"
    DESCRIPTION = "Cray T3E-like: register-level counter access, in-order core"
    COSTS = AccessCosts(
        read=18,
        read_per_counter=6,
        start=24,
        stop=24,
        program=20,
        reset=16,
        pollute_lines=0,
    )
    #: the simulated compiler does not emit fused multiply-add here.
    HAS_FMA = False
    #: Alpha 21164 is in-order: interrupt-pc profiling is skid-free.
    PROFILING = "overflow"

    def _machine_config(self, seed: int) -> MachineConfig:
        return MachineConfig(
            name=self.NAME,
            cpu=CPUConfig(predictor="static-taken", branch_penalty=5),
            hierarchy=HierarchyConfig(
                l1d=CacheConfig("L1D", size_bytes=8192, line_bytes=32, assoc=1),
                l1i=CacheConfig("L1I", size_bytes=8192, line_bytes=32, assoc=1),
                l2=CacheConfig("L2", size_bytes=65536, line_bytes=64, assoc=2),
                tlb=TLBConfig(entries=64, page_bytes=8192),
                l2_latency=6,
                mem_latency=80,
                tlb_walk_latency=20,
            ),
            pmu=PMUConfig(n_counters=4, skid_max=0, interrupt_cost=90),
            mhz=600,
            seed=seed,
        )

    def _native_events(self) -> Sequence[NativeEvent]:
        return [
            NativeEvent("CYC_CNT", (Signal.TOT_CYC,), "machine cycles"),
            NativeEvent("INS_CNT", (Signal.TOT_INS,), "instructions issued"),
            NativeEvent(
                "FP_ARITH",
                (Signal.FP_ADD, Signal.FP_MUL, Signal.FP_DIV, Signal.FP_SQRT),
                "floating point arithmetic operations",
            ),
            NativeEvent("LD_QW", (Signal.LD_INS,), "quadword loads"),
            NativeEvent("ST_QW", (Signal.SR_INS,), "quadword stores"),
            NativeEvent("DC_MISS", (Signal.L1D_MISS,), "data cache misses"),
            NativeEvent("IC_MISS", (Signal.L1I_MISS,), "instruction cache misses"),
            NativeEvent("BR_CNT", (Signal.BR_INS,), "branches issued"),
            NativeEvent("INT_OPS", (Signal.INT_INS,), "integer operations"),
            # NOTE: no TLB, no L2, no misprediction events -- the 21164-era
            # counter set simply did not expose them, which is why several
            # PAPI presets are unavailable on this platform (Figure 1 /
            # portability matrix experiment E8).
        ]

    def _groups(self) -> Optional[List[CounterGroup]]:
        return None

    def _uncore_counters(self) -> int:
        # the E-register interface exposes the full memory-interface bank.
        return 4

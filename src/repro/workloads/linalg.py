"""Dense linear algebra kernels with analytically known FLOP counts.

These are the calibration workloads: dot product, axpy, STREAM triad and
matrix multiply (naive and blocked).  Each returns a
:class:`~repro.workloads.builder.Workload` whose ``expect`` field carries
the exact operation counts, following the conventions of
:class:`~repro.workloads.builder.Expectations`.

``use_fma`` selects between fused multiply-add and separate mul+add code
generation -- the knob behind the FMA-normalization experiment (E6):
with FMA, fp *instructions* halve while fp *operations* stay constant.
"""

from __future__ import annotations

from repro.hw.isa import Assembler
from repro.workloads.builder import Expectations, Flow, Workload


def dot(n: int, use_fma: bool = True) -> Workload:
    """acc = sum(a[i] * b[i]); 2n flops, 2n loads."""
    if n < 1:
        raise ValueError("dot needs n >= 1")
    asm = Assembler(name=f"dot{n}")
    flow = Flow(asm)
    a = asm.init_array([1.0 + 0.5 * (i % 4) for i in range(n)])
    b = asm.init_array([2.0 - 0.25 * (i % 8) for i in range(n)])
    asm.func("main")
    asm.li("r1", a)
    asm.li("r2", b)
    asm.fli("f0", 0.0)
    with flow.loop(n, "r30", "r31"):
        asm.fload("f1", "r1", 0)
        asm.fload("f2", "r2", 0)
        if use_fma:
            asm.fma("f0", "f1", "f2", "f0")
        else:
            asm.fmul("f3", "f1", "f2")
            asm.fadd("f0", "f0", "f3")
        asm.addi("r1", "r1", 1)
        asm.addi("r2", "r2", 1)
    asm.halt()
    asm.endfunc()
    return Workload(
        name=f"dot(n={n},fma={use_fma})",
        program=asm.build(),
        expect=Expectations(
            flops=2 * n,
            fp_ins=n if use_fma else 2 * n,
            fma=n if use_fma else 0,
            converts=0,
            loads=2 * n,
            stores=0,
            hot_function="main",
        ),
    )


def axpy(n: int, use_fma: bool = True) -> Workload:
    """y[i] += alpha * x[i]; 2n flops, 2n loads, n stores."""
    if n < 1:
        raise ValueError("axpy needs n >= 1")
    asm = Assembler(name=f"axpy{n}")
    flow = Flow(asm)
    x = asm.init_array([0.5 + (i % 3) for i in range(n)])
    y = asm.init_array([1.0] * n)
    asm.func("main")
    asm.li("r1", x)
    asm.li("r2", y)
    asm.fli("f0", 1.5)  # alpha
    with flow.loop(n, "r30", "r31"):
        asm.fload("f1", "r1", 0)
        asm.fload("f2", "r2", 0)
        if use_fma:
            asm.fma("f2", "f0", "f1", "f2")
        else:
            asm.fmul("f3", "f0", "f1")
            asm.fadd("f2", "f2", "f3")
        asm.fstore("f2", "r2", 0)
        asm.addi("r1", "r1", 1)
        asm.addi("r2", "r2", 1)
    asm.halt()
    asm.endfunc()
    return Workload(
        name=f"axpy(n={n},fma={use_fma})",
        program=asm.build(),
        expect=Expectations(
            flops=2 * n,
            fp_ins=n if use_fma else 2 * n,
            fma=n if use_fma else 0,
            converts=0,
            loads=2 * n,
            stores=n,
            hot_function="main",
        ),
    )


def triad(n: int, use_fma: bool = True) -> Workload:
    """STREAM triad: a[i] = b[i] + s * c[i]; streams three arrays."""
    if n < 1:
        raise ValueError("triad needs n >= 1")
    asm = Assembler(name=f"triad{n}")
    flow = Flow(asm)
    a = asm.reserve_data(n)
    b = asm.init_array([float(i % 7) for i in range(n)])
    c = asm.init_array([float((i * 3) % 5) for i in range(n)])
    asm.func("main")
    asm.li("r1", a)
    asm.li("r2", b)
    asm.li("r3", c)
    asm.fli("f0", 3.0)  # s
    with flow.loop(n, "r30", "r31"):
        asm.fload("f1", "r2", 0)
        asm.fload("f2", "r3", 0)
        if use_fma:
            asm.fma("f3", "f0", "f2", "f1")
        else:
            asm.fmul("f3", "f0", "f2")
            asm.fadd("f3", "f3", "f1")
        asm.fstore("f3", "r1", 0)
        asm.addi("r1", "r1", 1)
        asm.addi("r2", "r2", 1)
        asm.addi("r3", "r3", 1)
    asm.halt()
    asm.endfunc()
    return Workload(
        name=f"triad(n={n},fma={use_fma})",
        program=asm.build(),
        expect=Expectations(
            flops=2 * n,
            fp_ins=n if use_fma else 2 * n,
            fma=n if use_fma else 0,
            converts=0,
            loads=2 * n,
            stores=n,
            hot_function="main",
        ),
    )


def matmul(n: int, use_fma: bool = True, blocked: bool = False,
           block: int = 4) -> Workload:
    """C = A @ B over n x n matrices; 2n^3 flops.

    The naive version walks B column-wise (cache-hostile); the blocked
    version tiles all three loops by *block* (must divide n), the
    classic locality optimization whose effect the cache-study example
    demonstrates via PAPI_L1_DCM.
    """
    if n < 1:
        raise ValueError("matmul needs n >= 1")
    if blocked and n % block != 0:
        raise ValueError("block must divide n")
    asm = Assembler(name=f"matmul{n}")
    flow = Flow(asm)
    a = asm.init_array([1.0 + ((i * 7) % 5) * 0.25 for i in range(n * n)])
    b = asm.init_array([0.5 + ((i * 3) % 7) * 0.125 for i in range(n * n)])
    c = asm.reserve_data(n * n)

    def emit_inner(i_reg: str, j_reg: str, k_reg: str) -> None:
        """acc += A[i,k] * B[k,j]  (acc lives in f0)."""
        # r1 = &A[i*n + k]
        asm.muli("r1", i_reg, n)
        asm.add("r1", "r1", k_reg)
        asm.addi("r1", "r1", a)
        # r2 = &B[k*n + j]
        asm.muli("r2", k_reg, n)
        asm.add("r2", "r2", j_reg)
        asm.addi("r2", "r2", b)
        asm.fload("f1", "r1", 0)
        asm.fload("f2", "r2", 0)
        if use_fma:
            asm.fma("f0", "f1", "f2", "f0")
        else:
            asm.fmul("f3", "f1", "f2")
            asm.fadd("f0", "f0", "f3")

    asm.func("main")
    if not blocked:
        with flow.loop(n, "r31", "r30"):          # i in r31
            with flow.loop(n, "r29", "r28"):      # j in r29
                asm.fli("f0", 0.0)
                with flow.loop(n, "r27", "r26"):  # k in r27
                    emit_inner("r31", "r29", "r27")
                # C[i*n + j] = acc
                asm.muli("r3", "r31", n)
                asm.add("r3", "r3", "r29")
                asm.addi("r3", "r3", c)
                asm.fstore("f0", "r3", 0)
    else:
        nb = n // block
        with flow.loop(nb, "r31", "r30"):                 # ib
            with flow.loop(nb, "r29", "r28"):             # jb
                with flow.loop(nb, "r25", "r24"):         # kb
                    with flow.loop(block, "r23", "r22"):      # i offset
                        # r10 = ib*block + i
                        asm.muli("r10", "r31", block)
                        asm.add("r10", "r10", "r23")
                        with flow.loop(block, "r21", "r20"):  # j offset
                            # r11 = jb*block + j
                            asm.muli("r11", "r29", block)
                            asm.add("r11", "r11", "r21")
                            # load C[i, j] into f0 (accumulate in memory
                            # across kb tiles)
                            asm.muli("r3", "r10", n)
                            asm.add("r3", "r3", "r11")
                            asm.addi("r3", "r3", c)
                            asm.fload("f0", "r3", 0)
                            with flow.loop(block, "r19", "r18"):  # k offset
                                asm.muli("r12", "r25", block)
                                asm.add("r12", "r12", "r19")
                                emit_inner("r10", "r11", "r12")
                            asm.fstore("f0", "r3", 0)
    asm.halt()
    asm.endfunc()

    n3 = n * n * n
    fp_per_inner = 1 if use_fma else 2
    return Workload(
        name=f"matmul(n={n},fma={use_fma},blocked={blocked})",
        program=asm.build(),
        expect=Expectations(
            flops=2 * n3,
            fp_ins=fp_per_inner * n3,
            fma=n3 if use_fma else 0,
            converts=0,
            loads=2 * n3 + (n3 // block * 0 if not blocked else 0),
            stores=None,  # depends on blocking structure
            hot_function="main",
            notes="loads expectation exact only for the naive variant",
        ),
    )


def mixed_precision_sum(n: int, use_fma: bool = False) -> Workload:
    """Sum with a single->double style convert each iteration.

    One FADD and one FCVT per element: the kernel behind the POWER3
    rounding-instruction discrepancy (E6) -- fp *instruction* counters
    that include converts report 2n, true flops are n.
    """
    if n < 1:
        raise ValueError("mixed_precision_sum needs n >= 1")
    asm = Assembler(name=f"mixsum{n}")
    flow = Flow(asm)
    data = asm.init_array([0.1 * (1 + i % 9) for i in range(n)])
    asm.func("main")
    asm.li("r1", data)
    asm.fli("f0", 0.0)
    with flow.loop(n, "r30", "r31"):
        asm.fload("f1", "r1", 0)
        asm.fcvt("f1", "f1")         # round to "single" before accumulating
        asm.fadd("f0", "f0", "f1")
        asm.addi("r1", "r1", 1)
    asm.halt()
    asm.endfunc()
    _ = use_fma  # accepted for registry uniformity; kernel has no MA step
    return Workload(
        name=f"mixed_precision_sum(n={n})",
        program=asm.build(),
        expect=Expectations(
            flops=n,
            fp_ins=n,  # reference semantics exclude converts; platforms
                       # whose native fp event includes them (simPOWER)
                       # will read 2n -- that IS the discrepancy

            fma=0,
            converts=n,
            loads=n,
            stores=0,
            hot_function="main",
        ),
    )

"""Static counter oracle: affine signal bounds without executing.

:func:`repro.validate.oracle.expected_signal_counts` *runs* a program
(in a minimal re-interpretation) to produce the ground-truth counts of
the architecturally determined signals.  This module derives **bounds**
on those same counts purely statically -- an abstract interpretation
over the resolved instruction stream:

1. each function region is partitioned into basic blocks and a block
   CFG is built (branches/jumps/calls/returns terminate blocks);
2. a flow-sensitive integer-constant propagation runs over the CFG
   (``CALL``/``SYSCALL``/``PROBE`` clobber every register -- there is no
   calling convention to lean on);
3. natural loops are found via dominators, and for the two structured
   loop shapes the workload builder emits -- top-test (``bge`` in the
   header, :meth:`repro.workloads.builder.Flow.loop`) and bottom-test
   (compare-and-branch in the latch) -- the trip count is solved in
   closed form from the single ``addi`` induction step and the
   loop-invariant bound;
4. block execution frequencies are propagated as *intervals*
   ``[lo, hi]`` (``hi = None`` meaning unbounded), innermost loops
   first: a recognized exit branch leaves the loop exactly once per
   entry, an unrecognized branch splits pessimistically;
5. function summaries compose bottom-up over the (acyclic) call graph;
   recursion, indirect region entry, or any shape the analysis cannot
   prove collapses to the sound top element ``[0, unbounded)``.

The contract -- checked property-style by the test suite against the
exact oracle -- is the **bracket invariant**: for every signal in
:data:`repro.validate.oracle.ORACLE_SIGNALS`,
``bounds.lo[s] <= exact[s] <= bounds.hi[s]``.  When every recognized
structure resolves exactly, ``lo == hi`` and the static oracle *is* the
oracle, no execution needed.

A second, independent static check lives here too:
:func:`verify_block_affine` re-derives the block partition the block
engine (:mod:`repro.hw.blockcache`) compiles and certifies its affine
invariance -- each block's signal delta is one constant vector (plus a
taken/not-taken bit on a conditional terminator), so engine-on and
engine-off executions must agree bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.hw.events import Signal
from repro.hw.isa import (
    BLOCK_BREAK_OPS,
    BRANCH_OPS,
    NUM_IREGS,
    FunctionInfo,
    Op,
    Program,
)

__all__ = [
    "AffineReport",
    "Interval",
    "SignalBounds",
    "StaticOracleError",
    "TraceCertificate",
    "static_exact_signal_counts",
    "static_signal_bounds",
    "op_signal_vector",
    "block_signal_vectors",
    "trace_certificates",
    "verify_block_affine",
]


class StaticOracleError(Exception):
    """Raised for malformed inputs (not for imprecision -- imprecision
    widens to ``[0, unbounded)``, it never raises)."""


# ---------------------------------------------------------------------------
# intervals over non-negative execution frequencies
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Interval:
    """A non-negative integer interval; ``hi is None`` means unbounded."""

    lo: int
    hi: Optional[int]

    def __post_init__(self) -> None:
        if self.lo < 0 or (self.hi is not None and self.hi < self.lo):
            raise StaticOracleError(f"malformed interval [{self.lo}, {self.hi}]")

    @property
    def exact(self) -> Optional[int]:
        return self.lo if self.lo == self.hi else None


ZERO = Interval(0, 0)
ONE = Interval(1, 1)
TOP = Interval(0, None)


def iadd(a: Interval, b: Interval) -> Interval:
    hi = None if a.hi is None or b.hi is None else a.hi + b.hi
    return Interval(a.lo + b.lo, hi)


def imul(a: Interval, b: Interval) -> Interval:
    # exact-zero absorbs even an unbounded partner
    if (a.lo, a.hi) == (0, 0) or (b.lo, b.hi) == (0, 0):
        return ZERO
    hi = None if a.hi is None or b.hi is None else a.hi * b.hi
    return Interval(a.lo * b.lo, hi)


def ijoin(a: Interval, b: Interval) -> Interval:
    hi = None if a.hi is None or b.hi is None else max(a.hi, b.hi)
    return Interval(min(a.lo, b.lo), hi)


def _tighten(a: Interval, b: Interval) -> Interval:
    """Intersect two intervals that both contain the true value."""
    lo = max(a.lo, b.lo)
    if b.hi is None:
        hi = a.hi
    elif a.hi is None:
        hi = b.hi
    else:
        hi = min(a.hi, b.hi)
    if hi is not None and hi < lo:
        return b  # interval-sum slack; *b* (the seed) is authoritative
    return Interval(lo, hi)


# ---------------------------------------------------------------------------
# per-signal bounds
# ---------------------------------------------------------------------------


#: The signals the exact oracle determines architecturally; bounds are
#: meaningful for exactly these (everything else stays [0, 0]).
from repro.validate.oracle import ORACLE_SIGNALS  # noqa: E402  (cycle-free)


@dataclass
class SignalBounds:
    """Per-signal count intervals; index with :class:`Signal` values."""

    lo: List[int] = field(default_factory=lambda: [0] * Signal.N_SIGNALS)
    hi: List[Optional[int]] = field(
        default_factory=lambda: [0] * Signal.N_SIGNALS
    )

    def add(self, signal: int, freq: Interval) -> None:
        self.lo[signal] += freq.lo
        if self.hi[signal] is None or freq.hi is None:
            self.hi[signal] = None
        else:
            self.hi[signal] += freq.hi

    def add_bounds(self, other: "SignalBounds", freq: Interval) -> None:
        for sig in ORACLE_SIGNALS:
            self.add(sig, imul(freq, Interval(other.lo[sig], other.hi[sig])))

    def interval(self, signal: int) -> Interval:
        return Interval(self.lo[signal], self.hi[signal])

    def is_exact(self) -> bool:
        return all(self.lo[s] == self.hi[s] for s in ORACLE_SIGNALS)

    def brackets(self, counts: Sequence[int]) -> bool:
        """True when ``lo <= counts <= hi`` on every oracle signal."""
        for sig in ORACLE_SIGNALS:
            if counts[sig] < self.lo[sig]:
                return False
            if self.hi[sig] is not None and counts[sig] > self.hi[sig]:
                return False
        return True

    def mismatches(self, counts: Sequence[int]) -> List[str]:
        """Human-readable bracket violations (for test failure output)."""
        from repro.hw.events import signal_name

        out = []
        for sig in ORACLE_SIGNALS:
            lo, hi = self.lo[sig], self.hi[sig]
            if counts[sig] < lo or (hi is not None and counts[sig] > hi):
                out.append(
                    f"{signal_name(sig)}: exact={counts[sig]} "
                    f"not in [{lo}, {'inf' if hi is None else hi}]"
                )
        return out

    @classmethod
    def unknown(cls) -> "SignalBounds":
        b = cls()
        for sig in ORACLE_SIGNALS:
            b.hi[sig] = None
        return b


# ---------------------------------------------------------------------------
# per-op signal vectors (mirrors validate.oracle's counting, exactly)
# ---------------------------------------------------------------------------

_INT_OPS = frozenset(
    {Op.LI, Op.MOV, Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.ADDI, Op.MULI}
)

_OP_EXTRA: Dict[int, Tuple[int, ...]] = {
    Op.LOAD: (Signal.LD_INS,),
    Op.FLOAD: (Signal.LD_INS,),
    Op.STORE: (Signal.SR_INS,),
    Op.FSTORE: (Signal.SR_INS,),
    Op.FMA: (Signal.FP_FMA,),
    Op.FADD: (Signal.FP_ADD,),
    Op.FSUB: (Signal.FP_ADD,),
    Op.FMUL: (Signal.FP_MUL,),
    Op.FDIV: (Signal.FP_DIV,),
    Op.FSQRT: (Signal.FP_SQRT,),
    Op.FCVT: (Signal.FP_CVT,),
    Op.FLI: (Signal.FP_MOV,),
    Op.FMOV: (Signal.FP_MOV,),
    Op.JMP: (Signal.BR_INS,),
    Op.CALL: (Signal.BR_INS, Signal.CALL_INS),
    Op.RET: (Signal.BR_INS, Signal.RET_INS),
    Op.SYSCALL: (Signal.SYS_INS,),
    Op.PROBE: (Signal.PRB_INS,),
}


def op_signal_vector(op: int) -> Tuple[int, ...]:
    """Outcome-independent signals one execution of *op* increments.

    Conditional branches additionally increment ``BR_TKN`` or
    ``BR_NTK`` depending on the outcome; that bit is the only
    state-dependent part of the whole signal model and is handled
    separately by both the frequency propagation here and the block
    engine's taken-count replay.
    """
    vec = [Signal.TOT_INS]
    if op in _INT_OPS:
        vec.append(Signal.INT_INS)
    elif op in BRANCH_OPS:
        vec.append(Signal.BR_INS)
        vec.append(Signal.BR_CN)
    else:
        vec.extend(_OP_EXTRA.get(op, ()))
    return tuple(vec)


# ---------------------------------------------------------------------------
# basic blocks within a function region
# ---------------------------------------------------------------------------


@dataclass
class _Block:
    start: int
    end: int  # exclusive; terminator is code[end - 1]


_TERMINATORS = BRANCH_OPS | {Op.JMP, Op.CALL, Op.RET, Op.HALT}


def _partition(code, region: FunctionInfo) -> List[_Block]:
    leaders: Set[int] = {region.start}
    for pc in range(region.start, region.end):
        op, a, b, c, d = code[pc]
        if op in BRANCH_OPS:
            if region.start <= c < region.end:
                leaders.add(c)
            leaders.add(pc + 1)
        elif op == Op.JMP:
            if region.start <= a < region.end:
                leaders.add(a)
            leaders.add(pc + 1)
        elif op in (Op.CALL, Op.RET, Op.HALT):
            leaders.add(pc + 1)
    ordered = sorted(pc for pc in leaders if region.start <= pc < region.end)
    blocks = []
    for i, start in enumerate(ordered):
        end = ordered[i + 1] if i + 1 < len(ordered) else region.end
        blocks.append(_Block(start, end))
    return blocks


class _Irregular(Exception):
    """Internal bail signal: the function's shape defeats the analysis;
    its summary collapses to :meth:`SignalBounds.unknown`."""


def _successors(code, region, block: _Block) -> List[Tuple[int, str]]:
    """(target pc, edge kind) pairs; kinds: taken/fall/jmp/call/none."""
    term_pc = block.end - 1
    op, a, b, c, d = code[term_pc]
    succ: List[Tuple[int, str]] = []
    if op in BRANCH_OPS:
        if not region.start <= c < region.end:
            raise _Irregular("branch leaves the function region")
        succ.append((c, "taken"))
        if block.end < region.end:
            succ.append((block.end, "fall"))
        else:
            raise _Irregular("conditional fall-through exits the region")
    elif op == Op.JMP:
        if not region.start <= a < region.end:
            raise _Irregular("jump leaves the function region")
        succ.append((a, "jmp"))
    elif op in (Op.RET, Op.HALT):
        pass
    else:  # CALL or plain fall-through into the next leader
        kind = "call" if op == Op.CALL else "fall"
        if block.end < region.end:
            succ.append((block.end, kind))
        elif op != Op.CALL:
            raise _Irregular("control runs off the end of the region")
        # a CALL as the region's last instruction never returns into
        # this region; treat as no successor (the callee HALTs or the
        # program faults -- either way nothing downstream runs).
    return succ


# ---------------------------------------------------------------------------
# constant propagation (integer registers only)
# ---------------------------------------------------------------------------

_Consts = Dict[int, int]  # reg index -> known value; absent = unknown

#: Ops that invalidate every tracked register.  Only CALL: the callee
#: writes registers freely (no calling convention).  PROBE and SYSCALL
#: are *pure counting ops in the exact oracle's semantics* -- the model
#: this analysis brackets -- so they clobber nothing here even though
#: the full machine may run arbitrary probe handlers.
_CLOBBER_ALL = frozenset({Op.CALL})


def _const_transfer(consts: _Consts, ins) -> _Consts:
    op, a, b, c, d = ins
    if op in _CLOBBER_ALL:
        return {}
    out = dict(consts)

    def put(reg, value):
        if value is None:
            out.pop(reg, None)
        else:
            out[reg] = value

    if op == Op.LI:
        put(a, d if isinstance(d, int) else None)
    elif op == Op.MOV:
        put(a, out.get(b))
    elif op in (Op.ADD, Op.SUB, Op.MUL, Op.DIV):
        x, y = out.get(b), out.get(c)
        if x is None or y is None or (op == Op.DIV and y == 0):
            put(a, None)
        elif op == Op.ADD:
            put(a, x + y)
        elif op == Op.SUB:
            put(a, x - y)
        elif op == Op.MUL:
            put(a, x * y)
        else:
            put(a, int(x / y))  # trunc toward 0, as the machine does
    elif op in (Op.ADDI, Op.MULI):
        x = out.get(b)
        if x is None or not isinstance(d, int):
            put(a, None)
        else:
            put(a, x + d if op == Op.ADDI else x * d)
    elif op == Op.LOAD:
        put(a, None)
    return out


def _meet(a: Optional[_Consts], b: _Consts) -> _Consts:
    if a is None:
        return dict(b)
    return {r: v for r, v in a.items() if b.get(r) == v}


def _const_fixpoint(
    code, blocks: List[_Block], entry_consts: _Consts
) -> Tuple[Dict[int, _Consts], Dict[int, _Consts]]:
    """Per-block IN/OUT constant maps (optimistic iteration)."""
    ins_map: Dict[int, Optional[_Consts]] = {b.start: None for b in blocks}
    outs_map: Dict[int, Optional[_Consts]] = {b.start: None for b in blocks}
    by_start = {b.start: b for b in blocks}
    work = [blocks[0].start]
    ins_map[blocks[0].start] = dict(entry_consts)
    while work:
        start = work.pop()
        block = by_start[start]
        consts = dict(ins_map[start] or {})
        for pc in range(block.start, block.end):
            consts = _const_transfer(consts, code[pc])
        if outs_map[start] == consts:
            continue
        outs_map[start] = consts
        for tgt, _kind in block.succ:  # type: ignore[attr-defined]
            merged = _meet(ins_map[tgt], consts) if ins_map[tgt] is not None \
                else dict(consts)
            if merged != ins_map[tgt]:
                ins_map[tgt] = merged
                work.append(tgt)
    return (
        {s: (m or {}) for s, m in ins_map.items()},
        {s: (m or {}) for s, m in outs_map.items()},
    )


# ---------------------------------------------------------------------------
# dominators and natural loops
# ---------------------------------------------------------------------------


def _dominators(starts: List[int], entry: int, preds) -> Dict[int, Set[int]]:
    full = set(starts)
    dom = {s: set(full) for s in starts}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for s in starts:
            if s == entry:
                continue
            ps = [p for p, _ in preds.get(s, ())]
            new = set(full) if not ps else set.intersection(
                *(dom[p] for p in ps)
            )
            new.add(s)
            if new != dom[s]:
                dom[s] = new
                changed = True
    return dom


@dataclass
class _Loop:
    header: int
    blocks: Set[int]
    back_sources: Set[int]
    children: List["_Loop"] = field(default_factory=list)
    trips: Interval = TOP  # header executions per loop entry
    exit_block: Optional[int] = None  # recognized single exit branch
    exit_edge_taken: bool = False  # exit is the taken side of that branch


def _natural_loops(starts, entry, preds, succs, dom) -> List[_Loop]:
    by_header: Dict[int, _Loop] = {}
    for u in starts:
        for v, _kind in succs.get(u, ()):
            if v in dom[u]:  # back edge u -> v
                loop = by_header.setdefault(v, _Loop(v, {v}, set()))
                loop.back_sources.add(u)
                stack = [u]
                while stack:
                    n = stack.pop()
                    if n in loop.blocks:
                        continue
                    loop.blocks.add(n)
                    stack.extend(p for p, _ in preds.get(n, ()))
    loops = sorted(by_header.values(), key=lambda l: len(l.blocks))
    # nest: attach each loop to the smallest strictly containing loop
    roots: List[_Loop] = []
    for i, inner in enumerate(loops):
        parent = None
        for outer in loops[i + 1:]:
            if inner.header != outer.header and \
                    inner.blocks <= outer.blocks:
                parent = outer
                break
        (parent.children if parent else roots).append(inner)
    return roots


# ---------------------------------------------------------------------------
# trip-count inference
# ---------------------------------------------------------------------------

_REL_BY_OP = {Op.BEQ: "eq", Op.BNE: "ne", Op.BLT: "lt", Op.BGE: "ge"}
_MIRROR = {"lt": "gt", "gt": "lt", "le": "ge", "ge": "le",
           "eq": "eq", "ne": "ne"}
_COMPLEMENT = {"lt": "ge", "ge": "lt", "le": "gt", "gt": "le",
               "eq": "ne", "ne": "eq"}


def _first_k(kind: str, x0: int, s: int, bound: int) -> Optional[int]:
    """Smallest ``k >= 0`` with ``pred(x0 + k*s, bound)`` true, else None."""
    if kind == "lt":
        return _first_k("le", x0, s, bound - 1)
    if kind == "gt":
        return _first_k("le", -x0, -s, -(bound + 1))
    if kind == "ge":
        return _first_k("le", -x0, -s, -bound)
    if kind == "le":
        if x0 <= bound:
            return 0
        if s >= 0:
            return None
        p, q = x0 - bound, -s
        return (p + q - 1) // q  # ceil((x0-bound)/(-s)), both positive
    if kind == "eq":
        if s == 0:
            return 0 if x0 == bound else None
        k, rem = divmod(bound - x0, s)
        return k if rem == 0 and k >= 0 else None
    if kind == "ne":
        if x0 != bound:
            return 0
        return None if s == 0 else 1
    raise StaticOracleError(f"unknown relation {kind!r}")


def _written_iregs(code, pcs, callee_writes) -> Dict[int, List[int]]:
    """reg -> pcs (within *pcs*) whose instruction writes it; a clobber
    op maps every register to that pc."""
    writes: Dict[int, List[int]] = {}
    for pc in pcs:
        op, a, b, c, d = code[pc]
        if op == Op.CALL:
            for r in callee_writes(a):
                writes.setdefault(r, []).append(pc)
        elif op in _INT_OPS or op == Op.LOAD:
            writes.setdefault(a, []).append(pc)
    return writes


def _infer_trips(
    code, loop: _Loop, by_start, succs, dom, preds,
    outs_consts, callee_writes, callee_may_halt,
) -> None:
    """Fill ``loop.trips`` / ``loop.exit_block`` when the loop matches a
    structured shape; otherwise leave the pessimistic defaults."""
    # exactly one edge leaves the loop, from a conditional branch; no
    # other way out (a HALT or a may-halt call would end the program
    # mid-loop, invalidating an exact trip count)
    exits = []
    loop_pcs = [pc for s in loop.blocks
                for pc in range(by_start[s].start, by_start[s].end)]
    for pc in loop_pcs:
        op = code[pc][0]
        if op == Op.HALT:
            return
        if op == Op.CALL and callee_may_halt(code[pc][1]):
            return
    for u in loop.blocks:
        for v, kind in succs.get(u, ()):
            if v not in loop.blocks:
                exits.append((u, v, kind))
    if len(exits) != 1:
        return
    exit_src, _exit_tgt, exit_kind = exits[0]
    if any(exit_src in ch.blocks for ch in loop.children):
        return  # exit buried in a nested loop: not a structured shape
    block = by_start[exit_src]
    term_pc = block.end - 1
    op, ra, rb, c, d = code[term_pc]
    if op not in BRANCH_OPS:
        return
    if exit_src != loop.header and exit_src not in loop.back_sources:
        return  # exit from the middle: not a structured shape

    writes = _written_iregs(code, loop_pcs, callee_writes)

    def classify(reg):
        w = writes.get(reg, [])
        if not w:
            return ("inv", None, None)
        if len(w) != 1:
            return (None, None, None)
        wpc = w[0]
        wop, wa, wb, wc, wd = code[wpc]
        if wop != Op.ADDI or wa != reg or wb != reg or \
                not isinstance(wd, int) or wd == 0:
            return (None, None, None)
        # the step must run exactly once per iteration: its block is in
        # this loop (not a nested one) and dominates every back edge
        wstart = next(s for s in loop.blocks
                      if by_start[s].start <= wpc < by_start[s].end)
        inner = any(wstart in ch.blocks for ch in loop.children)
        if inner or not all(wstart in dom[src]
                            for src in loop.back_sources):
            return (None, None, None)
        return ("ind", wd, wpc)

    ka, sa, pca = classify(ra)
    kb, sb, pcb = classify(rb)
    if ka == "ind" and kb == "inv":
        ind_reg, step, step_pc, inv_reg, mirror = ra, sa, pca, rb, False
    elif kb == "ind" and ka == "inv":
        ind_reg, step, step_pc, inv_reg, mirror = rb, sb, pcb, ra, True
    else:
        return

    # loop-invariant bound and induction base: the values flowing in on
    # the entry edges (the header's IN fact meets the back edge, where
    # the induction register varies, so it cannot be used here)
    entry_preds = [p for p, _ in preds.get(loop.header, ())
                   if p not in loop.blocks]
    if not entry_preds:
        return
    entry_vals: Optional[_Consts] = None
    for p in entry_preds:
        entry_vals = _meet(entry_vals, outs_consts.get(p, {}))
    bound = entry_vals.get(inv_reg)
    base = entry_vals.get(ind_reg)
    if bound is None or base is None:
        return

    rel = _REL_BY_OP[op]
    if mirror:
        rel = _MIRROR[rel]
    if exit_kind != "taken":
        rel = _COMPLEMENT[rel]
    # Value of the induction register at the k-th execution of the
    # compare (k = 0, 1, ...).  The step runs once per completed
    # iteration; it additionally runs *before* the k-th compare when it
    # sits between the start of the compare's own iteration and the
    # compare itself: earlier in the same block, or in a block that
    # dominates a non-header exit block (the classic bottom-test latch).
    step_start = next(s for s in loop.blocks
                      if by_start[s].start <= step_pc < by_start[s].end)
    if step_start == exit_src:
        pre = 1 if step_pc < term_pc else 0
    elif exit_src != loop.header and step_start in dom[exit_src]:
        pre = 1
    else:
        pre = 0
    k_exit = _first_k(rel, base + pre * step, step, bound)
    if k_exit is None:
        return  # provably never exits; keep the pessimistic default
    loop.trips = Interval(k_exit + 1, k_exit + 1)
    loop.exit_block = exit_src
    loop.exit_edge_taken = exit_kind == "taken"


# ---------------------------------------------------------------------------
# frequency propagation and function summaries
# ---------------------------------------------------------------------------


@dataclass
class _FnSummary:
    bounds: SignalBounds
    may_halt: bool
    writes: FrozenSet[int]


_UNKNOWN_SUMMARY = _FnSummary(
    SignalBounds.unknown(), True, frozenset(range(NUM_IREGS))
)


class _FunctionAnalysis:
    def __init__(self, code, region: FunctionInfo, summaries, fn_names):
        self.code = code
        self.region = region
        self.summaries = summaries  # name -> _FnSummary
        self.fn_names = fn_names  # entry pc -> name
        self.may_halt = False

    def _callee(self, target) -> _FnSummary:
        name = self.fn_names.get(target)
        if name is None:
            return _UNKNOWN_SUMMARY
        return self.summaries.get(name, _UNKNOWN_SUMMARY)

    def callee_writes(self, target) -> FrozenSet[int]:
        return self._callee(target).writes

    def run(self, entry_consts: _Consts) -> SignalBounds:
        code, region = self.code, self.region
        all_blocks = _partition(code, region)
        by_start = {b.start: b for b in all_blocks}
        # keep only blocks reachable from the region entry: dead blocks
        # would otherwise register phantom dominator back edges
        reachable: Set[int] = set()
        stack = [region.start]
        while stack:
            s = stack.pop()
            if s in reachable:
                continue
            reachable.add(s)
            block = by_start[s]
            block.succ = _successors(code, region, block)  # type: ignore
            stack.extend(t for t, _ in block.succ)  # type: ignore
        blocks = [b for b in all_blocks if b.start in reachable]
        starts = [b.start for b in blocks]
        succs = {b.start: b.succ for b in blocks}  # type: ignore
        preds: Dict[int, List[Tuple[int, str]]] = {s: [] for s in starts}
        for b in blocks:
            for tgt, kind in b.succ:  # type: ignore[attr-defined]
                preds[tgt].append((b.start, kind))

        ins_consts, outs_consts = _const_fixpoint(
            code, blocks, entry_consts
        )
        dom = _dominators(starts, region.start, preds)
        roots = _natural_loops(starts, region.start, preds, succs, dom)

        def may_halt_callee(target) -> bool:
            return self._callee(target).may_halt

        def infer(loop: _Loop):
            for ch in loop.children:
                infer(ch)
            _infer_trips(code, loop, by_start, succs, dom, preds,
                         outs_consts, self.callee_writes, may_halt_callee)

        for loop in roots:
            infer(loop)

        bounds = SignalBounds()
        top = _Loop(region.start, set(starts), set(), children=roots,
                    trips=ONE)
        self._flow(top, ONE, bounds, by_start, succs, ins_consts)
        return bounds

    # -- one loop-tree node -------------------------------------------

    def _flow(
        self, node: _Loop, entry_freq: Interval, bounds: SignalBounds,
        by_start, succs, ins_consts,
    ) -> Dict[int, Interval]:
        """Accumulate signal counts for one entry of *node* scaled by
        *entry_freq*; returns the frequencies flowing out of it."""
        child_of: Dict[int, _Loop] = {}
        for ch in node.children:
            for s in ch.blocks:
                child_of[s] = ch
        members = [s for s in node.blocks if s not in child_of]

        def condense(s: int):
            ch = child_of.get(s)
            if ch is None:
                return s
            if s != ch.header:
                raise _Irregular("irreducible entry into a nested loop")
            return ch

        # condensed DAG (back edges to this node's header dropped)
        cedges: Dict[object, List[Tuple[object, int, str]]] = {}
        indeg: Dict[object, int] = {}
        nodes: List[object] = list(members) + list(node.children)
        for n in nodes:
            cedges[id(n)] = []
            indeg[id(n)] = 0
        by_id = {id(n): n for n in nodes}

        def out_edges(n):
            if isinstance(n, _Loop):
                for u in n.blocks:
                    for v, kind in succs.get(u, ()):
                        if v not in n.blocks:
                            yield u, v, kind
            else:
                for v, kind in succs.get(n, ()):
                    yield n, v, kind

        exits: Dict[int, Interval] = {}
        leaves_node: Set[int] = set()  # ids of nodes with an exit edge
        for n in nodes:
            for u, v, kind in out_edges(n):
                if v == node.header and v in node.blocks:
                    continue  # back edge of this node
                if v in node.blocks:
                    tgt = condense(v)
                    cedges[id(n)].append((tgt, u, kind))
                    indeg[id(tgt)] += 1
                else:
                    leaves_node.add(id(n))

        seed = imul(entry_freq, node.trips)
        head = condense(node.header)
        if isinstance(head, _Loop) and head.header != node.header:
            raise _Irregular("loop header inside a sibling loop")

        # topological order (Kahn); a leftover node means irreducibility
        order: List[object] = []
        pending = dict(indeg)
        ready = [n for n in nodes if pending[id(n)] == 0]
        while ready:
            n = ready.pop()
            order.append(n)
            for tgt, _u, _kind in cedges[id(n)]:
                pending[id(tgt)] -= 1
                if pending[id(tgt)] == 0:
                    ready.append(tgt)
        if len(order) != len(nodes):
            raise _Irregular("condensed flow graph is not acyclic")

        # Post-dominance over the condensed DAG, with a virtual sink fed
        # by every node where a traversal can end: no internal
        # successors, an edge leaving this region, a nested loop (its
        # trips may be unbounded), or an op that can stop the program
        # (HALT, a call into a may-halt callee).  A node post-dominating
        # the head lies on *every* traversal exactly once, so its
        # frequency is exactly the seed -- this undoes the precision the
        # plain interval sum loses at a branch-rejoin.
        _SINK = -1
        pdom: Dict[object, FrozenSet[int]] = {}
        for n in reversed(order):
            ends_here = (
                id(n) in leaves_node
                or not cedges[id(n)]
                or isinstance(n, _Loop)
                or self._can_stop(n, by_start)
            )
            sets = [pdom[id(tgt)] for tgt, _u, _k in cedges[id(n)]]
            if ends_here:
                sets.append(frozenset({_SINK}))
            inter: FrozenSet[int] = sets[0]
            for s in sets[1:]:
                inter = inter & s
            pdom[id(n)] = inter | {id(n)}
        on_every_path = pdom[id(head)]

        freq: Dict[object, Interval] = {id(n): ZERO for n in nodes}
        freq[id(head)] = seed
        for n in order:
            f = freq[id(n)]
            if id(n) in on_every_path:
                f = _tighten(f, seed)
            edge_freqs = self._node_counts(
                n, f, entry_freq, node, bounds, by_start, succs, ins_consts
            )
            for tgt, u, kind in cedges[id(n)]:
                iv = edge_freqs.get((u, kind), ZERO)
                freq[id(tgt)] = iadd(freq[id(tgt)], iv)
            for (u, kind), iv in edge_freqs.items():
                for v, k2 in succs.get(u, ()):
                    if k2 == kind and v not in node.blocks:
                        exits[v] = iadd(exits.get(v, ZERO), iv)
        return exits

    def _can_stop(self, n, by_start) -> bool:
        """The program itself can end while executing block *n*."""
        block = by_start[n]
        for pc in range(block.start, block.end):
            op = self.code[pc][0]
            if op == Op.HALT:
                return True
            if op == Op.CALL and self._callee(self.code[pc][1]).may_halt:
                return True
        return False

    def _node_counts(
        self, n, f: Interval, entry_freq: Interval, owner: _Loop,
        bounds: SignalBounds, by_start, succs, ins_consts,
    ) -> Dict[Tuple[int, str], Interval]:
        """Count *n* executed with frequency *f*; returns per-edge
        frequencies keyed by (source block, edge kind)."""
        if isinstance(n, _Loop):
            inner = self._flow(n, f, bounds, by_start, succs, ins_consts)
            out: Dict[Tuple[int, str], Interval] = {}
            for u in n.blocks:
                for v, kind in succs.get(u, ()):
                    if v not in n.blocks and v in inner:
                        out[(u, kind)] = inner[v]
            return out

        block = by_start[n]
        code = self.code
        for pc in range(block.start, block.end):
            op = code[pc][0]
            for sig in op_signal_vector(op):
                bounds.add(sig, f)
            if op == Op.HALT:
                self.may_halt = True
            elif op == Op.CALL:
                bounds.add_bounds(self._callee(code[pc][1]).bounds, f)

        term = code[block.end - 1]
        op = term[0]
        succ = succs.get(n, ())
        if op in BRANCH_OPS:
            taken, fall = ZERO, ZERO
            if owner.exit_block == n and owner.trips.exact is not None:
                # recognized loop exit: leaves exactly once per entry
                stay = imul(entry_freq,
                            Interval(owner.trips.lo - 1, owner.trips.lo - 1))
                taken, fall = (entry_freq, stay) if owner.exit_edge_taken \
                    else (stay, entry_freq)
            else:
                decided = self._static_outcome(block, ins_consts)
                if decided is True:
                    taken = f
                elif decided is False:
                    fall = f
                else:
                    taken = fall = Interval(0, f.hi)
            bounds.add(Signal.BR_TKN, taken)
            bounds.add(Signal.BR_NTK, fall)
            return {(n, "taken"): taken, (n, "fall"): fall}
        if op == Op.CALL and self._callee(term[1]).may_halt:
            return {(n, kind): Interval(0, f.hi) for _v, kind in succ}
        return {(n, kind): f for _v, kind in succ}

    def _static_outcome(self, block, ins_consts) -> Optional[bool]:
        consts = dict(ins_consts.get(block.start, {}))
        for pc in range(block.start, block.end - 1):
            consts = _const_transfer(consts, self.code[pc])
        op, ra, rb, c, d = self.code[block.end - 1]
        x, y = consts.get(ra), consts.get(rb)
        if x is None or y is None:
            return None
        if op == Op.BEQ:
            return x == y
        if op == Op.BNE:
            return x != y
        if op == Op.BLT:
            return x < y
        return x >= y  # BGE


# ---------------------------------------------------------------------------
# whole-program composition
# ---------------------------------------------------------------------------


def _call_targets(code, region: FunctionInfo) -> Set[int]:
    return {
        code[pc][1]
        for pc in range(region.start, region.end)
        if code[pc][0] == Op.CALL
    }


def _direct_writes(code, region: FunctionInfo) -> Set[int]:
    regs: Set[int] = set()
    for pc in range(region.start, region.end):
        op, a, b, c, d = code[pc]
        if op in _INT_OPS or op == Op.LOAD:
            regs.add(a)
    return regs


def static_signal_bounds(program: Program) -> SignalBounds:
    """Bounds on every oracle signal for one run of *program*.

    Never executes an instruction.  Guaranteed sound: for each signal
    in :data:`ORACLE_SIGNALS` the exact oracle's count lies within
    ``[lo, hi]`` (``hi is None`` = unbounded) whenever the exact oracle
    completes without error.
    """
    code = program.resolve()
    entry_pc = program.label_at(program.entry)
    region = program.function_at(entry_pc)
    if region is None or region.start != entry_pc:
        region = FunctionInfo("__entry__", entry_pc, len(code))
    fn_regions: Dict[str, FunctionInfo] = {region.name: region}
    for name, info in program.functions.items():
        if info.start != region.start:
            fn_regions.setdefault(name, info)
    fn_names = {info.start: name for name, info in fn_regions.items()}

    # bottom-up over the call graph; anything cyclic stays unknown
    order: List[str] = []
    state: Dict[str, int] = {}

    def visit(name: str) -> None:
        if state.get(name, 0):
            if state[name] == 1:
                state[name] = 3  # recursion: poison
            return
        state[name] = 1
        for tgt in _call_targets(code, fn_regions[name]):
            callee = fn_names.get(tgt)
            if callee is not None:
                visit(callee)
                if state.get(callee) == 3:
                    state[name] = 3
        if state[name] == 1:
            state[name] = 2
        order.append(name)

    for name in fn_regions:
        visit(name)

    summaries: Dict[str, _FnSummary] = {}
    for name in order:
        if state.get(name) == 3 or name == region.name:
            continue
        info = fn_regions[name]
        analysis = _FunctionAnalysis(code, info, summaries, fn_names)
        try:
            fn_bounds = analysis.run({})
        except _Irregular:
            continue  # missing summary == unknown
        writes = set(_direct_writes(code, info))
        may_halt = analysis.may_halt
        for tgt in _call_targets(code, info):
            callee = summaries.get(fn_names.get(tgt, ""), _UNKNOWN_SUMMARY)
            writes |= callee.writes
            may_halt = may_halt or callee.may_halt
        summaries[name] = _FnSummary(fn_bounds, may_halt, frozenset(writes))

    entry_consts: _Consts = {r: 0 for r in range(NUM_IREGS)}
    analysis = _FunctionAnalysis(code, region, summaries, fn_names)
    try:
        return analysis.run(entry_consts)
    except _Irregular:
        return SignalBounds.unknown()


# ---------------------------------------------------------------------------
# block-engine affine invariance
# ---------------------------------------------------------------------------


def static_exact_signal_counts(program: Program) -> Optional[List[int]]:
    """Closed-form signal counts, when the static analysis pins them.

    Returns a full ``Signal``-indexed count list (oracle signals only,
    the rest zero) when every interval of
    :func:`static_signal_bounds` collapses to a point -- i.e. the
    program's trip counts and branch outcomes were all statically
    resolved, so the counts follow affinely without executing anything.
    Returns ``None`` when any interval is wide; callers (the refutation
    predictor) then fall back to the exact reference interpreter.
    """
    bounds = static_signal_bounds(program)
    if not bounds.is_exact():
        return None
    return list(bounds.lo)


def block_signal_vectors(code) -> Dict[int, List[int]]:
    """Per-block constant signal vectors over the engine's partition.

    Blocks are cut exactly where the block engine cuts them
    (:func:`repro.hw.blockcache._compute_leaders` plus its control-op
    and block-break rules), and each block's vector is the sum of its
    instructions' outcome-independent contributions -- the affine
    constant term.  The only outcome-dependent signals a block can
    produce are one ``BR_TKN``/``BR_NTK`` bit on a conditional
    terminator, which the engine replays from its taken-count.
    """
    from repro.hw.blockcache import _compute_leaders

    # a control op at the last pc makes pc+1 == len(code) a leader; that
    # is a valid (empty) resume point for the engine, not a block
    leaders = sorted(pc for pc in _compute_leaders(code) if pc < len(code))
    vectors: Dict[int, List[int]] = {}
    for i, start in enumerate(leaders):
        end = leaders[i + 1] if i + 1 < len(leaders) else len(code)
        vec = [0] * Signal.N_SIGNALS
        for pc in range(start, end):
            op = code[pc][0]
            for sig in op_signal_vector(op):
                vec[sig] += 1
            if (op in _TERMINATORS or op in BLOCK_BREAK_OPS) and \
                    pc != end - 1:
                raise StaticOracleError(
                    f"control op at pc {pc} inside block "
                    f"[{start}, {end}): engine partition is wrong"
                )
        vectors[start] = vec
    return vectors


@dataclass(frozen=True)
class TraceCertificate:
    """Outcome of trying to certify one loop head as a superblock trace.

    ``status`` is ``"certified"`` (the loop body is a unique static
    path; ``vector`` is its constant per-iteration signal delta) or
    ``"skipped"``.  A skip is **never silent**: ``reason`` names the
    exact instruction/shape that blocks the certificate, so an
    uncertifiable trace reads as "engine falls back to compiled-region
    or block dispatch here", not as a pass.
    """

    head: int
    status: str
    vector: Optional[Tuple[int, ...]] = None
    path_len: int = 0
    reason: str = ""

    @property
    def certified(self) -> bool:
        return self.status == "certified"


class AffineReport(Dict[int, List[int]]):
    """:func:`verify_block_affine` result: a per-block-vector dict
    (backward-compatible mapping interface) carrying the trace-level
    certificates in ``traces``."""

    def __init__(self, vectors: Dict[int, List[int]],
                 traces: Dict[int, TraceCertificate]) -> None:
        super().__init__(vectors)
        self.traces = traces

    @property
    def certified_traces(self) -> Dict[int, TraceCertificate]:
        return {h: c for h, c in self.traces.items() if c.certified}

    @property
    def skipped_traces(self) -> Dict[int, TraceCertificate]:
        return {h: c for h, c in self.traces.items() if not c.certified}


def _walk_trace(code: List[tuple], head: int,
                max_ins: int) -> Tuple[Optional[List[int]], str]:
    """Mirror of ``BlockCompiler.trace_path``: the unique static path
    from *head* back to *head*, or ``(None, reason)``."""
    from repro.hw.isa import OP_NAMES

    path: List[int] = []
    seen: Set[int] = set()
    stack: List[int] = []
    end = len(code)
    pc = head
    while len(path) < max_ins:
        if not 0 <= pc < end:
            return None, f"path leaves the program at pc {pc}"
        if pc in seen:
            return None, (
                f"path revisits pc {pc} without closing at the head "
                "(inner cycle: the engine keys its own trace there)"
            )
        ins = code[pc]
        op = ins[0]
        if op in BLOCK_BREAK_OPS:
            return None, (
                f"{OP_NAMES[op]} at pc {pc} re-enters the simulation "
                "control plane; such loops compile as regions with "
                "probe-prologue segments, not superblock traces"
            )
        seen.add(pc)
        path.append(pc)
        if op in BRANCH_OPS:
            if ins[3] == head and not stack:
                return path, ""
            if ins[3] == head:
                return None, (
                    f"loop branch at pc {pc} closes at call depth "
                    f"{len(stack)}: unmatched CALL on the path"
                )
            return None, (
                f"data-dependent branch {OP_NAMES[op]} at pc {pc} "
                "mid-path: multi-path cycle (compiled-region "
                "territory, no single-trace certificate)"
            )
        if op == Op.JMP:
            pc = ins[1]
        elif op == Op.CALL:
            stack.append(pc + 1)
            pc = ins[1]
        elif op == Op.RET:
            if not stack:
                return None, (
                    f"RET at pc {pc} with no statically matched CALL "
                    "on the path"
                )
            pc = stack.pop()
        else:
            pc += 1
    return None, f"path exceeds TRACE_MAX_INS ({max_ins}) instructions"


def trace_certificates(code: List[tuple]) -> Dict[int, TraceCertificate]:
    """Trace-level affine certificates for every static loop head.

    Loop heads are the back-edge targets of the resolved code -- the
    pcs the trace tier's heat counters can promote.  For each, the
    walk either certifies the unique loop path (its per-iteration
    signal delta is one constant vector, so the superblock gets the
    same affine bulk-replay soundness argument as a self-loop block)
    or records a skip naming the obstruction.
    """
    from repro.hw.blockcache import TRACE_MAX_INS

    heads: Set[int] = set()
    for pc, ins in enumerate(code):
        op = ins[0]
        if op in BRANCH_OPS and ins[3] <= pc:
            heads.add(ins[3])
        elif op == Op.JMP and ins[1] <= pc:
            heads.add(ins[1])
    out: Dict[int, TraceCertificate] = {}
    for head in sorted(heads):
        path, reason = _walk_trace(code, head, TRACE_MAX_INS)
        if path is None:
            out[head] = TraceCertificate(head, "skipped", reason=reason)
            continue
        if path == list(range(head, head + len(path))):
            # pure fall-through closed by the branch: one basic block
            out[head] = TraceCertificate(
                head, "skipped",
                reason="self-loop block: the block tier already "
                       "certifies and replays it",
            )
            continue
        vec = [0] * Signal.N_SIGNALS
        for pc in path:
            for sig in op_signal_vector(code[pc][0]):
                vec[sig] += 1
        out[head] = TraceCertificate(
            head, "certified", vector=tuple(vec), path_len=len(path)
        )
    return out


def verify_block_affine(program: Program) -> AffineReport:
    """Statically certify the engine's affine invariance, block + trace.

    For every block the engine would compile, checks that (a) control
    transfers only happen at block ends, so a block always retires all
    of its instructions, and (b) the block's signal delta is therefore
    a constant vector (plus the terminator's taken bit).  Together
    these imply counts(engine on) == counts(engine off) on every
    program -- the property the dynamic tests then spot-check.

    On top of the block partition, every static loop head gets a
    **trace certificate** (see :func:`trace_certificates`): certified
    loop paths carry their constant per-iteration vector, and
    uncertifiable ones carry an explicit skip reason instead of
    passing silently.

    Returns an :class:`AffineReport` (a dict of per-block vectors with
    the certificates on ``.traces``); raises
    :class:`StaticOracleError` if the partition is unsound.
    """
    code = program.resolve()
    vectors = block_signal_vectors(code)
    for start, vec in vectors.items():
        if vec[Signal.TOT_INS] == 0:
            raise StaticOracleError(f"empty block at pc {start}")
    return AffineReport(vectors, trace_certificates(code))

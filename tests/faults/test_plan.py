"""Unit tests: fault profiles, plans and the seed:profile spec grammar."""

import pytest

from repro.faults import PROFILES, FaultPlan, FaultProfile, parse_inject, profile


class TestProfiles:
    def test_catalogue_names(self):
        assert set(PROFILES) == {
            "none", "transient", "loss", "irq", "corrupt", "jitter", "chaos",
            "daemon-chaos",
        }

    def test_none_is_inert_and_others_are_not(self):
        for name, prof in PROFILES.items():
            assert prof.inert == (name == "none")

    def test_profiles_are_frozen(self):
        with pytest.raises(Exception):
            PROFILES["chaos"].esys_rate = 1.0

    def test_transient_burst_stays_recoverable(self):
        """Built-in esys bursts must be absorbable by the default retry
        policy (max_retries=3), or the 'recoverable' profiles would not
        be."""
        from repro.core.resilience import DEFAULT_RETRY_POLICY

        for prof in PROFILES.values():
            assert prof.esys_burst <= DEFAULT_RETRY_POLICY.max_retries

    def test_lookup_unknown_profile(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            profile("tsunami")


class TestSpecGrammar:
    def test_full_spec_round_trips(self):
        plan = parse_inject("2718:chaos")
        assert plan.seed == 2718
        assert plan.profile is PROFILES["chaos"]
        assert plan.spec == "2718:chaos"
        assert parse_inject(plan.spec) == plan

    def test_bare_profile_defaults_seed_zero(self):
        plan = parse_inject("loss")
        assert plan == FaultPlan(seed=0, profile=PROFILES["loss"])

    def test_whitespace_tolerated(self):
        assert parse_inject("  7:irq ") == FaultPlan(7, PROFILES["irq"])

    def test_bad_seed_rejected(self):
        with pytest.raises(ValueError, match="bad fault-injection seed"):
            parse_inject("xx:chaos")

    def test_bad_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            parse_inject("1:nope")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            parse_inject("   ")

    def test_custom_profile_spec(self):
        prof = FaultProfile("mine", corrupt_rate=1.0)
        assert FaultPlan(5, prof).spec == "5:mine"

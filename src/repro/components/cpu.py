"""The CPU component: the legacy substrate PMU as component 0.

Every substrate's core PMU registers as component 0, so legacy native
codes -- whose component field is zero -- keep their exact bit patterns
and the pre-component counting path stays byte-identical.  The CPU
component does not model free-running counters; its events go down the
programmed-PMU path (allocation, start/stop, SMP virtualization) exactly
as before the component refactor.
"""

from __future__ import annotations

from typing import Mapping

from repro.components.base import Component, ComponentEvent


class CpuComponent(Component):
    """Component 0: the substrate's own PMU and native event namespace."""

    NAME = "cpu"
    DESCRIPTION = "core PMU (the legacy substrate counter plane)"
    SUPPORTS_MULTIPLEX = True

    def __init__(self, substrate) -> None:
        super().__init__(n_counters=substrate.n_counters)
        self._substrate = substrate

    @property
    def events(self) -> Mapping[str, ComponentEvent]:
        return {
            name: ComponentEvent(name, ev.description)
            for name, ev in self._substrate.native_events.items()
        }

    def event_names(self):
        return tuple(sorted(self._substrate.native_events))

    def query(self, short: str) -> ComponentEvent:
        native = self._substrate.query_native(short)
        return ComponentEvent(short, native.description)

    def raw_value(self, short: str) -> int:
        raise NotImplementedError(
            "CPU events are programmed PMU counters, not free-running"
        )

"""Portable timers: PAPI_get_real_usec and friends.

"One of the most popular features of PAPI has proven to be the portable
timing routines.  Using the lowest overhead and most accurate timers
available on a given platform ... enables users and tool developers to
obtain accurate timings across different platforms using the same
interface."  (Section 2)

In the simulation the "lowest overhead, most accurate timer" is the
machine's cycle clock; real time includes interface/system work, virtual
time is the thread's own CPU time (the scheduler's accounting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.library import Papi
    from repro.simos.thread import Thread


@dataclass(frozen=True)
class TimerReading:
    """A paired real/virtual reading, in cycles and microseconds."""

    real_cyc: int
    real_usec: float
    virt_cyc: int
    virt_usec: float


def read_timers(papi: "Papi", thread: Optional["Thread"] = None) -> TimerReading:
    return TimerReading(
        real_cyc=papi.get_real_cyc(),
        real_usec=papi.get_real_usec(),
        virt_cyc=papi.get_virt_cyc(thread),
        virt_usec=papi.get_virt_usec(thread),
    )


class TimeRegion:
    """Measure a code region in simulated time::

        with TimeRegion(papi) as tr:
            machine.run_to_completion()
        print(tr.real_usec, tr.virt_usec)
    """

    def __init__(self, papi: "Papi", thread: Optional["Thread"] = None) -> None:
        self.papi = papi
        self.thread = thread
        self.start: Optional[TimerReading] = None
        self.end: Optional[TimerReading] = None

    def __enter__(self) -> "TimeRegion":
        self.start = read_timers(self.papi, self.thread)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = read_timers(self.papi, self.thread)

    def _delta(self, attr: str):
        if self.start is None or self.end is None:
            raise RuntimeError("TimeRegion not completed")
        return getattr(self.end, attr) - getattr(self.start, attr)

    @property
    def real_cyc(self) -> int:
        return self._delta("real_cyc")

    @property
    def real_usec(self) -> float:
        return self._delta("real_usec")

    @property
    def virt_cyc(self) -> int:
        return self._delta("virt_cyc")

    @property
    def virt_usec(self) -> float:
        return self._delta("virt_usec")

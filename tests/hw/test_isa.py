"""Unit tests: ISA, assembler, program model, rewriting."""

import pytest

from repro.hw.isa import (
    Assembler,
    BRANCH_OPS,
    Instruction,
    JUMP_OPS,
    Op,
    OP_NAMES,
    Program,
    ProgramError,
)


def build_simple():
    asm = Assembler()
    asm.func("main")
    asm.li("r1", 5)
    asm.li("r2", 0)
    asm.label("loop")
    asm.addi("r2", "r2", 1)
    asm.blt("r2", "r1", "loop")
    asm.halt()
    asm.endfunc()
    return asm.build()


class TestAssembler:
    def test_build_produces_program(self):
        prog = build_simple()
        assert isinstance(prog, Program)
        assert len(prog) == 5
        assert prog.entry == "main"

    def test_labels_bound_to_indices(self):
        prog = build_simple()
        assert prog.label_at("main") == 0
        assert prog.label_at("loop") == 2

    def test_unknown_label_raises(self):
        prog = build_simple()
        with pytest.raises(ProgramError):
            prog.label_at("nope")

    def test_function_table(self):
        prog = build_simple()
        fn = prog.functions["main"]
        assert fn.start == 0 and fn.end == 5
        assert 3 in fn
        assert prog.function_at(3).name == "main"
        assert prog.function_at(99) is None

    def test_duplicate_label_rejected(self):
        asm = Assembler()
        asm.label("x")
        with pytest.raises(ProgramError):
            asm.label("x")

    def test_duplicate_function_rejected(self):
        asm = Assembler()
        asm.func("f")
        asm.ret()
        asm.endfunc()
        with pytest.raises(ProgramError):
            asm.func("f")

    def test_unclosed_function_rejected(self):
        asm = Assembler()
        asm.func("f")
        asm.ret()
        with pytest.raises(ProgramError):
            asm.build(entry="f")

    def test_endfunc_without_func_rejected(self):
        asm = Assembler()
        with pytest.raises(ProgramError):
            asm.endfunc()

    def test_undefined_branch_target_rejected(self):
        asm = Assembler()
        asm.func("main")
        asm.jmp("nowhere")
        asm.endfunc()
        with pytest.raises(ProgramError):
            asm.build()

    def test_missing_entry_rejected(self):
        asm = Assembler()
        asm.func("f")
        asm.halt()
        asm.endfunc()
        with pytest.raises(ProgramError):
            asm.build(entry="main")

    def test_register_parsing(self):
        asm = Assembler()
        asm.func("main")
        asm.li("r31", 1)
        asm.fli("f31", 1.0)
        asm.halt()
        asm.endfunc()
        prog = asm.build()
        assert prog.instructions[0].a == 31

    def test_bad_register_name_rejected(self):
        asm = Assembler()
        with pytest.raises(ProgramError):
            asm.li("x1", 0)
        with pytest.raises(ProgramError):
            asm.li("r32", 0)
        with pytest.raises(ProgramError):
            asm.fadd("r1", "f1", "f2")  # int reg where float expected

    def test_reserve_data_accumulates(self):
        asm = Assembler()
        a = asm.reserve_data(10)
        b = asm.reserve_data(5)
        assert (a, b) == (0, 10)
        asm.func("main")
        asm.halt()
        asm.endfunc()
        assert asm.build().data_size == 15

    def test_negative_reserve_rejected(self):
        asm = Assembler()
        with pytest.raises(ProgramError):
            asm.reserve_data(-1)

    def test_init_array_records_data(self):
        asm = Assembler()
        base = asm.init_array([1.5, 2.5])
        asm.func("main")
        asm.halt()
        asm.endfunc()
        prog = asm.build()
        assert dict(prog.data_init) == {base: 1.5, base + 1: 2.5}

    def test_data_init_out_of_range_rejected(self):
        asm = Assembler()
        asm.init_word(7, 1)  # nothing reserved
        asm.func("main")
        asm.halt()
        asm.endfunc()
        with pytest.raises(ProgramError):
            asm.build()


class TestInstruction:
    def test_target_field_for_jumps_and_branches(self):
        assert Instruction(Op.JMP, "x").target() == "x"
        assert Instruction(Op.BEQ, 1, 2, "y").target() == "y"
        assert Instruction(Op.ADD, 1, 2, 3).target() is None

    def test_with_target_replaces(self):
        ins = Instruction(Op.JMP, "x").with_target(7)
        assert ins.a == 7

    def test_with_target_on_non_control_raises(self):
        with pytest.raises(ProgramError):
            Instruction(Op.ADD, 1, 2, 3).with_target(0)

    def test_all_opcodes_named(self):
        for i in range(Op.N_OPS):
            assert OP_NAMES[i], f"opcode {i} unnamed"

    def test_branch_and_jump_sets_disjoint(self):
        assert not (BRANCH_OPS & JUMP_OPS)


class TestResolve:
    def test_resolve_replaces_labels_with_indices(self):
        prog = build_simple()
        code = prog.resolve()
        blt = code[3]
        assert blt[0] == Op.BLT and blt[3] == 2  # target -> index of "loop"

    def test_resolve_leaves_non_control_untouched(self):
        prog = build_simple()
        code = prog.resolve()
        assert code[0] == (Op.LI, 1, 0, 0, 5)


class TestInsert:
    def test_insert_shifts_labels_to_head(self):
        prog = build_simple()
        new, remap = prog.insert({2: [Instruction(Op.PROBE, 9)]})
        # label "loop" must now point AT the probe so branches execute it
        assert new.label_at("loop") == 2
        assert new.instructions[2].op == Op.PROBE
        assert len(new) == len(prog) + 1

    def test_insert_remaps_pcs_to_original_instruction(self):
        prog = build_simple()
        new, remap = prog.insert({2: [Instruction(Op.PROBE, 9)]})
        # a machine paused at original index 2 resumes at the original
        # instruction, not the probe
        assert new.instructions[remap(2)].op == Op.ADDI
        assert remap(0) == 0
        assert remap(4) == 5

    def test_insert_preserves_control_flow_semantics(self):
        prog = build_simple()
        new, _ = prog.insert({2: [Instruction(Op.NOP)]})
        code = new.resolve()
        blt = code[4]
        assert blt[3] == 2  # still branches to the (shifted) loop head

    def test_insert_at_function_start_extends_function(self):
        prog = build_simple()
        new, _ = prog.insert({0: [Instruction(Op.PROBE, 1)]})
        fn = new.functions["main"]
        assert fn.start == 0
        assert new.instructions[fn.start].op == Op.PROBE

    def test_insert_multiple_points(self):
        prog = build_simple()
        new, remap = prog.insert(
            {0: [Instruction(Op.NOP)], 4: [Instruction(Op.NOP)]}
        )
        assert len(new) == 7
        assert new.instructions[remap(4)].op == Op.HALT

    def test_insert_out_of_range_rejected(self):
        prog = build_simple()
        with pytest.raises(ProgramError):
            prog.insert({99: [Instruction(Op.NOP)]})

    def test_insert_at_end_appends(self):
        prog = build_simple()
        new, _ = prog.insert({len(prog): [Instruction(Op.NOP)]})
        assert len(new) == len(prog) + 1
        assert new.instructions[-1].op == Op.NOP

    def test_insert_preserves_data(self):
        asm = Assembler()
        base = asm.init_array([3.0])
        asm.func("main")
        asm.halt()
        asm.endfunc()
        prog = asm.build()
        new, _ = prog.insert({0: [Instruction(Op.NOP)]})
        assert new.data_init == prog.data_init
        assert new.data_size == prog.data_size
        assert base == 0


class TestDisassemble:
    def test_disassemble_lists_labels_and_mnemonics(self):
        prog = build_simple()
        text = prog.disassemble()
        assert "main:" in text
        assert "loop:" in text
        assert "BLT" in text
        assert "HALT" in text

"""papid worker: owns one shard's monitoring sessions in-process.

Each worker holds a dict of :class:`WorkerSession` objects — one full
vertical slice per session: a platform substrate (with its own seeded
machine and optional fault injector), a :class:`~repro.core.library.Papi`
library, one EventSet, and a looping calibration workload.  A ``read``
op advances the session's machine by ``step_instructions`` and returns
cumulative counts; the workload program is reloaded when it halts
(counters survive a reload), so sessions can be read forever.

The same :class:`WorkerState` drives both transports: the process
entry point :func:`worker_main` wraps it in a pipe loop, and the inline
transport calls :meth:`WorkerState.handle` directly.  All session state
lives below ``handle``; everything above it is delivery.

Exactly-once semantics: state-bearing ops carry a client sequence
number, and each session keeps its last ``(seq, result)``.  A replayed
seq returns the cached result without touching the machine — so
at-least-once delivery from retries never double-advances a session,
and the saboteur countdown (fresh executions only) stays deterministic.

Adoption (crash recovery): an ``adopt`` op carries the journal image of
a session that died with its previous worker.  The worker rebuilds the
substrate from the spec, restores the acked base counts/cycle, and —
because a respawned worker may reuse a process whose library was shut
down — leans on the ``Papi.shutdown()``/cold-restart fix for a genuinely
fresh library.  Reads after adoption serve ``base + fresh``, which is
what keeps client-visible counts monotone across crashes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import NotRunningError, PapiError, is_transient
from repro.core.library import Papi
from repro.daemon.crash import CrashPlan, Saboteur
from repro.daemon.protocol import (
    PAPID_EAGAIN,
    PAPID_EFATAL,
    Op,
    OpResult,
    SessionSpec,
    op_from_wire,
)
from repro.platforms import create as create_substrate
from repro.workloads import CALIBRATION_KERNELS


def _build_workload(spec: SessionSpec, substrate) -> Any:
    try:
        factory = CALIBRATION_KERNELS[spec.workload]
    except KeyError:
        raise ValueError(
            f"unknown workload kernel {spec.workload!r}; "
            f"known: {sorted(CALIBRATION_KERNELS)}"
        ) from None
    return factory(spec.n, use_fma=substrate.HAS_FMA)


class WorkerSession:
    """One monitoring session: substrate + library + EventSet + workload."""

    def __init__(self, spec: SessionSpec,
                 restore: Optional[Dict[str, Any]] = None) -> None:
        self.spec = spec
        self.substrate = create_substrate(
            spec.platform, seed=spec.seed, inject=spec.inject
        )
        self.papi = Papi(self.substrate)
        self.workload = _build_workload(spec, self.substrate)
        self.substrate.machine.load(self.workload.program)
        self.es = self.papi.create_eventset()
        self.es.add_named(*spec.events)
        # monotone bases restored from the last-acked journal snapshot.
        self.base_values: Dict[str, int] = {ev: 0 for ev in spec.events}
        self.base_cycle = 0
        self.base_advanced = 0
        self.advanced = 0
        self.state = "created"
        self.recovered = False
        self.lost: List[dict] = []
        self.last_seq: Optional[int] = None
        self.last_result: Optional[Dict[str, Any]] = None
        if restore is not None:
            self.base_values = {
                ev: int(restore["values"].get(ev, 0)) for ev in spec.events
            }
            self.base_cycle = int(restore["cycle"])
            self.base_advanced = int(restore["advanced"])
            self.recovered = bool(restore.get("recovered", True))
            self.lost = [dict(iv) for iv in restore.get("lost", ())]
            self.state = restore["state"]
            if self.state == "running":
                self.es.start()

    # -- op bodies ---------------------------------------------------------

    def start(self) -> Dict[str, Any]:
        self.es.start()
        self.state = "running"
        return self._snapshot()

    def read(self) -> Dict[str, Any]:
        if self.state != "running":
            raise NotRunningError(f"session {self.spec.sid!r} is {self.state}")
        budget = self.spec.step_instructions
        machine = self.substrate.machine
        while budget > 0:
            result = machine.run(max_instructions=budget)
            budget -= result.instructions
            self.advanced += result.instructions
            if result.reason == "halt":
                machine.load(self.workload.program)  # loop the workload
                if result.instructions == 0:
                    break  # defensive: a zero-length program cannot advance
        return self._snapshot()

    def stop(self) -> Dict[str, Any]:
        values = self.es.stop()
        self.state = "stopped"
        return self._snapshot(values)

    def destroy(self) -> None:
        self.papi.shutdown()

    def _snapshot(self, values: Optional[List[int]] = None) -> Dict[str, Any]:
        if values is None:
            values = self.es.read() if self.state == "running" else None
        totals = dict(self.base_values)
        if values is not None:
            for ev, v in zip(self.spec.events, values):
                totals[ev] = self.base_values[ev] + int(v)
        return {
            "values": totals,
            "cycle": self.base_cycle + self.substrate.real_cyc(),
            "advanced": self.base_advanced + self.advanced,
            "recovered": self.recovered,
            "lost": [dict(iv) for iv in self.lost],
        }


class WorkerState:
    """Transport-independent worker: messages in, replies out."""

    def __init__(self, worker_id: int, generation: int,
                 saboteur: Optional[Saboteur] = None) -> None:
        self.worker_id = worker_id
        self.generation = generation
        self.saboteur = saboteur
        self.sessions: Dict[str, WorkerSession] = {}
        self.finished = False

    # -- message dispatch --------------------------------------------------

    def handle(self, msg: Tuple[Any, ...]) -> List[Tuple[Any, ...]]:
        kind = msg[0]
        if kind == "ping":
            return [("pong", msg[1], len(self.sessions))]
        if kind == "batch":
            batch_id, ops = msg[1], msg[2]
            results = [self._handle_op(op_from_wire(w)).to_wire()
                       for w in ops]
            return [("results", batch_id, results)]
        if kind == "drain":
            acks = self._drain_all()
            self.finished = True
            return [("drained", msg[1], acks)]
        if kind == "exit":
            self.finished = True
            return []
        raise ValueError(f"unknown worker message {kind!r}")

    def _handle_op(self, op: Op) -> OpResult:
        fresh = True
        session = self.sessions.get(op.sid)
        if (
            session is not None
            and op.kind in ("start", "read", "stop")
            and session.last_seq == op.seq
            and session.last_result is not None
        ):
            fresh = False  # at-least-once replay: serve the cached result
        if fresh and self.saboteur is not None:
            self.saboteur.tick()  # may never return (die/wedge)
        if not fresh:
            return OpResult.from_wire(session.last_result)
        try:
            res = self._execute(op, session)
        except PapiError as exc:
            status = PAPID_EAGAIN if is_transient(exc) else PAPID_EFATAL
            res = OpResult(sid=op.sid, kind=op.kind, status=status,
                           seq=op.seq, err_code=exc.code, err=str(exc))
        except (ValueError, KeyError) as exc:
            res = OpResult(sid=op.sid, kind=op.kind, status=PAPID_EFATAL,
                           seq=op.seq, err=f"{type(exc).__name__}: {exc}")
        if (
            res.ok
            and op.kind in ("start", "read", "stop")
            and op.sid in self.sessions
        ):
            ses = self.sessions[op.sid]
            ses.last_seq = op.seq
            ses.last_result = res.to_wire()
        return res

    def _execute(self, op: Op, session: Optional[WorkerSession]) -> OpResult:
        if op.kind == "create":
            if session is not None:
                raise ValueError(f"session {op.sid!r} already exists")
            ses = WorkerSession(op.spec)
            self.sessions[op.sid] = ses
            return OpResult(sid=op.sid, kind="create", seq=op.seq,
                            **ses._snapshot())
        if op.kind == "adopt":
            spec = op.spec if op.spec is not None else None
            if spec is None:
                raise ValueError("adopt op requires a spec")
            ses = WorkerSession(spec, restore=op.restore)
            self.sessions[op.sid] = ses
            return OpResult(sid=op.sid, kind="adopt", seq=op.seq,
                            recovered=True, **{
                                k: v for k, v in ses._snapshot().items()
                                if k != "recovered"
                            })
        if session is None:
            raise ValueError(f"no such session {op.sid!r}")
        if op.kind == "start":
            return OpResult(sid=op.sid, kind="start", seq=op.seq,
                            **session.start())
        if op.kind == "read":
            return OpResult(sid=op.sid, kind="read", seq=op.seq,
                            **session.read())
        if op.kind == "stop":
            return OpResult(sid=op.sid, kind="stop", seq=op.seq,
                            **session.stop())
        if op.kind == "destroy":
            session.destroy()
            del self.sessions[op.sid]
            return OpResult(sid=op.sid, kind="destroy", seq=op.seq)
        raise ValueError(f"unhandled op kind {op.kind!r}")

    def _drain_all(self) -> List[Dict[str, Any]]:
        """Stop every session crash-consistently; return final acks."""
        acks = []
        for sid in sorted(self.sessions):
            ses = self.sessions[sid]
            if ses.state == "running":
                try:
                    snap = ses.stop()
                except PapiError:
                    ses.es._emergency_stop()
                    ses.state = "stopped"
                    snap = ses._snapshot()
            else:
                snap = ses._snapshot()
            acks.append({"sid": sid, "state": ses.state, **snap})
            ses.papi.shutdown()
        self.sessions.clear()
        return acks


def worker_main(conn, worker_id: int, generation: int,
                crash_wire: Optional[Dict[str, Any]] = None) -> None:
    """Process entry point: serve one pipe until drain/exit/EOF."""
    plan = CrashPlan.from_wire(crash_wire)
    saboteur = plan.saboteur(worker_id, generation) if plan else None
    state = WorkerState(worker_id, generation, saboteur=saboteur)
    while not state.finished:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        for reply in state.handle(msg):
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):  # parent went away
                return
    conn.close()

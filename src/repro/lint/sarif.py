"""SARIF 2.1.0 output for papi-lint findings.

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard every mainstream code-scanning UI ingests; emitting it makes
papi-lint findings show up as annotations in code review without any
custom tooling.  Only the small, stable core of the format is
produced: one ``run`` with a ``tool.driver`` carrying the full rule
catalogue (so viewers can show rule metadata for ``ruleId`` matches)
and one ``result`` per diagnostic.

Mapping notes:

- severities: ``error`` -> ``error``, ``warning`` -> ``warning``,
  ``info`` -> ``note`` (SARIF has no "info" level);
- papi-lint columns are 0-based (matching ``ast``), SARIF's are
  1-based -- the renderer shifts them;
- the hint travels as the rule's help text would, appended to the
  message, since per-result help is not part of the core format.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import RULES, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _driver_rules() -> List[Dict[str, object]]:
    rules = []
    for code in sorted(RULES):
        rule = RULES[code]
        rules.append({
            "id": code,
            "shortDescription": {"text": rule.summary},
            "properties": {"paper": rule.paper},
            "defaultConfiguration": {
                "level": _LEVELS[rule.severity],
            },
        })
    return rules


def _result(diag: Diagnostic) -> Dict[str, object]:
    message = diag.message
    if diag.hint:
        message = f"{message} ({diag.hint})"
    return {
        "ruleId": diag.code,
        "level": _LEVELS[diag.severity],
        "message": {"text": message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": diag.path},
                "region": {
                    "startLine": max(1, diag.line),
                    "startColumn": diag.col + 1,
                },
            },
        }],
    }


def to_sarif(diagnostics: List[Diagnostic]) -> Dict[str, object]:
    """The SARIF log as a plain dict (one tool, one run)."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "papi-lint",
                    "rules": _driver_rules(),
                },
            },
            "results": [_result(d) for d in diagnostics],
        }],
    }


def render_sarif(diagnostics: List[Diagnostic]) -> str:
    """The SARIF log serialized for ``--format sarif`` / CI artifacts."""
    return json.dumps(to_sarif(diagnostics), indent=2, sort_keys=True)

"""Property-based tests for the refutation harness.

Three guarantees the engine leans on, checked over random seeds (the
``REPRO_PROPERTY_EXAMPLES`` knob and ``HYPOTHESIS_PROFILE`` scale the
example count exactly as for the other property suites):

- **generation is a pure function of the seed**: same seed, same
  genomes, byte-identical lowered programs;
- **every generated program is valid and budgeted**: oracle-executable
  (no faults), halting, and inside its declared dynamic bound;
- **execution is bit-identical across engine tiers and CPU counts**:
  the raw architectural signal deltas of a generated program equal the
  reference interpreter's counts on the interpreter, block and trace
  tiers, on 1- and 4-CPU machines -- the invariance the refutation
  matrix assumes when it attributes a disagreement to the *model*.

Shrinking gets its own property: shrunk genomes stay valid programs and
never grow.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.hw.events import Signal
from repro.platforms import create
from repro.refute.generator import build_program, generate
from repro.refute.shrink import shrink_genome
from repro.validate.oracle import ORACLE_SIGNALS, expected_signal_counts

seeds = st.integers(min_value=0, max_value=2**48 - 1)

_SIGS = tuple(sorted(ORACLE_SIGNALS))

#: (engine tier, ncpus) configurations every program must agree across.
_CONFIGS = (("off", 1), ("block", 1), ("trace", 1), ("trace", 4))


@given(seed=seeds)
def test_generation_is_a_pure_function_of_the_seed(seed):
    a = generate(seed, count=2, budget=500)
    b = generate(seed, count=2, budget=500)
    assert [p.genome for p in a] == [p.genome for p in b]
    assert [p.program.resolve() for p in a] == [
        p.program.resolve() for p in b
    ]


@given(seed=seeds, budget=st.sampled_from([128, 500, 2000]))
def test_programs_are_valid_and_budgeted(seed, budget):
    for gp in generate(seed, count=2, budget=budget):
        assert gp.dynamic_bound <= budget
        # oracle execution raises OracleError on any fault or runaway
        counts = expected_signal_counts(
            gp.program, max_instructions=gp.dynamic_bound
        )
        assert 0 < counts[Signal.TOT_INS] <= gp.dynamic_bound


@given(seed=seeds)
def test_bit_identical_across_tiers_and_ncpus(seed):
    gp = generate(seed, count=1, budget=300)[0]
    expected = expected_signal_counts(gp.program)
    for tier, ncpus in _CONFIGS:
        substrate = create("simT3E", seed=7, engine=tier, ncpus=ncpus,
                           inject="")
        machine = substrate.machine
        before = [machine.signal_total(s) for s in _SIGS]
        if ncpus == 1:
            machine.load(gp.program)
            machine.run_to_completion()
        else:
            substrate.os.spawn(gp.program, name="prop")
            substrate.os.run()
        for i, sig in enumerate(_SIGS):
            got = machine.signal_total(sig) - before[i]
            assert got == expected[sig], (
                f"signal {sig} drifts at tier={tier} ncpus={ncpus}: "
                f"{got} != {expected[sig]}"
            )


@given(seed=seeds)
def test_shrink_preserves_validity_and_never_grows(seed):
    genome = generate(seed, count=1, budget=500)[0].genome
    shrunk = shrink_genome(genome, lambda g: True, max_checks=40)
    assert shrunk.segments
    program = build_program(shrunk)
    expected_signal_counts(program)  # still fault-free and halting
    assert (len(program.resolve())
            <= len(build_program(genome).resolve()))

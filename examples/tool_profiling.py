#!/usr/bin/env python
"""Third-party-tool workflow: dynaprof probes, TAU-style profiles, tracing.

Reproduces the Section 2-3 tool stack on the demo application:

1. dynaprof lists the program's internal structure and inserts PAPI +
   wallclock probes at function entry/exit (no source changes);
2. a TAU-style multi-metric profile (several counter batches over
   deterministic re-runs) identifies each function's bottleneck;
3. event-based ratios and cross-metric correlations single out the
   memory-bound routine;
4. a Vampir-style trace logs timestamped ENTER/EXIT records and exports
   them to a line format.

Run:  python examples/tool_profiling.py
"""

import io

from repro import Papi, create
from repro.analysis import Table
from repro.tools import (
    Dynaprof,
    PapiProbe,
    Profiler,
    Trace,
    TracerProbe,
    WallclockProbe,
)
from repro.workloads import demo_app

SCALE = 40


def step1_dynaprof() -> None:
    print("== 1. dynaprof: structure listing + probes ==")
    substrate = create("simPOWER")
    papi = Papi(substrate)
    dyn = Dynaprof(substrate, papi)
    dyn.load(demo_app(scale=SCALE))
    print("   functions:", ", ".join(
        f"{name}({size} ins)" for name, size in dyn.list_functions()
    ))
    papi_probe = dyn.add_probe(
        PapiProbe(papi, ["PAPI_TOT_CYC", "PAPI_L1_DCM"])
    )
    wall = dyn.add_probe(WallclockProbe(papi))
    dyn.instrument()
    dyn.run()
    table = Table(["function", "calls", "excl cycles", "excl L1_DCM",
                   "excl usec"])
    for fn, prof in papi_probe.profiles.items():
        table.add_row(
            fn, prof.calls,
            int(prof.exclusive["PAPI_TOT_CYC"]),
            int(prof.exclusive["PAPI_L1_DCM"]),
            round(wall.profiles[fn].exclusive["real_usec"], 1),
        )
    print(table.render())
    print()


def step2_profiler() -> None:
    print("== 2. TAU-style multi-metric profile ==")
    profiler = Profiler(
        "simPOWER",
        ["PAPI_TOT_CYC", "PAPI_FP_OPS", "PAPI_L1_DCM", "PAPI_BR_MSP"],
    )
    report = profiler.profile(lambda: demo_app(scale=SCALE))
    print(report.to_text())
    print()
    print("   hottest by FP_OPS :", report.hottest("PAPI_FP_OPS"))
    print("   hottest by L1_DCM :", report.hottest("PAPI_L1_DCM"))
    print("   hottest by BR_MSP :", report.hottest("PAPI_BR_MSP"))
    corr = report.correlation("PAPI_TOT_CYC", "PAPI_L1_DCM")
    print(f"   corr(cycles, L1 misses) across functions = {corr:+.2f}")
    ratios = report.derived_ratio("PAPI_L1_DCM", "PAPI_TOT_CYC")
    worst = max(ratios, key=ratios.get)
    print(f"   highest misses-per-cycle: {worst} "
          f"({ratios[worst]:.4f}) -> the memory-bound routine")
    print()


def step3_tracer() -> None:
    print("== 3. Vampir-style trace ==")
    substrate = create("simPOWER")
    papi = Papi(substrate)
    dyn = Dynaprof(substrate, papi)
    dyn.load(demo_app(scale=10))
    trace = Trace()
    dyn.add_probe(TracerProbe(papi, trace, tid=1,
                              events=["PAPI_TOT_INS"]))
    dyn.instrument()
    dyn.run()
    buf = io.StringIO()
    trace.export(buf)
    lines = buf.getvalue().splitlines()
    print(f"   {len(lines)} trace records; first six:")
    for line in lines[:6]:
        print("    ", line)
    durations = trace.region_durations()
    print("   region durations (cycles):",
          {k: v for k, v in sorted(durations.items())})


def main() -> None:
    step1_dynaprof()
    step2_profiler()
    step3_tracer()


if __name__ == "__main__":
    main()

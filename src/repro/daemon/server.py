"""PapidServer: the supervised, sharded fleet-monitoring daemon core.

One :class:`PapidServer` owns a registry of monitoring sessions sharded
across a worker pool (``shard_of(sid)`` is deterministic, so a session
lives on the same shard across restarts), an append-only journal
(:mod:`repro.daemon.journal`), a supervisor thread, and the
:class:`~repro.daemon.health.DaemonHealth` counters.  Clients talk to it
only through :meth:`submit` — batched ops with a deadline — and the
lifecycle pair :meth:`drain`/context-manager exit.

Robustness invariants (proved by ``tests/daemon`` and the chaos soak):

- **Monotonicity.**  The journal records a snapshot only after a worker
  acked it; recovery restores exactly the last-acked snapshot; adopted
  workers serve ``base + fresh``.  A client can therefore never observe
  a count decrease, crash or no crash.
- **Exactly-once.**  Ops carry per-session sequence numbers; workers
  dedupe replays.  At-least-once delivery (retries after EAGAIN) never
  double-advances a session.
- **No silent loss.**  A crash appends an explicit lost-interval entry
  (PR 4's :class:`~repro.core.resilience.LostInterval` shape) to every
  re-homed session — zero-length when nothing was in flight — and
  sessions that cannot be re-homed are reported ``unrecovered``, never
  dropped.
- **Bounded admission.**  Beyond ``high_water`` ops in flight per
  shard, reads are shed lowest-priority-first or served from the
  registry snapshot cache within ``staleness_ops`` ticks, instead of
  queueing without bound; shed/stale counts are itemized in health.
- **Idempotent drain.**  ``drain()`` quiesces admissions, stops every
  session crash-consistently, flushes+fsyncs the journal, and is safe
  to call any number of times from any thread (and from SIGTERM).
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.daemon.crash import CrashPlan
from repro.daemon.health import DaemonHealth
from repro.daemon.journal import Journal, recover_sessions
from repro.daemon.protocol import (
    PAPID_EAGAIN,
    PAPID_EDRAIN,
    PAPID_EFATAL,
    PAPID_ESHED,
    PAPID_OK,
    Op,
    OpResult,
    SessionSpec,
    shard_of,
)
from repro.daemon.shards import Shard, make_transport
from repro.daemon.supervisor import Supervisor


@dataclass(frozen=True)
class DaemonConfig:
    """Tunables for one papid instance."""

    nshards: int = 4
    transport: str = "process"
    #: admission-control high-water mark: ops in flight per shard.
    high_water: int = 256
    #: max snapshot age (in server op ticks) a degraded read may serve.
    staleness_ops: int = 64
    #: supervisor heartbeat period (seconds).
    heartbeat_interval: float = 0.25
    #: no pong within this window => the worker is wedged (seconds).
    wedge_timeout: float = 2.0
    #: server-side cap on waiting for one shard batch (seconds); a
    #: shard that blows it is treated as wedged and recycled, so this
    #: bounds how long a wedge can hold a shard lock hostage.
    batch_timeout: float = 10.0
    #: worker sabotage + per-session fault spec ("seed:profile").
    inject: Optional[str] = None
    journal_path: Optional[str] = None


@dataclass
class SessionRecord:
    """Registry entry: authoritative last-acked state of one session."""

    spec: SessionSpec
    shard_id: int
    state: str = "created"          # created | running | stopped
    values: Dict[str, int] = field(default_factory=dict)
    cycle: int = 0
    advanced: int = 0
    recovered: bool = False
    lost: List[dict] = field(default_factory=list)
    #: server op tick of the last acked snapshot (staleness age).
    tick: int = 0
    #: True when recovery failed: the session's last-acked state and
    #: ledger remain readable here, but no worker hosts it any more.
    orphaned: bool = False


class PapidServer:
    """The daemon: registry + shards + supervisor + journal + health."""

    def __init__(self, config: DaemonConfig = DaemonConfig()) -> None:
        self.config = config
        self.crash_plan = CrashPlan.from_spec(config.inject)
        self._transport = make_transport(config.transport)
        self.journal = Journal(config.journal_path)
        self.registry: Dict[str, SessionRecord] = {}
        self.health_counters = DaemonHealth(
            nshards=config.nshards, transport=config.transport
        )
        self._lock = threading.RLock()
        self._tick = 0
        self._pending_loss: Dict[str, int] = {}
        self._draining = False
        self._drained = False
        self._drain_done = threading.Event()
        self.shards: List[Shard] = [
            self._transport.spawn(i, 0, self.crash_plan)
            for i in range(config.nshards)
        ]
        self.supervisor = Supervisor(
            self,
            interval=config.heartbeat_interval,
            wedge_timeout=config.wedge_timeout,
        )
        self.supervisor.start()

    # ------------------------------------------------------------------
    # client surface
    # ------------------------------------------------------------------

    def submit(self, ops: List[Op],
               timeout: Optional[float] = None) -> List[OpResult]:
        """Run a batch of ops; returns results aligned with *ops*.

        *timeout* is the RPC deadline in seconds (None = the server's
        ``batch_timeout``).  Transient results (EAGAIN/ESHED) mean the
        op did not run and may be retried; fatal results are final.
        """
        deadline_at = time.monotonic() + (
            timeout if timeout is not None else self.config.batch_timeout
        )
        results: Dict[int, OpResult] = {}
        by_shard: Dict[int, List[Tuple[int, Op]]] = {}
        with self._lock:
            if self._draining or self._drained:
                return [
                    OpResult(sid=op.sid, kind=op.kind, seq=op.seq,
                             status=PAPID_EDRAIN)
                    for op in ops
                ]
            for idx, op in enumerate(ops):
                routed = self._route(idx, op, results)
                if routed is not None:
                    by_shard.setdefault(routed, []).append((idx, op))
            admitted = {
                shard_id: self._admit(shard_id, idx_ops, results)
                for shard_id, idx_ops in by_shard.items()
            }
        threads = []
        for shard_id, idx_ops in admitted.items():
            if not idx_ops:
                continue
            t = threading.Thread(
                target=self._dispatch,
                args=(shard_id, idx_ops, deadline_at, results),
                name=f"papid-dispatch-{shard_id}",
            )
            t.start()
            threads.append(t)
        for t in threads:
            t.join()
        out = []
        for idx, op in enumerate(ops):
            res = results.get(idx)
            if res is None:  # defensive: dispatch always fills its ops
                res = OpResult(sid=op.sid, kind=op.kind, seq=op.seq,
                               status=PAPID_EAGAIN, err="op was not run")
            out.append(res)
        with self._lock:
            for res in out:
                if res.transient:
                    self.health_counters.transient_returns += 1
        return out

    def health(self) -> DaemonHealth:
        """A consistent snapshot of the health counters and fleet state."""
        with self._lock:
            h = self.health_counters
            snap = DaemonHealth(**{
                k: (list(v) if isinstance(v, list) else v)
                for k, v in vars(h).items()
            })
            snap.sessions = len(self.registry)
            snap.running = sum(
                1 for r in self.registry.values() if r.state == "running"
            )
            snap.stopped = sum(
                1 for r in self.registry.values() if r.state == "stopped"
            )
            snap.journal_records = self.journal.n_records
            snap.draining = self._draining
            snap.drained = self._drained
            snap.per_shard = [
                {
                    "id": s.id,
                    "generation": s.generation,
                    "sessions": len(s.sessions),
                    "inflight": s.inflight,
                    "alive": s.alive,
                }
                for s in self.shards
            ]
            return snap

    def fleet_digest(self) -> str:
        """Deterministic digest of client-visible fleet state.

        Covers final counts, session cycle/advanced clocks, recovery
        flags and the lost-interval ledgers, plus the absorbed crash and
        recovery counts — everything the chaos-soak acceptance check
        asserts bit-identical across runs of the same seed.  Excludes
        wall-clock-dependent counters (deadline expiries, transient
        returns, shed/stale split).
        """
        with self._lock:
            state = {
                sid: {
                    "values": dict(sorted(rec.values.items())),
                    "cycle": rec.cycle,
                    "advanced": rec.advanced,
                    "state": rec.state,
                    "recovered": rec.recovered,
                    "orphaned": rec.orphaned,
                    "lost": [
                        {k: iv[k] for k in
                         ("start_cycle", "end_cycle", "natives",
                          "reason", "recovered")}
                        for iv in rec.lost
                    ],
                }
                for sid, rec in sorted(self.registry.items())
            }
            state["__health__"] = {
                "crashes": self.health_counters.crashes_detected
                + self.health_counters.wedges_detected,
                "recoveries": self.health_counters.recoveries,
                "sessions_recovered":
                    self.health_counters.sessions_recovered,
                "sessions_unrecovered":
                    self.health_counters.sessions_unrecovered,
            }
        blob = json.dumps(state, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def check_consistency(self) -> List[str]:
        """Journal/registry cross-check; an empty list means consistent."""
        problems = []
        with self._lock:
            images = recover_sessions(self.journal.records())
            for sid, rec in self.registry.items():
                img = images.get(sid)
                if img is None:
                    problems.append(f"{sid}: in registry, not in journal")
                    continue
                if img.values != rec.values:
                    problems.append(
                        f"{sid}: journal values {img.values} != "
                        f"registry {rec.values}"
                    )
                if (img.cycle, img.advanced) != (rec.cycle, rec.advanced):
                    problems.append(
                        f"{sid}: journal clock "
                        f"({img.cycle},{img.advanced}) != registry "
                        f"({rec.cycle},{rec.advanced})"
                    )
                if img.state != rec.state:
                    problems.append(
                        f"{sid}: journal state {img.state!r} != "
                        f"registry {rec.state!r}"
                    )
                if len(img.lost) != len(rec.lost):
                    problems.append(
                        f"{sid}: journal ledger has {len(img.lost)} "
                        f"entries, registry {len(rec.lost)}"
                    )
            for sid in images:
                if sid not in self.registry:
                    problems.append(f"{sid}: in journal, not in registry")
        return problems

    # ------------------------------------------------------------------
    # routing and admission control
    # ------------------------------------------------------------------

    def _route(self, idx: int, op: Op,
               results: Dict[int, OpResult]) -> Optional[int]:
        """Resolve *op* to a shard id, or fill a result and return None."""
        if op.kind == "create":
            if op.sid in self.registry:
                results[idx] = OpResult(
                    sid=op.sid, kind=op.kind, seq=op.seq,
                    status=PAPID_EFATAL,
                    err=f"session {op.sid!r} already exists",
                )
                return None
            return shard_of(op.sid, self.config.nshards)
        rec = self.registry.get(op.sid)
        if rec is None:
            results[idx] = OpResult(
                sid=op.sid, kind=op.kind, seq=op.seq, status=PAPID_EFATAL,
                err=f"no such session {op.sid!r}",
            )
            return None
        if rec.orphaned:
            results[idx] = OpResult(
                sid=op.sid, kind=op.kind, seq=op.seq, status=PAPID_EFATAL,
                err=f"session {op.sid!r} was lost in a worker crash and "
                    f"could not be re-homed (see its lost-interval ledger)",
            )
            return None
        return rec.shard_id

    def _admit(self, shard_id: int, idx_ops: List[Tuple[int, Op]],
               results: Dict[int, OpResult]) -> List[Tuple[int, Op]]:
        """Bounded admission: shed/degrade overflow reads, keep the rest.

        Control-plane ops (create/start/stop/destroy) are always
        admitted — shedding them would leak sessions.  Reads beyond the
        per-shard budget are served stale from the registry snapshot if
        it is fresh enough, else shed lowest-priority-first.
        """
        shard = self.shards[shard_id]
        available = self.config.high_water - shard.inflight
        reads = [(i, op) for i, op in idx_ops if op.kind == "read"]
        others = [(i, op) for i, op in idx_ops if op.kind != "read"]
        budget = max(0, available - len(others))
        if len(reads) <= budget:
            return idx_ops
        ranked = sorted(
            reads,
            key=lambda pair: (-self._priority_of(pair[1]), pair[0]),
        )
        admitted = ranked[:budget]
        for idx, op in ranked[budget:]:
            rec = self.registry[op.sid]
            age = self._tick - rec.tick
            if rec.state == "running" and age <= self.config.staleness_ops:
                self.health_counters.stale_reads += 1
                results[idx] = OpResult(
                    sid=op.sid, kind="read", seq=op.seq, status=PAPID_OK,
                    values=dict(rec.values), cycle=rec.cycle,
                    advanced=rec.advanced, recovered=rec.recovered,
                    lost=[dict(iv) for iv in rec.lost], stale=True,
                )
            else:
                self.health_counters.shed_reads += 1
                results[idx] = OpResult(
                    sid=op.sid, kind="read", seq=op.seq, status=PAPID_ESHED,
                    err=f"shed beyond high-water mark "
                        f"(priority {self._priority_of(op)})",
                )
        kept = {i for i, _ in admitted}
        return sorted(
            others + [(i, op) for i, op in reads if i in kept],
            key=lambda pair: pair[0],
        )

    def _priority_of(self, op: Op) -> int:
        rec = self.registry.get(op.sid)
        if rec is not None:
            return rec.spec.priority
        return op.priority

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, shard_id: int, idx_ops: List[Tuple[int, Op]],
                  deadline_at: float, results: Dict[int, OpResult]) -> None:
        shard = self.shards[shard_id]
        with shard.lock:
            if not shard.alive:
                self._fill_eagain(idx_ops, results, "shard is down")
                self._note_inflight_loss(idx_ops)
                self.supervisor.request_check()
                return
            bid = shard.next_batch_id()
            wire = [op.to_wire() for _, op in idx_ops]
            with self._lock:
                shard.inflight += len(idx_ops)
            try:
                self._exchange(shard, bid, wire, idx_ops, deadline_at,
                               results)
            finally:
                with self._lock:
                    shard.inflight -= len(idx_ops)

    def _exchange(self, shard: Shard, bid: int, wire: List[dict],
                  idx_ops: List[Tuple[int, Op]], deadline_at: float,
                  results: Dict[int, OpResult]) -> None:
        try:
            shard.conn.send(("batch", bid, wire))
        except (BrokenPipeError, OSError):
            self._fill_eagain(idx_ops, results, "worker died before send")
            self._note_inflight_loss(idx_ops)
            shard.suspect = True
            self.supervisor.request_check()
            return
        # the server never waits on one shard longer than batch_timeout,
        # whatever the client deadline: a wedged worker must not hold
        # the shard lock hostage past the point supervision could act.
        cap_at = min(deadline_at,
                     time.monotonic() + self.config.batch_timeout)
        while True:
            remaining = cap_at - time.monotonic()
            if remaining <= 0:
                with self._lock:
                    self.health_counters.deadline_expiries += len(idx_ops)
                shard.discard_floor = bid
                shard.suspect = True
                self._fill_eagain(idx_ops, results, "RPC deadline expired")
                self._note_inflight_loss(idx_ops)
                self.supervisor.request_check()
                return
            if not shard.conn.poll(min(remaining, 0.05)):
                continue
            try:
                msg = shard.conn.recv()
            except (EOFError, OSError):
                self._fill_eagain(idx_ops, results,
                                  "worker died mid-batch")
                self._note_inflight_loss(idx_ops)
                shard.suspect = True
                self.supervisor.request_check()
                return
            if msg[0] == "results" and msg[1] == bid:
                self._record_results(shard, idx_ops, msg[2], results)
                return
            # anything else is a late answer from a batch whose deadline
            # already expired (<= discard floor) or a stray pong: drop it.

    def _record_results(self, shard: Shard, idx_ops: List[Tuple[int, Op]],
                        wires: List[dict],
                        results: Dict[int, OpResult]) -> None:
        with self._lock:
            for (idx, op), wire in zip(idx_ops, wires):
                res = OpResult.from_wire(wire)
                results[idx] = res
                self._tick += 1
                if not res.ok:
                    continue
                if op.kind == "create":
                    rec = SessionRecord(
                        spec=op.spec, shard_id=shard.id,
                        values=dict(res.values), cycle=res.cycle,
                        advanced=res.advanced, tick=self._tick,
                    )
                    self.registry[op.sid] = rec
                    shard.sessions.add(op.sid)
                    self.journal.append({
                        "t": "create", "sid": op.sid,
                        "spec": op.spec.to_wire(),
                    })
                    self._ack(rec, op.sid)
                elif op.kind == "destroy":
                    self.registry.pop(op.sid, None)
                    shard.sessions.discard(op.sid)
                    self.journal.append({"t": "destroy", "sid": op.sid})
                elif op.kind in ("start", "read", "stop"):
                    rec = self.registry.get(op.sid)
                    if rec is None:
                        continue
                    rec.values = dict(res.values)
                    rec.cycle = res.cycle
                    rec.advanced = res.advanced
                    rec.tick = self._tick
                    if op.kind == "start":
                        rec.state = "running"
                    elif op.kind == "stop":
                        rec.state = "stopped"
                    res.recovered = rec.recovered
                    res.lost = [dict(iv) for iv in rec.lost]
                    self._ack(rec, op.sid)

    def _ack(self, rec: SessionRecord, sid: str) -> None:
        self.journal.append({
            "t": "ack", "sid": sid, "values": dict(rec.values),
            "cycle": rec.cycle, "advanced": rec.advanced,
            "state": rec.state,
        })

    def _fill_eagain(self, idx_ops: List[Tuple[int, Op]],
                     results: Dict[int, OpResult], why: str) -> None:
        for idx, op in idx_ops:
            results[idx] = OpResult(sid=op.sid, kind=op.kind, seq=op.seq,
                                    status=PAPID_EAGAIN, err=why)

    def _note_inflight_loss(self, idx_ops: List[Tuple[int, Op]]) -> None:
        """Remember how many state-bearing ops died with the shard."""
        with self._lock:
            for _idx, op in idx_ops:
                if op.kind in ("start", "read", "stop"):
                    self._pending_loss[op.sid] = (
                        self._pending_loss.get(op.sid, 0) + 1
                    )

    # ------------------------------------------------------------------
    # supervision & recovery (called from the supervisor thread)
    # ------------------------------------------------------------------

    def check_shards(self) -> None:
        for shard in list(self.shards):
            if self._draining or self._drained:
                return
            if not shard.alive:
                self.recover_shard(shard)

    def ping_shard(self, shard: Shard, timeout: float) -> bool:
        """Heartbeat one shard; False means wedged (no pong in time)."""
        if not shard.lock.acquire(blocking=False):
            return True  # busy with a batch: traffic is its own heartbeat
        try:
            if not shard.alive:
                return False
            ping_id = shard.next_batch_id()
            try:
                shard.conn.send(("ping", ping_id))
            except (BrokenPipeError, OSError):
                return False
            deadline_at = time.monotonic() + timeout
            while time.monotonic() < deadline_at:
                if not shard.conn.poll(0.02):
                    continue
                try:
                    msg = shard.conn.recv()
                except (EOFError, OSError):
                    return False
                if msg[0] == "pong" and msg[1] == ping_id:
                    return True
                # stale batch replies under the discard floor: drop.
            return False
        finally:
            shard.lock.release()

    def recover_shard(self, shard: Shard) -> None:
        """Respawn a dead/wedged shard and re-home its sessions."""
        with shard.lock:
            if self.shards[shard.id] is not shard:
                return  # somebody else already recovered this slot
            was_wedge = (
                shard.proc is not None and shard.proc.is_alive()
            ) or (shard.proc is None
                  and getattr(shard.conn, "crash_mode", None) == "wedge")
            shard.terminate()
            sids = sorted(shard.sessions)
            with self._lock:
                if was_wedge:
                    self.health_counters.wedges_detected += 1
                else:
                    self.health_counters.crashes_detected += 1
                ops = self._build_adopt_ops(shard, sids)
            fresh = self._transport.spawn(
                shard.id, shard.generation + 1, self.crash_plan
            )
            self._adopt_into(fresh, sids, ops)
            self.shards[shard.id] = fresh
            with self._lock:
                self.health_counters.recoveries += 1

    def _build_adopt_ops(self, shard: Shard, sids: List[str]) -> List[Op]:
        """Append crash ledger entries and build the adopt batch."""
        ops = []
        for sid in sids:
            rec = self.registry.get(sid)
            if rec is None:
                continue
            pending = self._pending_loss.pop(sid, 0)
            entry = {
                "start_cycle": rec.cycle,
                "end_cycle": rec.cycle
                + pending * rec.spec.step_instructions,
                "natives": list(rec.spec.events),
                "reason": (
                    f"worker {shard.id} (generation {shard.generation}) "
                    f"crash: {pending} in-flight op(s) rolled back to the "
                    f"last-acked snapshot"
                ),
                "recovered": True,
            }
            rec.lost.append(entry)
            rec.recovered = True
            self.journal.append({"t": "recover", "sid": sid, "lost": entry})
            restore = {
                "state": rec.state,
                "values": dict(rec.values),
                "cycle": rec.cycle,
                "advanced": rec.advanced,
                "recovered": True,
                "lost": [dict(iv) for iv in rec.lost],
            }
            ops.append(Op(kind="adopt", sid=sid, spec=rec.spec,
                          restore=restore))
        return ops

    def _adopt_into(self, fresh: Shard, sids: List[str],
                    ops: List[Op]) -> None:
        if not ops:
            return
        ok_sids = set()
        with fresh.lock:
            bid = fresh.next_batch_id()
            try:
                fresh.conn.send(("batch", bid,
                                 [op.to_wire() for op in ops]))
                deadline_at = time.monotonic() + self.config.batch_timeout
                while time.monotonic() < deadline_at:
                    if not fresh.conn.poll(0.05):
                        continue
                    msg = fresh.conn.recv()
                    if msg[0] == "results" and msg[1] == bid:
                        for op, wire in zip(ops, msg[2]):
                            if OpResult.from_wire(wire).ok:
                                ok_sids.add(op.sid)
                        break
            except (BrokenPipeError, OSError, EOFError):
                pass
        with self._lock:
            for sid in sids:
                rec = self.registry.get(sid)
                if rec is None:
                    continue
                if sid in ok_sids:
                    fresh.sessions.add(sid)
                    self.health_counters.sessions_recovered += 1
                else:
                    rec.orphaned = True
                    self.health_counters.sessions_unrecovered += 1

    # ------------------------------------------------------------------
    # drain
    # ------------------------------------------------------------------

    def drain(self, timeout: float = 30.0) -> DaemonHealth:
        """Graceful, idempotent shutdown; returns the final health."""
        with self._lock:
            already = self._draining or self._drained
            self._draining = True
        if already:
            self._drain_done.wait(timeout)
            return self.health()
        self.supervisor.stop()
        for shard in self.shards:
            self._drain_shard(shard, timeout)
        with self._lock:
            self.journal.append({"t": "drain"})
            self.journal.sync()
            self.journal.close()
            self._drained = True
        self._drain_done.set()
        return self.health()

    def _drain_shard(self, shard: Shard, timeout: float) -> None:
        with shard.lock:
            if shard.alive:
                bid = shard.next_batch_id()
                try:
                    shard.conn.send(("drain", bid))
                    deadline_at = time.monotonic() + timeout
                    while time.monotonic() < deadline_at:
                        if not shard.conn.poll(0.05):
                            continue
                        msg = shard.conn.recv()
                        if msg[0] == "drained" and msg[1] == bid:
                            self._record_drain_acks(msg[2])
                            break
                except (BrokenPipeError, OSError, EOFError):
                    pass  # died during drain: last acked state stands
            shard.terminate()

    def _record_drain_acks(self, acks: List[dict]) -> None:
        with self._lock:
            for ack in acks:
                rec = self.registry.get(ack["sid"])
                if rec is None:
                    continue
                rec.values = dict(ack["values"])
                rec.cycle = ack["cycle"]
                rec.advanced = ack["advanced"]
                rec.state = ack["state"]
                self._ack(rec, ack["sid"])

    # ------------------------------------------------------------------

    def __enter__(self) -> "PapidServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.drain()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PapidServer {self.config.nshards} shards "
            f"({self.config.transport}), {len(self.registry)} sessions>"
        )

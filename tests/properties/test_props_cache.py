"""Property-based tests: cache and TLB invariants."""

from hypothesis import given, settings, strategies as st

from repro.hw.cache import Cache, CacheConfig, TLB, TLBConfig

lines = st.lists(st.integers(min_value=0, max_value=4095), min_size=1,
                 max_size=300)
geometries = st.sampled_from([
    (1, 4), (2, 4), (4, 2), (1, 16), (8, 1), (2, 16),
])


def make_cache(assoc, sets):
    return Cache(CacheConfig("P", 32 * assoc * sets, 32, assoc))


class TestCacheProperties:
    @given(lines, geometries)
    @settings(max_examples=60)
    def test_hits_plus_misses_equals_accesses(self, addrs, geom):
        c = make_cache(*geom)
        for a in addrs:
            c.access(a)
        assert c.hits + c.misses == len(addrs)

    @given(lines, geometries)
    @settings(max_examples=60)
    def test_capacity_never_exceeded(self, addrs, geom):
        assoc, sets = geom
        c = make_cache(assoc, sets)
        for a in addrs:
            c.access(a)
        for _set_idx, ways in c.contents():
            assert len(ways) <= assoc

    @given(lines, geometries)
    @settings(max_examples=60)
    def test_distinct_lines_bound_misses_below(self, addrs, geom):
        """At least one miss per distinct line (cold misses are mandatory)."""
        c = make_cache(*geom)
        for a in addrs:
            c.access(a)
        assert c.misses >= len(set(addrs))

    @given(lines)
    @settings(max_examples=60)
    def test_fully_assoc_lru_matches_reference_model(self, addrs):
        """1-set LRU cache == textbook LRU stack simulation."""
        assoc = 4
        c = make_cache(assoc, 1)
        stack = []  # LRU..MRU
        for a in addrs:
            hit_model = a in stack
            if hit_model:
                stack.remove(a)
            elif len(stack) == assoc:
                stack.pop(0)
            stack.append(a)
            assert c.access(a) == hit_model

    @given(lines, geometries)
    @settings(max_examples=40)
    def test_immediate_reaccess_always_hits(self, addrs, geom):
        c = make_cache(*geom)
        for a in addrs:
            c.access(a)
            assert c.probe(a)

    @given(lines, geometries)
    @settings(max_examples=40)
    def test_repeating_a_trace_never_increases_misses(self, addrs, geom):
        """Second identical pass cannot miss more than the first."""
        c = make_cache(*geom)
        for a in addrs:
            c.access(a)
        first_misses = c.misses
        c.reset_stats()
        for a in addrs:
            c.access(a)
        assert c.misses <= first_misses


class TestTLBProperties:
    pages = st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                     max_size=200)

    @given(pages, st.integers(min_value=1, max_value=16))
    @settings(max_examples=60)
    def test_residency_bounded(self, pages, entries):
        t = TLB(TLBConfig(entries=entries, page_bytes=4096))
        for p in pages:
            t.access(p)
        assert len(t.resident()) <= entries

    @given(pages, st.integers(min_value=1, max_value=16))
    @settings(max_examples=60)
    def test_mru_always_resident(self, pages, entries):
        t = TLB(TLBConfig(entries=entries, page_bytes=4096))
        for p in pages:
            t.access(p)
            assert t.resident()[-1] == p

    @given(pages)
    @settings(max_examples=40)
    def test_infinite_tlb_misses_once_per_page(self, pages):
        t = TLB(TLBConfig(entries=1024, page_bytes=4096))
        for p in pages:
            t.access(p)
        assert t.misses == len(set(pages))

"""Seeded, budgeted generation of discriminating micro-programs.

The generator does not try to produce *realistic* workloads; it produces
*discriminating* ones.  Each drawn program is a sequence of segments
chosen to stress a different slice of the substrate model:

- ``loop``: a counted loop over a drawn instruction mix -- preset
  mapping vectors, FMA normalization, convert drift;
- ``diamond``: a loop whose body is a two-sided if/else diamond with a
  counter-dependent condition -- taken/not-taken/conditional branch
  accounting;
- ``stride``: a pointer walk over the data array at a drawn stride --
  load/store accounting on a moving address;
- ``probed``: a loop whose body retires ``PROBE`` pseudo-instructions --
  instrumentation accounting, and an execution-engine stressor (probes
  are block-break ops, so this body defeats naive block compilation);
- ``calls``: a loop calling into generated leaf functions --
  call/return pairing across the call stack.

Programs are pure functions of a :class:`Genome` (itself a pure function
of the seed), fault-free and terminating by construction, and their
worst-case dynamic instruction count is bounded by the generation
budget.  Genomes serialize to JSON so refuting programs can be committed
to the regression corpus and replayed bit-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.hw.isa import Assembler, Program
from repro.workloads.builder import Flow

# -- the instruction vocabulary ----------------------------------------------
#
# Every op is fault-free given the fixed prologue: r8 holds a nonzero
# integer divisor, f2 a nonzero float divisor, f1 a positive sqrt
# operand, and all memory traffic stays inside the two 64-word arrays
# based at r9 (ints) and r11 (floats).  Offsets are derived
# deterministically from the (segment, op) position so genomes stay
# plain strings.

BODY_OPS: Tuple[str, ...] = (
    "alu_addi", "alu_add", "alu_sub", "alu_mul", "alu_div",
    "fp_add", "fp_sub", "fp_mul", "fp_div", "fp_sqrt", "fp_fma",
    "fp_cvt", "fp_mov",
    "mem_load", "mem_store", "mem_fload", "mem_fstore",
    "probe", "syscall", "nop",
)

#: ops safe inside leaf functions (no control flow, no probes).
LEAF_OPS: Tuple[str, ...] = (
    "alu_addi", "alu_add", "alu_mul", "fp_add", "fp_mul", "fp_fma",
    "fp_cvt", "mem_load", "mem_fload",
)

SEGMENT_KINDS: Tuple[str, ...] = (
    "loop", "diamond", "stride", "probed", "calls",
)

#: words in each data array; all generated offsets/strides stay inside.
ARRAY_WORDS = 64

#: registers the generator must never clobber (prologue constants, loop
#: machinery).  Kept here so tests can assert the discipline.
RESERVED_IREGS = (8, 9, 10, 11, 12, 28, 29)


@dataclass(frozen=True)
class Segment:
    """One generated code region: a counted loop of a given shape."""

    kind: str                   # one of SEGMENT_KINDS
    trips: int                  # loop trip count (>= 1)
    ops: Tuple[str, ...]        # body instruction mix
    stride: int = 1             # stride kind: pointer step in words

    def __post_init__(self) -> None:
        if self.kind not in SEGMENT_KINDS:
            raise ValueError(f"unknown segment kind {self.kind!r}")
        if self.trips < 1:
            raise ValueError("segments need trips >= 1")
        if self.kind == "stride" and not 1 <= self.stride <= ARRAY_WORDS:
            raise ValueError(f"bad stride {self.stride}")
        for op in self.ops:
            if op not in BODY_OPS:
                raise ValueError(f"op {op!r} not in the body vocabulary")


@dataclass(frozen=True)
class Genome:
    """The full heritable description of one generated program."""

    seed: int
    segments: Tuple[Segment, ...]
    leaves: Tuple[Tuple[str, ...], ...] = ()

    def __post_init__(self) -> None:
        for leaf in self.leaves:
            for op in leaf:
                if op not in LEAF_OPS:
                    raise ValueError(f"op {op!r} not allowed in a leaf")


@dataclass(frozen=True)
class GeneratedProgram:
    """A built program plus the model assumptions it exercises."""

    name: str
    genome: Genome
    program: Program
    #: the model-assumption tags this program can discriminate on.
    assumptions: frozenset
    #: conservative upper bound on dynamically executed instructions.
    dynamic_bound: int


# -- dynamic-cost model (upper bounds, used for budgeting) --------------------

def _body_cost(seg: Segment, leaves: Sequence[Tuple[str, ...]]) -> int:
    """Worst-case dynamic instructions per loop trip (excl. loop control)."""
    n = len(seg.ops)
    if seg.kind == "diamond":
        # condition branch + the longer arm + the jmp over the else arm
        then_len = (n + 1) // 2
        else_len = n - then_len
        return 1 + max(then_len + 1, else_len)
    if seg.kind == "stride":
        return n + 2        # the walk's load + pointer addi
    if seg.kind == "probed":
        return n + 1        # the leading probe
    if seg.kind == "calls":
        leaf = leaves[_leaf_index(seg, len(leaves))] if leaves else ()
        return n + 1 + len(leaf) + 1    # call + leaf body + ret
    return n


def _segment_cost(seg: Segment, leaves: Sequence[Tuple[str, ...]]) -> int:
    """Worst-case dynamic instructions for one whole segment."""
    # Flow.loop control: 2 setup + per-trip (bge + addi + jmp) + exit bge;
    # diamond/stride segments add one setup instruction before the loop.
    setup = 1 if seg.kind in ("diamond", "stride") else 0
    return setup + 3 + seg.trips * (3 + _body_cost(seg, leaves))


#: instructions in the fixed prologue (+1 for the final halt).
_PROLOGUE_COST = 8


def dynamic_bound(genome: Genome) -> int:
    """Upper bound on instructions one run of the genome executes."""
    return _PROLOGUE_COST + sum(
        _segment_cost(seg, genome.leaves) for seg in genome.segments
    )


def _leaf_index(seg: Segment, n_leaves: int) -> int:
    """Which leaf a ``calls`` segment targets (deterministic)."""
    return (seg.trips + len(seg.ops)) % max(n_leaves, 1)


# -- assumptions --------------------------------------------------------------

#: tags every program carries regardless of content.
BASE_ASSUMPTIONS = frozenset({
    "preset-mapping", "fetch-geometry", "tier-invariance", "static-bracket",
})

_OP_ASSUMPTIONS: Dict[str, str] = {
    "fp_fma": "fma-normalization",
    "fp_cvt": "convert-drift",
    "mem_load": "memory-stride",
    "mem_store": "memory-stride",
    "mem_fload": "memory-stride",
    "mem_fstore": "memory-stride",
    "probe": "probe-accounting",
    "syscall": "syscall-accounting",
}

_KIND_ASSUMPTIONS: Dict[str, str] = {
    "diamond": "branch-accounting",
    "stride": "memory-stride",
    "probed": "probe-accounting",
    "calls": "call-ret-pairing",
}


def assumptions_of(genome: Genome) -> frozenset:
    """The model-assumption tags a genome's program exercises."""
    tags = set(BASE_ASSUMPTIONS)
    for seg in genome.segments:
        if seg.kind in _KIND_ASSUMPTIONS:
            tags.add(_KIND_ASSUMPTIONS[seg.kind])
        ops = seg.ops
        if seg.kind == "calls" and genome.leaves:
            ops = ops + genome.leaves[_leaf_index(seg, len(genome.leaves))]
        for op in ops:
            if op in _OP_ASSUMPTIONS:
                tags.add(_OP_ASSUMPTIONS[op])
    return frozenset(tags)


# -- program construction -----------------------------------------------------

def _emit_op(asm: Assembler, op: str, i: int, j: int) -> None:
    """Emit one vocabulary op.  (i, j) = (segment, position) for offsets."""
    if op == "alu_addi":
        asm.addi("r2", "r2", j + 1)
    elif op == "alu_add":
        asm.add("r4", "r4", "r2")
    elif op == "alu_sub":
        asm.sub("r5", "r4", "r2")
    elif op == "alu_mul":
        asm.muli("r5", "r2", 3)
    elif op == "alu_div":
        asm.div("r6", "r4", "r8")
    elif op == "fp_add":
        asm.fadd("f3", "f1", "f2")
    elif op == "fp_sub":
        asm.fsub("f4", "f1", "f2")
    elif op == "fp_mul":
        asm.fmul("f5", "f1", "f2")
    elif op == "fp_div":
        asm.fdiv("f6", "f1", "f2")
    elif op == "fp_sqrt":
        asm.fsqrt("f6", "f1")
    elif op == "fp_fma":
        asm.fma("f10", "f1", "f2", "f3")
    elif op == "fp_cvt":
        asm.fcvt("f4", "f3")
    elif op == "fp_mov":
        asm.fmov("f5", "f4")
    elif op == "mem_load":
        asm.load("r7", "r9", (i * 7 + j) % ARRAY_WORDS)
    elif op == "mem_store":
        asm.store("r2", "r9", (i * 11 + j) % ARRAY_WORDS)
    elif op == "mem_fload":
        asm.fload("f3", "r11", (i * 5 + j) % ARRAY_WORDS)
    elif op == "mem_fstore":
        asm.fstore("f3", "r11", (i * 13 + j) % ARRAY_WORDS)
    elif op == "probe":
        asm.probe((i + j) % 7 + 1)
    elif op == "syscall":
        asm.syscall(1)
    elif op == "nop":
        asm.nop()
    else:
        raise ValueError(f"unknown op {op!r}")


def build_program(genome: Genome) -> Program:
    """Lower a genome to a runnable, fault-free :class:`Program`."""
    asm = Assembler(name=f"refute-{genome.seed:#x}")
    flow = Flow(asm)
    # only leaves actually targeted by a calls segment are emitted, so
    # shrunk reproducers carry no dead code.
    used_leaves = sorted({
        _leaf_index(seg, len(genome.leaves))
        for seg in genome.segments
        if seg.kind == "calls" and genome.leaves
    })
    for li in used_leaves:
        asm.func(f"leaf{li}")
        for j, op in enumerate(genome.leaves[li]):
            _emit_op(asm, op, 97 + li, j)
        asm.ret()
        asm.endfunc()

    asm.func("main")
    ibase = asm.init_array([1 + (k % 7) for k in range(ARRAY_WORDS)])
    fbase = asm.init_array([1.0 + 0.25 * (k % 5) for k in range(ARRAY_WORDS)])
    asm.li("r8", 3)         # integer divisor
    asm.li("r9", ibase)     # int array base
    asm.li("r11", fbase)    # float array base
    asm.fli("f1", 1.25)     # positive sqrt operand / fp source
    asm.fli("f2", 0.5)      # float divisor

    for i, seg in enumerate(genome.segments):
        if seg.kind == "diamond":
            # first half of the trips take the then-arm
            asm.li("r12", max(1, seg.trips // 2))
        elif seg.kind == "stride":
            asm.li("r10", ibase)
        with flow.loop(seg.trips, "r28", "r29"):
            if seg.kind == "diamond":
                then_ops = seg.ops[: (len(seg.ops) + 1) // 2]
                else_ops = seg.ops[(len(seg.ops) + 1) // 2:]

                def _arm(ops, i=i):
                    def emit():
                        for j, op in enumerate(ops):
                            _emit_op(asm, op, i, j)
                    return emit

                flow.diamond_lt("r28", "r12",
                                _arm(then_ops), _arm(else_ops))
            elif seg.kind == "stride":
                asm.load("r7", "r10", 0)
                asm.addi("r10", "r10", seg.stride)
                for j, op in enumerate(seg.ops):
                    _emit_op(asm, op, i, j)
            elif seg.kind == "probed":
                asm.probe(i % 7 + 1)
                for j, op in enumerate(seg.ops):
                    _emit_op(asm, op, i, j)
            elif seg.kind == "calls":
                asm.call(f"leaf{_leaf_index(seg, len(genome.leaves))}")
                for j, op in enumerate(seg.ops):
                    _emit_op(asm, op, i, j)
            else:
                for j, op in enumerate(seg.ops):
                    _emit_op(asm, op, i, j)
    asm.halt()
    asm.endfunc()
    return asm.build()


# -- generation ---------------------------------------------------------------

def _draw_segment(rng: random.Random, leaves: Sequence[Tuple[str, ...]],
                  remaining: int) -> Segment:
    """Draw one segment whose worst-case cost fits in *remaining*."""
    kind = rng.choice(SEGMENT_KINDS if leaves else
                      tuple(k for k in SEGMENT_KINDS if k != "calls"))
    n_ops = rng.randint(1 if kind in ("loop", "diamond") else 0, 6)
    ops = tuple(rng.choice(BODY_OPS) for _ in range(n_ops))
    stride = rng.choice((1, 2, 4, 8)) if kind == "stride" else 1
    # stride walks are bounded by the array; other kinds draw deep trip
    # counts so programs actually fill their dynamic budget (the clamp
    # below halves back into range) -- big straight runs matter for the
    # sampling substrate, where a preset is only decidable once enough
    # interrupt matches are expected.
    max_trips = ARRAY_WORDS // stride if kind == "stride" else 300
    trips = rng.randint(1, max_trips)
    seg = Segment(kind=kind, trips=trips, ops=ops, stride=stride)
    # clamp trips so the segment fits the remaining dynamic budget
    while seg.trips > 1 and _segment_cost(seg, leaves) > remaining:
        seg = Segment(kind=kind, trips=max(1, seg.trips // 2), ops=ops,
                      stride=stride)
    return seg


def generate(
    seed: int,
    count: int = 6,
    budget: int = 6_000,
    max_segments: int = 4,
) -> List[GeneratedProgram]:
    """Generate *count* programs, each executing at most *budget* ins.

    Deterministic: the same ``(seed, count, budget, max_segments)``
    yields byte-identical programs on every machine and Python build
    (the only entropy source is ``random.Random(seed)``).
    """
    if count < 1:
        raise ValueError("need count >= 1")
    if budget < 64:
        raise ValueError("budget too small to fit any program")
    rng = random.Random(int(seed))
    out: List[GeneratedProgram] = []
    for index in range(count):
        n_leaves = rng.randint(0, 2)
        leaves = tuple(
            tuple(rng.choice(LEAF_OPS)
                  for _ in range(rng.randint(1, 3)))
            for _ in range(n_leaves)
        )
        segments: List[Segment] = []
        spent = _PROLOGUE_COST
        for _ in range(rng.randint(1, max_segments)):
            remaining = budget - spent
            if remaining < 16:
                break
            seg = _draw_segment(rng, leaves, remaining)
            cost = _segment_cost(seg, leaves)
            if spent + cost > budget:
                # halve trips until it fits; drop the segment if even a
                # single trip overruns
                trips = seg.trips
                while trips > 1 and spent + _segment_cost(
                    Segment(seg.kind, trips, seg.ops, seg.stride), leaves
                ) > budget:
                    trips //= 2
                seg = Segment(seg.kind, trips, seg.ops, seg.stride)
                cost = _segment_cost(seg, leaves)
                if spent + cost > budget:
                    continue
            segments.append(seg)
            spent += cost
        if not segments:
            segments = [Segment(kind="loop", trips=1, ops=("alu_addi",))]
            spent += _segment_cost(segments[0], leaves)
        genome = Genome(seed=int(seed), segments=tuple(segments),
                        leaves=leaves)
        out.append(GeneratedProgram(
            name=f"g{index}",
            genome=genome,
            program=build_program(genome),
            assumptions=assumptions_of(genome),
            dynamic_bound=dynamic_bound(genome),
        ))
    return out


# -- genome (de)serialization -------------------------------------------------

def genome_to_json(genome: Genome) -> Dict[str, object]:
    """Plain-JSON form of a genome (the corpus on-disk format)."""
    return {
        "seed": genome.seed,
        "segments": [
            {"kind": s.kind, "trips": s.trips, "ops": list(s.ops),
             "stride": s.stride}
            for s in genome.segments
        ],
        "leaves": [list(leaf) for leaf in genome.leaves],
    }


def genome_from_json(data: Dict[str, object]) -> Genome:
    """Inverse of :func:`genome_to_json` (validates on construction)."""
    return Genome(
        seed=int(data["seed"]),
        segments=tuple(
            Segment(kind=s["kind"], trips=int(s["trips"]),
                    ops=tuple(s["ops"]), stride=int(s.get("stride", 1)))
            for s in data["segments"]
        ),
        leaves=tuple(tuple(leaf) for leaf in data.get("leaves", ())),
    )

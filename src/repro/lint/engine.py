"""The papi-lint engine: parse, analyze, suppress, sort.

One entry point per input kind:

- :func:`lint_source` / :func:`lint_file` run the AST API-misuse
  checker (with its embedded feasibility and preset-table hooks) over a
  Python instrumentation script;
- the feasibility and preset-table analyzers are also usable directly
  via :mod:`repro.lint.feasibility` and :mod:`repro.lint.presetlint`
  for the ``check-events`` / ``check-presets`` CLI verbs.

A file that does not parse yields exactly one PL900 diagnostic at the
syntax error's position rather than raising -- linters report, they do
not crash.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.apilint import ApiLinter
from repro.lint.diagnostics import (
    Diagnostic,
    apply_suppressions,
    parse_suppressions,
    sort_diagnostics,
)


def lint_source(
    source: str,
    path: str = "<string>",
    default_platform: Optional[str] = None,
) -> List[Diagnostic]:
    """Lint Python *source*; returns sorted, suppression-filtered findings.

    *default_platform* supplies a platform for feasibility checks when
    the script itself does not pin one statically (the CLI's
    ``--platform`` flag).
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Diagnostic(
            "PL900", path, exc.lineno or 0, (exc.offset or 1) - 1,
            f"cannot parse: {exc.msg}",
        )]
    linter = ApiLinter(path, default_platform=default_platform)
    diagnostics = linter.lint(tree)
    diagnostics = apply_suppressions(
        diagnostics, parse_suppressions(source)
    )
    return sort_diagnostics(diagnostics)


def lint_file(
    path: str, default_platform: Optional[str] = None
) -> List[Diagnostic]:
    """Lint one file on disk (unreadable files become PL900)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
    except OSError as exc:
        return [Diagnostic(
            "PL900", path, 0, 0, f"cannot read file: {exc.strerror}",
        )]
    return lint_source(source, path, default_platform=default_platform)

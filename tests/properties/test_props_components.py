"""Property-based tests: mixed CPU/component EventSets keep every contract.

Random mixed EventSets (CPU presets plus uncore/energy members) crossed
with every substrate, engine tier and 1/4-CPU machines:

- **oracle derivation**: every component read equals the value derived
  from architecturally determined signals -- uncore bandwidth from
  oracle store counts and the machine's line-fill tally, energy from
  its documented closed form -- exactly, never approximately (the banks
  are free-running);
- **virtualized conservation**: a CPU member attached to one thread on
  a 4-CPU machine still equals the oracle count of that thread's
  program alone, however often the scheduler migrates it, while the
  socket-scoped component members see the whole machine;
- **placement invariance**: component values are identical on 1- and
  4-CPU machines running the same program (uncore and energy counters
  live on the socket, not on any CPU).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.library import Papi
from repro.hw.events import Signal
from repro.platforms import DIRECT_PLATFORMS, PLATFORM_NAMES, create
from repro.validate.oracle import expected_signal_counts
from repro.workloads import conformance_mix, decoy_spin

TIERS = ("off", "block", "trace")

#: never more than two uncore picks: two is the narrowest uncore bank
#: in the fleet, so every drawn set adds cleanly on every platform.
UNCORE_EVENTS = (
    "uncore:::MEM_BW_RD",
    "uncore:::MEM_BW_WR",
    "uncore:::UNC_L2_LINES_IN",
    "uncore:::UNC_TLB_WALKS",
)
ENERGY_EVENTS = (
    "energy:::PKG_ENERGY",
    "energy:::CORE_ENERGY",
    "energy:::DRAM_ENERGY",
)

component_sets = st.tuples(
    st.lists(st.sampled_from(UNCORE_EVENTS), unique=True, max_size=2),
    st.lists(st.sampled_from(ENERGY_EVENTS), unique=True, max_size=3),
).map(lambda t: tuple(t[0]) + tuple(t[1])).filter(bool)

cpu_sets = st.sampled_from(
    (("PAPI_TOT_INS",), ("PAPI_TOT_INS", "PAPI_TOT_CYC"))
)


def _expected_component_value(name, machine, oracle_counts):
    """The validate-oracle derivation of one component event."""
    lines_in = machine.signal_total(Signal.L2_MISS)
    core = (3 * machine.signal_total(Signal.TOT_CYC)
            + 2 * machine.signal_total(Signal.TOT_INS))
    dram = 5 * lines_in
    return {
        "uncore:::MEM_BW_RD": lines_in * machine.hierarchy.l2_line_bytes,
        "uncore:::MEM_BW_WR": 8 * oracle_counts[Signal.SR_INS],
        "uncore:::UNC_L2_LINES_IN": lines_in,
        "uncore:::UNC_TLB_WALKS": machine.signal_total(Signal.TLB_DM),
        "energy:::CORE_ENERGY": core,
        "energy:::DRAM_ENERGY": dram,
        "energy:::PKG_ENERGY": core + dram,
    }[name]


def _run_mixed(platform, tier, ncpus, cpu_events, cmp_events, n):
    substrate = create(platform, engine=tier, ncpus=ncpus)
    papi = Papi(substrate)
    if substrate.supports_sampling_counts():
        papi.sampling_period = 64
    papi.component("uncore")
    papi.component("energy")
    es = papi.create_eventset()
    es.add_named(*cpu_events)
    es.add_named(*cmp_events)
    workload = conformance_mix(n, use_fma=substrate.HAS_FMA)
    substrate.machine.load(workload.program)
    es.start()
    substrate.machine.run_to_completion()
    values = dict(zip(es.event_names, es.stop()))
    papi.destroy_eventset(es)
    return substrate, values, expected_signal_counts(workload.program)


@settings(max_examples=40)
@given(
    platform=st.sampled_from(PLATFORM_NAMES),
    tier=st.sampled_from(TIERS),
    ncpus=st.sampled_from((1, 4)),
    cpu_events=cpu_sets,
    cmp_events=component_sets,
    n=st.integers(min_value=30, max_value=100),
)
def test_component_reads_match_oracle_derivation(
    platform, tier, ncpus, cpu_events, cmp_events, n
):
    substrate, values, oracle_counts = _run_mixed(
        platform, tier, ncpus, cpu_events, cmp_events, n
    )
    machine = substrate.machine
    for name in cmp_events:
        assert values[name] == _expected_component_value(
            name, machine, oracle_counts
        ), f"{name} diverged from its oracle derivation on {platform}"
    if not substrate.supports_sampling_counts():
        assert values["PAPI_TOT_INS"] == oracle_counts[Signal.TOT_INS]


@settings(max_examples=25)
@given(
    platform=st.sampled_from(DIRECT_PLATFORMS),
    tier=st.sampled_from(TIERS),
    cmp_events=component_sets,
    n=st.integers(min_value=30, max_value=80),
)
def test_virtualized_cpu_conserved_uncore_socket_scoped(
    platform, tier, cmp_events, n
):
    substrate = create(platform, engine=tier, ncpus=4)
    papi = Papi(substrate)
    papi.component("uncore")
    papi.component("energy")
    workload = conformance_mix(n, use_fma=substrate.HAS_FMA)
    expected_ins = expected_signal_counts(workload.program)[Signal.TOT_INS]
    worker = substrate.os.spawn(workload.program, name="work")
    substrate.os.spawn(decoy_spin(20 * n).program, name="decoy")
    es = papi.create_eventset()
    es.add_named("PAPI_TOT_INS")
    es.add_named(*cmp_events)
    es.attach(worker)
    es.start()
    substrate.os.run()
    values = dict(zip(es.event_names, es.stop()))
    papi.destroy_eventset(es)
    # the virtualized CPU member saw exactly its thread, decoy and
    # migrations notwithstanding ...
    assert values["PAPI_TOT_INS"] == expected_ins
    # ... while socket-scoped members saw the whole machine: the
    # closed forms below are totals over every CPU and both threads
    machine = substrate.machine
    lines_in = machine.signal_total(Signal.L2_MISS)
    core = (3 * machine.signal_total(Signal.TOT_CYC)
            + 2 * machine.signal_total(Signal.TOT_INS))
    socket = {
        "uncore:::MEM_BW_RD": lines_in * machine.hierarchy.l2_line_bytes,
        "uncore:::MEM_BW_WR": 8 * machine.signal_total(Signal.SR_INS),
        "uncore:::UNC_L2_LINES_IN": lines_in,
        "uncore:::UNC_TLB_WALKS": machine.signal_total(Signal.TLB_DM),
        "energy:::CORE_ENERGY": core,
        "energy:::DRAM_ENERGY": 5 * lines_in,
        "energy:::PKG_ENERGY": core + 5 * lines_in,
    }
    for name in cmp_events:
        assert values[name] == socket[name]


@settings(max_examples=25)
@given(
    platform=st.sampled_from(PLATFORM_NAMES),
    tier=st.sampled_from(TIERS),
    cmp_events=component_sets,
    n=st.integers(min_value=30, max_value=80),
)
def test_component_counts_placement_invariant(
    platform, tier, cmp_events, n
):
    """The same program yields identical component values at any ncpus."""
    runs = {}
    for ncpus in (1, 4):
        _sub, values, _counts = _run_mixed(
            platform, tier, ncpus, ("PAPI_TOT_INS",), cmp_events, n
        )
        runs[ncpus] = {name: values[name] for name in cmp_events}
    assert runs[1] == runs[4], (
        f"component counts moved with CPU count on {platform}/{tier}"
    )

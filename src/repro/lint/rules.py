"""The papi-lint rule registry.

Every diagnostic papi-lint can emit is declared here with a stable code,
a default severity, and the paper section whose lesson it mechanizes.
Rule codes are grouped by analyzer:

- ``PL0xx`` -- API-misuse rules from the AST state machine
  (:mod:`repro.lint.apilint`);
- ``PL1xx`` -- static EventSet feasibility rules
  (:mod:`repro.lint.feasibility`);
- ``PL2xx`` -- preset-table cross-validation rules
  (:mod:`repro.lint.presetlint`);
- ``PL9xx`` -- engine-level problems (unparseable input).

Severities: an ``error`` is a call sequence or configuration that the
runtime would reject (or that yields numbers known to be wrong); a
``warning`` is legal but hazardous -- the "silently produces wrong
counts" class the paper's Section 2-3 lessons are about; ``info``
surfaces portability/semantics facts worth knowing without failing a
build.  Only errors affect the lint exit status.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so max() picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Rule:
    """One lint rule: stable code, severity, summary, paper anchor."""

    code: str
    severity: Severity
    summary: str
    #: which part of the paper the rule reproduces ("Section 2", "E3", ...)
    paper: str
    #: names of PAPI exception types whose except-handler statically
    #: guards this rule (a try/except around the call shows intent, so
    #: the diagnostic is suppressed -- see repro.lint.apilint).
    guards: Tuple[str, ...] = ()


_PAPI_GUARD = ("PapiError",)

RULES: Dict[str, Rule] = {
    r.code: r
    for r in [
        # -- API misuse (AST state machine) -----------------------------
        Rule("PL001", Severity.ERROR,
             "read/stop/reset/accum on an EventSet that is not running",
             "Section 5 (EventSet run control)",
             guards=("NotRunningError",) + _PAPI_GUARD),
        Rule("PL002", Severity.ERROR,
             "start on an EventSet (or high-level set) that is already "
             "running",
             "Section 5 (EventSet run control)",
             guards=("IsRunningError",) + _PAPI_GUARD),
        Rule("PL003", Severity.WARNING,
             "set_multiplex called after events were already added",
             "Section 2 (multiplexing is an explicit low-level opt-in)"),
        Rule("PL004", Severity.WARNING,
             "multiplexed measurement over a run too short for the "
             "time-slice estimates to converge",
             "Section 3, experiment E3 (multiplexing error on short runs)"),
        Rule("PL005", Severity.WARNING,
             "overflow registered on a running EventSet (not portable; "
             "the C library requires a stopped EventSet)",
             "Section 2 (overflow dispatch)"),
        Rule("PL006", Severity.WARNING,
             "high-level and low-level counting mixed on one library "
             "instance",
             "Section 2 (the two interfaces must not be interleaved)"),
        Rule("PL007", Severity.ERROR,
             "membership or configuration change on a running EventSet",
             "Section 5 (EventSet run control)",
             guards=("IsRunningError",) + _PAPI_GUARD),
        Rule("PL008", Severity.WARNING,
             "EventSet started but never stopped in its scope (counters "
             "stay acquired)",
             "Section 5 (one running EventSet at a time)"),
        Rule("PL009", Severity.ERROR,
             "overflow and multiplexing combined on one EventSet",
             "Section 2 (features documented as mutually exclusive)",
             guards=("InvalidArgumentError",) + _PAPI_GUARD),
        Rule("PL010", Severity.ERROR,
             "unknown event name",
             "Section 4 (preset/native event namespace)",
             guards=("NoSuchEventError", "NotPresetError",
                     "NoSuchComponentError") + _PAPI_GUARD),
        Rule("PL011", Severity.WARNING,
             "event is not available on the bound platform",
             "Section 4 / experiment E8 (the portability matrix)",
             guards=("NoSuchEventError",) + _PAPI_GUARD),
        Rule("PL012", Severity.ERROR,
             "event added twice to the same EventSet",
             "Section 5 (EventSet membership)",
             guards=("InvalidArgumentError",) + _PAPI_GUARD),
        Rule("PL013", Severity.WARNING,
             "two EventSets started concurrently on one library "
             "(overlapping EventSets are unsupported)",
             "Section 5 (PAPI 3 removes overlapping EventSets)",
             guards=("IsRunningError",) + _PAPI_GUARD),
        Rule("PL014", Severity.ERROR,
             "attach or detach on a running EventSet (per-thread "
             "counters cannot be re-homed mid-run)",
             "Section 2 (thread-level counting; DADD attach semantics)",
             guards=("IsRunningError",) + _PAPI_GUARD),
        Rule("PL015", Severity.WARNING,
             "EventSet re-attached to a different thread without an "
             "intervening detach (the first thread's counts are "
             "silently discarded)",
             "Section 2 (thread-level counting)"),
        Rule("PL016", Severity.ERROR,
             "PMU counter index bound to two different threads (a "
             "counter register is exclusive machine-wide)",
             "Section 5 (counter allocation); SMP counter virtualization",
             guards=("OSError_", "OSError") + _PAPI_GUARD),
        Rule("PL017", Severity.WARNING,
             "PAPI error swallowed: a broad except around counter calls "
             "with a pass-only body discards the error code",
             "Section 4 (uniform error codes across every platform)"),
        Rule("PL018", Severity.WARNING,
             "PapidClient constructed without a context manager or a "
             "close() call (client-owned daemon sessions leak)",
             "DESIGN.md (fleet daemon: clients own their sessions)"),
        Rule("PL019", Severity.WARNING,
             "component event used without checking the component is "
             "registered (component sets differ across substrates)",
             "DESIGN.md (component architecture: PAPI_ENOCMP contract)",
             guards=("NoSuchComponentError", "NoSuchEventError",
                     "SubstrateFeatureError") + _PAPI_GUARD),
        # -- flow-sensitive typestate (CFG dataflow engine) --------------
        Rule("PL301", Severity.ERROR,
             "an operation requiring a running EventSet is reachable "
             "along a path on which the set is not running",
             "Section 5 (EventSet run control); CFG dataflow",
             guards=("NotRunningError",) + _PAPI_GUARD),
        Rule("PL302", Severity.ERROR,
             "an operation requiring a stopped EventSet (start, "
             "membership or configuration change, attach/detach) is "
             "reachable along a path on which the set is running",
             "Section 5 (EventSet run control); CFG dataflow",
             guards=("IsRunningError",) + _PAPI_GUARD),
        Rule("PL303", Severity.WARNING,
             "EventSet leaked on an exception path: a handler swallows "
             "the exception and the scope exits with the set running",
             "Section 5 (counters stay acquired until stop)"),
        Rule("PL304", Severity.WARNING,
             "an exception escaping this try leaves the EventSet "
             "running; the finally block does not stop it",
             "Section 5 (counters stay acquired until stop)"),
        Rule("PL305", Severity.WARNING,
             "recovery-ladder misuse: a fatal (non-transient) PAPI "
             "error class is blindly retried in a loop",
             "Fault model & recovery (core/resilience.py ladder)"),
        # -- flow-sensitive SMP/thread rules -----------------------------
        Rule("PL401", Severity.ERROR,
             "one EventSet is shared between two spawned threads "
             "without bind_cpu (virtual counts follow a single owner)",
             "SMP counter virtualization (PR 3); Section 2 threads",
             guards=("IsRunningError",) + _PAPI_GUARD),
        Rule("PL402", Severity.WARNING,
             "off-CPU counter read bypasses counter-home routing: a "
             "thread-bound counter is read directly from one PMU "
             "although migration may have re-homed it",
             "SMP counter virtualization (migration-safe reads)"),
        Rule("PL403", Severity.ERROR,
             "OS-level counter operation on an index that may not be "
             "bound to the thread on some path",
             "SMP counter virtualization (bind_counter lifecycle)",
             guards=("OSError_", "OSError") + _PAPI_GUARD),
        # -- static EventSet feasibility --------------------------------
        Rule("PL101", Severity.ERROR,
             "EventSet cannot be mapped onto the platform's physical "
             "counters (allocation conflict)",
             "Section 5 (counter allocation as bipartite matching)",
             guards=("ConflictError",) + _PAPI_GUARD),
        Rule("PL102", Severity.WARNING,
             "multiplexing enabled although the events fit the physical "
             "counters directly (exact counts traded for estimates)",
             "Section 2-3 (multiplexed counts are estimates)"),
        Rule("PL103", Severity.INFO,
             "EventSet is feasible here but not on every platform",
             "Section 4 / experiment E8 (the portability matrix)"),
        # -- preset table cross-validation ------------------------------
        Rule("PL201", Severity.ERROR,
             "preset mapping references a native event the platform does "
             "not define",
             "Section 4 (per-platform preset translation tables)"),
        Rule("PL202", Severity.ERROR,
             "malformed preset mapping (unknown symbol, duplicate or "
             "zero-coefficient term)",
             "Section 4 (per-platform preset translation tables)"),
        Rule("PL203", Severity.ERROR,
             "missing FMA normalization: PAPI_FP_OPS on an FMA-capable "
             "platform must count a fused multiply-add as two operations",
             "Section 4 / experiment E6 (FP_OPS normalization)"),
        Rule("PL204", Severity.INFO,
             "platform semantics deviate from the preset's reference "
             "vector (per-platform semantic drift)",
             "Section 4 (the POWER3 rounding-instruction discrepancy)"),
        # -- engine ------------------------------------------------------
        Rule("PL900", Severity.ERROR,
             "file cannot be parsed as Python",
             "-"),
    ]
}


def rule(code: str) -> Rule:
    """Look up a rule by code; raises KeyError for unknown codes."""
    return RULES[code]

"""Replay the committed refutation-regression corpus (tier-1).

Each corpus file is a minimal program that once refuted a catalogued
model mutant.  Replaying it is a two-sided regression:

- against the **clean** model the cell must NOT refute -- a refutation
  here means real model/measurement drift crept into the tree, caught
  by a reproducer small enough to debug by eye;
- against the **catalogued mutant** it must STILL refute -- if not, the
  corpus (or the harness) went stale and needs regeneration.

Regeneration policy: see :mod:`tests.refute.regen_corpus`.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.refute.engine import RefutationEngine, RefuteConfig
from repro.refute.generator import genome_from_json
from repro.refute.mutations import MUTANTS
from repro.refute.predictor import SubstrateModel
from tests.refute.regen_corpus import (
    COMMITTED_SEED,
    CORPUS_DIR,
    CORPUS_SCHEMA,
)

_MUTANTS = {m.name: m for m in MUTANTS}


def _entries():
    files = sorted(
        name for name in os.listdir(CORPUS_DIR) if name.endswith(".json")
    )
    out = []
    for name in files:
        with open(os.path.join(CORPUS_DIR, name)) as fh:
            out.append(json.load(fh))
    return out


ENTRIES = _entries()


def _engine(platform, model=None):
    config = RefuteConfig.quick(seed=COMMITTED_SEED, platforms=[platform])
    # replay needs no shrinking: the corpus is already minimal
    config = RefuteConfig(**{**config.__dict__, "shrink": False})
    models = {platform: model} if model is not None else None
    return RefutationEngine(config, models=models)


def test_corpus_is_present_and_well_formed():
    assert ENTRIES, (
        "empty corpus -- run `python -m tests.refute.regen_corpus`"
    )
    for entry in ENTRIES:
        assert entry["schema"] == CORPUS_SCHEMA
        assert entry["mutant"] in _MUTANTS
        assert entry["reproducer_len"] <= 30
        genome = genome_from_json(entry["genome"])
        assert genome.segments


def test_every_program_reproducible_mutant_has_an_entry():
    names = {entry["mutant"] for entry in ENTRIES}
    expected = {m.name for m in MUTANTS if m.assumption != "cost-model"}
    assert names == expected, (
        "corpus out of sync with the mutant catalogue -- "
        "run `python -m tests.refute.regen_corpus`"
    )


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=lambda e: e["mutant"] if ENTRIES else None
)
def test_clean_model_confirms(entry):
    engine = _engine(entry["platform"])
    cell = engine.replay(
        entry["platform"], genome_from_json(entry["genome"]), entry["check"]
    )
    assert cell.status == "confirmed", (
        f"corpus reproducer for {entry['mutant']} now disagrees with the "
        f"CLEAN model: real drift introduced ({cell.detail})"
    )


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=lambda e: e["mutant"] if ENTRIES else None
)
def test_mutant_model_still_refuted(entry):
    mutant = _MUTANTS[entry["mutant"]]
    model = mutant.mutate(SubstrateModel.of(entry["platform"]))
    engine = _engine(entry["platform"], model)
    cell = engine.replay(
        entry["platform"], genome_from_json(entry["genome"]), entry["check"]
    )
    assert cell.status == "refuted", (
        f"stale corpus: {entry['mutant']}'s reproducer no longer refutes "
        f"its mutant -- regenerate (see regen_corpus policy)"
    )

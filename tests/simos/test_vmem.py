"""Unit tests: memory accounting (the PAPI-3 extension substrate)."""

import pytest

from repro.hw import Machine
from repro.simos import OS, MemoryAccounting, Thread
from repro.workloads import tlb_walker


def touch_pages_program(pages, page_words=512):
    return tlb_walker(pages, page_words=page_words).program


class TestMemoryAccounting:
    def test_rss_counts_touched_pages(self):
        m = Machine()
        os_ = OS(m, phys_pages=1024)
        t = os_.spawn(touch_pages_program(10))
        os_.run()
        info = os_.memory_info(t)
        assert info.thread_rss_pages == 10
        assert info.used_pages == 10
        assert info.free_pages == 1024 - 10

    def test_hwm_monotone(self):
        m = Machine()
        os_ = OS(m, quantum_cycles=500, phys_pages=1024)
        t = os_.spawn(touch_pages_program(12))
        hwms = []
        while not os_.all_finished():
            os_.run(max_slices=1)
            hwms.append(t.hwm_pages)
        assert hwms == sorted(hwms)
        assert hwms[-1] == 12

    def test_swap_model_triggers_beyond_capacity(self):
        m = Machine()
        os_ = OS(m, phys_pages=4)
        t = os_.spawn(touch_pages_program(10))
        os_.run()
        info = os_.memory_info(t)
        assert info.swapped_pages == 6
        assert info.swap_events >= 6
        assert info.free_pages == 0

    def test_two_threads_share_node_capacity(self):
        m = Machine()
        os_ = OS(m, phys_pages=1024)
        t1 = os_.spawn(touch_pages_program(5))
        t2 = os_.spawn(touch_pages_program(7))
        os_.run()
        info = os_.memory_info(t1)
        assert info.thread_rss_pages == 5
        assert info.used_pages == 12

    def test_locality_histogram(self):
        m = Machine()
        os_ = OS(m, phys_pages=1024)
        t = os_.spawn(touch_pages_program(16))
        os_.run()
        hist = os_.vmem.locality_histogram(t, buckets=4)
        assert sum(hist.values()) == 16
        assert len(hist) <= 4

    def test_empty_thread_histogram(self):
        m = Machine()
        os_ = OS(m)
        t = os_.spawn(touch_pages_program(4))
        # not run yet: no pages touched
        assert os_.vmem.locality_histogram(t) == {}

    def test_info_bytes_properties(self):
        m = Machine()
        os_ = OS(m, phys_pages=1024)
        t = os_.spawn(touch_pages_program(3))
        os_.run()
        info = os_.memory_info(t)
        assert info.thread_rss_bytes == 3 * info.page_bytes
        assert info.used_bytes == info.used_pages * info.page_bytes

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            MemoryAccounting(page_bytes=0, total_pages=10)
        with pytest.raises(ValueError):
            MemoryAccounting(page_bytes=4096, total_pages=0)


class TestThreadObject:
    def test_create_binds_program(self):
        prog = touch_pages_program(2)
        t = Thread.create(1, prog)
        assert t.program is prog
        assert not t.finished
        assert t.context.pc == prog.label_at(prog.entry)

    def test_bind_duplicate_counter_rejected(self):
        t = Thread.create(1, touch_pages_program(2))
        t.bind_counter(0)
        with pytest.raises(ValueError):
            t.bind_counter(0)

    def test_unbind_missing_is_noop(self):
        t = Thread.create(1, touch_pages_program(2))
        t.unbind_counter(5)  # must not raise


class TestAccountingEdgeCases:
    def test_negative_config_rejected(self):
        with pytest.raises(ValueError, match="must be positive"):
            MemoryAccounting(page_bytes=-4096, total_pages=16)
        with pytest.raises(ValueError, match="must be positive"):
            MemoryAccounting(page_bytes=4096, total_pages=-1)

    def test_swap_events_count_only_new_excess(self):
        m = Machine()
        os_ = OS(m, phys_pages=4)
        t = os_.spawn(touch_pages_program(10))
        os_.run()
        first = os_.memory_info(t).swap_events
        assert first > 0
        # steady state: refreshing accounting swaps nothing further
        os_.vmem.update([t])
        assert os_.memory_info(t).swap_events == first

    def test_locality_histogram_bucket_cap(self):
        m = Machine()
        os_ = OS(m, phys_pages=1024)
        t = os_.spawn(touch_pages_program(2))
        os_.run()
        hist = os_.vmem.locality_histogram(t, buckets=8)
        # 2 pages cannot fill more than 2 buckets, mass is conserved
        assert sum(hist.values()) == 2
        assert len(hist) <= 2

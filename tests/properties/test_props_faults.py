"""Stateful property test: the EventSet state machine under chaos.

Hypothesis interleaves random PAPI API calls with a seeded chaos fault
schedule (transients, thefts, corruption) and verifies that the
self-healing runtime keeps the state machine legal at every step:

- the model and the library always agree on running/stopped, and the
  library's single-running-EventSet discipline survives every fault;
- successful reads stay monotone and plausible even across recoveries
  and corruption clamps;
- when an operation fails for good, the EventSet is crash-consistent:
  fully stopped, counters released, the failure on the health ledger;
- the health record itself stays well-formed and JSON-serializable.

A determinism property rides along: one (seed, profile, program) triple
reproduces the identical fault schedule, outcome and health -- including
identical *failures*.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
import hypothesis.strategies as st

from repro.core import constants as C
from repro.core.errors import PapiError
from repro.core.library import Papi
from repro.faults import PROFILES, FaultInjector, FaultPlan, attach_from_spec
from repro.platforms import create
from repro.tools.papirun import papirun
from repro.workloads import dot, phased

#: single-native presets that fit simT3E's four free counters together,
#: so recovery after one theft usually has somewhere to go.
CANDIDATES = ["PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_FP_OPS"]


@pytest.fixture(autouse=True)
def _no_ambient_fault_profile(monkeypatch):
    """These tests seed their own injectors; the CI chaos knob must not
    stack a second environment-driven one onto the same substrate."""
    monkeypatch.delenv("REPRO_FAULT_PROFILE", raising=False)


class FaultyEventSetMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(min_value=0, max_value=2**16))
    def setup(self, seed):
        self.substrate = create("simT3E")
        self.injector = FaultInjector(FaultPlan(seed, PROFILES["chaos"]))
        self.substrate.attach_faults(self.injector)
        self.papi = Papi(self.substrate)
        self.es = self.papi.create_eventset()
        work = phased([("fp", 2000), ("mem", 2000)], repeats=50)
        self.substrate.machine.load(work.program)
        self.members = []
        self.running = False
        self.last_read = None

    # ------------------------------------------------------------------

    def _reconcile_after_failure(self, exc):
        """A legal op raised: the library must be in a coherent state."""
        self.running = self.es.running
        self.last_read = None
        if self.es.running:
            # a pure transient that survived retries: nothing torn down,
            # but the retry ladder must have been exercised.
            assert self.papi._running_handle == self.es.handle
            assert self.es.health.retries > 0
        else:
            # recovery gave up: crash-consistent emergency stop, with
            # the failure recorded on the ledger.
            assert self.papi._running_handle is None
            assert self.es.health.lost_intervals
            assert not self.es.health.lost_intervals[-1].recovered

    # ------------------------------------------------------------------

    @rule(symbol=st.sampled_from(CANDIDATES))
    def add_event(self, symbol):
        code = self.papi.event_name_to_code(symbol)
        if self.running or symbol in self.members:
            try:
                self.es.add_event(code)
                raise AssertionError("add must fail while running/duplicate")
            except PapiError:
                pass
        else:
            self.es.add_event(code)
            self.members.append(symbol)
            self.last_read = None

    @rule()
    def start(self):
        if self.running or not self.members:
            try:
                self.es.start()
                raise AssertionError("start must fail when running or empty")
            except PapiError:
                pass
        else:
            try:
                self.es.start()
            except PapiError:
                # injected fault survived every retry: the rollback must
                # leave the set exactly as it was.
                assert not self.es.running
                assert self.papi._running_handle is None
                return
            self.running = True
            self.last_read = None

    @rule(steps=st.integers(min_value=10, max_value=500))
    def run_machine(self, steps):
        if not self.substrate.machine.cpu.halted:
            self.substrate.machine.run(max_instructions=steps)

    @rule()
    def read(self):
        if not self.running:
            try:
                self.es.read()
                raise AssertionError("read must fail when not running")
            except PapiError:
                pass
        else:
            try:
                values = self.es.read()
            except PapiError as exc:
                self._reconcile_after_failure(exc)
                return
            assert len(values) == len(self.members)
            assert all(v >= 0 for v in values)
            if self.last_read is not None:
                assert all(
                    v >= r for v, r in zip(values, self.last_read)
                ), "counts must stay monotone across recoveries"
            self.last_read = values

    @rule()
    def stop(self):
        if not self.running:
            try:
                self.es.stop()
                raise AssertionError("stop must fail when not running")
            except PapiError:
                pass
        else:
            try:
                values = self.es.stop()
            except PapiError as exc:
                # stop guarantees teardown even when it fails
                assert not self.es.running
                self._reconcile_after_failure(exc)
                return
            self.running = False
            assert len(values) == len(self.members)
            assert all(v >= 0 for v in values)
            if self.last_read is not None:
                assert all(
                    v >= r for v, r in zip(values, self.last_read)
                )
            self.last_read = None

    @rule()
    def reset(self):
        if not self.running:
            try:
                self.es.reset()
                raise AssertionError("reset must fail when not running")
            except PapiError:
                pass
        else:
            try:
                self.es.reset()
            except PapiError as exc:
                self._reconcile_after_failure(exc)
                return
            self.last_read = None

    # ------------------------------------------------------------------

    @invariant()
    def state_flags_consistent(self):
        if not hasattr(self, "es"):
            return
        state = self.es.state()
        if self.running:
            assert state & C.PAPI_RUNNING
        else:
            assert state & C.PAPI_STOPPED

    @invariant()
    def library_running_discipline(self):
        if not hasattr(self, "es"):
            return
        handle = self.papi._running_handle
        if self.running:
            assert handle == self.es.handle
        else:
            assert handle is None

    @invariant()
    def health_record_well_formed(self):
        if not hasattr(self, "es"):
            return
        health = self.es.health
        assert health.retries >= 0
        assert health.backoff_cycles >= 0
        for interval in health.lost_intervals:
            assert interval.start_cycle <= interval.end_cycle
        json.dumps(health.summary())    # always reportable


TestFaultyEventSetMachine = FaultyEventSetMachine.TestCase
TestFaultyEventSetMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)


class TestScheduleDeterminism:
    """Same (seed, profile, program) => same schedule, even in failure."""

    @staticmethod
    def _outcome(seed):
        sub = create("simPOWER")
        injector = attach_from_spec(sub, f"{seed}:chaos")
        try:
            result = papirun(sub, dot(400, use_fma=sub.HAS_FMA))
            out = ("ok", result.values, result.health)
        except PapiError as exc:
            out = ("err", type(exc).__name__, str(exc))
        return out, injector.schedule()

    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_outcome_and_schedule_reproduce(self, seed):
        assert self._outcome(seed) == self._outcome(seed)

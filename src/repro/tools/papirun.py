"""papirun: run a program and report timing + counters.

Section 5: "a papirun utility that will allow users to execute a program
and easily collect basic timing and hardware counter data is under
development."  Here it is: give it a platform and a workload, get the
classic one-screen summary.

With ``inject='seed:profile'`` the run executes under deterministic
fault injection (:mod:`repro.faults`): the same spec reproduces the same
fault schedule, recovery actions and final counts on every invocation,
and the report gains a fault/health section showing what the runtime
absorbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.report import Table
from repro.core.library import Papi
from repro.hw.isa import Program
from repro.platforms import create
from repro.platforms.base import Substrate
from repro.workloads.builder import Workload

#: the default event list papirun attempts; unavailable presets are
#: silently skipped (exactly what a convenience tool should do).
DEFAULT_EVENTS = [
    "PAPI_TOT_CYC",
    "PAPI_TOT_INS",
    "PAPI_FP_OPS",
    "PAPI_L1_DCM",
    "PAPI_BR_MSP",
]


@dataclass
class PapirunResult:
    """Everything papirun reports for one run."""

    platform: str
    program: str
    real_usec: float
    virt_usec: float
    values: Dict[str, int]
    skipped_events: List[str]
    multiplexed: bool
    #: the fault-injection spec the run executed under (None = clean).
    inject: Optional[str] = None
    #: injected-fault counts by kind (empty when clean or fault-free).
    fault_summary: Dict[str, int] = field(default_factory=dict)
    #: the EventSet's health ledger (see EventSetHealth.summary()).
    health: Dict[str, object] = field(default_factory=dict)

    @property
    def ipc(self) -> Optional[float]:
        cyc = self.values.get("PAPI_TOT_CYC")
        ins = self.values.get("PAPI_TOT_INS")
        if not cyc or ins is None:
            return None
        return ins / cyc

    @property
    def mflops(self) -> Optional[float]:
        ops = self.values.get("PAPI_FP_OPS")
        if ops is None or self.virt_usec <= 0:
            return None
        return ops / self.virt_usec

    @property
    def lost_intervals(self) -> List[Dict[str, object]]:
        """Unobserved counting windows the runtime recovered around."""
        return list(self.health.get("lost_intervals", []))

    def to_text(self) -> str:
        table = Table(
            ["metric", "value"],
            title=f"papirun: {self.program} on {self.platform}",
        )
        table.add_row("real time (usec)", round(self.real_usec, 2))
        table.add_row("virtual time (usec)", round(self.virt_usec, 2))
        for name, value in self.values.items():
            table.add_row(name, value)
        if self.ipc is not None:
            table.add_row("IPC", round(self.ipc, 3))
        if self.mflops is not None:
            table.add_row("MFLOPS", round(self.mflops, 2))
        if self.skipped_events:
            table.add_row("(unavailable)", ", ".join(self.skipped_events))
        if self.multiplexed:
            table.add_row("(note)", "counters were multiplexed")
        if self.inject is not None:
            table.add_row("fault injection", self.inject)
            injected = ", ".join(
                f"{kind}={n}" for kind, n in sorted(self.fault_summary.items())
            ) or "none"
            table.add_row("faults injected", injected)
            table.add_row("retries", self.health.get("retries", 0))
            intervals = self.lost_intervals
            table.add_row("lost intervals", len(intervals))
            for iv in intervals:
                table.add_row(
                    "  lost",
                    f"cycles {iv['start_cycle']}..{iv['end_cycle']} "
                    f"({'recovered' if iv['recovered'] else 'NOT recovered'})",
                )
            if self.health.get("overflow_emulated"):
                table.add_row("(degraded)", "overflow emulated in software")
            if self.health.get("degraded_to_multiplex"):
                table.add_row("(degraded)", "fell back to multiplexing")
        return table.render()


def papirun(
    platform: Union[str, Substrate],
    target: Union[Workload, Program],
    events: Optional[Sequence[str]] = None,
    multiplex: bool = False,
    inject: Optional[str] = None,
) -> PapirunResult:
    """Execute *target* on *platform* and collect timing + counters.

    *inject* is a ``seed:profile`` fault-injection spec; identical specs
    reproduce identical fault schedules and results.  Passing a
    ready-made :class:`Substrate` together with *inject* attaches the
    injector to it directly.
    """
    substrate = (
        create(platform, inject=inject)
        if isinstance(platform, str)
        else platform
    )
    injector = None
    if inject is not None and not isinstance(platform, str):
        from repro.faults import attach_from_spec

        injector = attach_from_spec(substrate, inject)
    elif substrate.faults is not None:
        injector = substrate.faults
    papi = Papi(substrate)
    papi.degrade_to_multiplex = True  # a convenience tool prefers
    # degraded numbers plus a health record over an aborted run.
    program = target.program if isinstance(target, Workload) else target
    requested = list(events) if events is not None else list(DEFAULT_EVENTS)

    es = papi.create_eventset()
    if multiplex:
        es.set_multiplex()
    accepted: List[str] = []
    skipped: List[str] = []
    for name in requested:
        try:
            es.add_event(papi.event_name_to_code(name))
            accepted.append(name)
        except Exception:
            skipped.append(name)

    substrate.machine.load(program)
    t0_real = papi.get_real_usec()
    t0_virt = papi.get_virt_usec()
    es.start()
    substrate.machine.run_to_completion()
    values = es.stop()
    real = papi.get_real_usec() - t0_real
    virt = papi.get_virt_usec() - t0_virt
    health = es.health.summary()
    was_multiplexed = es.multiplexed
    papi.destroy_eventset(es)

    return PapirunResult(
        platform=substrate.NAME,
        program=program.name,
        real_usec=real,
        virt_usec=virt,
        values=dict(zip(accepted, values)),
        skipped_events=skipped,
        multiplexed=was_multiplexed,
        inject=injector.plan.spec if injector is not None else None,
        fault_summary=injector.summary() if injector is not None else {},
        health=health,
    )

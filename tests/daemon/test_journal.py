"""Unit tests: the papid append-only journal and recovery fold."""

import json

from repro.daemon import Journal, SessionSpec, recover_sessions


def _spec(sid="s-1"):
    return SessionSpec(sid=sid)


def _create(sid="s-1"):
    return {"t": "create", "sid": sid, "spec": _spec(sid).to_wire()}


def _ack(sid="s-1", ins=100, cycle=50, state="running"):
    return {"t": "ack", "sid": sid, "values": {"PAPI_TOT_INS": ins},
            "cycle": cycle, "advanced": ins, "state": state}


class TestJournal:
    def test_in_memory_append_and_records(self):
        j = Journal()
        j.append(_create())
        j.append(_ack())
        assert j.n_records == 2
        assert [r["t"] for r in j.records()] == ["create", "ack"]

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "papid.journal"
        j = Journal(str(path))
        j.append(_create())
        j.append(_ack())
        j.sync()
        j.close()
        assert [r["t"] for r in Journal.load(str(path))] == ["create", "ack"]

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "papid.journal"
        j = Journal(str(path))
        j.append(_create())
        j.append(_ack())
        j.close()
        # a crash mid-write leaves a torn final line: recovery must keep
        # every complete record and drop only the torn one
        with open(path, "a") as fh:
            fh.write(json.dumps(_ack(ins=999))[: 10])
        records = Journal.load(str(path))
        assert [r["t"] for r in records] == ["create", "ack"]
        assert records[-1]["values"]["PAPI_TOT_INS"] == 100


class TestRecoverSessions:
    def test_create_then_acks_last_wins(self):
        images = recover_sessions([
            _create(), _ack(ins=10, cycle=5), _ack(ins=30, cycle=15),
        ])
        img = images["s-1"]
        assert img.values == {"PAPI_TOT_INS": 30}
        assert img.cycle == 15
        assert img.state == "running"

    def test_destroy_removes_session(self):
        images = recover_sessions([
            _create(), _ack(), {"t": "destroy", "sid": "s-1"},
        ])
        assert "s-1" not in images

    def test_recover_record_marks_session(self):
        images = recover_sessions([
            _create(), _ack(),
            {"t": "recover", "sid": "s-1", "lost": {
                "start_cycle": 50, "end_cycle": 50,
                "natives": ["PAPI_TOT_INS"], "reason": "crash",
                "recovered": True,
            }},
        ])
        img = images["s-1"]
        assert img.recovered
        assert len(img.lost) == 1

    def test_restore_wire_round_trips_state(self):
        images = recover_sessions([_create(), _ack(state="stopped")])
        wire = images["s-1"].restore_wire()
        assert wire["state"] == "stopped"
        assert wire["values"] == {"PAPI_TOT_INS": 100}

"""Unit tests: platform substrates -- tables, costs, counter operations."""

import pytest

from repro.hw.events import Signal
from repro.platforms import (
    DIRECT_PLATFORMS,
    PLATFORM_NAMES,
    SubstrateError,
    all_platforms,
    create,
)
from repro.workloads import dot


class TestRegistry:
    def test_all_platforms_instantiable(self):
        subs = all_platforms()
        assert [s.NAME for s in subs] == PLATFORM_NAMES

    def test_unknown_platform_rejected(self):
        with pytest.raises(SubstrateError):
            create("simVAX")

    def test_direct_platforms_exclude_sampling(self):
        assert "simALPHA" not in DIRECT_PLATFORMS
        assert len(DIRECT_PLATFORMS) == 5

    def test_interface_styles_cover_the_paper(self):
        styles = {s.STYLE for s in all_platforms()}
        assert styles == {"register", "syscall", "library", "sampling"}


class TestNativeTables:
    def test_every_platform_has_cycles_and_instructions(self, any_platform):
        signals = {
            sig for ev in any_platform.native_events.values()
            for sig in ev.signals
        }
        assert Signal.TOT_CYC in signals
        assert Signal.TOT_INS in signals

    def test_query_native(self, simt3e):
        ev = simt3e.query_native("CYC_CNT")
        assert ev.signals == (Signal.TOT_CYC,)
        with pytest.raises(SubstrateError):
            simt3e.query_native("NOPE")

    def test_list_native_sorted(self, simx86):
        names = [e.name for e in simx86.list_native()]
        assert names == sorted(names)

    def test_constraints_reference_valid_counters(self, any_platform):
        for ev in any_platform.native_events.values():
            if ev.allowed_counters is not None:
                assert all(
                    0 <= c < any_platform.n_counters
                    for c in ev.allowed_counters
                )

    def test_simx86_has_pairing_constraints(self, simx86):
        constrained = [
            e for e in simx86.native_events.values()
            if e.allowed_counters is not None
        ]
        assert constrained, "simX86 must model P6 pairing constraints"

    def test_simpower_groups_valid(self, simpower):
        assert simpower.uses_groups
        for g in simpower.groups:
            counters = list(g.assignments.values())
            assert len(set(counters)) == len(counters), "group reuses a counter"

    def test_simpower_fpu_event_includes_converts(self, simpower):
        ev = simpower.query_native("PM_FPU_INS")
        assert Signal.FP_CVT in ev.signals  # the POWER3 anecdote

    def test_t3e_lacks_tlb_events(self, simt3e):
        signals = {
            sig for ev in simt3e.native_events.values() for sig in ev.signals
        }
        assert Signal.TLB_DM not in signals


class TestCounterOps:
    def _run_dot(self, substrate, n=300):
        wl = dot(n, use_fma=substrate.HAS_FMA)
        substrate.machine.load(wl.program)
        return wl

    def test_program_start_read_stop(self, direct_platform):
        sub = direct_platform
        wl = self._run_dot(sub)
        cyc = sub.query_native(
            {
                "simT3E": "CYC_CNT",
                "simX86": "CPU_CLK_UNHALTED",
                "simPOWER": "PM_CYC",
                "simIA64": "CPU_CYCLES",
                "simSPARC": "Cycle_cnt",
            }[sub.NAME]
        )
        sub.program_counter(0, cyc)
        sub.start_counters([0])
        sub.machine.run_to_completion()
        values = sub.stop_counters([0])
        assert values[0] == sub.machine.user_cycles

    def test_read_charges_interface_cycles(self, direct_platform):
        sub = direct_platform
        self._run_dot(sub)
        ev = next(iter(sub.native_events.values()))
        sub.program_counter(0, ev)
        sub.start_counters([0])
        before = sub.machine.system_cycles
        sub.read_counters([0])
        charged = sub.machine.system_cycles - before
        assert charged == sub.COSTS.read + sub.COSTS.read_per_counter

    def test_interface_cost_ordering_matches_styles(self):
        """register < library < syscall read costs (the paper's ordering)."""
        t3e = create("simT3E").COSTS.read
        power = create("simPOWER").COSTS.read
        x86 = create("simX86").COSTS.read
        assert t3e < power < x86

    def test_reset_counters(self, simt3e):
        self._run_dot(simt3e)
        ev = simt3e.query_native("INS_CNT")
        simt3e.program_counter(0, ev)
        simt3e.start_counters([0])
        simt3e.machine.run(max_instructions=100)
        simt3e.reset_counters([0])
        assert simt3e.read_counters([0])[0] == 0

    def test_timers(self, direct_platform):
        sub = direct_platform
        self._run_dot(sub)
        t0 = sub.real_cyc()
        sub.machine.run_to_completion()
        assert sub.real_cyc() > t0
        assert sub.real_usec() == pytest.approx(
            sub.real_cyc() / sub.machine.config.mhz
        )
        assert sub.virt_cyc() <= sub.real_cyc()

    def test_describe_mentions_name(self, any_platform):
        assert any_platform.NAME in any_platform.describe()

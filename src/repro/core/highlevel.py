"""The PAPI high-level interface.

"The high level interface simply provides the ability to start, stop,
and read the counters for a specified list of events, and is intended
for the acquisition of simple but accurate measurements by application
engineers."  (Section 1)

Also here: ``PAPI_flops`` -- "an easy-to-use routine that provides
timing data and the floating point operation count for the code
bracketed by calls to the routine" -- and its siblings ``flips`` and
``ipc``.  Note the normalization story (Section 4): the high-level rate
calls use the *normalized* ``PAPI_FP_OPS`` preset (whose per-platform
mapping multiplies FMA by two and subtracts miscellaneous instructions
like simPOWER's precision converts), while the low-level interface
"does not attempt any normalization or calibration of counter data but
simply reports the counts given by the hardware".  Experiment E6 shows
the difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Union

from repro.core.errors import InvalidArgumentError, NotRunningError
from repro.core.presets import preset_from_symbol

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.eventset import EventSet
    from repro.core.library import Papi

EventSpec = Union[int, str]


@dataclass(frozen=True)
class RateReport:
    """Return value of flops()/flips()/ipc()."""

    real_time: float       #: seconds of wall time since the first call
    proc_time: float       #: seconds of process (virtual) time
    count: int             #: event count since the first call
    rate: float            #: count per second of process time (e.g. FLOPS)

    @property
    def mrate(self) -> float:
        """Rate in millions per second (MFLOPS for flops())."""
        return self.rate / 1e6


class _RateState:
    def __init__(self, eventset: "EventSet", start_real: float,
                 start_virt: float) -> None:
        self.eventset = eventset
        self.start_real = start_real
        self.start_virt = start_virt
        self.accum = 0


class HighLevel:
    """High-level counter interface bound to one :class:`Papi` library."""

    def __init__(self, papi: "Papi") -> None:
        self.papi = papi
        self._es: Optional["EventSet"] = None
        self._flops: Optional[_RateState] = None
        self._flips: Optional[_RateState] = None
        self._ipc: Optional[_RateState] = None

    # ------------------------------------------------------------------

    def _codes(self, events: Sequence[EventSpec]) -> List[int]:
        codes = []
        for ev in events:
            codes.append(
                self.papi.event_name_to_code(ev) if isinstance(ev, str) else ev
            )
        return codes

    def num_counters(self) -> int:
        """PAPI_num_counters (also serves as the HL availability check)."""
        return self.papi.num_counters

    def start_counters(self, events: Sequence[EventSpec]) -> None:
        """PAPI_start_counters."""
        if self._es is not None:
            raise InvalidArgumentError(
                "high-level counters already started; stop them first"
            )
        es = self.papi.create_eventset()
        try:
            for code in self._codes(events):
                es.add_event(code)
            es.start()  # papi-lint: disable=PL008 -- stopped by stop_counters()
        except Exception:
            self.papi.destroy_eventset(es)
            raise
        self._es = es

    def read_counters(self) -> List[int]:
        """PAPI_read_counters: read AND reset (the C semantics)."""
        if self._es is None:
            raise NotRunningError("high-level counters are not started")
        values = self._es.read()
        self._es.reset()
        return values

    def accum_counters(self, values: List[int]) -> List[int]:
        """PAPI_accum_counters: add into *values* and reset."""
        if self._es is None:
            raise NotRunningError("high-level counters are not started")
        return self._es.accum(values)

    def stop_counters(self) -> List[int]:
        """PAPI_stop_counters: final values, then tear down."""
        if self._es is None:
            raise NotRunningError("high-level counters are not started")
        values = self._es.stop()
        self.papi.destroy_eventset(self._es)
        self._es = None
        return values

    # ------------------------------------------------------------------
    # rate calls
    # ------------------------------------------------------------------

    def _rate_call(self, state_attr: str, symbol: str) -> RateReport:
        state: Optional[_RateState] = getattr(self, state_attr)
        if state is None:
            es = self.papi.create_eventset()
            es.add_event(preset_from_symbol(symbol).code)
            es.start()  # papi-lint: disable=PL008 -- runs until the final rate call
            state = _RateState(
                es,
                self.papi.get_real_usec(),
                self.papi.get_virt_usec(),
            )
            setattr(self, state_attr, state)
            return RateReport(0.0, 0.0, 0, 0.0)
        values = state.eventset.read()
        count = values[0]
        real = (self.papi.get_real_usec() - state.start_real) / 1e6
        proc = (self.papi.get_virt_usec() - state.start_virt) / 1e6
        rate = count / proc if proc > 0 else 0.0
        return RateReport(real, proc, count, rate)

    def flops(self) -> RateReport:
        """PAPI_flops: normalized floating point operations and MFLOPS.

        First call arms the measurement and returns zeros; later calls
        report totals and rates since the first call.
        """
        return self._rate_call("_flops", "PAPI_FP_OPS")

    def flips(self) -> RateReport:
        """PAPI_flips: raw floating point *instructions* and MFLIPS."""
        return self._rate_call("_flips", "PAPI_FP_INS")

    def ipc(self) -> RateReport:
        """PAPI_ipc-style call: instructions and instructions/second.

        (The cycles-per-instruction ratio can be derived by also timing
        with the cycle clock; ``rate`` here is instructions per second.)
        """
        return self._rate_call("_ipc", "PAPI_TOT_INS")

    def stop_rates(self) -> None:
        """Tear down any armed rate measurements."""
        for attr in ("_flops", "_flips", "_ipc"):
            state: Optional[_RateState] = getattr(self, attr)
            if state is not None:
                if state.eventset.running:
                    state.eventset.stop()
                self.papi.destroy_eventset(state.eventset)
                setattr(self, attr, None)

"""The refutation engine: model vs measurement, cell by cell.

Runs every generated program across substrates x execution-engine tiers
x CPU counts and compares what the documented model
(:class:`~repro.refute.predictor.SubstrateModel`) predicts against what
the full PAPI stack measures.  Every comparison lands in exactly one of
three buckets:

- ``confirmed``: model and measurement agree (exactly on direct
  substrates, within the sampling tolerance on simALPHA);
- ``refuted``: they disagree -- the cell carries a genome-level
  **minimal reproducer** (see :mod:`repro.refute.shrink`);
- ``undecidable``: the model makes no claim here (preset unmapped,
  micro-architectural signals, sampling substrate without attach,
  too few expected samples) -- recorded, never silently dropped.

Measurements go through the same public surfaces users hold: presets
through EventSets, virtualized counts through ``attach`` under a decoy
thread, interface costs through wall-cycle deltas, fetch geometry and
tier invariance through raw machine signal totals.  The ``models``
override hook lets the sensitivity gate substitute a deliberately wrong
model for a faithful machine; nothing on the CLI path exposes it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import PapiError
from repro.core.library import Papi
from repro.core.sampling import relative_error
from repro.hw.events import Signal
from repro.platforms import PLATFORM_NAMES, create
from repro.refute.generator import (
    GeneratedProgram,
    Genome,
    assumptions_of,
    build_program,
    dynamic_bound,
    generate,
    genome_to_json,
)
from repro.refute.predictor import Prediction, SubstrateModel, predict
from repro.refute.shrink import shrink_genome
from repro.validate.matrix import MatrixCell
from repro.validate.oracle import ORACLE_SIGNALS
from repro.validate.seeds import derive_seed

__all__ = [
    "REFUTE_SCHEMA",
    "RefuteCell",
    "RefuteConfig",
    "RefuteReport",
    "RefutationEngine",
    "run_refute",
    "run_refute_plane",
]

REFUTE_SCHEMA = "repro.refute/1"

#: cell verdicts (mirrors the matrix's pass/fail/skip, renamed to say
#: what a refutation harness actually concludes).
CELL_STATUSES = ("confirmed", "refuted", "undecidable")

#: raw signals compared for tier invariance and fetch geometry.
_RAW_SIGNALS: Tuple[int, ...] = tuple(sorted(ORACLE_SIGNALS)) + (
    Signal.L1I_ACC,
)

#: preset exercised on the SMP/attach rung (single-native everywhere,
#: so it allocates even on simSPARC's two pinned PICs).
_ATTACH_SYMBOL = "PAPI_TOT_INS"


@dataclass(frozen=True)
class RefuteConfig:
    """One refutation run, fully pinned by its fields.

    The committed quick/thorough shapes are classmethods so CI, tests
    and EXPERIMENTS.md all cite the same seed/budget pair.
    """

    seed: int = 12345
    #: programs generated per run.
    count: int = 4
    #: dynamic-instruction budget per generated program.
    budget: int = 3_000
    platforms: Tuple[str, ...] = tuple(PLATFORM_NAMES)
    #: engine tiers exercised; the first is the canonical combo's tier.
    tiers: Tuple[str, ...] = ("trace", "block", "off")
    ncpus_list: Tuple[int, ...] = (1, 4)
    #: run every (tier, ncpus) combo for every program (nightly); the
    #: quick default round-robins the alternates across programs.
    full_cross: bool = False
    shrink: bool = True
    sampling_tolerance: float = 0.20
    sampling_period: int = 64
    #: a sampling-substrate preset is only decidable when the model
    #: expects at least this many interrupt matches (estimate noise
    #: ~1/sqrt(matches); 32 keeps it inside the tolerance).
    sampling_min_matches: int = 32
    max_shrink_checks: int = 120

    @classmethod
    def quick(cls, seed: int = 12345,
              platforms: Optional[Sequence[str]] = None) -> "RefuteConfig":
        """The PR-scoped smoke shape (also the committed-corpus shape)."""
        return cls(seed=seed,
                   platforms=tuple(platforms) if platforms
                   else tuple(PLATFORM_NAMES))

    @classmethod
    def thorough(cls, seed: int = 12345,
                 platforms: Optional[Sequence[str]] = None) -> "RefuteConfig":
        """The nightly shape: more/bigger programs, full combo cross."""
        return cls(seed=seed, count=8, budget=12_000, full_cross=True,
                   platforms=tuple(platforms) if platforms
                   else tuple(PLATFORM_NAMES))


@dataclass
class RefuteCell:
    """One model-vs-measurement comparison."""

    platform: str
    program: str            # generated program name, or "-" for
    check: str              # program-independent checks
    assumption: str         # model assumption tag the check exercises
    status: str             # confirmed | refuted | undecidable
    expected: Optional[float] = None
    actual: Optional[float] = None
    detail: str = ""
    #: shrunk genome (JSON form) reproducing the refutation.
    reproducer: Optional[Dict[str, object]] = None
    #: static instruction count of the shrunk reproducer program.
    reproducer_len: Optional[int] = None

    def __post_init__(self) -> None:
        if self.status not in CELL_STATUSES:
            raise ValueError(f"bad refute cell status {self.status!r}")

    def to_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "platform": self.platform,
            "program": self.program,
            "check": self.check,
            "assumption": self.assumption,
            "status": self.status,
        }
        for key in ("expected", "actual"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.detail:
            out["detail"] = self.detail
        if self.reproducer is not None:
            out["reproducer"] = self.reproducer
            out["reproducer_len"] = self.reproducer_len
        return out


@dataclass
class RefuteReport:
    """All cells of one refutation run plus the generated corpus."""

    config: RefuteConfig
    cells: List[RefuteCell] = field(default_factory=list)
    programs: List[Dict[str, object]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not any(c.status == "refuted" for c in self.cells)

    def refutations(self) -> List[RefuteCell]:
        return [c for c in self.cells if c.status == "refuted"]

    def summary(self) -> Dict[str, int]:
        tally = {status: 0 for status in CELL_STATUSES}
        for cell in self.cells:
            tally[cell.status] += 1
        return tally

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": REFUTE_SCHEMA,
            "passed": self.passed,
            "meta": {
                "seed": self.config.seed,
                "count": self.config.count,
                "budget": self.config.budget,
                "platforms": list(self.config.platforms),
                "tiers": list(self.config.tiers),
                "ncpus": list(self.config.ncpus_list),
                "full_cross": self.config.full_cross,
            },
            "summary": self.summary(),
            "programs": self.programs,
            "cells": [c.to_json() for c in self.cells],
        }

    def to_json_str(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)

    def to_markdown(self) -> str:
        """Per-platform verdict table plus refutation details."""
        tallies: Dict[str, Dict[str, int]] = {}
        for cell in self.cells:
            t = tallies.setdefault(
                cell.platform, {s: 0 for s in CELL_STATUSES}
            )
            t[cell.status] += 1
        lines = [
            "| platform | confirmed | refuted | undecidable |",
            "| --- | --- | --- | --- |",
        ]
        for platform in sorted(tallies):
            t = tallies[platform]
            lines.append(
                f"| {platform} | {t['confirmed']} | {t['refuted']} "
                f"| {t['undecidable']} |"
            )
        for cell in self.refutations():
            lines.append("")
            lines.append(
                f"**REFUTED** `{cell.platform}/{cell.program}/{cell.check}` "
                f"({cell.assumption}): expected {cell.expected}, "
                f"measured {cell.actual} -- {cell.detail} "
                f"(reproducer: {cell.reproducer_len} instructions)"
            )
        return "\n".join(lines)


def _static_len(genome: Genome) -> int:
    return len(build_program(genome).resolve())


def _rebuild(genome: Genome) -> GeneratedProgram:
    return GeneratedProgram(
        name="shrunk",
        genome=genome,
        program=build_program(genome),
        assumptions=assumptions_of(genome),
        dynamic_bound=dynamic_bound(genome),
    )


class RefutationEngine:
    """Runs one :class:`RefuteConfig`; see the module docstring.

    *models* (test-only) maps platform name to a substitute
    :class:`SubstrateModel`; platforms not in the map use their real
    documented model.  The machines measured against are never mutated.
    """

    def __init__(self, config: RefuteConfig,
                 models: Optional[Dict[str, SubstrateModel]] = None) -> None:
        self.config = config
        self._model_overrides = dict(models or {})
        self._models: Dict[str, SubstrateModel] = {}
        self._subs: Dict[Tuple[str, str], object] = {}
        self._run_budget = max(100_000, 20 * config.budget)

    # -- shared resources --------------------------------------------------

    def model(self, platform: str) -> SubstrateModel:
        if platform not in self._models:
            self._models[platform] = self._model_overrides.get(
                platform
            ) or SubstrateModel.of(platform, seed=self.config.seed)
        return self._models[platform]

    def _substrate(self, platform: str, tier: str):
        """A cached ncpus=1 substrate at *tier* (clean path, no faults)."""
        key = (platform, tier)
        if key not in self._subs:
            self._subs[key] = create(
                platform,
                seed=derive_seed(self.config.seed, f"sub:{platform}:{tier}"),
                engine=tier,
                inject="",
            )
        return self._subs[key]

    # -- raw measurement ---------------------------------------------------

    def _raw_vector(self, platform: str, tier: str,
                    program) -> Dict[int, int]:
        """Per-signal deltas of one fresh load+run (machine-lifetime
        totals are never reset, so deltas are the only honest read)."""
        machine = self._substrate(platform, tier).machine
        before = {s: machine.signal_total(s) for s in _RAW_SIGNALS}
        machine.load(program)
        machine.run_to_completion(budget_instructions=self._run_budget)
        return {
            s: machine.signal_total(s) - before[s] for s in _RAW_SIGNALS
        }

    def _measure_preset(self, platform: str, tier: str, program,
                        symbol: str) -> int:
        substrate = self._substrate(platform, tier)
        papi = Papi(substrate)
        machine = substrate.machine
        es = papi.create_eventset()
        try:
            es.add_event(papi.event_name_to_code(symbol))
            machine.load(program)
            es.start()
            machine.run_to_completion(budget_instructions=self._run_budget)
            return es.stop()[0]
        finally:
            if es.running:
                es.stop()
            papi.destroy_eventset(es)

    def _measure_sampling(self, platform: str, tier: str, program,
                          symbols: Sequence[str]) -> List[int]:
        substrate = self._substrate(platform, tier)
        papi = Papi(substrate)
        papi.sampling_period = self.config.sampling_period
        machine = substrate.machine
        es = papi.create_eventset()
        try:
            for symbol in symbols:
                es.add_event(papi.event_name_to_code(symbol))
            machine.load(program)
            es.start()
            machine.run_to_completion(budget_instructions=self._run_budget)
            return list(es.stop())
        finally:
            if es.running:
                es.stop()
            papi.destroy_eventset(es)

    def _measure_attached(self, platform: str, tier: str, ncpus: int,
                          program) -> int:
        """PAPI_TOT_INS attached to the program's thread while a decoy
        competes for *ncpus* CPUs (fresh machine per measurement)."""
        from repro.workloads import decoy_spin

        substrate = create(
            platform,
            seed=derive_seed(self.config.seed,
                             f"sub:{platform}:{tier}:n{ncpus}"),
            engine=tier,
            ncpus=ncpus,
            inject="",
        )
        papi = Papi(substrate)
        worker = substrate.os.spawn(program, name="refute-work")
        substrate.os.spawn(decoy_spin(self.config.budget).program,
                           name="refute-decoy")
        es = papi.create_eventset()
        try:
            es.add_event(papi.event_name_to_code(_ATTACH_SYMBOL))
            es.attach(worker)
            es.start()
            substrate.os.run()
            return es.stop()[0]
        finally:
            if es.running:
                es.stop()
            papi.destroy_eventset(es)

    # -- shrink plumbing ---------------------------------------------------

    def _shrunk(self, genome: Genome,
                still_refutes: Callable[[Genome], bool]) -> Tuple[
                    Dict[str, object], int]:
        if self.config.shrink:
            genome = shrink_genome(
                genome, still_refutes,
                max_checks=self.config.max_shrink_checks,
            )
        return genome_to_json(genome), _static_len(genome)

    # -- cells -------------------------------------------------------------

    def _static_cell(self, gp: GeneratedProgram,
                     pred: Prediction) -> RefuteCell:
        """Static-oracle bounds must bracket the reference interpreter."""
        refuted = bool(pred.static_violations)
        cell = RefuteCell(
            platform="reference", program=gp.name, check="static-bracket",
            assumption="static-bracket",
            status="refuted" if refuted else "confirmed",
            detail=(
                "; ".join(pred.static_violations) if refuted else
                ("closed form exact" if pred.static_exact
                 else "interval bracket only (data-dependent branches)")
            ),
        )
        if refuted:
            model = self.model(self.config.platforms[0])

            def still_refutes(genome: Genome) -> bool:
                return bool(
                    predict(_rebuild(genome), model).static_violations
                )

            cell.reproducer, cell.reproducer_len = self._shrunk(
                gp.genome, still_refutes
            )
        return cell

    def _preset_cell(self, platform: str, tier: str, gp: GeneratedProgram,
                     pred: Prediction) -> RefuteCell:
        """Every checkable preset, measured through the EventSet path.

        Aggregated to one cell per (program, platform, tier): the first
        disagreeing preset refutes, and the shrink predicate re-checks
        that same preset so the reproducer pins one concrete claim.
        """
        model = self.model(platform)
        check = f"presets@{tier}"
        checkable = pred.checkable_presets()
        if not checkable:
            return RefuteCell(
                platform=platform, program=gp.name, check=check,
                assumption="preset-mapping", status="undecidable",
                detail="no analytically checkable presets mapped here",
            )
        if model.counting == "sampling":
            return self._preset_cell_sampling(
                platform, tier, gp, pred, checkable
            )
        measured: Dict[str, int] = {}
        uncountable: List[str] = []
        for symbol in sorted(checkable):
            try:
                measured[symbol] = self._measure_preset(
                    platform, tier, gp.program, symbol
                )
            except PapiError:
                uncountable.append(symbol)
        if not measured:
            return RefuteCell(
                platform=platform, program=gp.name, check=check,
                assumption="preset-mapping", status="undecidable",
                detail=f"no preset countable: {', '.join(uncountable)}",
            )
        for symbol in sorted(measured):
            expected = checkable[symbol].expected
            actual = measured[symbol]
            if actual != expected:
                cell = RefuteCell(
                    platform=platform, program=gp.name, check=check,
                    assumption="preset-mapping", status="refuted",
                    expected=expected, actual=actual,
                    detail=f"{symbol} disagrees with the documented "
                           f"mapping",
                )

                def still_refutes(genome: Genome,
                                  symbol: str = symbol) -> bool:
                    gp2 = _rebuild(genome)
                    exp = predict(gp2, model).presets.get(symbol)
                    if exp is None or not exp.checkable:
                        return False
                    try:
                        got = self._measure_preset(
                            platform, tier, gp2.program, symbol
                        )
                    except PapiError:
                        return False
                    return got != exp.expected

                cell.reproducer, cell.reproducer_len = self._shrunk(
                    gp.genome, still_refutes
                )
                return cell
        note = f"{len(measured)} presets exact"
        if uncountable:
            note += f"; uncountable: {', '.join(uncountable)}"
        return RefuteCell(
            platform=platform, program=gp.name, check=check,
            assumption="preset-mapping", status="confirmed",
            detail=note,
        )

    def _preset_cell_sampling(self, platform: str, tier: str,
                              gp: GeneratedProgram, pred: Prediction,
                              checkable) -> RefuteCell:
        """simALPHA: one ProfileMe run, all decidable presets at once."""
        cfg = self.config
        check = f"presets@{tier}"
        floor = cfg.sampling_min_matches * cfg.sampling_period
        symbols = [
            s for s in sorted(checkable)
            if (checkable[s].expected or 0) >= floor
        ]
        if not symbols:
            return RefuteCell(
                platform=platform, program=gp.name, check=check,
                assumption="preset-mapping", status="undecidable",
                detail=f"no preset expects >= {floor} events "
                       f"({cfg.sampling_min_matches} interrupt matches); "
                       f"estimates would be noise",
            )
        try:
            values = self._measure_sampling(
                platform, tier, gp.program, symbols
            )
        except PapiError as exc:
            return RefuteCell(
                platform=platform, program=gp.name, check=check,
                assumption="preset-mapping", status="undecidable",
                detail=f"sampling session failed: {exc}",
            )
        for symbol, actual in zip(symbols, values):
            expected = checkable[symbol].expected
            err = relative_error(actual, expected)
            if err > cfg.sampling_tolerance:
                cell = RefuteCell(
                    platform=platform, program=gp.name, check=check,
                    assumption="preset-mapping", status="refuted",
                    expected=expected, actual=actual,
                    detail=f"{symbol} estimate off by {err:.0%} "
                           f"(tolerance {cfg.sampling_tolerance:.0%})",
                )

                def still_refutes(genome: Genome,
                                  symbol: str = symbol) -> bool:
                    gp2 = _rebuild(genome)
                    exp = predict(gp2, model=self.model(platform)).presets.get(
                        symbol
                    )
                    if exp is None or not exp.checkable:
                        return False
                    if (exp.expected or 0) < floor:
                        return False
                    try:
                        got = self._measure_sampling(
                            platform, tier, gp2.program, [symbol]
                        )[0]
                    except PapiError:
                        return False
                    return relative_error(
                        got, exp.expected
                    ) > cfg.sampling_tolerance

                cell.reproducer, cell.reproducer_len = self._shrunk(
                    gp.genome, still_refutes
                )
                return cell
        return RefuteCell(
            platform=platform, program=gp.name, check=check,
            assumption="preset-mapping", status="confirmed",
            detail=f"{len(symbols)} estimates within "
                   f"{cfg.sampling_tolerance:.0%}",
        )

    def _fetch_cell(self, platform: str, tier: str, gp: GeneratedProgram,
                    pred: Prediction,
                    raw: Dict[int, int]) -> RefuteCell:
        """L1I accesses vs the model's documented fetch-line width.

        Only meaningful at ncpus=1: a migration re-colds the fetch line
        mid-stream, which the documented model does not (and should not)
        predict.
        """
        model = self.model(platform)
        expected = pred.l1i_accesses
        actual = raw[Signal.L1I_ACC]
        cell = RefuteCell(
            platform=platform, program=gp.name,
            check=f"fetch-geometry@{tier}", assumption="fetch-geometry",
            status="confirmed" if actual == expected else "refuted",
            expected=expected, actual=actual,
            detail=f"documented L1I line = {model.l1i_line_bytes}B",
        )
        if cell.status == "refuted":

            def still_refutes(genome: Genome) -> bool:
                gp2 = _rebuild(genome)
                pred2 = predict(gp2, model)
                got = self._raw_vector(platform, tier, gp2.program)
                return got[Signal.L1I_ACC] != pred2.l1i_accesses

            cell.reproducer, cell.reproducer_len = self._shrunk(
                gp.genome, still_refutes
            )
        return cell

    def _tier_cell(self, platform: str, gp: GeneratedProgram,
                   vectors: Dict[str, Dict[int, int]]) -> RefuteCell:
        """All engine tiers must be bit-identical on raw signals."""
        tiers = list(vectors)
        base = tiers[0]
        for tier in tiers[1:]:
            diff = [
                s for s in _RAW_SIGNALS
                if vectors[tier][s] != vectors[base][s]
            ]
            if diff:
                sig = diff[0]
                cell = RefuteCell(
                    platform=platform, program=gp.name,
                    check="tier-invariance", assumption="tier-invariance",
                    status="refuted",
                    expected=vectors[base][sig], actual=vectors[tier][sig],
                    detail=f"signal {sig} differs between engine tiers "
                           f"{base!r} and {tier!r}",
                )

                def still_refutes(genome: Genome, tier: str = tier) -> bool:
                    program = build_program(genome)
                    a = self._raw_vector(platform, base, program)
                    b = self._raw_vector(platform, tier, program)
                    return any(a[s] != b[s] for s in _RAW_SIGNALS)

                cell.reproducer, cell.reproducer_len = self._shrunk(
                    gp.genome, still_refutes
                )
                return cell
        return RefuteCell(
            platform=platform, program=gp.name, check="tier-invariance",
            assumption="tier-invariance", status="confirmed",
            detail=f"{len(tiers)} tiers bit-identical on "
                   f"{len(_RAW_SIGNALS)} signals",
        )

    def _attach_cell(self, platform: str, tier: str, ncpus: int,
                     gp: GeneratedProgram,
                     pred: Prediction) -> RefuteCell:
        """Virtualized counts across CPUs must see exactly one thread."""
        model = self.model(platform)
        check = f"attach@{tier}/ncpus={ncpus}"
        if model.counting == "sampling":
            return RefuteCell(
                platform=platform, program=gp.name, check=check,
                assumption="counter-virtualization", status="undecidable",
                detail="sampling substrate has no per-thread attach",
            )
        exp = pred.presets.get(_ATTACH_SYMBOL)
        if exp is None or not exp.checkable:
            return RefuteCell(
                platform=platform, program=gp.name, check=check,
                assumption="counter-virtualization", status="undecidable",
                detail=f"{_ATTACH_SYMBOL} not checkable here",
            )
        try:
            actual = self._measure_attached(
                platform, tier, ncpus, gp.program
            )
        except PapiError as exc:
            return RefuteCell(
                platform=platform, program=gp.name, check=check,
                assumption="counter-virtualization", status="undecidable",
                detail=f"attach not countable: {exc}",
            )
        cell = RefuteCell(
            platform=platform, program=gp.name, check=check,
            assumption="counter-virtualization",
            status="confirmed" if actual == exp.expected else "refuted",
            expected=exp.expected, actual=actual,
            detail="attached thread vs decoy under round-robin",
        )
        if cell.status == "refuted":

            def still_refutes(genome: Genome) -> bool:
                gp2 = _rebuild(genome)
                exp2 = predict(gp2, model).presets.get(_ATTACH_SYMBOL)
                if exp2 is None or not exp2.checkable:
                    return False
                try:
                    got = self._measure_attached(
                        platform, tier, ncpus, gp2.program
                    )
                except PapiError:
                    return False
                return got != exp2.expected

            cell.reproducer, cell.reproducer_len = self._shrunk(
                gp.genome, still_refutes
            )
        return cell

    def _cost_cell(self, platform: str) -> RefuteCell:
        """Interface wall-cycle deltas vs the model's AccessCosts."""
        model = self.model(platform)
        if model.counting == "sampling":
            return RefuteCell(
                platform=platform, program="-", check="access-costs",
                assumption="cost-model", status="undecidable",
                detail="sampling interface amortizes into interrupt "
                       "delivery; no per-op cost model to refute",
            )
        substrate = self._substrate(platform, self.config.tiers[0])
        papi = Papi(substrate)
        es = papi.create_eventset()
        try:
            es.add_event(papi.event_name_to_code(_ATTACH_SYMBOL))
            c0 = substrate.real_cyc()
            es.start()
            c1 = substrate.real_cyc()
            es.read()
            c2 = substrate.real_cyc()
            es.reset()
            c3 = substrate.real_cyc()
            es.stop()
            c4 = substrate.real_cyc()
            n = max(len(es.assignment), 1)
        finally:
            if es.running:
                es.stop()
            papi.destroy_eventset(es)
        costs = model.costs
        expected = {
            "start": costs.program * n + costs.start,
            "read": costs.read + costs.read_per_counter * n,
            "reset": costs.reset,
            "stop": costs.stop,
        }
        measured = {"start": c1 - c0, "read": c2 - c1,
                    "reset": c3 - c2, "stop": c4 - c3}
        for op in ("start", "read", "reset", "stop"):
            if measured[op] != expected[op]:
                return RefuteCell(
                    platform=platform, program="-", check="access-costs",
                    assumption="cost-model", status="refuted",
                    expected=expected[op], actual=measured[op],
                    detail=f"documented {op} cost disagrees with the "
                           f"measured wall-cycle delta "
                           f"(no program reproducer: cost cells are "
                           f"program-independent)",
                )
        return RefuteCell(
            platform=platform, program="-", check="access-costs",
            assumption="cost-model", status="confirmed",
            detail=f"start/read/reset/stop deltas match AccessCosts "
                   f"({n} counter(s))",
        )

    # -- replay ------------------------------------------------------------

    def replay(self, platform: str, genome: Genome,
               check: str) -> RefuteCell:
        """Re-evaluate one named check for one genome.

        This is the corpus-regression entry point: a committed minimal
        reproducer is replayed against the current tree -- confirmed
        under the real model (no drift reintroduced), refuted under the
        catalogued mutant (the harness still has teeth).  *check* uses
        the same names the sweep emits (``presets@<tier>``,
        ``fetch-geometry@<tier>``, ``tier-invariance``,
        ``attach@<tier>/ncpus=<n>``, ``access-costs``,
        ``static-bracket``).
        """
        gp = _rebuild(genome)
        model_platform = (self.config.platforms[0]
                          if platform == "reference" else platform)
        pred = predict(gp, self.model(model_platform))
        if check == "static-bracket":
            return self._static_cell(gp, pred)
        if check == "access-costs":
            return self._cost_cell(platform)
        if check == "tier-invariance":
            vectors = {
                tier: self._raw_vector(platform, tier, gp.program)
                for tier in self.config.tiers
            }
            return self._tier_cell(platform, gp, vectors)
        if check.startswith("fetch-geometry@"):
            tier = check.split("@", 1)[1]
            return self._fetch_cell(
                platform, tier, gp, pred,
                self._raw_vector(platform, tier, gp.program),
            )
        if check.startswith("presets@"):
            return self._preset_cell(platform, check.split("@", 1)[1],
                                     gp, pred)
        if check.startswith("attach@"):
            tier, _, n = check.split("@", 1)[1].partition("/ncpus=")
            return self._attach_cell(platform, tier, int(n), gp, pred)
        raise ValueError(f"unknown refute check {check!r}")

    # -- orchestration -----------------------------------------------------

    def _combos(self, index: int) -> List[Tuple[str, int]]:
        """(tier, ncpus) combos for program *index*.

        Quick runs measure every program at the canonical combo and
        round-robin the alternates across programs; thorough runs take
        the full cross so every program hits every combo.
        """
        cfg = self.config
        canonical = (cfg.tiers[0], 1)
        alternates = [
            (tier, n)
            for n in cfg.ncpus_list
            for tier in cfg.tiers
            if (tier, n) != canonical
        ]
        if cfg.full_cross or not alternates:
            return [canonical] + alternates
        return [canonical, alternates[index % len(alternates)]]

    def run(self) -> RefuteReport:
        cfg = self.config
        report = RefuteReport(config=cfg)
        programs = generate(
            derive_seed(cfg.seed, "refute:generate"),
            count=cfg.count,
            budget=cfg.budget,
        )
        for gp in programs:
            report.programs.append({
                "name": gp.name,
                "assumptions": sorted(gp.assumptions),
                "dynamic_bound": gp.dynamic_bound,
                "static_len": len(gp.program.resolve()),
                "genome": genome_to_json(gp.genome),
            })
        # program-independent cells first: interface costs per platform.
        for platform in cfg.platforms:
            report.cells.append(self._cost_cell(platform))
        # per-program cells: predictor cross-check once, then the
        # measurement fan across platforms and combos.
        for index, gp in enumerate(programs):
            first_pred: Optional[Prediction] = None
            for platform in cfg.platforms:
                model = self.model(platform)
                pred = predict(gp, model)
                if first_pred is None:
                    first_pred = pred
                    report.cells.append(self._static_cell(gp, pred))
                vectors = {
                    tier: self._raw_vector(platform, tier, gp.program)
                    for tier in cfg.tiers
                }
                report.cells.append(self._tier_cell(platform, gp, vectors))
                report.cells.append(self._fetch_cell(
                    platform, cfg.tiers[0], gp, pred,
                    vectors[cfg.tiers[0]],
                ))
                for tier, ncpus in self._combos(index):
                    if ncpus == 1:
                        report.cells.append(self._preset_cell(
                            platform, tier, gp, pred
                        ))
                    else:
                        report.cells.append(self._attach_cell(
                            platform, tier, ncpus, gp, pred
                        ))
        return report


def run_refute(
    config: Optional[RefuteConfig] = None,
    models: Optional[Dict[str, SubstrateModel]] = None,
) -> RefuteReport:
    """Run one refutation sweep and return its report.

    *models* is the test-only documented-model override hook (see
    :mod:`repro.refute.mutations`); production callers leave it None.
    """
    return RefutationEngine(config or RefuteConfig.quick(),
                            models=models).run()


_STATUS_TO_MATRIX = {
    "confirmed": "pass",
    "refuted": "fail",
    "undecidable": "skip",
}


def run_refute_plane(
    platforms: Sequence[str],
    thorough: bool = False,
    seed: int = 12345,
) -> List[MatrixCell]:
    """The refutation sweep as a validate plane (``--planes refute``)."""
    config = (RefuteConfig.thorough(seed=seed, platforms=platforms)
              if thorough else
              RefuteConfig.quick(seed=seed, platforms=platforms))
    report = run_refute(config)
    cells: List[MatrixCell] = []
    for cell in report.cells:
        detail = cell.detail
        if cell.status == "refuted" and cell.reproducer_len is not None:
            detail = (
                f"{detail} [reproducer: {cell.reproducer_len} ins]"
            ).strip()
        cells.append(MatrixCell(
            plane="refute",
            platform=cell.platform,
            name=f"{cell.program}/{cell.check}",
            status=_STATUS_TO_MATRIX[cell.status],
            expected=cell.expected,
            actual=cell.actual,
            detail=detail,
        ))
    return cells

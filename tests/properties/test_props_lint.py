"""Property test: static feasibility agrees with the runtime allocator.

papi-lint's whole value rests on one claim: the verdict computed from
the platform tables *without executing* (``repro.lint.check_events``)
is the verdict the runtime would reach -- ``EventSet.add_event`` calls
in sequence either all succeed (set allocatable) or raise
``ConflictError`` at some prefix (set not allocatable).  Hypothesis
drives random event subsets on every platform and pins the agreement
in both directions, including the multiplexed variant.
"""

from hypothesis import given, settings, strategies as st

from repro.core.errors import ConflictError, PapiError
from repro.core.library import Papi
from repro.core.presets import PLATFORM_PRESET_TABLES
from repro.lint import check_events
from repro.platforms import PLATFORM_NAMES, create

#: per-platform pool of preset symbols that resolve (availability is
#: not what this test is about -- allocation is).
_POOLS = {
    platform: sorted(PLATFORM_PRESET_TABLES[platform])
    for platform in PLATFORM_NAMES
}


@st.composite
def platform_and_events(draw):
    platform = draw(st.sampled_from(PLATFORM_NAMES))
    pool = _POOLS[platform]
    events = draw(
        st.lists(
            st.sampled_from(pool), min_size=1, max_size=6, unique=True
        )
    )
    return platform, tuple(events)


def runtime_adds_succeed(platform, events, multiplex=False):
    """Ground truth: drive the real library, return whether adds fit."""
    papi = Papi(create(platform))
    es = papi.create_eventset()
    if multiplex:
        es.set_multiplex()
    try:
        for symbol in events:
            es.add_event(papi.event_name_to_code(symbol))
    except ConflictError:
        return False
    except PapiError:  # pragma: no cover - pool excludes these
        raise
    return True


@given(platform_and_events())
@settings(max_examples=150, deadline=None)
def test_static_verdict_matches_runtime(case):
    platform, events = case
    report = check_events(events, platform)
    assert report.ok == runtime_adds_succeed(platform, events), (
        f"static says ok={report.ok} but the runtime disagrees for "
        f"{events} on {platform}"
    )


@given(platform_and_events())
@settings(max_examples=60, deadline=None)
def test_static_mpx_verdict_matches_runtime(case):
    platform, events = case
    report = check_events(events, platform)
    if report.sampling:
        return  # set_multiplex is rejected on the sampling substrate
    runtime_ok = runtime_adds_succeed(platform, events, multiplex=True)
    assert report.feasible_multiplexed == runtime_ok, (
        f"static says mpx={report.feasible_multiplexed} but the runtime "
        f"disagrees for {events} on {platform}"
    )


@given(platform_and_events())
@settings(max_examples=60, deadline=None)
def test_conflict_witness_is_infeasible_and_minimal(case):
    platform, events = case
    report = check_events(events, platform)
    if report.feasible_direct or report.sampling:
        return
    witness = report.conflict_witness
    assert witness, "infeasible report must carry a conflict witness"
    assert set(witness) <= set(events)
    assert not check_events(witness, platform).feasible_direct
    for name in witness:
        rest = tuple(n for n in witness if n != name)
        if rest:
            assert check_events(rest, platform).feasible_direct, (
                f"witness {witness} is not minimal: still infeasible "
                f"without {name}"
            )

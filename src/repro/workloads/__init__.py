"""Synthetic workload programs with analytically known expectations.

Every kernel returns a :class:`~repro.workloads.builder.Workload`:
a VM :class:`~repro.hw.isa.Program` plus
:class:`~repro.workloads.builder.Expectations` recording the exact
operation counts the kernel performs.  The calibrate utility (E2/E6) and
the test suite compare measured counter values against these.

``CALIBRATION_KERNELS`` maps kernel names to factories taking
``(n, use_fma)``, the set the calibrate utility cycles through.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.workloads.branches import predictable_branches, random_branches
from repro.workloads.builder import Expectations, Flow, Workload
from repro.workloads.linalg import (
    axpy,
    dot,
    matmul,
    mixed_precision_sum,
    triad,
)
from repro.workloads.memory import (
    pointer_chase,
    strided_scan,
    tlb_walker,
    working_set_sweep,
)
from repro.workloads.mixed import demo_app, phased
from repro.workloads.validation import conformance_mix, decoy_spin, skid_probe

def _matmul_sized(n: int, use_fma: bool = True) -> Workload:
    """matmul sized so that total FLOPs ~ 2n (n is *work*, not dimension)."""
    dim = max(2, round(n ** (1.0 / 3.0)))
    return matmul(dim, use_fma=use_fma)


#: kernels with exact FLOP expectations, usable by the calibrate utility.
#: Every factory takes ``(n, use_fma)`` where n scales total work (so a
#: single size knob is meaningful across kernels of different complexity).
CALIBRATION_KERNELS: Dict[str, Callable[..., Workload]] = {
    "dot": dot,
    "axpy": axpy,
    "triad": triad,
    "matmul": _matmul_sized,
    "mixsum": lambda n, use_fma=True: mixed_precision_sum(n, use_fma=use_fma),
}

__all__ = [
    "CALIBRATION_KERNELS",
    "Expectations",
    "Flow",
    "Workload",
    "axpy",
    "conformance_mix",
    "decoy_spin",
    "demo_app",
    "dot",
    "matmul",
    "mixed_precision_sum",
    "phased",
    "pointer_chase",
    "predictable_branches",
    "skid_probe",
    "random_branches",
    "strided_scan",
    "tlb_walker",
    "triad",
    "working_set_sweep",
]

"""Integration: every shipped example must run cleanly end-to-end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 6, EXAMPLES
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} printed nothing"

"""Property-based tests: the static oracle brackets the exact oracle.

Random structured programs (the same generator family as
``test_props_oracle``: counted top- and bottom-test loops, ALU/FP/memory
bodies, data-dependent branches, calls into a leaf, probes) are analyzed
WITHOUT executing; the derived per-signal intervals must always contain
the exact oracle's counts, and the block-affine certificate must hold.
Together with ``test_props_oracle`` (exact == simulator) this pins the
full chain: static bounds >= exact oracle == simulator, engine on/off.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.hw import Assembler
from repro.lint.staticoracle import (
    static_signal_bounds,
    verify_block_affine,
)
from repro.validate.oracle import expected_signal_counts

_BODY_OPS = (
    "alu_addi", "alu_add", "alu_mul", "fp_add", "fp_mul", "fp_cvt",
    "mem_load", "mem_store", "branch", "call_leaf", "probe", "nop",
)

body_ops = st.lists(st.sampled_from(_BODY_OPS), min_size=0, max_size=5)
segments = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=15),   # loop iterations
        st.booleans(),                            # bottom-test loop?
        body_ops,
    ),
    min_size=1,
    max_size=3,
)


def build_program(segs):
    """A halting, fault-free program; every loop has a static trip count."""
    asm = Assembler(name="static_prop")
    base = asm.init_array([1 + (i % 7) for i in range(64)])

    asm.func("leaf")
    asm.addi("r6", "r6", 1)
    asm.fadd("f4", "f1", "f2")
    asm.ret()
    asm.endfunc()

    asm.func("main")
    asm.li("r9", base)
    asm.fli("f1", 1.25)
    asm.fli("f2", 0.5)
    for i, (iters, bottom_test, body) in enumerate(segs):
        asm.li("r1", 0)
        asm.li("r3", iters)
        asm.label(f"loop{i}")
        if not bottom_test:
            asm.bge("r1", "r3", f"exit{i}")
        for j, op in enumerate(body):
            if op == "alu_addi":
                asm.addi("r2", "r2", j + 1)
            elif op == "alu_add":
                asm.add("r4", "r4", "r2")
            elif op == "alu_mul":
                asm.muli("r5", "r2", 3)
            elif op == "fp_add":
                asm.fadd("f3", "f1", "f2")
            elif op == "fp_mul":
                asm.fmul("f3", "f1", "f2")
            elif op == "fp_cvt":
                asm.fcvt("f5", "f3")
            elif op == "mem_load":
                asm.load("r7", "r9", (i * 7 + j) % 64)
            elif op == "mem_store":
                asm.store("r2", "r9", (i * 11 + j) % 64)
            elif op == "branch":
                # data-dependent: forces this segment's bounds loose
                asm.beq("r2", "r3", f"done{i}_{j}")
                asm.label(f"done{i}_{j}")
            elif op == "call_leaf":
                asm.call("leaf")
            elif op == "probe":
                asm.probe((i + j) % 7 + 1)
            elif op == "nop":
                asm.nop()
        asm.addi("r1", "r1", 1)
        if bottom_test:
            asm.blt("r1", "r3", f"loop{i}")
        else:
            asm.jmp(f"loop{i}")
        asm.label(f"exit{i}")
    asm.syscall(1)
    asm.halt()
    asm.endfunc()
    return asm.build()


@given(segs=segments)
@settings(deadline=None)
def test_static_bounds_bracket_exact_oracle(segs):
    program = build_program(segs)
    bounds = static_signal_bounds(program)
    exact = expected_signal_counts(program)
    assert bounds.brackets(exact), bounds.mismatches(exact)


@given(segs=segments)
@settings(deadline=None, max_examples=30)
def test_block_affine_certificate_never_fails(segs):
    # every generated program must admit the affine-block certificate
    # (it is what licenses the block engine on arbitrary programs)
    vectors = verify_block_affine(build_program(segs))
    assert vectors


@given(segs=segments)
@settings(deadline=None, max_examples=15)
def test_branch_free_programs_are_exact(segs):
    clean = [
        (iters, bottom, [op for op in body
                         if op not in ("branch", "call_leaf")])
        for iters, bottom, body in segs
    ]
    program = build_program(clean)
    bounds = static_signal_bounds(program)
    exact = expected_signal_counts(program)
    assert bounds.is_exact(), bounds.mismatches(exact)
    assert bounds.brackets(exact), bounds.mismatches(exact)

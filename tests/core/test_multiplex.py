"""Unit tests: software multiplexing (partitioning, rotation, estimation)."""

import pytest

from repro.core.library import Papi
from repro.core.multiplex import partition_natives
from repro.workloads import dot, phased


def mpx_eventset(papi, names):
    es = papi.create_eventset()
    es.set_multiplex()
    es.add_named(*names)
    return es


class TestPartition:
    def test_fits_in_one_subset_when_possible(self, simpower):
        natives = {
            n: simpower.query_native(n)
            for n in ("PM_CYC", "PM_INST_CMPL", "PM_LD_CMPL")
        }
        subsets = partition_natives(simpower, natives)
        assert len(subsets) == 1

    def test_splits_when_overcommitted(self, simx86):
        names = ("CPU_CLK_UNHALTED", "INST_RETIRED", "FLOPS", "DCU_LINES_IN")
        natives = {n: simx86.query_native(n) for n in names}
        subsets = partition_natives(simx86, natives)
        assert len(subsets) >= 2
        placed = {n for s in subsets for n in s}
        assert placed == set(names)

    def test_group_platform_partitions_by_group(self, simpower):
        # memory events and branch events live in different groups
        names = ("PM_LD_MISS_L1", "PM_BR_MPRED")
        natives = {n: simpower.query_native(n) for n in names}
        subsets = partition_natives(simpower, natives)
        assert len(subsets) == 2


class TestMultiplexedCounting:
    def test_rotation_happens(self, simx86):
        papi = Papi(simx86)
        papi.mpx_quantum_cycles = 2000
        es = mpx_eventset(
            papi, ["PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_FP_OPS",
                   "PAPI_L1_DCM"]
        )
        wl = phased([("fp", 3000), ("mem", 3000)], repeats=2, use_fma=False)
        simx86.machine.load(wl.program)
        es.start()
        assert es._mpx is not None
        simx86.machine.run_to_completion()
        rotations = es._mpx.rotations
        values = es.stop()
        assert rotations > 4
        assert all(v > 0 for v in values[:3])

    def test_estimates_close_on_long_uniform_run(self, simx86):
        """On a long homogeneous run, multiplexed estimates converge."""
        papi = Papi(simx86)
        papi.mpx_quantum_cycles = 1500
        es = mpx_eventset(papi, ["PAPI_TOT_INS", "PAPI_FP_OPS"])
        n = 12000
        wl = dot(n, use_fma=False)
        simx86.machine.load(wl.program)
        es.start()
        simx86.machine.run_to_completion()
        values = dict(zip(es.event_names, es.stop()))
        assert values["PAPI_FP_OPS"] == pytest.approx(2 * n, rel=0.10)

    def test_single_subset_multiplex_is_exact(self, simpower):
        """If everything fits one subset, multiplexing changes nothing."""
        papi = Papi(simpower)
        es = mpx_eventset(papi, ["PAPI_TOT_INS", "PAPI_FP_OPS"])
        n = 1000
        wl = dot(n, use_fma=True)
        simpower.machine.load(wl.program)
        es.start()
        simpower.machine.run_to_completion()
        values = dict(zip(es.event_names, es.stop()))
        assert values["PAPI_FP_OPS"] == 2 * n

    def test_short_phased_run_is_inaccurate(self, simx86):
        """The paper's warning (Section 2): short runs mis-extrapolate
        phases.  fp happens only in the first phase; a multiplexed
        FP_OPS estimate over one phase rotation is badly wrong."""
        papi = Papi(simx86)
        papi.mpx_quantum_cycles = 12000
        es = mpx_eventset(
            papi,
            ["PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_FP_OPS", "PAPI_L1_DCM"],
        )
        wl = phased([("fp", 1000), ("mem", 4000)], repeats=1, use_fma=False)
        simx86.machine.load(wl.program)
        es.start()
        simx86.machine.run_to_completion()
        values = dict(zip(es.event_names, es.stop()))
        err = abs(values["PAPI_FP_OPS"] - 2 * 1000) / (2 * 1000)
        assert err > 0.20, f"expected large short-run error, got {err:.1%}"

    def test_read_mid_run(self, simx86):
        papi = Papi(simx86)
        papi.mpx_quantum_cycles = 1000
        es = mpx_eventset(papi, ["PAPI_TOT_INS", "PAPI_FP_OPS",
                                 "PAPI_L1_DCM"])
        wl = dot(8000, use_fma=False)
        simx86.machine.load(wl.program)
        es.start()
        simx86.machine.run(max_instructions=20000)
        mid = es.read()
        simx86.machine.run_to_completion()
        final = es.stop()
        assert 0 < mid[0] < final[0]

    def test_reset_mid_run(self, simx86):
        papi = Papi(simx86)
        papi.mpx_quantum_cycles = 1000
        es = mpx_eventset(papi, ["PAPI_TOT_INS", "PAPI_FP_OPS",
                                 "PAPI_L1_DCM"])
        wl = dot(8000, use_fma=False)
        simx86.machine.load(wl.program)
        es.start()
        simx86.machine.run(max_instructions=20000)
        es.reset()
        post = es.read()
        assert post[0] < 5000  # only counts since reset
        es.stop()

    def test_multiplex_pays_interface_overhead(self, simx86):
        """Every rotation goes through real program/start/stop calls."""
        papi = Papi(simx86)
        papi.mpx_quantum_cycles = 1000
        es = mpx_eventset(papi, ["PAPI_TOT_INS", "PAPI_FP_OPS",
                                 "PAPI_L1_DCM"])
        wl = dot(6000, use_fma=False)
        simx86.machine.load(wl.program)
        before = simx86.machine.system_cycles
        es.start()
        simx86.machine.run_to_completion()
        es.stop()
        overhead = simx86.machine.system_cycles - before
        # at least one syscall-priced operation per rotation
        assert overhead > es._mpx.rotations if es._mpx else True
        assert overhead > 10000

    def test_timer_busy_rejected(self, simx86, fma_loop_program):
        papi = Papi(simx86)
        es = mpx_eventset(papi, ["PAPI_TOT_INS", "PAPI_FP_OPS",
                                 "PAPI_L1_DCM"])
        simx86.machine.load(fma_loop_program)
        simx86.machine.pmu.set_cycle_timer(1000, lambda c: None)
        from repro.core.errors import SubstrateFeatureError
        with pytest.raises(SubstrateFeatureError):
            es.start()

"""Driver for the flow-sensitive lint pass (rules PL3xx/PL4xx).

Per scope (the module body and every function body, nested included):

1. build the CFG (:mod:`repro.lint.cfg`);
2. run the typestate analysis to fixpoint (:mod:`repro.lint.dataflow` /
   :mod:`repro.lint.typestate`) with interprocedural summaries
   (:mod:`repro.lint.summaries`) for module-level helpers;
3. replay every node's transfer against its final IN fact with a
   diagnostic sink attached (rules PL301/PL302/PL401/PL402/PL403 fire
   inside transfers);
4. inspect the scope's exit facts for lifecycle leaks: a set still
   running at normal exit on an exception-tainted path (PL303), and a
   set still running after an exception-path ``finally`` ran (PL304).

Plus one syntactic rule, PL305: a loop whose ``except`` catches only
*fatal* PAPI error classes (from :mod:`repro.core.errors`) and whose
handler neither re-raises, breaks, returns nor adapts the request is a
blind retry of a request that can never succeed -- the recovery ladder
(:mod:`repro.core.resilience`) exists precisely so scripts do not do
this by hand.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.errors import FATAL_ERROR_NAMES
from repro.lint.cfg import build_cfg, handler_names
from repro.lint.dataflow import solve
from repro.lint.diagnostics import Diagnostic
from repro.lint.summaries import collect_functions, compute_summaries
from repro.lint.typestate import (
    ALL_STATES,
    RUNNING,
    TypestateAnalysis,
    is_eventset,
)

_SeenKey = Tuple[str, int, int]


def lint_flow(tree: ast.Module, path: str) -> List[Diagnostic]:
    """Run the flow-sensitive pass over one parsed module."""
    functions = collect_functions(tree)
    summaries = compute_summaries(functions)

    scopes: List[Tuple[Sequence[ast.stmt], List[str]]] = [(tree.body, [])]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append((node.body, [a.arg for a in node.args.args]))

    diagnostics: List[Diagnostic] = []
    seen: Set[_SeenKey] = set()
    for body, params in scopes:
        diagnostics.extend(
            _analyze_scope(body, params, summaries, path, seen)
        )
    diagnostics.extend(_check_recovery_ladder(tree, path, seen))
    return diagnostics


# ---------------------------------------------------------------------------
# one scope
# ---------------------------------------------------------------------------


def _analyze_scope(
    body: Sequence[ast.stmt],
    params: List[str],
    summaries,
    path: str,
    seen: Set[_SeenKey],
) -> List[Diagnostic]:
    cfg = build_cfg(body)
    analysis = TypestateAnalysis(summaries, params)
    try:
        ins, outs = solve(cfg, analysis)
    except RuntimeError:  # pragma: no cover - non-convergence safety valve
        return []

    found: List[Diagnostic] = []

    def sink(rule, node, objid, message, hint, method):
        key = (rule, node.line, node.col)
        if key in seen:
            return
        seen.add(key)
        found.append(Diagnostic(
            rule, path, node.line, node.col, message, hint=hint,
        ))

    # replay transfers against the fixpoint IN facts to collect reports
    analysis.sink = sink
    for node in cfg.stmt_nodes():
        analysis.transfer(node, ins[node.id])
    analysis.sink = None

    found.extend(_leak_checks(cfg, ins, outs, path, seen))
    return found


def _leak_checks(
    cfg, ins: Dict[int, object], outs: Dict[int, object], path: str,
    seen: Set[_SeenKey],
) -> List[Diagnostic]:
    """PL303 (swallowed-exception leak) and PL304 (finally misses stop)."""
    found: List[Diagnostic] = []

    def emit(rule: str, line: int, message: str, hint: str) -> None:
        key = (rule, line, 0)
        if key in seen:
            return
        seen.add(key)
        found.append(Diagnostic(rule, path, line, 0, message, hint=hint))

    exit_fact = ins[cfg.exit]
    if exit_fact.objs:
        for oid, fact in exit_fact.objs_dict().items():
            if not is_eventset(oid) or not fact.started_lines:
                continue
            if fact.state_names == ALL_STATES:
                continue  # fully unknown: stay silent
            if (RUNNING, True) in fact.states:
                emit(
                    "PL303", min(fact.started_lines),
                    "EventSet started here may still be running when "
                    "the scope exits: an exception handler on the way "
                    "swallows the error and never stops the set",
                    "stop() in the handler or in a finally; counters "
                    "stay acquired until stop()",
                )

    preds = cfg.preds()
    for src, _kind in preds[cfg.raise_exit]:
        node = cfg.nodes[src]
        if node.kind != "finally_exc":
            continue
        after = outs[src]
        if not after.objs:
            continue
        for oid, fact in after.objs_dict().items():
            if not is_eventset(oid) or not fact.started_lines:
                continue
            if fact.state_names == ALL_STATES:
                continue
            if RUNNING in fact.state_names:
                emit(
                    "PL304", min(fact.started_lines),
                    "an exception escaping the enclosing try leaves "
                    "the EventSet started here running; the finally "
                    "block does not stop it",
                    "add stop() (guarded by is_running) to the "
                    "finally block",
                )
    return found


# ---------------------------------------------------------------------------
# PL305: blind retry of fatal error classes
# ---------------------------------------------------------------------------


def _handler_is_blind(handler: ast.ExceptHandler) -> bool:
    """No re-raise/break/return and no call: nothing can change the
    outcome of the retried request."""
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Raise, ast.Break, ast.Return,
                                 ast.Call)):
                return False
    return True


def _check_recovery_ladder(
    tree: ast.Module, path: str, seen: Set[_SeenKey]
) -> List[Diagnostic]:
    found: List[Diagnostic] = []
    for loop in ast.walk(tree):
        if not isinstance(loop, (ast.While, ast.For)):
            continue
        for node in ast.walk(loop):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                names = handler_names(handler)
                if not names or not names <= FATAL_ERROR_NAMES:
                    continue
                if not _handler_is_blind(handler):
                    continue
                key = ("PL305", handler.lineno, handler.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                caught = "/".join(sorted(names))
                found.append(Diagnostic(
                    "PL305", path, handler.lineno, handler.col_offset,
                    f"loop retries after catching {caught}, a fatal "
                    f"PAPI error class that cannot clear on its own",
                    hint="fatal errors need the request changed (or "
                         "surfaced); only transient errors "
                         "(SystemError_, CountersLostError) belong in "
                         "a retry loop -- see repro.core.resilience",
                ))
    return found

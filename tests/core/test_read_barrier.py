"""The flush-before-read barrier: counter reads drain the block engine.

``PMU.read`` must observe every effect of instructions retired so far --
including instructions the block engine retired through compiled code or
bulk replay.  The engine commits synchronously, and the PMU's flush hook
is the enforcement point; these tests pin both the hook wiring and the
end-to-end guarantee for reads issued *mid-loop* (from a probe handler
firing inside a hot loop, the paper's PAPI_read-in-inner-loop pattern,
E7).
"""

from __future__ import annotations

import pytest

from repro.core.highlevel import HighLevel
from repro.core.library import Papi
from repro.hw import Assembler, Machine, MachineConfig, Signal
from repro.platforms import create


def probed_loop(n=400):
    """A hot counted loop whose body fires probe 1 every iteration."""
    asm = Assembler(name="probed_loop")
    asm.func("main")
    asm.li("r1", 0)
    asm.li("r2", n)
    asm.fli("f1", 1.5)
    asm.label("loop")
    asm.probe(1)
    asm.fma("f3", "f1", "f1", "f3")
    asm.addi("r4", "r4", 2)
    asm.addi("r1", "r1", 1)
    asm.blt("r1", "r2", "loop")
    asm.halt()
    asm.endfunc()
    return asm.build()


class TestFlushHook:
    def test_read_invokes_engine_flush(self):
        m = Machine(MachineConfig(block_engine=True))
        m.load(probed_loop(10))
        m.pmu.program(0, [Signal.TOT_INS])
        m.pmu.start(0)
        before = m.engine_stats().flushes
        m.pmu.read(0)
        assert m.engine_stats().flushes == before + 1

    def test_stop_invokes_engine_flush(self):
        m = Machine(MachineConfig(block_engine=True))
        m.load(probed_loop(10))
        m.pmu.program(0, [Signal.TOT_INS])
        m.pmu.start(0)
        before = m.engine_stats().flushes
        m.pmu.stop(0)
        assert m.engine_stats().flushes == before + 1

    def test_read_after_replay_sees_all_instructions(self):
        """A read right after a bulk replay must include every retired op."""
        asm = Assembler(name="tight")
        asm.label("main")
        asm.li("r1", 0)
        asm.li("r2", 50_000)
        asm.label("loop")
        asm.addi("r1", "r1", 1)
        asm.blt("r1", "r2", "loop")
        asm.halt()
        prog = asm.build()

        m = Machine(MachineConfig(block_engine=True))
        m.load(prog)
        m.pmu.program(0, [Signal.TOT_INS])
        m.pmu.start(0)
        m.run_to_completion()
        assert m.engine_stats().replayed_instructions > 0
        assert m.pmu.read(0) == m.counts[Signal.TOT_INS]


class TestMidLoopHighLevelRead:
    """core/highlevel.read issued from inside a running loop."""

    @pytest.mark.parametrize("engine", [False, True])
    def test_read_counters_mid_loop_monotone(self, engine):
        sub = create("simPOWER", block_engine=engine)
        hl = HighLevel(Papi(sub))
        prog = probed_loop(200)
        sub.machine.load(prog)

        readings = []
        sub.machine.register_probe(
            1, lambda pid, cpu: readings.append(hl.read_counters()[0])
        )
        hl.start_counters(["PAPI_TOT_INS"])
        sub.machine.run_to_completion()
        hl.stop_counters()
        assert len(readings) == 200
        # read_counters resets: each reading covers one loop iteration
        # (plus interface overhead), so all mid-loop readings past the
        # first are identical -- any stale window would break this.
        assert len(set(readings[1:])) == 1

    def test_mid_loop_readings_identical_engine_on_off(self):
        per_engine = {}
        for engine in (False, True):
            sub = create("simX86", block_engine=engine)
            hl = HighLevel(Papi(sub))
            sub.machine.load(probed_loop(150))
            readings = []
            sub.machine.register_probe(
                1, lambda pid, cpu: readings.append(tuple(hl.read_counters()))
            )
            hl.start_counters(["PAPI_TOT_INS", "PAPI_TOT_CYC"])
            sub.machine.run_to_completion()
            final = hl.stop_counters()
            per_engine[engine] = (readings, final, list(sub.machine.counts))
        assert per_engine[True] == per_engine[False]

"""The uncore component: socket-scoped memory-interface counters.

Models the off-core counter bank of a memory controller / L3 slice
(LIKWID's uncore groups): every event derives from shared-hierarchy
traffic, so the totals are placement invariant -- migrating a thread
changes which CPU misses, not how many lines cross the socket's memory
interface.  Counters are free-running (see :mod:`repro.components.base`)
and fed by :meth:`repro.hw.machine.Machine.socket_activity`.

The event models are architecturally determined, which is what lets the
validate plane score them against an independent oracle:

- ``MEM_BW_RD``  = L2 line fills x L2 line bytes (every miss reads one
  full line from memory);
- ``MEM_BW_WR``  = 8 bytes x store instructions (one word per store on
  the simulated 64-bit machine, write-through accounting);
- ``UNC_L2_LINES_IN`` = L2 line fills;
- ``UNC_TLB_WALKS``   = data TLB walks (page-table traffic on the
  memory interface).
"""

from __future__ import annotations

from repro.components.base import Component, ComponentEvent

#: bytes written to the memory interface per store instruction.
STORE_BYTES = 8

UNCORE_EVENTS = {
    "MEM_BW_RD": ComponentEvent(
        "MEM_BW_RD", "bytes read from memory (L2 line fills x line size)",
        units="bytes"),
    "MEM_BW_WR": ComponentEvent(
        "MEM_BW_WR", "bytes written to memory (8 bytes per store)",
        units="bytes"),
    "UNC_L2_LINES_IN": ComponentEvent(
        "UNC_L2_LINES_IN", "cache lines filled into the shared L2",
        units="lines"),
    "UNC_TLB_WALKS": ComponentEvent(
        "UNC_TLB_WALKS", "page-table walks on the memory interface",
        units="walks"),
}


class UncoreComponent(Component):
    """Socket-scoped memory-bandwidth counters over the shared hierarchy."""

    NAME = "uncore"
    DESCRIPTION = "socket memory-interface (bandwidth) counters"
    SUPPORTS_MULTIPLEX = True
    EVENTS = UNCORE_EVENTS

    def __init__(self, machine, n_counters: int) -> None:
        super().__init__(n_counters=n_counters)
        self._machine = machine

    def raw_value(self, short: str) -> int:
        self.query(short)
        activity = self._machine.socket_activity()
        if short == "MEM_BW_RD":
            return activity["l2_lines_in"] * activity["l2_line_bytes"]
        if short == "MEM_BW_WR":
            return activity["stores"] * STORE_BYTES
        if short == "UNC_L2_LINES_IN":
            return activity["l2_lines_in"]
        return activity["tlb_walks"]

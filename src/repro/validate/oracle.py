"""Ground-truth oracle: analytic expected counts for a program.

Section 4 of the paper: "test programs may need to be written to
determine exactly what events are being counted ... for which the
expected counts are known".  :mod:`repro.core.calibrate` does that for a
handful of kernels whose authors wrote the expectations down by hand;
this module generalizes it: an *independent reference interpreter* walks
any resolved program and derives the exact count of every
**architecturally determined** signal -- instructions retired, integer
and floating point operations (with FMA and convert accounting), loads,
stores, and branch outcomes (computed, since they are data-dependent but
deterministic).

Micro-architectural signals -- cycles, stalls, cache/TLB misses, branch
*mispredictions*, interrupts -- depend on cache geometry, predictor
state and interrupt timing; no analytic oracle exists for them, so they
are excluded (:data:`ORACLE_SIGNALS`) and the conformance matrix marks
presets touching them as unscored rather than guessing.

The interpreter deliberately shares no code with
:class:`repro.hw.cpu.CPU`: it is a second, simpler implementation of the
ISA's architectural semantics, so a bookkeeping bug in the simulator's
hot loop (or its block engine) cannot cancel out of the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.presets import (
    PresetMapping,
    mapping_signal_vector,
    platform_preset_map,
    reference_vector,
)
from repro.hw.cpu import _round_to_single
from repro.hw.events import Signal
from repro.hw.isa import INS_BYTES, NUM_FREGS, NUM_IREGS, Op, Program

#: Signals whose value is fully determined by the program's architectural
#: execution (no cache, predictor or timing dependence).  Everything the
#: oracle predicts; everything else is micro-architectural and unscored.
ORACLE_SIGNALS = frozenset({
    Signal.TOT_INS,
    Signal.INT_INS,
    Signal.LD_INS,
    Signal.SR_INS,
    Signal.BR_INS,
    Signal.BR_CN,
    Signal.BR_TKN,
    Signal.BR_NTK,
    Signal.CALL_INS,
    Signal.RET_INS,
    Signal.FP_ADD,
    Signal.FP_MUL,
    Signal.FP_DIV,
    Signal.FP_SQRT,
    Signal.FP_FMA,
    Signal.FP_CVT,
    Signal.FP_MOV,
    Signal.SYS_INS,
    Signal.PRB_INS,
})


class OracleError(Exception):
    """Raised when a program cannot be oracle-executed (fault, runaway)."""


def expected_signal_counts(
    program: Program,
    heap_words: int = 0,
    max_instructions: int = 50_000_000,
    iline_shift: Optional[int] = None,
) -> List[int]:
    """Execute *program* architecturally; return exact signal counts.

    The returned list is indexed by :class:`~repro.hw.events.Signal`;
    only :data:`ORACLE_SIGNALS` entries are meaningful (the rest stay 0).
    Faults (bad addresses, divide by zero, runaway loops) raise
    :class:`OracleError` -- validation workloads must be fault-free.

    *iline_shift* additionally predicts ``Signal.L1I_ACC``: an
    instruction-cache access happens exactly when the fetch line
    (``pc * INS_BYTES >> iline_shift``) differs from the previous
    instruction's, starting cold.  Unlike misses, *accesses* are fully
    determined by the dynamic pc stream and the documented line width,
    so the refutation harness can check a platform's published fetch
    geometry against behaviour (an off-by-one in the line width is
    exactly the kind of documentation drift Section 4 warns about).
    """
    code = program.resolve()
    counts = [0] * Signal.N_SIGNALS
    memory: List[object] = [0] * (program.data_size + heap_words)
    for addr, value in program.data_init:
        memory[addr] = value
    mem_len = len(memory)
    iregs = [0] * NUM_IREGS
    fregs = [0.0] * NUM_FREGS
    call_stack: List[int] = []
    pc = program.label_at(program.entry)
    executed = 0
    cur_iline = -1

    while True:
        if executed >= max_instructions:
            raise OracleError(
                f"program exceeded the oracle budget of "
                f"{max_instructions} instructions"
            )
        if iline_shift is not None:
            iline = (pc * INS_BYTES) >> iline_shift
            if iline != cur_iline:
                cur_iline = iline
                counts[Signal.L1I_ACC] += 1
        try:
            op, a, b, c, d = code[pc]
        except IndexError:
            raise OracleError(f"pc out of range: {pc}") from None
        counts[Signal.TOT_INS] += 1
        executed += 1
        next_pc = pc + 1

        if op == Op.FLOAD or op == Op.LOAD:
            addr = iregs[b] + d
            if not 0 <= addr < mem_len:
                raise OracleError(f"pc {pc}: load address {addr} out of range")
            counts[Signal.LD_INS] += 1
            if op == Op.LOAD:
                iregs[a] = int(memory[addr])
            else:
                fregs[a] = float(memory[addr])
        elif op == Op.FSTORE or op == Op.STORE:
            addr = iregs[b] + d
            if not 0 <= addr < mem_len:
                raise OracleError(f"pc {pc}: store address {addr} out of range")
            counts[Signal.SR_INS] += 1
            memory[addr] = iregs[a] if op == Op.STORE else fregs[a]
        elif op == Op.ADDI:
            counts[Signal.INT_INS] += 1
            iregs[a] = iregs[b] + d
        elif op == Op.ADD:
            counts[Signal.INT_INS] += 1
            iregs[a] = iregs[b] + iregs[c]
        elif op == Op.FMA:
            counts[Signal.FP_FMA] += 1
            fregs[a] = fregs[b] * fregs[c] + fregs[d]
        elif op == Op.FADD:
            counts[Signal.FP_ADD] += 1
            fregs[a] = fregs[b] + fregs[c]
        elif op == Op.FMUL:
            counts[Signal.FP_MUL] += 1
            fregs[a] = fregs[b] * fregs[c]
        elif op == Op.FSUB:
            counts[Signal.FP_ADD] += 1
            fregs[a] = fregs[b] - fregs[c]
        elif op == Op.BLT or op == Op.BGE or op == Op.BEQ or op == Op.BNE:
            counts[Signal.BR_INS] += 1
            counts[Signal.BR_CN] += 1
            if op == Op.BLT:
                taken = iregs[a] < iregs[b]
            elif op == Op.BGE:
                taken = iregs[a] >= iregs[b]
            elif op == Op.BEQ:
                taken = iregs[a] == iregs[b]
            else:
                taken = iregs[a] != iregs[b]
            if taken:
                counts[Signal.BR_TKN] += 1
                next_pc = c
            else:
                counts[Signal.BR_NTK] += 1
        elif op == Op.JMP:
            counts[Signal.BR_INS] += 1
            next_pc = a
        elif op == Op.CALL:
            counts[Signal.BR_INS] += 1
            counts[Signal.CALL_INS] += 1
            call_stack.append(pc + 1)
            next_pc = a
        elif op == Op.RET:
            counts[Signal.BR_INS] += 1
            counts[Signal.RET_INS] += 1
            if not call_stack:
                raise OracleError(f"pc {pc}: RET with empty call stack")
            next_pc = call_stack.pop()
        elif op == Op.LI:
            counts[Signal.INT_INS] += 1
            iregs[a] = d
        elif op == Op.MOV:
            counts[Signal.INT_INS] += 1
            iregs[a] = iregs[b]
        elif op == Op.SUB:
            counts[Signal.INT_INS] += 1
            iregs[a] = iregs[b] - iregs[c]
        elif op == Op.MUL:
            counts[Signal.INT_INS] += 1
            iregs[a] = iregs[b] * iregs[c]
        elif op == Op.DIV:
            counts[Signal.INT_INS] += 1
            if iregs[c] == 0:
                raise OracleError(f"pc {pc}: integer divide by zero")
            q = abs(iregs[b]) // abs(iregs[c])
            iregs[a] = q if (iregs[b] < 0) == (iregs[c] < 0) else -q
        elif op == Op.MULI:
            counts[Signal.INT_INS] += 1
            iregs[a] = iregs[b] * d
        elif op == Op.FDIV:
            counts[Signal.FP_DIV] += 1
            if fregs[c] == 0.0:
                raise OracleError(f"pc {pc}: float divide by zero")
            fregs[a] = fregs[b] / fregs[c]
        elif op == Op.FSQRT:
            counts[Signal.FP_SQRT] += 1
            if fregs[b] < 0.0:
                raise OracleError(f"pc {pc}: sqrt of negative value")
            fregs[a] = fregs[b] ** 0.5
        elif op == Op.FCVT:
            counts[Signal.FP_CVT] += 1
            fregs[a] = _round_to_single(fregs[b])
        elif op == Op.FLI:
            counts[Signal.FP_MOV] += 1
            fregs[a] = d
        elif op == Op.FMOV:
            counts[Signal.FP_MOV] += 1
            fregs[a] = fregs[b]
        elif op == Op.NOP:
            pass
        elif op == Op.PROBE:
            counts[Signal.PRB_INS] += 1
        elif op == Op.SYSCALL:
            counts[Signal.SYS_INS] += 1
        elif op == Op.HALT:
            return counts
        else:
            raise OracleError(f"pc {pc}: unknown opcode {op}")
        pc = next_pc


@dataclass(frozen=True)
class PresetExpectation:
    """What one platform's realization of one preset *should* read.

    ``expected`` applies the platform's mapping vector to the oracle
    counts -- so a platform whose native event has quirky semantics (the
    POWER3 ``PM_FPU_INS`` counting converts) gets the quirky number, and
    ``drift`` records that it differs from ``reference_expected`` (the
    catalogue's reference semantics).  Section 4's drift hazard becomes a
    computed column, not a footnote.
    """

    symbol: str
    #: every hardware signal in ORACLE_SIGNALS => analytically checkable
    checkable: bool
    #: oracle value under the *platform's* mapping (None if uncheckable)
    expected: Optional[int]
    #: oracle value under the catalogue's reference semantics
    reference_expected: Optional[int]
    #: platform semantics deviate from the reference on this workload
    drift: bool
    #: the signal vector the platform mapping actually counts
    signals: Tuple[int, ...]


def _vector_value(vec: Dict[int, int], counts: List[int]) -> int:
    return sum(coeff * counts[sig] for sig, coeff in vec.items())


def expected_preset_values(
    platform_name: str,
    signal_counts: List[int],
    native_signals: Dict[str, Tuple[int, ...]],
) -> Dict[str, PresetExpectation]:
    """Expected value of every preset the platform maps, from oracle counts.

    *native_signals* is the platform's native-event signal table
    (``{name: signals}`` from ``substrate.native_events``); the platform
    mapping's signal vector (:func:`mapping_signal_vector`) applied to
    the oracle counts is what a bug-free substrate must report.
    """
    out: Dict[str, PresetExpectation] = {}
    for symbol, mapping in platform_preset_map(platform_name).items():
        out[symbol] = _expectation(mapping, signal_counts, native_signals)
    return out


def _expectation(
    mapping: PresetMapping,
    counts: List[int],
    native_signals: Dict[str, Tuple[int, ...]],
) -> PresetExpectation:
    vec = mapping_signal_vector(mapping.terms, native_signals)
    checkable = bool(vec) and all(sig in ORACLE_SIGNALS for sig in vec)
    ref_vec = reference_vector(mapping.preset)
    ref_checkable = bool(ref_vec) and all(
        sig in ORACLE_SIGNALS for sig in ref_vec
    )
    expected = _vector_value(vec, counts) if checkable else None
    reference = _vector_value(ref_vec, counts) if ref_checkable else None
    drift = (
        checkable and ref_checkable and expected != reference
    )
    return PresetExpectation(
        symbol=mapping.preset.symbol,
        checkable=checkable,
        expected=expected,
        reference_expected=reference,
        drift=drift,
        signals=tuple(sorted(vec)),
    )

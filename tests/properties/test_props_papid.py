"""Stateful property test: the papid daemon under random drives + crashes.

Hypothesis interleaves client operations (create/start/read/stop/
destroy), forced worker crashes, and recovery scans over a small
session pool on the inline transport, with substrate-level chaos
injected into every worker.  After every step the daemon must uphold
its two core promises:

- **monotonicity** — for any session, the counts in any OK read/stop
  are >= the last OK counts the client saw, crashes included (the
  journal's write-behind-of-acks discipline);
- **consistency** — the registry and a pure fold of the journal agree
  exactly (``check_consistency() == []``), so a restart from the
  journal reproduces what clients were shown.

Transient results (EAGAIN from a dead shard, worker-side fault churn)
are allowed anywhere; they promise nothing and are simply skipped.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
import hypothesis.strategies as st

from repro.daemon import DaemonConfig, Op, PapidServer, SessionSpec

SIDS = ["prop-a", "prop-b", "prop-c", "prop-d"]


class PapidMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.server = PapidServer(DaemonConfig(
            nshards=2, transport="inline",
            # recovery is driven explicitly by the recover rule; the
            # supervisor thread stays parked unless a dispatch wakes it
            heartbeat_interval=3600.0,
            inject="11:daemon-chaos",
        ))
        self.seq = {}
        self.last_values = {}    # sid -> last OK values shown
        self.state = {}          # sid -> created | running | stopped

    def _next_seq(self, sid):
        nxt = self.seq.get(sid, 0) + 1
        self.seq[sid] = nxt
        return nxt

    def _submit(self, op):
        return self.server.submit([op])[0]

    # -- client operations ---------------------------------------------

    @rule(sid=st.sampled_from(SIDS), seed=st.integers(0, 5))
    def create(self, sid, seed):
        res = self._submit(Op(
            kind="create", sid=sid,
            spec=SessionSpec(sid=sid, seed=100 + seed),
        ))
        if sid in self.state:
            assert not res.ok, "duplicate create must not succeed"
        if res.ok:
            self.state[sid] = "created"
            self.last_values.setdefault(sid, {})

    @rule(sid=st.sampled_from(SIDS))
    def start(self, sid):
        res = self._submit(Op(kind="start", sid=sid,
                              seq=self._next_seq(sid)))
        if res.ok:
            assert self.state.get(sid) is not None
            self.state[sid] = "running"

    @rule(sid=st.sampled_from(SIDS))
    def read(self, sid):
        res = self._submit(Op(kind="read", sid=sid,
                              seq=self._next_seq(sid)))
        if not res.ok:
            return
        self._check_monotone(sid, res)

    @rule(sid=st.sampled_from(SIDS))
    def stop(self, sid):
        res = self._submit(Op(kind="stop", sid=sid,
                              seq=self._next_seq(sid)))
        if res.ok:
            self._check_monotone(sid, res)
            self.state[sid] = "stopped"

    @rule(sid=st.sampled_from(SIDS))
    def destroy(self, sid):
        res = self._submit(Op(kind="destroy", sid=sid))
        if res.ok:
            self.state.pop(sid, None)
            self.last_values.pop(sid, None)
            self.seq.pop(sid, None)

    def _check_monotone(self, sid, res):
        last = self.last_values.get(sid, {})
        for name, count in res.values.items():
            assert count >= last.get(name, 0), (
                f"{sid}.{name} regressed: {count} < {last.get(name)}"
            )
        self.last_values[sid] = dict(res.values)

    # -- sabotage ------------------------------------------------------

    @rule(shard_id=st.sampled_from([0, 1]))
    def crash_worker(self, shard_id):
        conn = self.server.shards[shard_id].conn
        if not conn.dead:
            conn.dead = True
            conn.crash_mode = "die"

    @rule()
    def recover(self):
        self.server.check_shards()

    # -- invariants ----------------------------------------------------

    @invariant()
    def journal_matches_registry(self):
        assert self.server.check_consistency() == []

    @invariant()
    def no_session_is_lost(self):
        health = self.server.health()
        assert health.sessions_unrecovered == 0
        for sid in self.state:
            assert sid in self.server.registry

    def teardown(self):
        try:
            health = self.server.drain(timeout=10.0)
            assert health.drained
            assert self.server.check_consistency() == []
        finally:
            for shard in self.server.shards:
                shard.terminate()


TestPapidMachine = PapidMachine.TestCase
TestPapidMachine.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)

"""The hardware-independent counter-mapping problem.

"The counter allocation problem may be cast in terms of the bipartite
graph matching problem, where the graph consists of two sets of vertices
-- one set representing the events to be mapped, and the other ...
the physical counters available on the machine -- with an edge between
an event vertex and a counter vertex if that event can be counted on
that counter."  (Section 5)

:class:`MappingProblem` is exactly that graph, with optional per-event
weights for the maximum-weight variant ("if some events have higher
priority than others").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class MappingProblem:
    """Bipartite mapping instance.

    ``events`` are opaque string names; ``allowed[event]`` is the set of
    counter indices able to host it; ``weights`` (default 1 each) order
    events by priority for the max-weight variant.
    """

    events: Tuple[str, ...]
    n_counters: int
    allowed: Mapping[str, FrozenSet[int]]
    weights: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_counters < 0:
            raise ValueError("cannot have a negative number of counters")
        if len(set(self.events)) != len(self.events):
            raise ValueError("duplicate event names in mapping problem")
        for ev in self.events:
            if ev not in self.allowed:
                raise ValueError(f"event {ev!r} has no allowed-counter set")
            for c in self.allowed[ev]:
                if not 0 <= c < self.n_counters:
                    raise ValueError(
                        f"event {ev!r} allows counter {c} out of range"
                    )

    @classmethod
    def build(
        cls,
        events: Sequence[str],
        n_counters: int,
        allowed: Mapping[str, Optional[Sequence[int]]],
        weights: Optional[Mapping[str, float]] = None,
    ) -> "MappingProblem":
        """Convenience constructor; ``None`` in *allowed* means 'any'."""
        norm: Dict[str, FrozenSet[int]] = {}
        for ev in events:
            spec = allowed.get(ev)
            if spec is None:
                norm[ev] = frozenset(range(n_counters))
            else:
                norm[ev] = frozenset(spec)
        return cls(tuple(events), n_counters, norm, dict(weights or {}))

    def weight(self, event: str) -> float:
        return self.weights.get(event, 1.0)

    def degree(self, event: str) -> int:
        return len(self.allowed[event])

    def is_complete_assignment(self, assignment: Mapping[str, int]) -> bool:
        return all(ev in assignment for ev in self.events)

    def validate_assignment(self, assignment: Mapping[str, int]) -> None:
        """Raise ValueError unless *assignment* is a legal partial matching."""
        used: Dict[int, str] = {}
        for ev, ctr in assignment.items():
            if ev not in self.allowed:
                raise ValueError(f"assignment covers unknown event {ev!r}")
            if ctr not in self.allowed[ev]:
                raise ValueError(
                    f"event {ev!r} assigned to disallowed counter {ctr}"
                )
            if ctr in used:
                raise ValueError(
                    f"counter {ctr} assigned to both {used[ctr]!r} and {ev!r}"
                )
            used[ctr] = ev

    def feasible_upper_bound(self) -> int:
        """Cheap upper bound on matchable events (min of sides)."""
        return min(len(self.events), self.n_counters)

"""Control-flow graphs over Python AST for the flow-sensitive linter.

PR 1's AST state machine interprets statements in source order -- right
for straight-line instrumentation code, blind to everything the paper's
hardest lessons are about: error paths.  This module builds a real CFG
for one *scope* (a module body or one function body) so the dataflow
engine (:mod:`repro.lint.dataflow`) can reason about branches, loops,
``try``/``except``/``finally``, ``with``, ``break``/``continue`` and
early ``return``.

Shape of the graph:

- one node per simple statement (scripts are small; basic blocks would
  buy nothing but bookkeeping);
- three synthetic nodes: ``entry``, ``exit`` (normal scope completion
  *and* returns) and ``raise_exit`` (an exception escaping the scope);
- edges are labelled ``normal`` or ``exc``.

Exception modelling is deliberately selective.  A statement gets ``exc``
edges only when the program *acknowledges* that exceptions can happen
there: it is lexically inside a ``try`` that has handlers or a
``finally``, or it is an explicit ``raise``.  An uncaught exception in
plain straight-line code kills the process -- and the counters with it
-- so modelling it would flag every script that calls anything between
``start()`` and ``stop()``.  The paper's leak hazard is the *surviving*
error path: a handler that swallows the exception and carries on, or a
``finally`` that cleans up everything except the counters.

``finally`` bodies are instantiated once per distinct exit kind (normal
completion, exception escape, ``break``/``continue``/``return``
unwinding) as separate node chains over the same AST statements, so the
dataflow facts for "the finally ran after an exception" never merge
with "the finally ran after normal completion".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

NORMAL = "normal"
EXC = "exc"


@dataclass
class Node:
    """One CFG node: a statement occurrence (or a synthetic marker).

    The same AST statement can back several nodes (``finally`` bodies
    are duplicated per exit kind), so node identity is the integer id,
    never the AST object.
    """

    id: int
    stmt: Optional[ast.stmt]
    #: "entry", "exit", "raise", "stmt", "finally" (a finally copy on a
    #: normal/return/break exit) or "finally_exc" (exception unwinding)
    kind: str
    #: exception names catchable by enclosing handlers *in this scope*
    #: (the guard-awareness set, same semantics as the AST pass)
    guards: frozenset = frozenset()

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)

    @property
    def col(self) -> int:
        return getattr(self.stmt, "col_offset", 0)


@dataclass
class CFG:
    """A per-scope control-flow graph."""

    nodes: List[Node] = field(default_factory=list)
    #: node id -> [(successor id, edge kind)]
    succs: Dict[int, List[Tuple[int, str]]] = field(default_factory=dict)
    entry: int = 0
    exit: int = 1
    raise_exit: int = 2

    def add_node(
        self,
        stmt: Optional[ast.stmt],
        kind: str = "stmt",
        guards: frozenset = frozenset(),
    ) -> int:
        node = Node(len(self.nodes), stmt, kind, guards)
        self.nodes.append(node)
        self.succs[node.id] = []
        return node.id

    def add_edge(self, src: int, dst: int, kind: str = NORMAL) -> None:
        if (dst, kind) not in self.succs[src]:
            self.succs[src].append((dst, kind))

    def preds(self) -> Dict[int, List[Tuple[int, str]]]:
        out: Dict[int, List[Tuple[int, str]]] = {n.id: [] for n in self.nodes}
        for src, edges in self.succs.items():
            for dst, kind in edges:
                out[dst].append((src, kind))
        return out

    def stmt_nodes(self) -> List[Node]:
        return [n for n in self.nodes if n.stmt is not None]


class _TryContext:
    """One enclosing ``try`` while building: handlers + finally body."""

    def __init__(
        self,
        handler_entries: List[int],
        finalbody: Sequence[ast.stmt],
        try_stmt: ast.Try,
    ) -> None:
        self.handler_entries = handler_entries
        self.finalbody = finalbody
        self.try_stmt = try_stmt


class _LoopContext:
    def __init__(self, header: int, try_depth: int) -> None:
        self.header = header
        self.try_depth = try_depth
        self.break_sources: List[int] = []


def handler_names(handler: ast.excepthandler) -> Set[str]:
    """Exception type names one handler catches (bare = BaseException)."""
    names: Set[str] = set()

    def add(node: Optional[ast.expr]) -> None:
        if node is None:
            names.add("BaseException")
        elif isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Tuple):
            for elt in node.elts:
                add(elt)

    add(handler.type)
    return names


def _contains_call(stmt: ast.stmt) -> bool:
    """Can executing *stmt* raise?  Approximated as "contains a Call"."""
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Call, ast.Raise)):
            return True
    return False


class _Builder:
    """Builds the CFG for one scope with a recursive frontier scheme.

    ``_visit_block`` threads a *frontier* -- the set of node ids whose
    normal-flow successor is not yet known -- through the statement
    list; control statements split and rejoin it.
    """

    def __init__(self) -> None:
        self.cfg = CFG()
        self.cfg.add_node(None, kind="entry")
        self.cfg.add_node(None, kind="exit")
        self.cfg.add_node(None, kind="raise")
        self.try_stack: List[_TryContext] = []
        self.loop_stack: List[_LoopContext] = []
        self.guard_stack: List[frozenset] = []

    # -- plumbing ------------------------------------------------------

    @property
    def guards(self) -> frozenset:
        out: Set[str] = set()
        for g in self.guard_stack:
            out |= g
        return frozenset(out)

    def _new(self, stmt: ast.stmt, kind: str = "stmt") -> int:
        return self.cfg.add_node(stmt, kind=kind, guards=self.guards)

    def _connect(self, frontier: Sequence[int], dst: int) -> None:
        for src in frontier:
            self.cfg.add_edge(src, dst, NORMAL)

    # -- exception plumbing --------------------------------------------

    def _add_exc_edges(self, node_id: int) -> None:
        """Wire *node_id*'s exception edges per the selective model."""
        if not self.try_stack:
            return
        # every enclosing level's handlers can observe the exception
        # (we cannot know statically which handler type matches).
        for ctx in self.try_stack:
            for h in ctx.handler_entries:
                self.cfg.add_edge(node_id, h, EXC)
        # the escape path: unwind the finally chain of every enclosing
        # try (innermost first), then leave the scope exceptionally.
        self._connect_escape(node_id)

    def _connect_escape(self, node_id: int) -> None:
        """node --exc--> finally copies (innermost out) --> raise_exit."""
        target = self._escape_chain(len(self.try_stack))
        self.cfg.add_edge(node_id, target, EXC)

    def _escape_chain(self, depth: int) -> int:
        """Entry node of the exception-unwind chain for *depth* levels.

        Builds the chain of ``finally`` copies run when an exception
        escapes from inside *depth* enclosing tries (innermost finally
        first, then outward, ending at ``raise_exit``).  With no finally
        bodies anywhere the chain is just ``raise_exit``.
        """
        chains: List[Tuple[int, List[int]]] = [
            self._materialize_finally(ctx, kind="finally_exc")
            for ctx in reversed(self.try_stack[:depth])
            if ctx.finalbody
        ]
        target = self.cfg.raise_exit
        for head, tails in reversed(chains):
            self._connect(tails, target)
            target = head
        return target

    def _materialize_finally(
        self, ctx: _TryContext, kind: str = "finally"
    ) -> Tuple[int, List[int]]:
        """Fresh node copy of one finally body; returns (head, [tail]).

        The body is built with the full statement visitor (so control
        flow *inside* the finally -- the ``if es.running: es.stop()``
        cleanup idiom -- is modelled properly), bracketed by synthetic
        head/tail marker nodes carrying *kind*.  ``finally_exc`` marks
        the exception-unwind instantiation: the leak rule PL304 inspects
        the facts at its tail marker.

        While visiting, the try stack is truncated below *ctx*: an
        exception inside a finally propagates outward, never to its own
        try's handlers.  Loop contexts are hidden for the same reason.
        """
        head = self.cfg.add_node(None, kind=kind)
        tail = self.cfg.add_node(None, kind=kind)
        saved_tries, saved_loops = self.try_stack, self.loop_stack
        if ctx in saved_tries:
            self.try_stack = saved_tries[:saved_tries.index(ctx)]
        self.loop_stack = []
        try:
            out = self._visit_block(ctx.finalbody, [head])
        finally:
            self.try_stack, self.loop_stack = saved_tries, saved_loops
        self._connect(out, tail)
        return head, [tail]

    # -- statements ----------------------------------------------------

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        frontier = self._visit_block(body, [self.cfg.entry])
        self._connect(frontier, self.cfg.exit)
        return self.cfg

    def _visit_block(
        self, body: Sequence[ast.stmt], frontier: List[int]
    ) -> List[int]:
        for stmt in body:
            if not frontier:
                break  # unreachable code after return/raise/break
            frontier = self._visit_stmt(stmt, frontier)
        return frontier

    def _visit_stmt(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        if isinstance(stmt, ast.If):
            return self._visit_if(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._visit_loop(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._visit_try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._visit_with(stmt, frontier)
        if isinstance(stmt, ast.Return):
            node = self._new(stmt)
            self._connect(frontier, node)
            self._maybe_exc(node, stmt)
            self._unwind_to(node, 0, self.cfg.exit)
            return []
        if isinstance(stmt, ast.Raise):
            node = self._new(stmt)
            self._connect(frontier, node)
            if self.try_stack:
                self._add_exc_edges(node)
            else:
                self.cfg.add_edge(node, self.cfg.raise_exit, EXC)
            return []
        if isinstance(stmt, ast.Break):
            node = self._new(stmt)
            self._connect(frontier, node)
            if self.loop_stack:
                loop = self.loop_stack[-1]
                loop.break_sources.extend(
                    self._unwind_tails(node, loop.try_depth)
                )
            return []
        if isinstance(stmt, ast.Continue):
            node = self._new(stmt)
            self._connect(frontier, node)
            if self.loop_stack:
                loop = self.loop_stack[-1]
                tails = self._unwind_tails(node, loop.try_depth)
                self._connect(tails, loop.header)
            return []
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # nested definitions are separate scopes; the def itself is
            # a no-raise binding statement.
            node = self._new(stmt)
            self._connect(frontier, node)
            return [node]
        # simple statement
        node = self._new(stmt)
        self._connect(frontier, node)
        self._maybe_exc(node, stmt)
        return [node]

    def _maybe_exc(self, node_id: int, stmt: ast.stmt) -> None:
        if self.try_stack and _contains_call(stmt):
            self._add_exc_edges(node_id)

    def _unwind_tails(self, src: int, stop_depth: int) -> List[int]:
        """Run finallys innermost-down-to *stop_depth*; return the tails."""
        tails = [src]
        for ctx in reversed(self.try_stack[stop_depth:]):
            if not ctx.finalbody:
                continue
            head, new_tails = self._materialize_finally(ctx)
            self._connect(tails, head)
            tails = new_tails
        return tails

    def _unwind_to(self, src: int, stop_depth: int, target: int) -> None:
        self._connect(self._unwind_tails(src, stop_depth), target)

    # -- compound statements -------------------------------------------

    def _visit_if(self, stmt: ast.If, frontier: List[int]) -> List[int]:
        cond = self._new(stmt)
        self._connect(frontier, cond)
        self._maybe_exc(cond, stmt)
        # assume nodes carry the branch outcome so the typestate
        # transfer can refine facts from tests like ``if es.running:``
        # (path-sensitivity for the cleanup idiom).
        on_true = self.cfg.add_node(stmt, kind="assume_true",
                                    guards=self.guards)
        on_false = self.cfg.add_node(stmt, kind="assume_false",
                                     guards=self.guards)
        self.cfg.add_edge(cond, on_true, NORMAL)
        self.cfg.add_edge(cond, on_false, NORMAL)
        then_out = self._visit_block(stmt.body, [on_true])
        else_out = self._visit_block(stmt.orelse, [on_false])
        return then_out + (else_out if stmt.orelse else [on_false])

    def _visit_loop(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        header = self._new(stmt)
        self._connect(frontier, header)
        self._maybe_exc(header, stmt)
        body_entry: List[int] = [header]
        exit_entry: List[int] = [header]
        if isinstance(stmt, ast.While):
            # While conditions get assume nodes like If branches do
            # (``while es.running:`` drains a running set, and the exit
            # edge proves it is stopped).
            on_true = self.cfg.add_node(stmt, kind="assume_true",
                                        guards=self.guards)
            on_false = self.cfg.add_node(stmt, kind="assume_false",
                                         guards=self.guards)
            self.cfg.add_edge(header, on_true, NORMAL)
            self.cfg.add_edge(header, on_false, NORMAL)
            body_entry, exit_entry = [on_true], [on_false]
        loop = _LoopContext(header, len(self.try_stack))
        self.loop_stack.append(loop)
        try:
            body_out = self._visit_block(stmt.body, body_entry)
        finally:
            self.loop_stack.pop()
        self._connect(body_out, header)  # back edge
        # loop exit: the header's "condition false / iterator exhausted"
        # edge feeds the else block (if any), then falls through.
        orelse_out = self._visit_block(stmt.orelse, exit_entry)
        exits = orelse_out if stmt.orelse else exit_entry
        out = list(exits)
        for tail in loop.break_sources:
            out.append(tail)
        return out

    def _visit_with(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        node = self._new(stmt)
        self._connect(frontier, node)
        self._maybe_exc(node, stmt)
        return self._visit_block(stmt.body, [node])

    def _visit_try(self, stmt: ast.Try, frontier: List[int]) -> List[int]:
        # handler entry markers are created first so body statements can
        # target them; each handler's body is visited under its guard.
        handler_entries: List[int] = []
        for handler in stmt.handlers:
            handler_entries.append(
                self.cfg.add_node(handler, kind="stmt", guards=self.guards)
            )
        ctx = _TryContext(handler_entries, stmt.finalbody, stmt)
        guard = frozenset(
            n for h in stmt.handlers for n in handler_names(h)
        )

        self.try_stack.append(ctx)
        self.guard_stack.append(guard)
        try:
            body_out = self._visit_block(stmt.body, frontier)
            else_out = self._visit_block(stmt.orelse, body_out)
        finally:
            self.guard_stack.pop()
            self.try_stack.pop()

        # handler bodies run outside the try's own guard but still see
        # any *outer* guards; their statements can themselves raise into
        # outer handlers.
        handler_outs: List[int] = []
        for handler, entry in zip(stmt.handlers, handler_entries):
            h_out = self._visit_block(handler.body, [entry])
            handler_outs.extend(h_out)

        # normal completion and handler completion both run the finally.
        joined = else_out + handler_outs
        if stmt.finalbody:
            head, tails = self._materialize_finally(ctx)
            self._connect(joined, head)
            return tails
        return joined


def build_cfg(body: Sequence[ast.stmt]) -> CFG:
    """Build the control-flow graph for one scope's statement list."""
    return _Builder().build(body)


def reachable(cfg: CFG) -> Set[int]:
    """Node ids reachable from the entry (debug/test helper)."""
    seen: Set[int] = set()
    stack = [cfg.entry]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        for dst, _kind in cfg.succs.get(node, ()):
            stack.append(dst)
    return seen

"""The fault injector: deterministic failures at the substrate boundary.

One :class:`FaultInjector` attaches to one substrate
(:meth:`repro.platforms.base.Substrate.attach_faults`) and intercepts:

- **counter operations** -- ``program_counter`` / ``start_counters`` /
  ``read_counters`` / ``stop_counters`` / ``reset_counters`` /
  ``clear_counter`` / ``arm_overflow`` gate through :meth:`before_op`,
  which may raise a transient :class:`SystemError_` (``PAPI_ESYS``) or
  steal a counter (:class:`CountersLostError`, ``PAPI_ECLOST``);
- **read values** -- :meth:`filter_values` corrupts a value with a wild
  wrap (many orders of magnitude beyond any physically plausible delta,
  so the library's plausibility check can catch it);
- **PMU interrupt delivery** -- a delivery gate installed on each
  per-CPU PMU drops or delays due overflow interrupts, and a jitter hook
  perturbs the multiplex cycle-timer period.

Every decision comes from one ``random.Random(seed)`` stream consumed in
a fixed order per opportunity, so the complete fault schedule is a
deterministic function of ``(seed, profile, program)``.  The injector
keeps an append-only :attr:`events` log; two runs agree iff their logs
agree, which the determinism tests assert directly.

A stolen counter models "another user of the machine": the thief stops
and clobbers the register, and the substrate reports it in
``unavailable_counters`` until the theft expires (``loss_hold_ops``
gated ops later), forcing the library's re-allocation path to route
around it exactly as a real contended machine would.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.errors import CountersLostError, SystemError_
from repro.faults.plan import FaultPlan, parse_inject

if TYPE_CHECKING:  # pragma: no cover
    from repro.platforms.base import Substrate

#: gated op names whose indices can be stolen mid-run.
_LOSS_OPS = ("read", "stop")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the deterministic log."""

    op_index: int
    kind: str          # "esys" | "loss" | "corrupt" | "irq_drop" | "irq_delay"
    op: str            # gated op name, or "irq" for delivery faults
    cpu: int
    detail: str = ""


class FaultInjector:
    """Deterministic fault source for one substrate (see module docs)."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.profile = plan.profile
        self._rng = random.Random(plan.seed)
        self.substrate: Optional["Substrate"] = None
        #: (cpu, counter index) -> gated ops until the thief lets go.
        self._stolen: Dict[Tuple[int, int], int] = {}
        #: remaining consecutive ESYS failures from a triggered burst.
        self._burst_left = 0
        #: append-only fault log; equality of two logs == equality of
        #: the two runs' fault schedules.
        self.events: List[FaultEvent] = []
        self.op_index = 0

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------

    def bind(self, substrate: "Substrate") -> None:
        """Install PMU-level hooks; called by ``attach_faults``."""
        self.substrate = substrate
        for cpu in substrate.machine.cpus:
            if self.profile.irq_drop_rate or self.profile.irq_delay_rate:
                cpu.pmu.delivery_gate = self._delivery_gate
            if self.profile.jitter_frac:
                cpu.pmu.timer_jitter = self._timer_jitter

    def unbind(self) -> None:
        if self.substrate is None:
            return
        for cpu in self.substrate.machine.cpus:
            cpu.pmu.delivery_gate = None
            cpu.pmu.timer_jitter = None
        self.substrate = None

    # ------------------------------------------------------------------
    # the op gate
    # ------------------------------------------------------------------

    def _log(self, kind: str, op: str, cpu: int, detail: str = "") -> None:
        self.events.append(
            FaultEvent(self.op_index, kind, op, cpu, detail)
        )

    def _tick_steals(self) -> None:
        for key in list(self._stolen):
            self._stolen[key] -= 1
            if self._stolen[key] <= 0:
                del self._stolen[key]

    def unavailable(self, cpu: int) -> FrozenSet[int]:
        """Counter indices currently held by the simulated thief."""
        return frozenset(i for (c, i) in self._stolen if c == cpu)

    def _steal(self, op: str, indices: Sequence[int], cpu: int) -> None:
        """Another user takes one of *indices*: clobber it and hold it."""
        assert self.substrate is not None
        victim = indices[self._rng.randrange(len(indices))]
        pmu = self.substrate.machine.cpus[cpu].pmu
        if pmu.running(victim):
            pmu.stop(victim)
        pmu.clear(victim)  # drops any armed overflow watch too
        self._stolen[(cpu, victim)] = self.profile.loss_hold_ops
        self._log("loss", op, cpu, f"counter {victim} stolen")
        raise CountersLostError(
            f"counter {victim} on cpu {cpu} taken by another user"
        )

    def before_op(self, op: str, indices: Sequence[int], cpu: int) -> None:
        """Gate one substrate counter op; raises to inject a fault.

        Decision order per op is fixed (burst continuation, stolen-index
        check, fresh ESYS draw, fresh loss draw) so the rng stream -- and
        with it the whole schedule -- is deterministic.
        """
        self.op_index += 1
        self._tick_steals()
        prof = self.profile
        if self._burst_left > 0:
            self._burst_left -= 1
            self._log("esys", op, cpu, "burst continuation")
            raise SystemError_(f"injected transient failure in {op}")
        for idx in indices:
            if (cpu, idx) in self._stolen:
                self._log("loss", op, cpu, f"counter {idx} still held")
                raise CountersLostError(
                    f"counter {idx} on cpu {cpu} is held by another user"
                )
        if prof.esys_rate and self._rng.random() < prof.esys_rate:
            self._burst_left = prof.esys_burst - 1
            self._log("esys", op, cpu)
            raise SystemError_(f"injected transient failure in {op}")
        if (
            prof.loss_rate
            and op in _LOSS_OPS
            and indices
            and self._rng.random() < prof.loss_rate
        ):
            self._steal(op, indices, cpu)

    def filter_values(
        self, op: str, indices: Sequence[int], values: List[int], cpu: int
    ) -> List[int]:
        """Corrupt one read/stop value with a wild wrap (maybe)."""
        prof = self.profile
        if not prof.corrupt_rate or not values:
            return values
        if self._rng.random() >= prof.corrupt_rate:
            return values
        pos = self._rng.randrange(len(values))
        # A wild wrap: an impossible jump (sign flip or >> any physically
        # reachable delta), the signature of a counter rollover or a
        # mis-latched register read.
        offset = (1 << 48) + self._rng.randrange(1 << 32)
        if self._rng.random() < 0.5:
            offset = -offset
        out = list(values)
        out[pos] = out[pos] + offset
        self._log("corrupt", op, cpu,
                  f"counter {indices[pos]} wrapped by {offset:+d}")
        return out

    # ------------------------------------------------------------------
    # PMU hooks
    # ------------------------------------------------------------------

    def _delivery_gate(self, counter: int):
        """Verdict for one due overflow delivery.

        Returns ``None`` (deliver now), ``"drop"`` (discard the
        interrupt) or an ``int`` (extra skid instructions to wait).
        """
        prof = self.profile
        if prof.irq_drop_rate and self._rng.random() < prof.irq_drop_rate:
            self._log("irq_drop", "irq", 0, f"counter {counter}")
            return "drop"
        if prof.irq_delay_rate and self._rng.random() < prof.irq_delay_rate:
            extra = self._rng.randint(1, prof.irq_delay_max)
            self._log("irq_delay", "irq", 0,
                      f"counter {counter} +{extra} skid")
            return extra
        return None

    def _timer_jitter(self, period: int) -> int:
        """Signed perturbation of one multiplex-timer period."""
        span = int(period * self.profile.jitter_frac)
        if span <= 0:
            return 0
        return self._rng.randint(-span, span)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def schedule(self) -> List[Tuple[int, str, str, int, str]]:
        """The fault log as plain tuples (for determinism comparisons)."""
        return [
            (e.op_index, e.kind, e.op, e.cpu, e.detail) for e in self.events
        ]

    def summary(self) -> Dict[str, int]:
        """Fault counts by kind (papirun output)."""
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out


def attach_from_spec(substrate: "Substrate", spec: str) -> FaultInjector:
    """Parse a ``seed:profile`` spec and attach an injector to *substrate*."""
    injector = FaultInjector(parse_inject(spec))
    substrate.attach_faults(injector)
    return injector

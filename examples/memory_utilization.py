#!/usr/bin/env python
"""The PAPI-3 memory utilization extension with threads.

Exercises every routine the paper's Section 5 plans:

- memory available on the node,
- total memory used (high-water mark),
- memory used by process/thread,
- disk swapping by process,
- process/memory locality,
- location of memory used by an object.

Two threads with different footprints run under the simulated OS; a
third scenario shrinks physical memory to trigger the swap model.

Run:  python examples/memory_utilization.py
"""

from repro import Papi, create
from repro.analysis import Table
from repro.core.memory import dmem_info, dmem_locality, object_location
from repro.simos import OS
from repro.workloads import tlb_walker


def main() -> None:
    substrate = create("simPOWER")
    papi = Papi(substrate)
    os_ = substrate.os
    page_words = substrate.machine.hierarchy.config.tlb.page_bytes // 8

    # -- two threads with different footprints -----------------------------
    small = os_.spawn(tlb_walker(6, page_words=page_words).program,
                      name="small")
    large = os_.spawn(tlb_walker(40, page_words=page_words).program,
                      name="large")
    os_.run()

    table = Table(["thread", "RSS pages", "RSS bytes", "high-water mark"],
                  title="per-thread memory utilization (PAPI_get_dmem_info)")
    for t in (small, large):
        info = dmem_info(papi, t)
        table.add_row(t.name, info.thread_rss_pages, info.thread_rss_bytes,
                      info.thread_hwm_pages)
    print(table.render())

    node = dmem_info(papi, small)
    print(f"\nnode: {node.total_pages} pages physical, "
          f"{node.used_pages} used, {node.free_pages} free, "
          f"{node.swapped_pages} swapped")

    # -- locality -----------------------------------------------------------
    hist = dmem_locality(papi, large, buckets=4)
    print("\nlocality of 'large' (pages per address-region bucket):", hist)

    # -- swapping under pressure ---------------------------------------------
    print("\n-- now with only 16 physical pages on the node --")
    sub2 = create("simPOWER")
    papi2 = Papi(sub2)
    os2 = OS(sub2.machine, phys_pages=16)
    sub2.os = os2  # the memory routines read the substrate's OS
    hog = os2.spawn(tlb_walker(48, page_words=page_words).program,
                    name="hog")
    os2.run()
    info = dmem_info(papi2, hog)
    print(f"hog RSS={info.thread_rss_pages} pages, node capacity "
          f"{info.total_pages} -> {info.swapped_pages} pages swapped out, "
          f"{info.swap_events} swap events")

    # -- object location ------------------------------------------------------
    print("\n-- location of memory used by an object --")
    sub3 = create("simPOWER")
    papi3 = Papi(sub3)
    wl = tlb_walker(8, page_words=page_words)
    sub3.machine.load(wl.program)
    sub3.machine.run_to_completion()
    loc = object_location(papi3, base_word=0,
                          length_words=8 * page_words)
    print(f"array spans pages {loc['first_page']}..{loc['last_page']} "
          f"({loc['pages_spanned']} pages), {loc['pages_touched']} touched")


if __name__ == "__main__":
    main()

"""Convergence regressions: the multiplex run-length hazard, pinned.

These are the committed regression thresholds from the validate harness:
at the longest sweep duration every multiplexed event estimates within
1% of the oracle, and the median error never increases as the runtime
doubles.  A change that breaks either has made short-run multiplexing
quietly worse.
"""

import pytest

from repro.validate.convergence import (
    DURATIONS,
    EVENTS,
    FINAL_ERROR_BOUND,
    measure_sweep,
    run_convergence_plane,
)


@pytest.fixture(scope="module")
def sweep():
    return measure_sweep(DURATIONS)


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def test_every_event_converges_at_longest_duration(sweep):
    final = sweep[DURATIONS[-1]]
    for symbol in EVENTS:
        assert final.errors[symbol] < FINAL_ERROR_BOUND, symbol


def test_median_error_monotone_nonincreasing(sweep):
    medians = [_median(list(sweep[d].errors.values())) for d in DURATIONS]
    assert all(b <= a for a, b in zip(medians, medians[1:])), medians


def test_shortest_run_shows_the_hazard(sweep):
    # the paper's warning must be *visible*: short runs estimate badly
    first = _median(list(sweep[DURATIONS[0]].errors.values()))
    last = _median(list(sweep[DURATIONS[-1]].errors.values()))
    assert first > 10 * last


def test_rotations_scale_with_runtime(sweep):
    assert sweep[DURATIONS[-1]].rotations > sweep[DURATIONS[0]].rotations


def test_plane_cells_all_pass():
    cells = run_convergence_plane()
    assert [c.name for c in cells if c.status == "fail"] == []
    names = {c.name for c in cells}
    assert "median-monotone" in names
    assert f"PAPI_TOT_INS@repeats={DURATIONS[-1]}" in names

"""E4: optimal counter allocation vs first-fit (Section 5).

Paper claim: counter allocation is bipartite graph matching; PAPI 2.3
ships "an optimal matching algorithm", replacing greedy placement that
strands events on constrained platforms.

Reproduction: random EventSets (native-event subsets) drawn on every
platform; we count how many map completely under the optimal matcher vs
first-fit, and the average number of events placed.  On the
unconstrained simT3E the two coincide; on the pairing-constrained simX86
and group-managed simPOWER the optimal matcher wins.
"""

import random

from _shared import emit, run_once
from repro.analysis import Table
from repro.core.allocation import allocate, allocate_greedy
from repro.platforms import DIRECT_PLATFORMS, create

TRIALS = 300
SEED = 99


def sample_eventsets(substrate, rng, trials):
    names = sorted(substrate.native_events)
    max_k = min(len(names), substrate.n_counters + 1)
    for _ in range(trials):
        k = rng.randint(2, max_k)
        subset = rng.sample(names, k)
        yield [substrate.query_native(n) for n in subset]


def run_platform(platform: str):
    substrate = create(platform)
    rng = random.Random(SEED)
    opt_complete = greedy_complete = 0
    opt_placed = greedy_placed = 0
    total_events = 0
    for events in sample_eventsets(substrate, rng, TRIALS):
        total_events += len(events)
        opt = allocate(substrate, events)
        greedy = allocate_greedy(substrate, events)
        opt_complete += opt.complete
        greedy_complete += greedy.complete
        opt_placed += opt.n_placed
        greedy_placed += greedy.n_placed
        # the optimal matcher never places fewer events
        assert opt.n_placed >= greedy.n_placed
    return (opt_complete, greedy_complete, opt_placed, greedy_placed,
            total_events)


def run_experiment():
    return {p: run_platform(p) for p in DIRECT_PLATFORMS}


def bench_e4_allocation(benchmark, capsys):
    results = run_once(benchmark, run_experiment)

    table = Table(
        ["platform", "constraints", "optimal ok %", "greedy ok %",
         "optimal placed %", "greedy placed %"],
        title=f"E4: allocation success over {TRIALS} random EventSets "
              f"(optimal bipartite matching vs first-fit)",
    )
    kinds = {"simT3E": "none", "simX86": "counter pairs",
             "simPOWER": "groups", "simIA64": "light pairs",
             "simSPARC": "PIC pinning"}
    stats = {}
    for platform, (oc, gc, op, gp, tot) in results.items():
        stats[platform] = (oc, gc)
        table.add_row(
            platform, kinds[platform],
            round(100 * oc / TRIALS, 1), round(100 * gc / TRIALS, 1),
            round(100 * op / tot, 1), round(100 * gp / tot, 1),
        )
    emit(capsys, table.render())

    # unconstrained platform: greedy == optimal
    assert stats["simT3E"][0] == stats["simT3E"][1]
    # heavily constrained platforms: optimal strictly better
    for platform in ("simX86", "simPOWER", "simSPARC"):
        assert stats[platform][0] > stats[platform][1], platform
    # lightly constrained simIA64: optimal never worse (and usually ties)
    assert stats["simIA64"][0] >= stats["simIA64"][1]

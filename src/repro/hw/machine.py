"""The simulated machine: CPU + memory hierarchy + PMU + clocks.

A :class:`Machine` is what a platform substrate (see
:mod:`repro.platforms`) wraps.  It owns two clocks:

- **user cycles** -- ``counts[TOT_CYC]`` -- advanced by program execution
  (including interrupt delivery costs, which delay the program);
- **system cycles** -- advanced by :meth:`Machine.charge`, which is how
  counter-interface code (reads, starts, syscalls into the kernel
  substrate) bills its cost to the machine.

``real_cycles`` (their sum) is the wall clock; the overhead experiments
(E1/E7) compare real_cycles between instrumented and uninstrumented runs,
exactly as the paper measured wall-clock dilation.  :meth:`Machine.charge`
can also *pollute* the data cache with the interface's working set,
modelling the perturbation discussed in Section 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.hw.cache import HierarchyConfig, MemoryHierarchy, default_hierarchy
from repro.hw.cpu import CPU, CPUConfig, MachineFault, RunResult
from repro.hw.events import Signal, fresh_counts
from repro.hw.isa import Program
from repro.hw.pmu import PMU, PMUConfig


@dataclass(frozen=True)
class MachineConfig:
    """Full configuration of one simulated machine."""

    name: str = "sim"
    cpu: CPUConfig = field(default_factory=CPUConfig)
    hierarchy: HierarchyConfig = field(default_factory=default_hierarchy)
    pmu: PMUConfig = field(default_factory=PMUConfig)
    #: simulated core clock, cycles per microsecond (500 => 500 MHz).
    mhz: int = 500
    seed: int = 12345
    #: basic-block execution engine switch (see repro/hw/blockcache.py).
    #: The engine is bit-exact with the interpreter -- identical counts,
    #: cache state and interrupt delivery -- so this only trades
    #: simulation speed against the pure-interpreter reference path.
    block_engine: bool = True

    def __post_init__(self) -> None:
        if self.mhz < 1:
            raise ValueError("clock rate must be at least 1 MHz")


class Machine:
    """One simulated computer.

    The signal-counts array is shared by reference between the CPU (which
    increments it) and the PMU (which reads it), so counter reads are just
    integer subtraction -- the same cheap register-delta model as real
    hardware.
    """

    def __init__(self, config: Optional[MachineConfig] = None) -> None:
        self.config = config or MachineConfig()
        self.counts: List[int] = fresh_counts()
        self.hierarchy = MemoryHierarchy(self.config.hierarchy)
        self.pmu = PMU(self.config.pmu, self.counts, seed=self.config.seed)
        self.cpu = CPU(
            self.config.cpu,
            hierarchy=self.hierarchy,
            pmu=self.pmu,
            counts=self.counts,
            block_engine=self.config.block_engine,
        )
        self.system_cycles = 0
        self._probes: Dict[int, Callable[[int, CPU], None]] = {}
        self.cpu.probe_dispatch = self._dispatch_probe
        #: scratch addresses the counter interface touches when polluting;
        #: chosen high so they collide with application lines by indexing.
        self._pollution_base = 1 << 30

    # ------------------------------------------------------------------
    # clocks
    # ------------------------------------------------------------------

    @property
    def user_cycles(self) -> int:
        return self.counts[Signal.TOT_CYC]

    @property
    def real_cycles(self) -> int:
        return self.counts[Signal.TOT_CYC] + self.system_cycles

    @property
    def real_usec(self) -> float:
        return self.real_cycles / self.config.mhz

    def charge(self, cycles: int, pollute_lines: int = 0) -> None:
        """Bill *cycles* of counter-interface work to the machine.

        When *pollute_lines* > 0, that many distinct cache lines are
        touched as data accesses (without counting as application events),
        evicting application state -- the paper's cache-pollution effect.
        """
        if cycles < 0 or pollute_lines < 0:
            raise ValueError("cannot charge negative work")
        self.system_cycles += cycles
        # kernel-domain cycles are also a signal, so DOM_ALL counters on
        # the cycle event can include interface work (PAPI_set_domain).
        self.counts[Signal.SYS_CYC] += cycles
        if pollute_lines:
            line = self.hierarchy.config.l1d.line_bytes
            base = self._pollution_base
            self.hierarchy.pollute(
                base + i * line for i in range(pollute_lines)
            )
        # external state changed behind the CPU's back: flush the block
        # engine and re-arm its steady-loop trials against the new cache
        # contents.
        self.cpu.engine_barrier()

    # ------------------------------------------------------------------
    # program control
    # ------------------------------------------------------------------

    def load(self, program: Program, heap_words: Optional[int] = None) -> None:
        self.cpu.load(program, heap_words=heap_words)

    @property
    def program(self) -> Optional[Program]:
        return self.cpu.program

    def run(
        self,
        max_instructions: Optional[int] = None,
        max_cycles: Optional[int] = None,
    ) -> RunResult:
        return self.cpu.run(max_instructions=max_instructions, max_cycles=max_cycles)

    def run_to_completion(self, budget_instructions: int = 50_000_000) -> RunResult:
        """Run until HALT; raises if the budget is exhausted (runaway guard)."""
        result = self.cpu.run(max_instructions=budget_instructions)
        if not result.halted:
            raise MachineFault(
                f"program did not halt within {budget_instructions} instructions"
            )
        return result

    # ------------------------------------------------------------------
    # probes (instrumentation hook used by dynaprof / the PAPI library)
    # ------------------------------------------------------------------

    def register_probe(self, probe_id: int, handler: Callable[[int, CPU], None]) -> None:
        if probe_id in self._probes:
            raise ValueError(f"probe id {probe_id} already registered")
        self._probes[probe_id] = handler

    def unregister_probe(self, probe_id: int) -> None:
        self._probes.pop(probe_id, None)

    def clear_probes(self) -> None:
        self._probes.clear()

    def _dispatch_probe(self, probe_id: int, cpu: CPU) -> None:
        handler = self._probes.get(probe_id)
        if handler is not None:
            handler(probe_id, cpu)

    # ------------------------------------------------------------------
    # signal access / reset
    # ------------------------------------------------------------------

    def signal_total(self, signal: int) -> int:
        """Raw machine-lifetime total of one event signal."""
        return self.counts[signal]

    def engine_stats(self):
        """Block-engine work counters, or None when the engine is off."""
        return self.cpu.engine_stats()

    def reset(self) -> None:
        """Power-cycle: zero all signals, flush caches, reset the PMU.

        The loaded program (if any) must be re-loaded afterwards.
        """
        for i in range(len(self.counts)):
            self.counts[i] = 0
        self.system_cycles = 0
        self.hierarchy.flush()
        self.hierarchy.reset_stats()
        self.pmu.reset()
        self.cpu.predictor.reset()
        self.cpu.halted = True
        self.cpu.program = None
        self.cpu.code = []
        if self.cpu.engine is not None:
            self.cpu.engine.invalidate()
            # pmu.reset() does not clear the flush hook; keep the barrier
            # installed for the machine's lifetime.
            self.pmu.set_flush_hook(self.cpu.engine.flush)
        self._probes.clear()

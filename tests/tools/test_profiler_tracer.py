"""Unit tests: the TAU-style profiler and Vampir-style tracer."""

import io

import pytest

from repro.core import constants as C
from repro.core.errors import InvalidArgumentError
from repro.core.library import Papi
from repro.platforms import create
from repro.tools.dynaprof import Dynaprof
from repro.tools.profiler import Profiler
from repro.tools.tracer import Trace, TraceKind, TraceRecord, TracerProbe
from repro.workloads import demo_app, phased


class TestProfiler:
    def test_multi_metric_profile(self):
        prof = Profiler(
            "simPOWER",
            ["PAPI_TOT_CYC", "PAPI_L1_DCM", "PAPI_BR_MSP", "PAPI_FP_OPS"],
        )
        report = prof.profile(lambda: demo_app(scale=25))
        assert set(report.functions) >= {"compute", "memwalk", "branchy"}
        assert report.hottest("PAPI_L1_DCM") == "memwalk"
        assert report.hottest("PAPI_BR_MSP") == "branchy"
        assert report.hottest("PAPI_FP_OPS") == "compute"

    def test_batching_respects_counter_limits(self):
        """simX86 has 2 counters: 4 metrics need multiple batches."""
        prof = Profiler(
            "simX86",
            ["PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_FP_OPS", "PAPI_L1_DCM"],
        )
        batches = prof._batches()
        assert len(batches) >= 2
        assert sorted(m for b in batches for m in b) == sorted(prof.metrics)

    def test_batches_merge_into_single_report(self):
        prof = Profiler("simX86", ["PAPI_TOT_CYC", "PAPI_FP_OPS",
                                   "PAPI_L1_DCM"])
        report = prof.profile(lambda: demo_app(scale=15, use_fma=False))
        for fn in report.functions:
            row = report.exclusive[fn]
            assert set(row) == set(prof.metrics)

    def test_correlation_analysis(self):
        """Section 3: correlate time with cache misses across functions."""
        prof = Profiler("simPOWER", ["PAPI_TOT_CYC", "PAPI_L1_DCM"])
        report = prof.profile(lambda: demo_app(scale=25))
        corr = report.correlation("PAPI_TOT_CYC", "PAPI_L1_DCM")
        # memwalk dominates both cycles and misses -> strong correlation
        assert corr > 0.6

    def test_derived_ratio(self):
        prof = Profiler("simPOWER", ["PAPI_TOT_INS", "PAPI_L1_DCM"])
        report = prof.profile(lambda: demo_app(scale=20))
        ratios = report.derived_ratio("PAPI_L1_DCM", "PAPI_TOT_INS")
        assert ratios["memwalk"] > ratios["compute"]

    def test_to_text_renders(self):
        prof = Profiler("simPOWER", ["PAPI_TOT_CYC"])
        report = prof.profile(lambda: demo_app(scale=10))
        text = report.to_text()
        assert "memwalk" in text and "PAPI_TOT_CYC" in text
        assert "inclusive" in report.to_text(inclusive=True)

    def test_metric_limit_enforced(self):
        with pytest.raises(InvalidArgumentError):
            Profiler("simPOWER", ["PAPI_TOT_CYC"] * (C.PAPI_MAX_TOOL_METRICS + 1))

    def test_empty_metrics_rejected(self):
        with pytest.raises(InvalidArgumentError):
            Profiler("simPOWER", [])

    def test_impossible_metric_rejected(self):
        prof = Profiler("simT3E", ["PAPI_TLB_DM"])
        with pytest.raises(InvalidArgumentError):
            prof._batches()


class TestTracer:
    def _traced_run(self, events=()):
        sub = create("simPOWER")
        papi = Papi(sub)
        dyn = Dynaprof(sub, papi)
        dyn.load(phased([("fp", 200), ("mem", 200)], repeats=3))
        trace = Trace()
        dyn.add_probe(TracerProbe(papi, trace, tid=1, events=list(events)))
        dyn.instrument()
        dyn.run()
        return trace

    def test_enter_exit_pairing(self):
        trace = self._traced_run()
        enters = trace.by_kind(TraceKind.ENTER)
        exits = trace.by_kind(TraceKind.EXIT)
        assert len(enters) == len(exits) == 7  # 3x2 phases + main

    def test_timestamps_monotone(self):
        trace = self._traced_run()
        times = [r.t_cycles for r in trace.records]
        assert times == sorted(times)

    def test_functions_seen_in_order(self):
        trace = self._traced_run()
        assert trace.functions_seen() == ["main", "phase_0", "phase_1"]

    def test_counter_values_recorded(self):
        trace = self._traced_run(events=["PAPI_TOT_INS"])
        enters = trace.by_kind(TraceKind.ENTER)
        values = [r.values[0] for r in enters if r.values]
        assert values == sorted(values)  # counts only grow

    def test_region_durations(self):
        trace = self._traced_run()
        durations = trace.region_durations()
        assert durations["main"] > durations["phase_0"]
        assert durations["phase_0"] > 0

    def test_export_parse_roundtrip(self):
        trace = self._traced_run()
        buf = io.StringIO()
        n = trace.export(buf)
        assert n == len(trace)
        buf.seek(0)
        parsed = Trace.parse(buf)
        assert len(parsed) == len(trace)
        assert parsed.records[0].kind is trace.sorted().records[0].kind

    def test_merge_orders_by_time(self):
        t1 = Trace([TraceRecord(10, 1, TraceKind.MARKER, "a")])
        t2 = Trace([TraceRecord(5, 2, TraceKind.MARKER, "b")])
        merged = Trace.merge([t1, t2])
        assert [r.name for r in merged.records] == ["b", "a"]

    def test_record_line_roundtrip(self):
        rec = TraceRecord(123, 4, TraceKind.COUNTER, "PAPI_TOT_INS", (9, 8))
        assert TraceRecord.from_line(rec.to_line()) == rec

    def test_bad_line_rejected(self):
        with pytest.raises(InvalidArgumentError):
            TraceRecord.from_line("nope")


class TestTraceConversion:
    """Section 3: 'merged and converted to ALOG, SDDF, Paraver' formats."""

    def _trace(self):
        sub = create("simPOWER")
        papi = Papi(sub)
        from repro.tools.dynaprof import Dynaprof

        dyn = Dynaprof(sub, papi)
        dyn.load(phased([("fp", 150), ("mem", 150)], repeats=2))
        trace = Trace()
        dyn.add_probe(TracerProbe(papi, trace, tid=1))
        dyn.instrument()
        dyn.run()
        return trace

    def test_alog_conversion(self):
        trace = self._trace()
        buf = io.StringIO()
        n = trace.convert(buf, "alog")
        text = buf.getvalue()
        assert n == len(trace)
        assert "-101" in text and "-102" in text  # enter/exit event types
        assert "-9 0 0" in text                    # string table entries

    def test_sddf_conversion(self):
        trace = self._trace()
        buf = io.StringIO()
        n = trace.convert(buf, "sddf")
        text = buf.getvalue()
        assert n == len(trace)
        assert '"TraceRecord"' in text
        assert "timestamp" in text

    def test_paraver_conversion_folds_states(self):
        trace = self._trace()
        buf = io.StringIO()
        n = trace.convert(buf, "paraver")
        text = buf.getvalue()
        # every enter/exit pair becomes one state interval
        enters = len(trace.by_kind(TraceKind.ENTER))
        assert n == enters
        assert text.count("\n1:") or text.startswith("1:")
        assert "# state" in text

    def test_unknown_format_rejected(self):
        trace = self._trace()
        with pytest.raises(InvalidArgumentError):
            trace.convert(io.StringIO(), "otf2")


class TestTracerEdgeCases:
    def test_short_line_rejected(self):
        with pytest.raises(InvalidArgumentError, match="bad trace line"):
            TraceRecord.from_line("12 0 ENTER")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord.from_line("12 0 WIBBLE main")

    def test_parse_skips_comments_and_blanks(self):
        text = "# header\n\n5 0 ENTER main\n# trailer\n9 0 EXIT main\n"
        trace = Trace.parse(io.StringIO(text))
        assert len(trace) == 2
        assert trace.functions_seen() == ["main"]

    def test_merge_of_nothing_is_empty(self):
        assert len(Trace.merge([])) == 0

    def test_region_durations_ignore_unmatched_exit(self):
        trace = Trace([
            TraceRecord(5, 0, TraceKind.EXIT, "orphan"),
            TraceRecord(10, 0, TraceKind.ENTER, "f"),
            TraceRecord(30, 0, TraceKind.EXIT, "f"),
        ])
        assert trace.region_durations() == {"f": 20}

    def test_unbalanced_enter_contributes_nothing(self):
        trace = Trace([TraceRecord(10, 0, TraceKind.ENTER, "f")])
        assert trace.region_durations() == {}

    def test_by_kind_filters(self):
        trace = Trace([
            TraceRecord(1, 0, TraceKind.MARKER, "m"),
            TraceRecord(2, 0, TraceKind.ENTER, "f"),
        ])
        assert [r.name for r in trace.by_kind(TraceKind.MARKER)] == ["m"]

"""Exception hierarchy mirroring PAPI's error codes.

The C library reports errors as negative return codes; this Python
reproduction raises typed exceptions carrying the corresponding code, so
callers can either catch by type or inspect ``exc.code`` as they would
check a C return value.

Each class also carries a ``transient`` flag: transient errors describe
conditions that can clear on their own (a failed substrate call, counter
access stolen by another user) and are candidates for the runtime's
retry/recovery ladder (:mod:`repro.core.resilience`); fatal errors
describe requests that will never succeed unchanged (bad arguments,
unknown events, allocation conflicts) and are surfaced immediately.
"""

from __future__ import annotations

from typing import Union

from repro.core import constants as C


class PapiError(Exception):
    """Base PAPI error; ``code`` is the C-style negative return code."""

    code = C.PAPI_EMISC
    #: whether the condition can clear on its own (retry/recover) or is
    #: a permanent property of the request (fail fast).
    transient = False

    def __init__(self, message: str = "") -> None:
        detail = C.ERROR_MESSAGES.get(self.code, "unknown error")
        name = C.ERROR_NAMES.get(self.code, "PAPI_EMISC")
        full = f"{name}: {detail}"
        if message:
            full = f"{full} ({message})"
        super().__init__(full)
        self.detail = message


class InvalidArgumentError(PapiError):
    code = C.PAPI_EINVAL


class NoMemoryError(PapiError):
    code = C.PAPI_ENOMEM


class SystemError_(PapiError):
    """A substrate/system call failed; typically a transient condition."""

    code = C.PAPI_ESYS
    transient = True


class SubstrateFeatureError(PapiError):
    """The substrate does not support the requested feature."""

    code = C.PAPI_ESBSTR


class CountersLostError(PapiError):
    """Another user took the counters; recoverable by re-acquisition."""

    code = C.PAPI_ECLOST
    transient = True


class InternalBugError(PapiError):
    code = C.PAPI_EBUG


class NoSuchEventError(PapiError):
    """The event does not exist or cannot be counted on this platform."""

    code = C.PAPI_ENOEVNT


class ConflictError(PapiError):
    """The event exists but conflicts with events already added.

    This is the counter-allocation failure mode of Section 5: no
    assignment of the requested events to physical counters satisfies
    the platform's constraints.
    """

    code = C.PAPI_ECNFLCT


class NotRunningError(PapiError):
    code = C.PAPI_ENOTRUN


class IsRunningError(PapiError):
    code = C.PAPI_EISRUN


class NoSuchEventSetError(PapiError):
    code = C.PAPI_ENOEVST


class NotPresetError(PapiError):
    code = C.PAPI_ENOTPRESET


class NotEnoughCountersError(PapiError):
    code = C.PAPI_ENOCNTR


class NoSuchComponentError(PapiError):
    """The named component is not registered on this substrate."""

    code = C.PAPI_ENOCMP


#: code -> exception class, for raise_for_code.  Covers every code in
#: ``constants.ERROR_NAMES`` except ``PAPI_OK`` (which is not an error);
#: ``PAPI_EMISC`` maps to the base class itself.
_BY_CODE = {
    cls.code: cls
    for cls in (
        InvalidArgumentError,
        NoMemoryError,
        SystemError_,
        SubstrateFeatureError,
        CountersLostError,
        InternalBugError,
        NoSuchEventError,
        ConflictError,
        NotRunningError,
        IsRunningError,
        NoSuchEventSetError,
        NotPresetError,
        NotEnoughCountersError,
        NoSuchComponentError,
        PapiError,
    )
}


#: class names partitioned by the ``transient`` flag.  Static analyzers
#: (papi-lint's recovery-ladder rule) classify ``except`` clauses by the
#: caught class *name* without importing user code, so the partition is
#: exported here, next to the flags it derives from, where adding a new
#: error class cannot miss it.
TRANSIENT_ERROR_NAMES = frozenset(
    cls.__name__ for cls in _BY_CODE.values() if cls.transient
)
FATAL_ERROR_NAMES = frozenset(
    cls.__name__
    for cls in _BY_CODE.values()
    if not cls.transient and cls is not PapiError
)


def error_for_code(code: int, message: str = "") -> PapiError:
    """Build the exception matching a C-style return *code*."""
    cls = _BY_CODE.get(code, PapiError)
    return cls(message)


def is_transient(err: Union[PapiError, int]) -> bool:
    """Whether *err* (an exception or a C-style code) may clear on retry."""
    if isinstance(err, PapiError):
        return err.transient
    return _BY_CODE.get(err, PapiError).transient


def strerror(code: int) -> str:
    """PAPI_strerror: human readable description of *code*."""
    name = C.ERROR_NAMES.get(code)
    if name is None:
        return f"unknown PAPI error code {code}"
    return f"{name}: {C.ERROR_MESSAGES[code]}"

"""Module entry point: ``python -m repro.lint file.py [--flow] ...``.

A thin alias for the CLI's ``lint`` verb so the linter is runnable
without knowing the tools package layout -- the invocation editors and
pre-commit hooks reach for first.
"""

from __future__ import annotations

import sys


def main(argv=None) -> int:
    from repro.tools.cli import main as cli_main

    args = sys.argv[1:] if argv is None else list(argv)
    return cli_main(["lint"] + args)


if __name__ == "__main__":
    sys.exit(main())

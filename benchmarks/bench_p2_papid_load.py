"""P2: papid fleet load -- sessions/sec, batched reads/sec, p99 latency.

Not a paper experiment: this guards the fleet-scale monitoring daemon
(ROADMAP "heavy traffic" direction).  Four phases:

- **create**  -- fleet bring-up throughput (sessions/sec) for a
  1000-session fleet batched through ``PapidClient.create_fleet``;
- **read**    -- steady-state batched read sweeps (reads/sec and the
  p99 per-read latency across sub-batches);
- **chaos**   -- the same fleet under ``seed:daemon-chaos`` (worker
  kills and wedges mid-run): throughput with recovery in the loop,
  plus the acceptance contract — every session recovered or reported
  with an explicit lost-interval ledger, zero unrecovered;
- **overload**-- a deliberately tiny high-water mark: admission control
  must shed/degrade (shed + stale counts > 0) instead of stalling.

Absolute rates are machine-dependent, so the committed baseline in
``BENCH_p2_papid_load.json`` stores *normalized* metrics: daemon
reads/sec divided by the host's single-session substrate read rate
(``read_efficiency`` -- how much of the raw substrate rate survives
batching, IPC and supervision), and p99 expressed in units of one
reference read (``p99_ref_units``).  Both ratios are host-speed
invariant to first order.  ``--check`` fails on a >20% regression
(efficiency down or p99 up) at the matching scale; ``--smoke`` is the
reduced-scale variant CI runs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from _shared import emit, run_once
from repro.analysis import Table
from repro.daemon import (
    DaemonConfig,
    PapidClient,
    PapidServer,
    SessionSpec,
)
from repro.platforms import create as create_substrate

BASELINE_PATH = Path(__file__).parent / "BENCH_p2_papid_load.json"

#: a normalized regression worse than this factor vs baseline fails --check.
REGRESSION_TOLERANCE = 0.20

SCALES = {
    # sessions, read sweeps, read sub-batch, chaos sessions, chaos sweeps
    "full": dict(sessions=1000, sweeps=8, batch=100,
                 chaos_sessions=1000, chaos_sweeps=4),
    "smoke": dict(sessions=200, sweeps=5, batch=50,
                  chaos_sessions=120, chaos_sweeps=4),
}

SEED = 12345
NSHARDS = 4


def _specs(n, prefix="p2", seed=SEED):
    return [
        SessionSpec(sid=f"{prefix}-{i:05d}", platform="simX86",
                    seed=seed + i, priority=i % 3)
        for i in range(n)
    ]


def reference_read_rate(duration=0.25) -> float:
    """Raw single-session substrate rate: step+read ops/sec, no daemon.

    This is the normalizer: it scales with host speed exactly like the
    daemon's own per-read work does, so daemon/reference ratios are
    comparable across machines.
    """
    spec = SessionSpec(sid="ref", platform="simX86", seed=SEED)
    sub = create_substrate(spec.platform, seed=spec.seed)
    from repro.core.library import Papi
    from repro.workloads import CALIBRATION_KERNELS

    papi = Papi(sub)
    workload = CALIBRATION_KERNELS[spec.workload](
        spec.n, use_fma=sub.HAS_FMA
    )
    sub.machine.load(workload.program)
    es = papi.create_eventset()
    es.add_named(*spec.events)
    es.start()
    n = 0
    t0 = time.perf_counter()
    while time.perf_counter() - t0 < duration:
        result = sub.machine.run(max_instructions=spec.step_instructions)
        if result.reason == "halt":
            sub.machine.load(workload.program)
        es.read()
        n += 1
    elapsed = time.perf_counter() - t0
    es.stop()
    papi.shutdown()
    return n / elapsed


def _percentile(samples, q) -> float:
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def run_load_phase(scale: dict) -> dict:
    """Create + steady-state read phases on a clean daemon."""
    specs = _specs(scale["sessions"])
    sids = [s.sid for s in specs]
    with PapidServer(DaemonConfig(nshards=NSHARDS)) as server:
        with PapidClient(server, seed=SEED) as client:
            t0 = time.perf_counter()
            created = client.create_fleet(specs)
            create_seconds = time.perf_counter() - t0
            assert all(r.ok for r in created), "fleet create failed"
            client.start_many(sids)
            batch = scale["batch"]
            latencies = []
            n_reads = 0
            t0 = time.perf_counter()
            for _sweep in range(scale["sweeps"]):
                for lo in range(0, len(sids), batch):
                    chunk = sids[lo:lo + batch]
                    b0 = time.perf_counter()
                    results = client.read_many(chunk)
                    dt = time.perf_counter() - b0
                    assert all(r.ok for r in results)
                    latencies.append(dt / len(chunk))
                    n_reads += len(chunk)
            read_seconds = time.perf_counter() - t0
            health = server.health()
    return {
        "sessions": scale["sessions"],
        "sessions_per_sec": scale["sessions"] / create_seconds,
        "reads": n_reads,
        "reads_per_sec": n_reads / read_seconds,
        "p50_read_ms": _percentile(latencies, 0.50) * 1e3,
        "p99_read_ms": _percentile(latencies, 0.99) * 1e3,
        "shed_reads": health.shed_reads,
        "stale_reads": health.stale_reads,
    }


def run_chaos_phase(scale: dict, seed=42) -> dict:
    """The same fleet with the saboteur killing/wedging workers."""
    specs = _specs(scale["chaos_sessions"], prefix="p2c")
    sids = [s.sid for s in specs]
    config = DaemonConfig(
        nshards=NSHARDS, inject=f"{seed}:daemon-chaos",
        heartbeat_interval=0.1, wedge_timeout=1.0, batch_timeout=2.0,
    )
    prev: dict = {}
    monotone = True
    with PapidServer(config) as server:
        with PapidClient(server, seed=seed) as client:
            # Bring the fleet up in small chunks so creates are acked
            # incrementally: the saboteur then fires with live sessions
            # on the shard, exercising adopt-based recovery rather than
            # just a no-op respawn of an empty worker.
            for lo in range(0, len(specs), 10):
                created = client.create_fleet(specs[lo:lo + 10])
                assert all(r.ok for r in created), "chaos create failed"
            client.start_many(sids)
            n_reads = 0
            t0 = time.perf_counter()
            for _sweep in range(scale["chaos_sweeps"]):
                for lo in range(0, len(sids), scale["batch"]):
                    chunk = sids[lo:lo + scale["batch"]]
                    for res in client.read_many(chunk):
                        assert res.ok, res.err
                        old = prev.get(res.sid, {})
                        if any(res.values[k] < old.get(k, 0)
                               for k in res.values):
                            monotone = False
                        prev[res.sid] = res.values
                        n_reads += 1
            read_seconds = time.perf_counter() - t0
            health = server.health()
            problems = server.check_consistency()
            digest = server.fleet_digest()
    crashes = health.crashes_detected + health.wedges_detected
    return {
        "sessions": scale["chaos_sessions"],
        "reads_per_sec": n_reads / read_seconds,
        "workers_killed": crashes,
        "sessions_recovered": health.sessions_recovered,
        "sessions_unrecovered": health.sessions_unrecovered,
        "monotone": monotone,
        "consistent": not problems,
        "fleet_digest": digest,
    }


def run_overload_phase() -> dict:
    """Tiny high-water mark: shedding/degradation must engage."""
    specs = _specs(96, prefix="p2o")
    sids = [s.sid for s in specs]
    config = DaemonConfig(nshards=2, high_water=8, staleness_ops=5000)
    with PapidServer(config) as server:
        with PapidClient(server, seed=SEED) as client:
            created = client.create_fleet(specs)
            assert all(r.ok for r in created)
            client.start_many(sids)
            served = shed = stale = 0
            for _sweep in range(4):
                for res in server.submit(
                    [_read_op(client, sid) for sid in sids]
                ):
                    if res.ok and res.stale:
                        stale += 1
                    elif res.ok:
                        served += 1
                    else:
                        shed += 1
            health = server.health()
    return {
        "served_reads": served,
        "stale_reads": health.stale_reads,
        "shed_reads": health.shed_reads,
    }


def _read_op(client, sid):
    from repro.daemon import Op

    return Op(kind="read", sid=sid, seq=client._next_seq(sid))


def run_experiment(scale_name: str) -> dict:
    scale = SCALES[scale_name]
    ref = reference_read_rate()
    load = run_load_phase(scale)
    chaos = run_chaos_phase(scale)
    overload = run_overload_phase()
    norm = {
        "read_efficiency": load["reads_per_sec"] / ref,
        "p99_ref_units": load["p99_read_ms"] * 1e-3 * ref,
        "chaos_read_efficiency": chaos["reads_per_sec"] / ref,
    }
    return {
        "scale": scale_name,
        "reference_reads_per_sec": ref,
        "load": load,
        "chaos": chaos,
        "overload": overload,
        "normalized": {k: round(v, 4) for k, v in norm.items()},
    }


def render(result: dict) -> str:
    load, chaos, over = (result["load"], result["chaos"],
                         result["overload"])
    table = Table(
        ["metric", "value"],
        title=f"P2: papid fleet load ({result['scale']} scale, "
              f"{NSHARDS} shards)",
    )
    table.add_row("reference reads/s (no daemon)",
                  f"{result['reference_reads_per_sec']:,.0f}")
    table.add_row("fleet create sessions/s",
                  f"{load['sessions_per_sec']:,.0f}")
    table.add_row("batched reads/s", f"{load['reads_per_sec']:,.0f}")
    table.add_row("p50 read latency", f"{load['p50_read_ms']:.3f} ms")
    table.add_row("p99 read latency", f"{load['p99_read_ms']:.3f} ms")
    table.add_row("read efficiency (vs reference)",
                  f"{result['normalized']['read_efficiency']:.2f}")
    table.add_row("chaos reads/s", f"{chaos['reads_per_sec']:,.0f}")
    table.add_row("chaos workers killed", chaos["workers_killed"])
    table.add_row("chaos sessions recovered",
                  chaos["sessions_recovered"])
    table.add_row("chaos sessions unrecovered",
                  chaos["sessions_unrecovered"])
    table.add_row("chaos monotone/consistent",
                  f"{chaos['monotone']}/{chaos['consistent']}")
    table.add_row("overload shed/stale reads",
                  f"{over['shed_reads']}/{over['stale_reads']}")
    return table.render()


def assert_contract(result: dict) -> None:
    """The robustness acceptance contract, independent of speed."""
    chaos = result["chaos"]
    assert chaos["workers_killed"] >= 3, (
        f"saboteur fired only {chaos['workers_killed']} times (< 3)"
    )
    assert chaos["sessions_unrecovered"] == 0, chaos
    # A shard that dies mid-create only re-homes what existed at crash
    # time (the rest are created fresh on the next generation), so the
    # recovered count is >0 but not necessarily the full fleet.
    assert chaos["sessions_recovered"] > 0, chaos
    assert chaos["monotone"], "counts regressed across recovery"
    assert chaos["consistent"], "journal/registry inconsistency"
    over = result["overload"]
    assert over["shed_reads"] + over["stale_reads"] > 0, (
        "overload phase never engaged admission control"
    )


def load_baseline():
    if not BASELINE_PATH.exists():
        return None
    return json.loads(BASELINE_PATH.read_text())


def check_against_baseline(result: dict, baseline: dict) -> list:
    """Regression messages ([] = pass) at the matching scale."""
    expected = (baseline or {}).get(result["scale"])
    if not expected:
        return [f"no committed baseline for scale {result['scale']!r}"]
    problems = []
    norm = result["normalized"]
    eff_floor = expected["read_efficiency"] * (1 - REGRESSION_TOLERANCE)
    if norm["read_efficiency"] < eff_floor:
        problems.append(
            f"read_efficiency {norm['read_efficiency']:.3f} below "
            f"{eff_floor:.3f} (baseline "
            f"{expected['read_efficiency']:.3f} - 20%)"
        )
    p99_ceil = expected["p99_ref_units"] * (1 + REGRESSION_TOLERANCE)
    if norm["p99_ref_units"] > p99_ceil:
        problems.append(
            f"p99_ref_units {norm['p99_ref_units']:.3f} above "
            f"{p99_ceil:.3f} (baseline "
            f"{expected['p99_ref_units']:.3f} + 20%)"
        )
    return problems


def update_baseline(result: dict) -> None:
    """Rewrite this scale's normalized baseline; history accumulates."""
    baseline = load_baseline() or {}
    baseline[result["scale"]] = dict(result["normalized"])
    baseline.setdefault("trajectory", []).append({
        "scale": result["scale"],
        **result["normalized"],
        "chaos_workers_killed": result["chaos"]["workers_killed"],
        "shed_reads": result["overload"]["shed_reads"],
        "stale_reads": result["overload"]["stale_reads"],
    })
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")


def bench_p2_papid_load(benchmark, capsys):
    result = run_once(benchmark, lambda: run_experiment("smoke"))
    emit(capsys, render(result))
    assert_contract(result)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced scale (the CI variant)")
    parser.add_argument("--check", action="store_true",
                        help="fail on >20%% normalized regression vs "
                             "the committed baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite this scale's committed baseline")
    parser.add_argument("--json-out", metavar="PATH",
                        help="dump this run's measurements (+ baseline) "
                             "as JSON, e.g. for a CI artifact")
    args = parser.parse_args(argv)

    result = run_experiment("smoke" if args.smoke else "full")
    print(render(result))
    assert_contract(result)
    if args.json_out:
        Path(args.json_out).write_text(json.dumps({
            "result": result,
            "baseline": load_baseline(),
        }, indent=2) + "\n")
    if args.update_baseline:
        update_baseline(result)
        print(f"baseline updated: {BASELINE_PATH}")
        return 0
    if args.check:
        problems = check_against_baseline(result, load_baseline())
        for p in problems:
            print("FAIL:", p)
        if problems:
            return 1
        print("ok: normalized load metrics within 20% of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

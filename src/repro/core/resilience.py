"""Retry policy and per-EventSet health records for the self-healing runtime.

The paper's platforms fail in practice: substrate calls return
``PAPI_ESYS`` transiently, and counters can be stolen by other users of
the machine (``PAPI_ECLOST``).  Rather than surface every such hiccup --
or worse, silently return corrupt totals -- the library retries
transient substrate failures with bounded backoff (billed in simulated
cycles, so recovery has a visible, measurable cost) and records every
degradation it had to perform in an :class:`EventSetHealth` ledger that
callers can inspect alongside their counts.

The recovery ladder, from cheapest to most degraded:

1. **retry with backoff** -- transient ``PAPI_ESYS`` on a substrate call;
2. **re-acquire and resume** -- ``PAPI_ECLOST``: salvage the last-good
   totals, re-allocate around the stolen counter, restart, and record a
   :class:`LostInterval` covering the unobserved window;
3. **software emulation** -- hardware overflow arming failed for good:
   emulate the interrupt from a timer poll (coarser attribution);
4. **multiplex fallback** (opt-in) -- re-allocation infeasible: finish
   the run time-sliced rather than abort;
5. **fail** -- nothing above applies: raise, with the EventSet left in a
   well-defined stopped state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, TypeVar

from repro.core.errors import SystemError_

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for transient substrate failures.

    Backoff is charged to the simulated machine as system cycles, so a
    recovered run is slower than a clean one by exactly the backoff it
    paid -- perturbation stays visible, as everywhere else in the model.

    ``jitter_frac`` spreads retries of independent callers apart: with
    jitter ``j`` and a caller-supplied seeded RNG, each wait is scaled
    by a factor drawn uniformly from ``[1 - j, 1 + j]``.  The default
    (``0.0``) keeps the ladder exactly deterministic, so every existing
    billed-backoff account is unchanged; the papid client opts in with
    a per-client seeded RNG that doubles as a determinism witness.
    """

    max_retries: int = 3
    backoff_cycles: int = 200
    backoff_multiplier: int = 2
    jitter_frac: float = 0.0

    def backoff(self, attempt: int, rng: Optional[random.Random] = None) -> int:
        """Cycles to wait before retry number *attempt* (0-based).

        Without jitter (or without an RNG) this is the exact ladder
        ``backoff_cycles * multiplier ** attempt``; with both, the exact
        value is scaled by a uniform factor in ``[1-j, 1+j]`` and
        rounded to whole cycles (never below 1).
        """
        wait = self.backoff_cycles * self.backoff_multiplier ** attempt
        if self.jitter_frac > 0.0 and rng is not None:
            lo = 1.0 - self.jitter_frac
            hi = 1.0 + self.jitter_frac
            wait = max(1, int(round(wait * rng.uniform(lo, hi))))
        return wait


DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass
class LostInterval:
    """One window during which an EventSet's counters were not observed.

    Counts accumulated inside the window are unrecoverable; the runtime
    salvages the last-good totals instead of returning corrupt numbers,
    and the interval tells the caller exactly what was missed.
    """

    start_cycle: int
    end_cycle: int
    natives: Tuple[str, ...]
    reason: str
    recovered: bool = False


@dataclass
class EventSetHealth:
    """Per-EventSet ledger of every fault the runtime absorbed."""

    retries: int = 0
    backoff_cycles: int = 0
    lost_intervals: List[LostInterval] = field(default_factory=list)
    corruptions: int = 0
    overflow_emulated: bool = False
    degraded_to_multiplex: bool = False
    mpx_rotation_faults: int = 0

    @property
    def clean(self) -> bool:
        """True when no fault of any kind was absorbed."""
        return (
            self.retries == 0
            and not self.lost_intervals
            and self.corruptions == 0
            and not self.overflow_emulated
            and not self.degraded_to_multiplex
            and self.mpx_rotation_faults == 0
        )

    def summary(self) -> dict:
        """JSON-friendly snapshot (papirun output, tests)."""
        return {
            "retries": self.retries,
            "backoff_cycles": self.backoff_cycles,
            "lost_intervals": [
                {
                    "start_cycle": iv.start_cycle,
                    "end_cycle": iv.end_cycle,
                    "natives": list(iv.natives),
                    "reason": iv.reason,
                    "recovered": iv.recovered,
                }
                for iv in self.lost_intervals
            ],
            "corruptions": self.corruptions,
            "overflow_emulated": self.overflow_emulated,
            "degraded_to_multiplex": self.degraded_to_multiplex,
            "mpx_rotation_faults": self.mpx_rotation_faults,
        }


def call_with_retry(
    substrate,
    fn: Callable[[], T],
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    health: Optional[EventSetHealth] = None,
    cpu: int = 0,
    rng: Optional[random.Random] = None,
) -> T:
    """Run *fn*, retrying transient ``PAPI_ESYS`` failures with backoff.

    Only ``SystemError_`` is retried: a re-issued call can succeed once
    the condition clears.  ``CountersLostError`` is *transient* but not
    retryable in place -- the counter is gone and must be re-acquired --
    so it propagates to the recovery layer, as do all fatal errors.

    *rng*, when given together with a jittered policy, randomizes each
    wait (see :meth:`RetryPolicy.backoff`); the EventSet path passes
    none, so its billed-backoff accounting is bit-identical to the
    pre-jitter ladder.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except SystemError_:
            if attempt >= policy.max_retries:
                raise
            wait = policy.backoff(attempt, rng=rng)
            substrate.machine.charge(wait, cpu=cpu)
            if health is not None:
                health.retries += 1
                health.backoff_cycles += wait
            attempt += 1

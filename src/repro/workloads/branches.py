"""Branch-behaviour kernels: predictable vs data-dependent branches.

Exercise the BR_* signals and the platform branch predictors; the
misprediction-rate contrast between the two kernels is what makes
PAPI_BR_MSP informative in the tool-integration experiment (E10).
"""

from __future__ import annotations

import random

from repro.hw.isa import Assembler
from repro.workloads.builder import Expectations, Flow, Workload


def predictable_branches(n: int) -> Workload:
    """A counted loop with an always-taken inner branch.

    Any history-based predictor learns this pattern almost immediately,
    so the misprediction count stays O(1) regardless of n.
    """
    if n < 1:
        raise ValueError("n must be positive")
    asm = Assembler(name=f"pred{n}")
    flow = Flow(asm)
    asm.func("main")
    asm.li("r5", 0)
    asm.li("r6", 0)  # constant 0: the inner compare is always equal
    with flow.loop(n, "r30", "r31"):
        with flow.if_ge("r6", "r6"):  # always true -> never taken skip
            asm.addi("r5", "r5", 1)
    asm.halt()
    asm.endfunc()
    return Workload(
        name=f"predictable_branches(n={n})",
        program=asm.build(),
        expect=Expectations(
            flops=0,
            fp_ins=0,
            loads=0,
            stores=0,
            hot_function="main",
            extra={"cond_branches_min": 2 * n},
        ),
    )


def random_branches(n: int, seed: int = 11, taken_prob: float = 0.5) -> Workload:
    """Branch on precomputed pseudo-random data: unpredictable by design.

    The branch direction comes from a data array (0/1 with probability
    *taken_prob*), so even gshare converges to ~min(p, 1-p) misprediction
    rate -- the worst case the paper's accuracy discussion alludes to
    when correlating time with misprediction events.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not 0.0 <= taken_prob <= 1.0:
        raise ValueError("taken_prob must be a probability")
    rng = random.Random(seed)
    bits = [1 if rng.random() < taken_prob else 0 for _ in range(n)]
    asm = Assembler(name=f"rand{n}")
    flow = Flow(asm)
    base = asm.init_array(bits)
    asm.func("main")
    asm.li("r1", base)
    asm.li("r5", 0)
    asm.li("r6", 1)
    with flow.loop(n, "r30", "r31"):
        asm.load("r2", "r1", 0)
        with flow.if_ge("r2", "r6"):  # taken iff bit == 1
            asm.addi("r5", "r5", 1)
        asm.addi("r1", "r1", 1)
    asm.halt()
    asm.endfunc()
    return Workload(
        name=f"random_branches(n={n},p={taken_prob})",
        program=asm.build(),
        expect=Expectations(
            flops=0,
            fp_ins=0,
            loads=n,
            stores=0,
            hot_function="main",
            extra={"data_ones": sum(bits)},
        ),
    )

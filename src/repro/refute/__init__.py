"""CounterPoint-style refutation harness.

The validate matrix (:mod:`repro.validate`) checks expectations we
already wrote down; this package inverts the discipline.  A seeded,
budgeted **generator** (:mod:`repro.refute.generator`) composes
discriminating micro-programs -- loops, diamonds, strided memory walks,
probed blocks, call trees -- each carrying the set of model assumptions
it exercises.  A **predictor** (:mod:`repro.refute.predictor`) derives,
for every preset of every substrate, the value the substrate's
*documented* model says the program must produce (reusing the exact
reference interpreter of :mod:`repro.validate.oracle`, the static
oracle's affine machinery for closed-form cross-checks, and the
published :class:`~repro.platforms.base.AccessCosts` and fetch-line
geometry).  The **engine** (:mod:`repro.refute.engine`) then runs the
programs across substrates x execution-engine tiers x CPU counts,
classifies every cell as ``confirmed`` / ``refuted`` / ``undecidable``,
**shrinks** each refuting program to a minimal reproducer
(:mod:`repro.refute.shrink`) and emits a ``repro.refute/1`` report.

A refutation is a model/measurement disagreement: either the
documentation is wrong (the paper's POWER3 preset drift, found the hard
way), the simulator is wrong, or the predictor is wrong -- all three are
bugs worth a minimal reproducer.  On the six unmodified substrates the
committed seed/budget finds none; the mutation-sensitivity gate
(``tests/refute/test_sensitivity.py``) proves that deliberately
perturbed model constants *are* refuted, so "zero refutations" is
evidence, not vacuity.

Entry points: ``papi-validate --planes refute`` (matrix plane), the
``refute`` CLI verb (full report), :func:`run_refute` (library).
"""

from repro.refute.engine import (
    RefuteCell,
    RefuteConfig,
    RefuteReport,
    run_refute,
    run_refute_plane,
)
from repro.refute.generator import (
    GeneratedProgram,
    Genome,
    Segment,
    build_program,
    generate,
    genome_from_json,
    genome_to_json,
)
from repro.refute.mutations import MUTANTS, ModelMutant
from repro.refute.predictor import Prediction, SubstrateModel, predict
from repro.refute.shrink import shrink_genome

__all__ = [
    "MUTANTS",
    "GeneratedProgram",
    "Genome",
    "ModelMutant",
    "Prediction",
    "RefuteCell",
    "RefuteConfig",
    "RefuteReport",
    "Segment",
    "SubstrateModel",
    "build_program",
    "generate",
    "genome_from_json",
    "genome_to_json",
    "predict",
    "run_refute",
    "run_refute_plane",
    "shrink_genome",
]

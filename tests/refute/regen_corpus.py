"""Regenerate the minimized refutation-regression corpus.

Usage::

    PYTHONPATH=src python -m tests.refute.regen_corpus

**Regeneration policy.**  The corpus under ``tests/refute/corpus/`` is
a committed artifact: one JSON file per program-reproducible model
mutant, holding the *shrunk* genome that refuted it at the committed
seed/budget (``derive_seed(12345, "plane:refute")``, quick config).
Regenerate -- and commit the diff -- whenever any of these change:

- the mutant catalogue (:data:`repro.refute.mutations.MUTANTS`),
- the generator's lowering or cost model (shrunk shapes may shift),
- the committed seed or the quick :class:`RefuteConfig` shape.

Never hand-edit the JSON files; ``test_corpus.py`` replays each one and
fails if the stored genome no longer refutes its mutant (stale corpus)
or starts refuting the clean model (real drift -- that one is a bug
report, not a corpus problem).
"""

from __future__ import annotations

import json
import os

from repro.refute.engine import RefuteConfig, run_refute
from repro.refute.mutations import MUTANTS
from repro.refute.predictor import SubstrateModel
from repro.validate.seeds import derive_seed

COMMITTED_SEED = derive_seed(12345, "plane:refute")
CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_SCHEMA = "repro.refute.corpus/1"


def build_corpus() -> list:
    """One entry per mutant refutation that carries a genome reproducer."""
    entries = []
    for mutant in MUTANTS:
        model = mutant.mutate(SubstrateModel.of(mutant.platform))
        report = run_refute(
            RefuteConfig.quick(seed=COMMITTED_SEED,
                               platforms=[mutant.platform]),
            models={mutant.platform: model},
        )
        cells = [c for c in report.refutations() if c.reproducer]
        if not cells:
            continue  # program-independent mutants (cost-model)
        cell = min(cells, key=lambda c: c.reproducer_len)
        entries.append({
            "schema": CORPUS_SCHEMA,
            "mutant": mutant.name,
            "platform": cell.platform,
            "check": cell.check,
            "assumption": cell.assumption,
            "reproducer_len": cell.reproducer_len,
            "genome": cell.reproducer,
        })
    return entries


def main() -> int:
    os.makedirs(CORPUS_DIR, exist_ok=True)
    for stale in os.listdir(CORPUS_DIR):
        if stale.endswith(".json"):
            os.unlink(os.path.join(CORPUS_DIR, stale))
    entries = build_corpus()
    for entry in entries:
        path = os.path.join(CORPUS_DIR, f"{entry['mutant']}.json")
        with open(path, "w") as fh:
            json.dump(entry, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {path} ({entry['reproducer_len']} instructions)")
    print(f"{len(entries)} corpus entries")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Software multiplexing: time-slicing counter sets and scaling counts.

"Multiplexing allows more counters to be used simultaneously than are
physically supported by the hardware.  With multiplexing, the physical
counters are time-sliced, and the counts are estimated from the
measurements."  (Section 2)

The controller partitions an EventSet's native events into hardware-
feasible subsets (each subset is one optimal-allocation result), rotates
the active subset on a cycle-timer interrupt, and estimates each event's
full-run count as::

    estimate = counted * (total_running_cycles / subset_active_cycles)

The estimation error this introduces on short, phased runs -- the reason
the spec forces multiplexing to be an explicit low-level opt-in -- is
exactly what experiment E3 measures.  Every subset rotation goes through
the substrate's real program/start/stop operations, so multiplexing also
pays its true interface overhead.

On SMP machines each controller is pinned to its EventSet's bound CPU:
the rotation timer and the quantum clock are that CPU's own cycle
counter, so each CPU multiplexes independently at the pace of the work
its counters observe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.core.allocation import allocate
from repro.core.errors import ConflictError, PapiError, SubstrateFeatureError
from repro.hw.events import Signal

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.eventset import EventSet
    from repro.platforms.base import NativeEvent

#: default rotation quantum in cycles (overridable per Papi instance via
#: ``papi.mpx_quantum_cycles``); roughly 10 microseconds at 500 MHz.
DEFAULT_QUANTUM_CYCLES = 5000


def partition_natives(substrate, natives: Dict[str, "NativeEvent"],
                      banned=()):
    """Split *natives* into hardware-feasible subsets.

    Greedy set-cover by repeated optimal allocation: each round maps as
    many remaining events as the hardware allows and peels them off.
    Raises ConflictError if some event cannot be placed even alone.
    *banned* counters (held by another user) are excluded, so a
    controller built during loss recovery routes around them.
    """
    remaining = dict(natives)
    subsets: List[Dict[str, int]] = []
    while remaining:
        result = allocate(substrate, list(remaining.values()), banned=banned)
        if not result.assignment:
            raise ConflictError(
                f"events {sorted(remaining)} cannot be counted on "
                f"{substrate.NAME} at all"
            )
        subsets.append(dict(result.assignment))
        for name in result.assignment:
            del remaining[name]
    return subsets


class MultiplexController:
    """Drives one multiplexed EventSet run."""

    def __init__(self, eventset: "EventSet") -> None:
        self.eventset = eventset
        self.substrate = eventset.substrate
        self.machine = eventset.substrate.machine
        #: the CPU whose PMU (and cycle timer) drives the rotation; each
        #: CPU multiplexes independently, with quanta measured in *its
        #: own* executed cycles, so rotation cadence tracks the work the
        #: counters actually observe.
        self.cpu = eventset.cpu
        self._pmu = self.machine.cpus[self.cpu].pmu
        self._counts = self.machine.cpus[self.cpu].counts
        self.quantum = getattr(
            eventset.papi, "mpx_quantum_cycles", DEFAULT_QUANTUM_CYCLES
        )
        self.natives = dict(eventset._natives)
        self.subsets = partition_natives(
            self.substrate, self.natives,
            banned=sorted(self.substrate.unavailable_counters(self.cpu)),
        )
        self._subset_of: Dict[str, int] = {}
        for si, subset in enumerate(self.subsets):
            for name in subset:
                self._subset_of[name] = si
        self._accum: Dict[str, int] = {name: 0 for name in self.natives}
        self._active: List[int] = [0] * len(self.subsets)
        self._current = 0
        self._slice_start = 0
        self._total_start = 0
        self._running = False
        self.rotations = 0
        # component rotation state: multiplexing rotates *within* each
        # component whose members exceed its counter bank, never across
        # components.  The banks are free-running, so walking the windows
        # is pure bookkeeping -- component reads stay exact regardless of
        # which window is live (unlike the CPU subsets, whose counts must
        # be scaled from their active slices).
        by_comp: Dict[str, List[int]] = {}
        for code, (comp_name, _short) in sorted(
            eventset._cmp_events.items()
        ):
            by_comp.setdefault(comp_name, []).append(code)
        self.cmp_windows: Dict[str, List[List[int]]] = {}
        self.cmp_current: Dict[str, int] = {}
        for comp_name, codes in by_comp.items():
            cap = self.substrate.component(comp_name).n_counters
            if len(codes) > cap:
                self.cmp_windows[comp_name] = [
                    codes[i:i + cap] for i in range(0, len(codes), cap)
                ]
                self.cmp_current[comp_name] = 0
        #: set when a rotation fault left the current subset in limbo;
        #: the next tick re-programs it instead of rotating onward.
        self._wedged = False

    # ------------------------------------------------------------------

    def _now(self) -> int:
        """The bound CPU's own executed-cycle clock."""
        return self._counts[Signal.TOT_CYC]

    def _sub(self, fn):
        """Substrate call under the owning EventSet's retry policy."""
        return self.eventset._sub(fn)

    def _program_and_start(self, subset_index: int) -> None:
        subset = self.subsets[subset_index]
        pmu = self._pmu
        for name, idx in subset.items():
            if pmu.running(idx):
                pmu.stop(idx)
            self._sub(lambda name=name, idx=idx: self.substrate.program_counter(
                idx, self.natives[name], cpu=self.cpu
            ))
        self._sub(lambda: self.substrate.start_counters(
            sorted(subset.values()), cpu=self.cpu
        ))

    def _stop_and_collect(self, subset_index: int, now: int) -> None:
        subset = self.subsets[subset_index]
        values = self._sub(lambda: self.substrate.stop_counters(
            [subset[name] for name in subset], cpu=self.cpu
        ))
        for name, value in zip(subset, values):
            self._accum[name] += value
        self._active[subset_index] += now - self._slice_start

    def _quiesce_subset(self, subset_index: int) -> None:
        """Raw-PMU cleanup of one subset's counters; never raises."""
        for idx in self.subsets[subset_index].values():
            try:
                if self._pmu.running(idx):
                    self._pmu.stop(idx)
                self._pmu.clear(idx)
            except Exception:
                pass

    def start(self) -> None:
        if self._running:
            raise ConflictError("multiplex controller already running")
        pmu = self._pmu
        if pmu.timer_active:
            raise SubstrateFeatureError(
                "the platform timer is busy (another multiplexed EventSet "
                "is running)"
            )
        now = self._now()
        self._total_start = now
        self._slice_start = now
        self._current = 0
        if self.subsets:
            self._program_and_start(0)
        pmu.set_cycle_timer(self.quantum, self._on_tick)
        self._running = True

    def _on_tick(self, cycle: int) -> None:
        """Timer interrupt: rotate to the next subset.

        Fault containment: a rotation that fails (transient failure
        surviving every retry, or a counter stolen mid-rotation) must
        not propagate out of the timer-interrupt context -- it would
        unwind the machine's execution loop.  The controller instead
        marks itself *wedged*: the failed slice's counts are discarded
        (tallied as ``mpx_rotation_faults`` in the EventSet's health
        ledger) and each subsequent tick retries re-programming the
        current subset until the hardware cooperates again.
        """
        rotated_components = False
        if self.cmp_windows:
            for comp_name, windows in self.cmp_windows.items():
                self.cmp_current[comp_name] = (
                    self.cmp_current[comp_name] + 1
                ) % len(windows)
            rotated_components = True
        if len(self.subsets) <= 1 and not self._wedged:
            # nothing to rotate on the CPU side; counts stay exact
            if rotated_components:
                self.rotations += 1
            return
        try:
            if self._wedged:
                self._program_and_start(self._current)
                self._wedged = False
                self._slice_start = cycle
                return
            self._stop_and_collect(self._current, cycle)
            self._current = (self._current + 1) % len(self.subsets)
            self._slice_start = cycle
            self._program_and_start(self._current)
            self.rotations += 1
        except PapiError:
            self._wedged = True
            self.eventset.health.mpx_rotation_faults += 1

    # ------------------------------------------------------------------

    def _live_values(self) -> Dict[str, int]:
        """Current subset's live counter values (no stop)."""
        if not self.subsets:  # component-only set: no CPU counters live
            return {}
        subset = self.subsets[self._current]
        if self._wedged:
            return {name: 0 for name in subset}
        try:
            values = self._sub(lambda: self.substrate.read_counters(
                [subset[name] for name in subset], cpu=self.cpu
            ))
        except PapiError:
            self.eventset.health.mpx_rotation_faults += 1
            return {name: 0 for name in subset}
        return dict(zip(subset, values))

    def _estimate(
        self, counted: Dict[str, int], active: List[int], total: int
    ) -> Dict[str, int]:
        est: Dict[str, int] = {}
        for name in self.natives:
            si = self._subset_of[name]
            a = active[si]
            if a <= 0:
                est[name] = 0
            elif total <= a:
                est[name] = counted[name]
            else:
                est[name] = round(counted[name] * (total / a))
        return est

    def read(self) -> Dict[str, int]:
        now = self._now()
        if not self.subsets:
            return {}
        counted = dict(self._accum)
        live = self._live_values()
        for name, v in live.items():
            counted[name] += v
        active = list(self._active)
        active[self._current] += now - self._slice_start
        total = now - self._total_start
        return self._estimate(counted, active, total)

    def stop(self) -> Dict[str, int]:
        now = self._now()
        if not self.subsets:
            self._pmu.clear_cycle_timer()
            self._running = False
            return {}
        try:
            if self._wedged:
                self.eventset.health.mpx_rotation_faults += 1
                self._quiesce_subset(self._current)
            else:
                self._stop_and_collect(self._current, now)
        except PapiError:
            self.eventset.health.mpx_rotation_faults += 1
            self._quiesce_subset(self._current)
        self._pmu.clear_cycle_timer()
        self._running = False
        total = now - self._total_start
        return self._estimate(dict(self._accum), list(self._active), total)

    def abort(self) -> None:
        """Raw teardown for emergency paths; never raises."""
        try:
            self._pmu.clear_cycle_timer()
        except Exception:
            pass
        if self.subsets:
            self._quiesce_subset(self._current)
        self._running = False

    def reset(self) -> None:
        """Zero all accumulated counts and restart the clocks."""
        now = self._now()
        if self.subsets:
            subset = self.subsets[self._current]
            try:
                self._sub(lambda: self.substrate.reset_counters(
                    [subset[name] for name in subset], cpu=self.cpu
                ))
            except PapiError:
                self.eventset.health.mpx_rotation_faults += 1
                self._wedged = True
        for name in self._accum:
            self._accum[name] = 0
        self._active = [0] * len(self.subsets)
        self._slice_start = now
        self._total_start = now

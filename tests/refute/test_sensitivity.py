"""Mutation-sensitivity gate: every catalogued model mutant is refuted.

A refutation harness that never refutes might just be comparing
measurement against itself.  This gate perturbs one documented-model
constant at a time (see :mod:`repro.refute.mutations`) while the
machines stay faithful, and requires the sweep -- at the *same*
committed seed/budget the clean smoke uses -- to catch every one, with
a shrunk reproducer small enough to read.
"""

from __future__ import annotations

import pytest

from repro.refute.engine import RefuteConfig, run_refute
from repro.refute.generator import genome_from_json
from repro.refute.mutations import MUTANTS
from repro.refute.predictor import SubstrateModel
from repro.validate.seeds import derive_seed

COMMITTED_SEED = derive_seed(12345, "plane:refute")

#: acceptance ceiling for shrunk reproducers (static instructions).
REPRODUCER_CEILING = 30


def _mutant_report(mutant):
    model = mutant.mutate(SubstrateModel.of(mutant.platform))
    config = RefuteConfig.quick(seed=COMMITTED_SEED,
                                platforms=[mutant.platform])
    return run_refute(config, models={mutant.platform: model})


@pytest.mark.parametrize("mutant", MUTANTS, ids=lambda m: m.name)
def test_mutant_is_refuted(mutant):
    report = _mutant_report(mutant)
    refutations = report.refutations()
    assert refutations, (
        f"mutant {mutant.name} ({mutant.description}) survived the "
        f"committed sweep -- the harness has a blind spot"
    )
    assert any(c.assumption == mutant.assumption for c in refutations), (
        f"mutant {mutant.name} was refuted, but never through its "
        f"target assumption {mutant.assumption!r}"
    )


@pytest.mark.parametrize("mutant", MUTANTS, ids=lambda m: m.name)
def test_reproducers_are_minimal(mutant):
    report = _mutant_report(mutant)
    with_repro = [c for c in report.refutations()
                  if c.reproducer is not None]
    if mutant.assumption == "cost-model":
        # cost cells are program-independent by construction
        assert with_repro == []
        return
    assert with_repro
    for cell in with_repro:
        assert cell.reproducer_len <= REPRODUCER_CEILING
        # the committed reproducer replays: same genome, same program
        genome = genome_from_json(cell.reproducer)
        assert genome.segments


def test_mutants_target_distinct_drift_classes():
    """The catalogue must keep covering cost, geometry and mapping
    drift -- deleting a class would silently narrow the gate."""
    assert {m.assumption for m in MUTANTS} >= {
        "cost-model", "fetch-geometry", "preset-mapping"
    }


def test_mutant_refuses_wrong_platform():
    mutant = MUTANTS[0]
    with pytest.raises(ValueError):
        mutant.mutate(SubstrateModel.of("simIA64"))

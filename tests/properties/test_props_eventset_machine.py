"""Stateful property test: the EventSet state machine under random drives.

Hypothesis generates random sequences of PAPI calls (add, remove, start,
stop, read, reset, run-some-instructions) and verifies the library's
state machine invariants at every step:

- reads are monotone while running and no event goes negative,
- start/stop pairing is enforced, membership can't change while running,
- the library's single-running-EventSet discipline holds,
- counts after stop equal the last read.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)
import hypothesis.strategies as st

from repro.core import constants as C
from repro.core.errors import PapiError
from repro.core.library import Papi
from repro.platforms import create
from repro.workloads import phased

#: events known-allocatable together on simPOWER's group 0
CANDIDATES = [
    "PAPI_TOT_CYC",
    "PAPI_TOT_INS",
    "PAPI_LD_INS",
    "PAPI_SR_INS",
    "PAPI_BR_INS",
]


class EventSetMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.substrate = create("simPOWER")
        self.papi = Papi(self.substrate)
        self.es = self.papi.create_eventset()
        # an endless-enough workload to step through
        work = phased([("fp", 2000), ("mem", 2000)], repeats=50)
        self.substrate.machine.load(work.program)
        self.members = []            # event symbols, in add order
        self.running = False
        self.last_read = None

    # ------------------------------------------------------------------

    @rule(symbol=st.sampled_from(CANDIDATES))
    def add_event(self, symbol):
        code = self.papi.event_name_to_code(symbol)
        if self.running or symbol in self.members:
            try:
                self.es.add_event(code)
                assert False, "add must fail while running/duplicate"
            except PapiError:
                pass
        else:
            self.es.add_event(code)
            self.members.append(symbol)
            self.last_read = None

    @rule(symbol=st.sampled_from(CANDIDATES))
    def remove_event(self, symbol):
        code = self.papi.event_name_to_code(symbol)
        if self.running or symbol not in self.members:
            try:
                self.es.remove_event(code)
                assert False, "remove must fail while running/absent"
            except PapiError:
                pass
        else:
            self.es.remove_event(code)
            self.members.remove(symbol)
            self.last_read = None

    @rule()
    def start(self):
        if self.running or not self.members:
            try:
                self.es.start()
                assert False, "start must fail when running or empty"
            except PapiError:
                pass
        else:
            self.es.start()
            self.running = True
            self.last_read = None

    @rule()
    def stop(self):
        if not self.running:
            try:
                self.es.stop()
                assert False, "stop must fail when not running"
            except PapiError:
                pass
        else:
            values = self.es.stop()
            self.running = False
            assert len(values) == len(self.members)
            assert all(v >= 0 for v in values)
            if self.last_read is not None:
                # counters only grow between the last read and stop
                assert all(
                    v >= r for v, r in zip(values, self.last_read)
                )
            self.last_read = None

    @rule(steps=st.integers(min_value=10, max_value=500))
    def run_machine(self, steps):
        if not self.substrate.machine.cpu.halted:
            self.substrate.machine.run(max_instructions=steps)

    @rule()
    def read(self):
        if not self.running:
            try:
                self.es.read()
                assert False, "read must fail when not running"
            except PapiError:
                pass
        else:
            values = self.es.read()
            assert len(values) == len(self.members)
            assert all(v >= 0 for v in values)
            if self.last_read is not None:
                assert all(
                    v >= r for v, r in zip(values, self.last_read)
                ), "counts must be monotone while running"
            self.last_read = values

    @rule()
    def reset(self):
        if not self.running:
            try:
                self.es.reset()
                assert False, "reset must fail when not running"
            except PapiError:
                pass
        else:
            self.es.reset()
            self.last_read = None

    # ------------------------------------------------------------------

    @invariant()
    def state_flags_consistent(self):
        state = self.es.state()
        if self.running:
            assert state & C.PAPI_RUNNING
        else:
            assert state & C.PAPI_STOPPED

    @invariant()
    def membership_consistent(self):
        assert self.es.event_names == self.members

    @invariant()
    def library_running_discipline(self):
        handle = self.papi._running_handle
        if self.running:
            assert handle == self.es.handle
        else:
            assert handle is None


TestEventSetStateMachine = EventSetMachine.TestCase
TestEventSetStateMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)

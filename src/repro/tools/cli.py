"""Command-line utilities: papi_avail, papi_native_avail, papirun, calibrate.

The real PAPI distribution ships small command-line programs next to the
library; the paper's Section 5 explicitly plans "a papirun utility that
will allow users to execute a program and easily collect basic timing
and hardware counter data".  This module provides them over the
simulated platforms::

    python -m repro.tools.cli avail simPOWER
    python -m repro.tools.cli native-avail simX86
    python -m repro.tools.cli papirun simIA64 dot --n 2000 --multiplex
    python -m repro.tools.cli calibrate simALPHA --kernel dot --n 50000
    python -m repro.tools.cli platforms

Every subcommand returns 0 on success and prints a table to stdout, so
the utilities compose with shell pipelines like their C ancestors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.report import Table
from repro.core.calibrate import calibrate
from repro.core.library import Papi
from repro.core.presets import PRESETS
from repro.platforms import PLATFORM_NAMES, create
from repro.tools.papirun import DEFAULT_EVENTS, papirun
from repro.workloads import CALIBRATION_KERNELS


def cmd_platforms(_args) -> int:
    """List the simulated platforms."""
    table = Table(["platform", "description"])
    for name in PLATFORM_NAMES:
        sub = create(name)
        table.add_row(name, sub.describe())
    print(table.render())
    return 0


def cmd_avail(args) -> int:
    """papi_avail: preset availability on one platform."""
    papi = Papi(create(args.platform))
    table = Table(
        ["preset", "avail", "kind", "description"],
        title=f"papi_avail: {args.platform} "
              f"({papi.num_counters} hardware counters)",
    )
    available = 0
    for preset in PRESETS:
        info = papi.event_info(preset.code)
        if args.available_only and not info.available:
            continue
        available += info.available
        table.add_row(
            info.symbol,
            "yes" if info.available else "no",
            info.kind,
            info.description,
        )
    print(table.render())
    print(f"{available} of {len(PRESETS)} presets available")
    return 0


def cmd_native_avail(args) -> int:
    """papi_native_avail: the platform's native event table."""
    substrate = create(args.platform)
    table = Table(
        ["native event", "counters", "description"],
        title=f"papi_native_avail: {args.platform}",
    )
    for event in substrate.list_native():
        allowed = (
            "any"
            if event.allowed_counters is None
            else ",".join(map(str, event.allowed_counters))
        )
        table.add_row(event.name, allowed, event.description)
    print(table.render())
    if substrate.uses_groups:
        print(f"\ncounter groups ({len(substrate.groups)}):")
        for g in substrate.groups:
            print(f"  group {g.gid}: {', '.join(sorted(g.assignments))}")
    return 0


def cmd_papirun(args) -> int:
    """papirun: run a workload and print timing + counters."""
    try:
        factory = CALIBRATION_KERNELS[args.workload]
    except KeyError:
        print(
            f"unknown workload {args.workload!r}; "
            f"known: {', '.join(sorted(CALIBRATION_KERNELS))}",
            file=sys.stderr,
        )
        return 2
    substrate = create(args.platform)
    workload = factory(args.n, use_fma=substrate.HAS_FMA)
    result = papirun(
        substrate,
        workload,
        events=args.events.split(",") if args.events else None,
        multiplex=args.multiplex,
    )
    print(result.to_text())
    return 0


def cmd_calibrate(args) -> int:
    """calibrate: measured vs expected FLOPs for a known kernel."""
    result = calibrate(
        create(args.platform),
        kernel=args.kernel,
        n=args.n,
        sampling_period=args.sampling_period,
    )
    table = Table(
        ["quantity", "value"],
        title=f"calibrate: {result.kernel}(n={result.n}) on {result.platform}",
    )
    table.add_row("expected FLOPs", result.expected_flops)
    table.add_row("measured PAPI_FP_OPS", result.measured_fp_ops)
    table.add_row("FP_OPS error %", round(result.fp_ops_error * 100, 3))
    table.add_row("expected fp instructions", result.expected_fp_ins)
    table.add_row("measured PAPI_FP_INS", result.measured_fp_ins)
    table.add_row("cycles", result.cycles)
    table.add_row("real usec", round(result.real_usec, 2))
    print(table.render())
    # nonzero exit when calibration is badly off: scriptable health check
    return 0 if result.fp_ops_error < 0.25 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.cli",
        description="PAPI-reproduction command line utilities",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("platforms", help="list simulated platforms")

    p = sub.add_parser("avail", help="preset availability (papi_avail)")
    p.add_argument("platform", choices=PLATFORM_NAMES)
    p.add_argument("--available-only", action="store_true")

    p = sub.add_parser(
        "native-avail", help="native event table (papi_native_avail)"
    )
    p.add_argument("platform", choices=PLATFORM_NAMES)

    p = sub.add_parser("papirun", help="run a workload with counters")
    p.add_argument("platform", choices=PLATFORM_NAMES)
    p.add_argument("workload", help="kernel name (dot, axpy, triad, ...)")
    p.add_argument("--n", type=int, default=2000, help="problem size")
    p.add_argument(
        "--events",
        help=f"comma-separated preset list "
             f"(default: {','.join(DEFAULT_EVENTS)})",
    )
    p.add_argument("--multiplex", action="store_true")

    p = sub.add_parser("calibrate", help="check counts against ground truth")
    p.add_argument("platform", choices=PLATFORM_NAMES)
    p.add_argument("--kernel", default="dot",
                   choices=sorted(CALIBRATION_KERNELS))
    p.add_argument("--n", type=int, default=2000)
    p.add_argument("--sampling-period", type=int, default=None)

    return parser


_COMMANDS = {
    "platforms": cmd_platforms,
    "avail": cmd_avail,
    "native-avail": cmd_native_avail,
    "papirun": cmd_papirun,
    "calibrate": cmd_calibrate,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

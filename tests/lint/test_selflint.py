"""Self-lint baseline: the repo's own code lints clean in flow mode.

Mirrors the CI gate (``papi lint --flow examples src/repro``): any
finding here is either a real lifecycle bug we shipped or a linter
false positive -- both block, and both are fixed at the source (or
suppressed inline with a written justification, which this run honours
the same way CI does).
"""

import pathlib

import pytest

from repro.lint import lint_file
from repro.tools.cli import expand_lint_targets

REPO = pathlib.Path(__file__).resolve().parents[2]


def _targets():
    return expand_lint_targets(
        [str(REPO / "examples"), str(REPO / "src" / "repro")]
    )


def test_targets_cover_the_tree():
    targets = _targets()
    names = {pathlib.Path(t).name for t in targets}
    # sanity: the walk finds both roots' files
    assert "quickstart.py" in names
    assert "staticoracle.py" in names
    assert len(targets) > 20


@pytest.mark.parametrize(
    "path",
    _targets(),
    ids=lambda p: str(pathlib.Path(p).relative_to(REPO)),
)
def test_zero_findings(path):
    diags = lint_file(path, flow=True)
    assert diags == [], [d.render() for d in diags]

"""A1 (ablation): multiplex time-slice quantum vs estimation error.

Design question behind Section 2's multiplexing discussion: how long may
a time slice be before phase behaviour leaks into the estimates?  A
finer quantum samples every phase more evenly (lower error) but rotates
the counters more often (more interface overhead) -- the design
trade-off the PAPI implementation had to pick a default for.
"""

from _shared import emit, run_once
from repro.analysis import Table, rel_error_pct
from repro.core.library import Papi
from repro.platforms import create
from repro.workloads import phased

QUANTA = [1500, 3000, 6000, 12000, 24000]
EVENTS = ["PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_FP_OPS", "PAPI_L1_DCM"]
REPEATS = 4


def measure(quantum: int):
    substrate = create("simX86")
    papi = Papi(substrate)
    papi.mpx_quantum_cycles = quantum
    es = papi.create_eventset()
    es.set_multiplex()
    es.add_named(*EVENTS)
    work = phased([("fp", 1500), ("mem", 1500), ("br", 1500)],
                  repeats=REPEATS, use_fma=False)
    substrate.machine.load(work.program)
    before_overhead = substrate.machine.system_cycles
    es.start()
    substrate.machine.run_to_completion()
    mpx = es._mpx  # grab before stop() detaches the controller
    values = dict(zip(es.event_names, es.stop()))
    rotations = mpx.rotations if mpx else 0
    overhead = substrate.machine.system_cycles - before_overhead
    err = rel_error_pct(values["PAPI_FP_OPS"], work.expect.flops)
    return err, rotations, overhead


def run_experiment():
    return {q: measure(q) for q in QUANTA}


def bench_a1_multiplex_quantum(benchmark, capsys):
    results = run_once(benchmark, run_experiment)

    table = Table(
        ["quantum (cyc)", "FP_OPS error %", "rotations",
         "interface overhead (cyc)"],
        title=f"A1: multiplex quantum ablation (phased run x{REPEATS}, "
              f"{len(EVENTS)} events on 2 counters)",
    )
    for q, (err, rot, ovh) in results.items():
        table.add_row(q, round(err, 1), rot, ovh)
    emit(capsys, table.render())

    errs = {q: results[q][0] for q in QUANTA}
    overheads = {q: results[q][2] for q in QUANTA}
    rotations = {q: results[q][1] for q in QUANTA}
    # finer quanta rotate more and cost more interface work
    assert rotations[QUANTA[0]] > rotations[QUANTA[-1]]
    assert overheads[QUANTA[0]] > overheads[QUANTA[-1]]
    # the finest quantum estimates far better than the coarsest
    assert errs[QUANTA[0]] < 10.0
    assert errs[QUANTA[-1]] > 15.0
    assert errs[QUANTA[0]] < errs[QUANTA[-1]]

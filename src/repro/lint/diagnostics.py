"""Diagnostics: what every papi-lint analyzer emits.

A :class:`Diagnostic` pins one rule violation to a ``file:line:col``
position with a message and an optional fix hint.  The module also owns
the suppression mechanism -- ``# papi-lint: disable=PL001`` (or
``disable=all``) on the offending line -- and the two output renderers
(human text and machine-readable JSON) shared by the CLI and CI.
"""

from __future__ import annotations

import io
import json
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.lint.rules import RULES, Severity

#: the magic comment prefix, e.g. ``# papi-lint: disable=PL001,PL011``
DIRECTIVE = "papi-lint:"


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violation at a source position."""

    code: str                   #: rule code, e.g. "PL001"
    path: str
    line: int                   #: 1-based
    col: int                    #: 0-based, as in the ast module
    message: str
    hint: str = ""
    #: severity; defaults to the rule's declared severity.
    severity: Severity = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.severity is None:
            object.__setattr__(
                self, "severity", RULES[self.code].severity
            )

    # ------------------------------------------------------------------

    def render(self) -> str:
        """``path:line:col: PLxxx severity: message [hint]``"""
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} {self.severity}: {self.message}"
        )
        if self.hint:
            text += f"  [{self.hint}]"
        return text

    def to_dict(self) -> Dict[str, object]:
        rule = RULES.get(self.code)
        return {
            "code": self.code,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "rule": {
                "summary": rule.summary if rule else "",
                "paper": rule.paper if rule else "",
            },
        }


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of rule codes disabled on that line.

    A ``# papi-lint: disable=PL001,PL011`` comment suppresses the listed
    codes for diagnostics reported on its line; ``disable=all``
    suppresses everything there.  Anything after the code list (first
    whitespace onward) is a free-form justification, e.g.
    ``# papi-lint: disable=PL008 -- stopped in _teardown()``; writing
    one is strongly encouraged.  Unknown directives are ignored (they
    are comments, not syntax).
    """
    out: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for lineno, text in comments:
        body = text.lstrip("#").strip()
        if not body.startswith(DIRECTIVE):
            continue
        directive = body[len(DIRECTIVE):].strip()
        if not directive.startswith("disable="):
            continue
        spec = directive[len("disable="):].strip()
        code_list = spec.split()[0] if spec.split() else ""
        codes = {c.strip() for c in code_list.split(",") if c.strip()}
        out.setdefault(lineno, set()).update(codes)
    return out


def apply_suppressions(
    diagnostics: Iterable[Diagnostic], suppressions: Dict[int, Set[str]]
) -> List[Diagnostic]:
    """Drop diagnostics disabled by a same-line directive."""
    kept = []
    for diag in diagnostics:
        disabled = suppressions.get(diag.line, set())
        if "all" in disabled or diag.code in disabled:
            continue
        kept.append(diag)
    return kept


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def worst_severity(diagnostics: Iterable[Diagnostic]) -> Optional[Severity]:
    severities = [d.severity for d in diagnostics]
    return max(severities) if severities else None


def render_text(diagnostics: List[Diagnostic]) -> str:
    """The human report: one line per finding plus a count summary."""
    lines = [d.render() for d in diagnostics]
    n_err = sum(1 for d in diagnostics if d.severity == Severity.ERROR)
    n_warn = sum(1 for d in diagnostics if d.severity == Severity.WARNING)
    n_info = len(diagnostics) - n_err - n_warn
    lines.append(
        f"{len(diagnostics)} finding(s): "
        f"{n_err} error(s), {n_warn} warning(s), {n_info} info"
    )
    return "\n".join(lines)


#: Identifier of the JSON report layout.  ``repro.lint/2`` adds the
#: ``schema`` marker itself, the ``notes`` count and the per-finding
#: ``rule`` object; the v1 keys (``findings``/``errors``/``warnings``)
#: are retained unchanged so v1 consumers keep working.
JSON_SCHEMA = "repro.lint/2"


def render_json(diagnostics: List[Diagnostic]) -> str:
    """The machine report consumed by CI and editor integrations."""
    payload = {
        "schema": JSON_SCHEMA,
        "findings": [d.to_dict() for d in diagnostics],
        "errors": sum(
            1 for d in diagnostics if d.severity == Severity.ERROR
        ),
        "warnings": sum(
            1 for d in diagnostics if d.severity == Severity.WARNING
        ),
        "notes": sum(
            1 for d in diagnostics if d.severity == Severity.INFO
        ),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def sort_diagnostics(diagnostics: List[Diagnostic]) -> List[Diagnostic]:
    return sorted(
        diagnostics, key=lambda d: (d.path, d.line, d.col, d.code)
    )

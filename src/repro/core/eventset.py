"""EventSets: the unit of counter management in the low-level API.

"PAPI manages events in user-defined sets called EventSets" (Section 5).
An EventSet collects event codes (presets and/or natives), resolves them
to the platform's native events, asks the allocator (Section 5's graph
matching) for a counter assignment, and drives the substrate's counter
operations on start/stop/read/accum/reset.

Three counting regimes, chosen automatically:

- **direct** (default): events fit the physical counters or adding them
  raises :class:`~repro.core.errors.ConflictError`;
- **multiplexed**: only after an explicit :meth:`set_multiplex` call --
  the paper describes at length why multiplexing must be opt-in and
  low-level-only (naive use silently produces wrong numbers on short
  runs, experiment E3);
- **sampling** (simALPHA): counts are estimated from ProfileMe samples
  through a :class:`~repro.platforms.simalpha.SamplingSession`; any
  number of events can be "counted" at once and no allocation happens.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.core import constants as C
from repro.core.allocation import allocate
from repro.core.errors import (
    ConflictError,
    CountersLostError,
    InvalidArgumentError,
    IsRunningError,
    NoSuchEventError,
    NotRunningError,
    PapiError,
    SubstrateFeatureError,
    SystemError_,
)
from repro.core.overflow import (
    OverflowInfo,
    OverflowRegistration,
    SoftwareOverflowEmulator,
)
from repro.core.resilience import (
    DEFAULT_RETRY_POLICY,
    EventSetHealth,
    LostInterval,
    call_with_retry,
)
from repro.platforms.base import NativeEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.library import Papi
    from repro.core.multiplex import MultiplexController
    from repro.simos.thread import Thread


class EventSet:
    """One PAPI EventSet.  Create via :meth:`Papi.create_eventset`."""

    def __init__(self, papi: "Papi", handle: int) -> None:
        self.papi = papi
        self.handle = handle
        self.substrate = papi.substrate
        self._codes: List[int] = []
        self._terms: Dict[int, Tuple[Tuple[NativeEvent, int], ...]] = {}
        self._natives: Dict[str, NativeEvent] = {}
        self._assignment: Dict[str, int] = {}
        #: non-CPU component members: code -> (component name, short name).
        #: These never enter the CPU allocation/PMU path; they are read
        #: as free-running snapshots against :attr:`_cmp_base`.
        self._cmp_events: Dict[int, Tuple[str, str]] = {}
        #: free-running base snapshots taken at start()/reset().
        self._cmp_base: Dict[int, int] = {}
        self._multiplexed = False
        self._attached: Optional["Thread"] = None
        self._running = False
        self._session = None            # SamplingSession on simALPHA
        self._mpx: Optional["MultiplexController"] = None
        self._overflows: Dict[int, OverflowRegistration] = {}
        self._start_real_cyc = 0
        self._domain = C.PAPI_DOM_USER
        #: CPU whose PMU hosts this EventSet's counters (SMP machines);
        #: attached threads may migrate, re-homing the counters with them.
        self._cpu = 0
        #: cumulative ledger of every fault the runtime absorbed on this
        #: EventSet's behalf (retries, lost intervals, degradations).
        self.health = EventSetHealth()
        #: per-native counts salvaged across counter-loss recoveries;
        #: added to raw hardware reads so totals stay monotone.
        self._recovery_base: Dict[str, int] = {}
        #: (last plausible totals, real cycle they were observed at) --
        #: the salvage point for loss recovery and the reference for the
        #: corruption plausibility check.
        self._good: Optional[Tuple[Dict[str, int], int]] = None
        #: software overflow emulation (armed when hardware arming fails).
        self._soft_overflow: Optional[SoftwareOverflowEmulator] = None
        #: rotations the last multiplexed run completed (set at stop).
        self.mpx_rotations = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def events(self) -> List[int]:
        """Event codes in add order (PAPI_list_events)."""
        return list(self._codes)

    @property
    def event_names(self) -> List[str]:
        return [self.papi.event_code_to_name(c) for c in self._codes]

    @property
    def num_events(self) -> int:
        return len(self._codes)

    @property
    def running(self) -> bool:
        return self._running

    @property
    def multiplexed(self) -> bool:
        return self._multiplexed

    @property
    def attached(self) -> Optional["Thread"]:
        return self._attached

    @property
    def cpu(self) -> int:
        """The CPU this EventSet's counters are allocated on."""
        return self._cpu

    @property
    def assignment(self) -> Dict[str, int]:
        """Native event -> physical counter (empty when sampling/multiplexed)."""
        return dict(self._assignment)

    @property
    def component_events(self) -> Dict[int, Tuple[str, str]]:
        """Non-CPU members: code -> (component name, short name)."""
        return dict(self._cmp_events)

    @property
    def component_assignment(self) -> Dict[str, int]:
        """Qualified component event -> counter index within its component.

        Allocation partitions per component: each component's members are
        packed into its own counter bank independently (multiplexed
        members share the bank round-robin, so indices wrap).
        """
        from repro.core.allocation import component_assignment

        by_comp: Dict[str, List[Tuple[int, str]]] = {}
        for code, (comp_name, short) in self._cmp_events.items():
            by_comp.setdefault(comp_name, []).append((code, short))
        out: Dict[str, int] = {}
        for comp_name, members in by_comp.items():
            comp = self.substrate.component(comp_name)
            shorts = [short for _code, short in members]
            for short, idx in component_assignment(
                shorts, comp.n_counters
            ).items():
                sep = C.PAPI_COMPONENT_SEPARATOR
                out[f"{comp_name}{sep}{short}"] = idx
        return out

    def _component_members(self, comp_name: str) -> List[int]:
        return [
            code for code, (cn, _short) in self._cmp_events.items()
            if cn == comp_name
        ]

    def state(self) -> int:
        """PAPI_state bit flags."""
        flags = C.PAPI_RUNNING if self._running else C.PAPI_STOPPED
        if self._multiplexed:
            flags |= C.PAPI_MULTIPLEXING
        if self._overflows:
            flags |= C.PAPI_OVERFLOWING
        if self._attached is not None:
            flags |= C.PAPI_ATTACHED
        return flags

    # ------------------------------------------------------------------
    # event membership
    # ------------------------------------------------------------------

    def _sampling(self) -> bool:
        return self.substrate.supports_sampling_counts()

    def _unique_natives(
        self, extra: Tuple[Tuple[NativeEvent, int], ...] = ()
    ) -> Dict[str, NativeEvent]:
        natives = dict(self._natives)
        for native, _coeff in extra:
            natives.setdefault(native.name, native)
        return natives

    def add_event(self, code: int) -> None:
        """PAPI_add_event.

        On direct platforms this re-runs optimal allocation over the
        union of natives; an incomplete mapping (unless multiplexing is
        enabled) raises :class:`ConflictError` and leaves the EventSet
        unchanged -- the C library's ECNFLCT behaviour.
        """
        if self._running:
            raise IsRunningError("cannot add events while running")
        if code in self._codes:
            raise InvalidArgumentError(
                f"event {self.papi.event_code_to_name(code)} already present"
            )
        if C.is_native(code) and C.component_id(code) != C.PAPI_CPU_COMPONENT:
            self._add_component_event(code)
            return
        terms = self.papi.resolve_terms(code)  # raises NoSuchEventError
        candidates = self._unique_natives(terms)

        if self._sampling():
            pass  # the sampler observes everything; no allocation at all
        elif self._multiplexed:
            if len(candidates) > C.PAPI_MAX_MPX_EVENTS:
                raise ConflictError(
                    f"multiplexed EventSets hold at most "
                    f"{C.PAPI_MAX_MPX_EVENTS} native events"
                )
            self._check_multiplex_feasible(candidates)
        else:
            result = allocate(self.substrate, list(candidates.values()))
            if not result.complete:
                raise ConflictError(
                    f"cannot map {sorted(result.unplaced)} onto "
                    f"{self.substrate.n_counters} counters of "
                    f"{self.substrate.NAME}; enable multiplexing or remove "
                    f"events"
                )
            self._assignment = result.assignment

        self._codes.append(code)
        self._terms[code] = terms
        self._natives = candidates

    def _add_component_event(self, code: int) -> None:
        """Add one non-CPU component event (partitioned allocation).

        Component events never touch the CPU allocator: each component's
        members must fit that component's own counter bank, and
        multiplexing rotates *within* a component, never across.
        """
        # raises NoSuchComponentError / NoSuchEventError respectively
        comp = self.substrate.component_by_id(C.component_id(code))
        name = self.papi.event_code_to_name(code)
        short = name.split(C.PAPI_COMPONENT_SEPARATOR, 1)[1]
        members = self._component_members(comp.name)
        if self._multiplexed:
            if not comp.SUPPORTS_MULTIPLEX:
                raise SubstrateFeatureError(
                    f"component {comp.name!r} declares no multiplexing; "
                    f"{name} cannot join a multiplexed EventSet"
                )
        elif len(members) + 1 > comp.n_counters:
            raise ConflictError(
                f"component {comp.name!r} has {comp.n_counters} counters "
                f"but would need {len(members) + 1}; enable multiplexing "
                f"or remove events"
            )
        self._codes.append(code)
        self._cmp_events[code] = (comp.name, short)

    def _check_multiplex_feasible(self, natives: Dict[str, NativeEvent]) -> None:
        """Every native must be placeable *alone* for multiplexing to work."""
        for native in natives.values():
            result = allocate(self.substrate, [native])
            if not result.complete:
                raise ConflictError(
                    f"native event {native.name} cannot be counted on any "
                    f"counter of {self.substrate.NAME}"
                )

    def add_events(self, codes: List[int]) -> None:
        for code in codes:
            self.add_event(code)

    def add_named(self, *names: str) -> None:
        """Convenience: add events by preset symbol or native name."""
        for name in names:
            self.add_event(self.papi.event_name_to_code(name))

    def remove_event(self, code: int) -> None:
        if self._running:
            raise IsRunningError("cannot remove events while running")
        if code not in self._codes:
            raise NoSuchEventError(
                f"event 0x{code:08x} is not in this EventSet"
            )
        self._codes.remove(code)
        if code in self._cmp_events:
            del self._cmp_events[code]
            self._cmp_base.pop(code, None)
            return
        del self._terms[code]
        # rebuild the native set from the remaining events
        self._natives = {}
        for c in self._codes:
            if c in self._cmp_events:
                continue
            for native, _coeff in self._terms[c]:
                self._natives.setdefault(native.name, native)
        if not self._sampling() and not self._multiplexed and self._natives:
            result = allocate(self.substrate, list(self._natives.values()))
            assert result.complete, "removal cannot create conflicts"
            self._assignment = result.assignment
        elif not self._natives:
            self._assignment = {}

    def cleanup(self) -> None:
        """PAPI_cleanup_eventset: drop all events (must be stopped)."""
        if self._running:
            raise IsRunningError("cannot clean up a running EventSet")
        self._codes.clear()
        self._terms.clear()
        self._natives.clear()
        self._assignment.clear()
        self._cmp_events.clear()
        self._cmp_base.clear()
        self._overflows.clear()

    # ------------------------------------------------------------------
    # options
    # ------------------------------------------------------------------

    def set_multiplex(self) -> None:
        """Enable software multiplexing (explicitly, as the spec requires).

        The paper: "This issue was resolved by requiring multiplexing to
        be explicitly enabled in the low-level interface, rather than
        implementing it transparently in the high-level interface."
        """
        if self._running:
            raise IsRunningError("cannot enable multiplexing while running")
        if self._sampling():
            raise SubstrateFeatureError(
                "the sampling substrate estimates all events at once; "
                "multiplexing is meaningless there"
            )
        if self._overflows:
            raise InvalidArgumentError(
                "overflow and multiplexing cannot be combined"
            )
        if self._multiplexed:
            return
        for comp_name in {cn for cn, _short in self._cmp_events.values()}:
            comp = self.substrate.component(comp_name)
            if not comp.SUPPORTS_MULTIPLEX:
                raise SubstrateFeatureError(
                    f"component {comp_name!r} declares no multiplexing; "
                    "remove its events before PAPI_set_multiplex"
                )
        self._check_multiplex_feasible(self._natives)
        self._multiplexed = True
        self._assignment = {}

    def set_domain(self, domain: int) -> None:
        """PAPI_set_domain: choose what execution contexts are counted.

        ``PAPI_DOM_USER`` (default) counts only application work;
        ``PAPI_DOM_ALL`` additionally folds kernel/interface cycles into
        cycle events (so measured TOT_CYC includes the counter
        interface's own cost -- the perturbation made visible).
        """
        if self._running:
            raise IsRunningError("cannot change domain while running")
        if domain not in (C.PAPI_DOM_USER, C.PAPI_DOM_ALL):
            raise InvalidArgumentError(
                f"unsupported domain 0x{domain:x} (use PAPI_DOM_USER or "
                f"PAPI_DOM_ALL)"
            )
        if domain != C.PAPI_DOM_USER and self._sampling():
            raise SubstrateFeatureError(
                "the DCPI sampler observes user mode only"
            )
        if domain != C.PAPI_DOM_USER and self._multiplexed:
            raise InvalidArgumentError(
                "PAPI_DOM_ALL cannot be combined with multiplexing"
            )
        self._domain = domain

    def get_domain(self) -> int:
        return self._domain

    def attach(self, thread: "Thread") -> None:
        """Attach counting to *thread* (counts only while it runs)."""
        if self._running:
            raise IsRunningError("cannot attach while running")
        if self._sampling():
            raise SubstrateFeatureError(
                "per-thread attach is not supported on the sampling substrate"
            )
        self._attached = thread

    def detach(self) -> None:
        if self._running:
            raise IsRunningError("cannot detach while running")
        self._attached = None

    def bind_cpu(self, cpu: int) -> None:
        """Pin this EventSet's counter allocation to one CPU's PMU.

        On SMP machines each CPU has its own physical counters; an
        unattached EventSet counts whatever runs on its bound CPU, while
        an attached one merely starts there (the scheduler re-homes the
        counters whenever the thread migrates).  CPU 0 is the default
        and the only choice on single-CPU machines.
        """
        if self._running:
            raise IsRunningError("cannot re-bind CPU while running")
        ncpus = self.substrate.machine.config.ncpus
        if not 0 <= cpu < ncpus:
            raise InvalidArgumentError(
                f"cpu {cpu} out of range (machine has {ncpus})"
            )
        self._cpu = cpu

    # ------------------------------------------------------------------
    # overflow
    # ------------------------------------------------------------------

    def overflow(
        self,
        code: int,
        threshold: int,
        handler: Callable[[OverflowInfo], None],
    ) -> None:
        """PAPI_overflow: call *handler* every *threshold* increments.

        Restricted, as in the C library, to events that map to a single
        native event (derived events cannot overflow) on direct-counting
        substrates, and incompatible with multiplexing.
        """
        if self._sampling():
            raise SubstrateFeatureError(
                "overflow interrupts are unavailable over the DCPI "
                "aggregate interface; use hardware sampling / PAPI_profil"
            )
        if self._multiplexed:
            raise InvalidArgumentError(
                "overflow and multiplexing cannot be combined"
            )
        if code not in self._codes:
            raise NoSuchEventError("event must be added before PAPI_overflow")
        if code in self._cmp_events:
            raise InvalidArgumentError(
                "component events are free-running snapshots; "
                "PAPI_overflow requires a programmed PMU counter"
            )
        if threshold < C.PAPI_MIN_OVERFLOW:
            raise InvalidArgumentError(
                f"threshold must be >= {C.PAPI_MIN_OVERFLOW}"
            )
        terms = self._terms[code]
        if len(terms) != 1 or terms[0][1] != 1:
            raise InvalidArgumentError(
                "derived events cannot be used with PAPI_overflow"
            )
        self._overflows[code] = OverflowRegistration(
            eventset=self,
            code=code,
            native=terms[0][0],
            threshold=threshold,
            handler=handler,
        )
        if self._running:
            self._install_overflow(self._overflows[code])

    def _pmu_for(self, idx: int):
        """The PMU physically hosting counter *idx* right now.

        Attached counters live wherever the scheduler last homed them
        (they migrate with the thread); otherwise on the bound CPU.
        """
        if self._attached is not None and idx in self._attached.counter_home:
            home = self._attached.counter_home[idx]
            return self.substrate.machine.cpus[home].pmu
        return self.substrate.machine.cpus[self._cpu].pmu

    def _cpu_for(self, idx: int) -> int:
        """The CPU physically hosting counter *idx* right now."""
        if self._attached is not None and idx in self._attached.counter_home:
            return self._attached.counter_home[idx]
        return self._cpu

    def clear_overflow(self, code: int) -> None:
        reg = self._overflows.pop(code, None)
        if reg is not None and self._running:
            if self._soft_overflow is not None:
                self._soft_overflow.disarm(code)
            idx = self._assignment.get(reg.native.name)
            if idx is not None:
                self._pmu_for(idx).clear_overflow(idx)

    def _install_overflow(self, reg: OverflowRegistration) -> None:
        """Arm one overflow watch: hardware first, software on failure.

        Hardware arming goes through the substrate so injected faults
        can hit it; if it still fails after the retry policy is
        exhausted, the registration degrades to the timer-driven
        :class:`SoftwareOverflowEmulator` (coarse attribution, recorded
        in the health ledger) instead of aborting the run.
        """
        idx = self._assignment[reg.native.name]
        cpu = self._cpu_for(idx)
        try:
            self._sub(lambda: self.substrate.arm_overflow(
                idx, reg.threshold, reg.make_dispatch(), cpu=cpu
            ))
        except SystemError_:
            if self._soft_overflow is None:
                self._soft_overflow = SoftwareOverflowEmulator(self)
            self._soft_overflow.arm(reg, idx)
            self.health.overflow_emulated = True

    # ------------------------------------------------------------------
    # resilience: retry, loss recovery, corruption containment
    # ------------------------------------------------------------------

    def _sub(self, fn):
        """Run one substrate call under the library's retry policy."""
        return call_with_retry(
            self.substrate, fn,
            getattr(self.papi, "retry_policy", DEFAULT_RETRY_POLICY),
            self.health, cpu=self._cpu,
        )

    def _note_good(self, totals: Dict[str, int]) -> None:
        self._good = (dict(totals), self.substrate.real_cyc())

    def _quiesce_direct(self) -> None:
        """Raw-PMU cleanup of every assigned counter; never raises.

        The emergency path (kernel-assisted teardown): injected faults
        only hit the substrate's call boundary, so direct register
        cleanup is the one operation recovery can always rely on.
        """
        for _name, idx in self._assignment.items():
            try:
                pmu = self._pmu_for(idx)
                if pmu.running(idx):
                    pmu.stop(idx)
                pmu.clear(idx)  # also drops any armed overflow watch
            except Exception:
                pass

    def _emergency_stop(self) -> None:
        """Force the EventSet into a well-defined STOPPED state.

        Used when recovery is impossible and by the shutdown path; the
        set is left stopped, its counters released, with all timers and
        bindings torn down -- never half-started/half-stopped.
        """
        self._quiesce_direct()
        if self._soft_overflow is not None:
            self._soft_overflow.stop()
            self._soft_overflow = None
        if self._mpx is not None:
            try:
                self._mpx.abort()
            except Exception:
                pass
            self._mpx = None
        if self._attached is not None:
            self.substrate.os.force_release_thread_counters(self._attached)
        self._session = None
        self._cmp_base = {}
        self._running = False
        self.papi._release_counters(self)

    def _plausibility_bound(self, elapsed: int) -> int:
        """Max believable count delta over *elapsed* real cycles.

        No native event can advance faster than a few signals per cycle;
        a wild wrap (sign flip or a 2**48-scale jump) is orders of
        magnitude outside this envelope, so the check never misfires on
        clean data yet always catches injected corruption.
        """
        return 8 * max(0, elapsed) + 4096

    def _corruption_check(self, totals: Dict[str, int]) -> Dict[str, int]:
        """Replace implausible totals with the last-good values.

        A corrupt value comes from a mis-latched *read* -- the hardware
        register itself still counts correctly -- so the contained value
        is simply the last plausible one; the next read sees the true
        register again.  Every replacement is tallied in the health
        ledger: the caller gets a monotone, slightly stale number and a
        record that validation fired, never a wild total.
        """
        if self._good is None:
            return totals
        good_vals, good_cyc = self._good
        bound = self._plausibility_bound(
            self.substrate.real_cyc() - good_cyc
        )
        fixed = None
        for name, value in totals.items():
            delta = value - good_vals.get(name, 0)
            if delta < 0 or delta > bound:
                if fixed is None:
                    fixed = dict(totals)
                fixed[name] = good_vals.get(name, 0)
                self.health.corruptions += 1
        return fixed if fixed is not None else totals

    def _recover_lost(self, reason: str, stop: bool) -> Dict[str, int]:
        """Handle ``PAPI_ECLOST``: salvage, re-acquire, resume.

        Returns the salvaged per-native totals (the last plausible
        observation).  The unobserved window is recorded as a
        :class:`LostInterval`; when *stop* is false the EventSet is
        re-allocated around the stolen counter and restarted, falling
        back to multiplexing (opt-in) when re-allocation is infeasible.
        """
        sub = self.substrate
        now = sub.real_cyc()
        good_vals, good_cyc = self._good or ({}, self._start_real_cyc)
        interval = LostInterval(
            start_cycle=good_cyc,
            end_cycle=now,
            natives=tuple(self._natives),
            reason=reason,
        )
        self.health.lost_intervals.append(interval)
        self._recovery_base = {
            name: good_vals.get(name, 0) for name in self._natives
        }
        self._quiesce_direct()
        if stop:
            # the run is over; the salvaged totals are the final answer.
            interval.recovered = True
            return dict(self._recovery_base)
        banned = sorted(sub.unavailable_counters(self._cpu))
        result = allocate(sub, list(self._natives.values()), banned=banned)
        if not result.complete:
            if (
                getattr(self.papi, "degrade_to_multiplex", False)
                and not self._overflows
            ):
                try:
                    self._degrade_to_multiplex()
                except PapiError:
                    self._emergency_stop()
                    raise CountersLostError(
                        f"{reason}; re-allocation infeasible and the "
                        f"multiplex fallback failed"
                    ) from None
                interval.recovered = True
                self._note_good(dict(self._recovery_base))
                return dict(self._recovery_base)
            self._emergency_stop()
            raise CountersLostError(
                f"{reason}; re-allocation is infeasible "
                f"(banned counters: {banned})"
            ) from None
        self._assignment = dict(result.assignment)
        try:
            self._restart_after_loss()
        except PapiError:
            self._emergency_stop()
            raise
        interval.recovered = True
        totals = dict(self._recovery_base)
        self._note_good(totals)
        return totals

    def _degrade_to_multiplex(self) -> None:
        """Finish the run time-sliced when direct re-allocation failed."""
        from repro.core.multiplex import MultiplexController

        self._assignment = {}
        self._multiplexed = True
        self._mpx = MultiplexController(self)
        self._mpx.start()
        self.health.degraded_to_multiplex = True

    def _restart_after_loss(self) -> None:
        """Re-program and restart counters on the fresh assignment."""
        order = self._counter_order()
        pmu = self.substrate.machine.cpus[self._cpu].pmu
        for name, idx in order:
            if pmu.running(idx):
                pmu.stop(idx)
            self._sub(lambda name=name, idx=idx: self.substrate.program_counter(
                idx, self._programmed_event(self._natives[name]),
                cpu=self._cpu,
            ))
        indices = [idx for _name, idx in order]
        self._sub(lambda: self.substrate.start_counters(indices, cpu=self._cpu))
        for reg in self._overflows.values():
            if (
                self._soft_overflow is not None
                and reg.code in self._soft_overflow._watches
            ):
                self._soft_overflow.rebase(
                    reg.code, self._assignment[reg.native.name]
                )
            else:
                self._install_overflow(reg)

    # ------------------------------------------------------------------
    # run control
    # ------------------------------------------------------------------

    def _require_events(self) -> None:
        if not self._codes:
            raise InvalidArgumentError("EventSet has no events")

    def _counter_order(self) -> List[Tuple[str, int]]:
        """(native name, counter index) in deterministic native order."""
        return [(name, self._assignment[name]) for name in self._natives]

    def start(self) -> None:
        """PAPI_start.

        Crash-consistent: if anything fails mid-start (including an
        injected fault surviving every retry), all partially programmed
        state is rolled back and the EventSet is left exactly as it was
        -- stopped, counters released, no timers armed.
        """
        self._require_events()
        if self._running:
            raise IsRunningError("EventSet is already running")
        self.papi._acquire_counters(self)
        try:
            if self._sampling():
                # period override: papi.sampling_period (None = platform
                # default); the A2 ablation sweeps this.  A component-only
                # set needs no sampler: its counters are free-running.
                if self._natives:
                    self._session = self.substrate.sampling_session(
                        list(self._natives.values()),
                        period=getattr(self.papi, "sampling_period", None),
                    )
                    self._session.start()
            elif self._multiplexed:
                from repro.core.multiplex import MultiplexController

                self._mpx = MultiplexController(self)
                self._mpx.start()
            else:
                self._start_direct()
        except Exception:
            self._rollback_start()
            raise
        self._running = True
        self._start_real_cyc = self.substrate.real_cyc()
        self._recovery_base = {name: 0 for name in self._natives}
        self._note_good({name: 0 for name in self._natives})
        self._snapshot_components()

    def _snapshot_components(self) -> None:
        """Re-base every component member on its free-running total.

        Snapshot reads are charge-free (like :meth:`Substrate.arm_overflow`:
        control-plane work that must not perturb what is being measured),
        and they sit outside the fault-injection gate -- stolen or corrupt
        CPU counters cannot damage a socket-scoped base.
        """
        self._cmp_base = {
            code: self.substrate.component(comp_name).raw_value(short)
            for code, (comp_name, short) in self._cmp_events.items()
        }

    def _rollback_start(self) -> None:
        """Undo a partially executed start; never raises."""
        if not self._sampling() and not self._multiplexed:
            self._quiesce_direct()
        if self._soft_overflow is not None:
            self._soft_overflow.stop()
            self._soft_overflow = None
        if self._mpx is not None:
            try:
                self._mpx.abort()
            except Exception:
                pass
            self._mpx = None
        self._session = None
        self.papi._release_counters(self)

    def _programmed_event(self, native: NativeEvent) -> NativeEvent:
        """Apply the counting domain to a native event's signal set."""
        from dataclasses import replace

        from repro.hw.events import Signal

        if (
            self._domain & C.PAPI_DOM_KERNEL
            and Signal.TOT_CYC in native.signals
        ):
            return replace(native, signals=native.signals + (Signal.SYS_CYC,))
        return native

    def _start_direct(self) -> None:
        if not self._natives:
            return  # component-only set: nothing to program on the PMU
        pmu = self.substrate.machine.cpus[self._cpu].pmu
        order = self._counter_order()
        for name, idx in order:
            if pmu.running(idx):
                pmu.stop(idx)
            self._sub(lambda name=name, idx=idx: self.substrate.program_counter(
                idx, self._programmed_event(self._natives[name]),
                cpu=self._cpu,
            ))
        indices = [idx for _name, idx in order]
        if self._attached is not None:
            os_ = self.substrate.os
            for idx in indices:
                if idx not in self._attached.bound_counters:
                    os_.bind_counter(self._attached, idx, cpu=self._cpu)
                os_.counter_start(self._attached, idx)
            self.substrate._charge(self.substrate.COSTS.start)
        else:
            self._sub(lambda: self.substrate.start_counters(
                indices, cpu=self._cpu
            ))
        for reg in self._overflows.values():
            self._install_overflow(reg)

    def _compute_values(self, native_values: Dict[str, int]) -> List[int]:
        out = []
        for code in self._codes:
            if code in self._cmp_events:
                comp_name, short = self._cmp_events[code]
                comp = self.substrate.component(comp_name)
                out.append(
                    comp.raw_value(short) - self._cmp_base.get(code, 0)
                )
                continue
            total = 0
            for native, coeff in self._terms[code]:
                total += coeff * native_values[native.name]
            out.append(total)
        return out

    def _read_native_values(self, stop: bool = False) -> Dict[str, int]:
        if not self._natives and not self._multiplexed:
            # component-only set: all values are snapshot deltas.
            return {}
        if self._sampling():
            assert self._session is not None
            if stop:
                self._session.stop()
            return {
                name: self._session.estimate(native)
                for name, native in self._natives.items()
            }
        if self._multiplexed:
            assert self._mpx is not None
            estimates = self._mpx.stop() if stop else self._mpx.read()
            if any(self._recovery_base.values()):
                # counts salvaged before a mid-run multiplex degradation
                estimates = {
                    name: v + self._recovery_base.get(name, 0)
                    for name, v in estimates.items()
                }
            return estimates
        order = self._counter_order()
        indices = [idx for _name, idx in order]
        if stop:
            if self._attached is not None:
                os_ = self.substrate.os
                values = [
                    os_.counter_stop(self._attached, idx) for idx in indices
                ]
                self.substrate._charge(self.substrate.COSTS.stop)
            else:
                try:
                    values = self._sub(lambda: self.substrate.stop_counters(
                        indices, cpu=self._cpu
                    ))
                except CountersLostError as exc:
                    return self._recover_lost(str(exc), stop=True)
        else:
            if self._attached is not None:
                os_ = self.substrate.os
                self.substrate._charge(
                    self.substrate.COSTS.read
                    + self.substrate.COSTS.read_per_counter * len(indices)
                )
                values = [
                    os_.counter_value(self._attached, idx) for idx in indices
                ]
            else:
                try:
                    values = self._sub(lambda: self.substrate.read_counters(
                        indices, cpu=self._cpu
                    ))
                except CountersLostError as exc:
                    return self._recover_lost(str(exc), stop=False)
        totals = {
            name: val + self._recovery_base.get(name, 0)
            for (name, _idx), val in zip(order, values)
        }
        if self.substrate.faults is not None:
            totals = self._corruption_check(totals)
        self._note_good(totals)
        return totals

    def read(self) -> List[int]:
        """PAPI_read: values since start/reset, in event-add order."""
        if not self._running:
            raise NotRunningError("PAPI_read requires a running EventSet")
        return self._compute_values(self._read_native_values())

    def stop(self) -> List[int]:
        """PAPI_stop: stop counting and return the final values.

        Crash-consistent: a fault that survives recovery still leaves
        the EventSet fully stopped (via the emergency path) before the
        error propagates -- never half-stopped.
        """
        if not self._running:
            raise NotRunningError("EventSet is not running")
        try:
            values = self._compute_values(self._read_native_values(stop=True))
        except PapiError as exc:
            if self._running:
                # recovery itself may have already emergency-stopped
                # (and recorded its interval); only a fresh failure
                # needs the teardown here.
                _good_vals, good_cyc = self._good or ({}, self._start_real_cyc)
                self.health.lost_intervals.append(LostInterval(
                    start_cycle=good_cyc,
                    end_cycle=self.substrate.real_cyc(),
                    natives=tuple(self._natives),
                    reason=f"stop failed: {exc}",
                ))
                self._emergency_stop()
            raise
        for code in self._overflows:
            terms = self._terms[code]
            idx = self._assignment.get(terms[0][0].name)
            if idx is not None:
                self._pmu_for(idx).clear_overflow(idx)
        if self._soft_overflow is not None:
            self._soft_overflow.stop()
            self._soft_overflow = None
        if self._attached is not None:
            os_ = self.substrate.os
            for idx in list(self._attached.bound_counters):
                os_.unbind_counter(self._attached, idx)
        if self._mpx is not None:
            # preserved after stop so the convergence harness can relate
            # estimate quality to how many rotations the run completed.
            self.mpx_rotations = self._mpx.rotations
        self._session = None
        self._mpx = None
        self._cmp_base = {}
        self._running = False
        self.papi._release_counters(self)
        return values

    def reset(self) -> None:
        """PAPI_reset: zero the counters without stopping."""
        if not self._running:
            raise NotRunningError("EventSet is not running")
        if self._sampling():
            if self._session is not None:
                self._session.reset()
        elif self._multiplexed:
            assert self._mpx is not None
            self._mpx.reset()
        elif self._natives:
            indices = [idx for _name, idx in self._counter_order()]
            try:
                self._sub(lambda: self.substrate.reset_counters(
                    indices, cpu=self._cpu
                ))
            except CountersLostError as exc:
                # recovery restarts the counters from the salvage point;
                # a reset discards counts anyway, so zero the bases too.
                self._recover_lost(str(exc), stop=False)
        self._recovery_base = {name: 0 for name in self._natives}
        self._note_good({name: 0 for name in self._natives})
        self._snapshot_components()

    def accum(self, values: List[int]) -> List[int]:
        """PAPI_accum: add current counts into *values*, then reset."""
        if len(values) != len(self._codes):
            raise InvalidArgumentError(
                f"expected {len(self._codes)} accumulators, got {len(values)}"
            )
        current = self.read()
        self.reset()
        return [v + c for v, c in zip(values, current)]

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ",".join(self.event_names)
        return f"<EventSet #{self.handle} [{names}] {'RUN' if self._running else 'STOP'}>"

"""Unit tests: PapidClient retry/backoff/deadline behaviour and teardown."""

import pytest

from repro.core.errors import SystemError_
from repro.core.resilience import RetryPolicy
from repro.daemon import (
    PAPID_EAGAIN,
    PAPID_OK,
    DaemonConfig,
    OpResult,
    PapidClient,
    PapidServer,
    SessionSpec,
)


class FlakyServer:
    """Returns EAGAIN for the first *flakes* submissions, then OK."""

    def __init__(self, flakes=0):
        self.flakes = flakes
        self.batches = []

    def submit(self, ops, timeout=None):
        self.batches.append(list(ops))
        status = PAPID_OK
        if self.flakes > 0:
            self.flakes -= 1
            status = PAPID_EAGAIN
        return [
            OpResult(sid=op.sid, kind=op.kind, seq=op.seq, status=status,
                     values={"PAPI_TOT_INS": 1}, cycle=1, advanced=1)
            for op in ops
        ]


def fast_client(server, seed=0, **kw):
    kw.setdefault("sleep", lambda _s: None)
    return PapidClient(server, seed=seed, **kw)


class TestRetry:
    def test_transients_are_retried_to_success(self):
        server = FlakyServer(flakes=3)
        with fast_client(server) as client:
            res = client.read_many(["s-0", "s-1"])
        assert all(r.ok for r in res)
        assert len(server.batches) == 4
        assert len(client.backoff_log) == 3

    def test_only_transient_ops_are_resubmitted(self):
        class HalfFlaky(FlakyServer):
            def submit(self, ops, timeout=None):
                self.batches.append(list(ops))
                out = []
                for i, op in enumerate(ops):
                    status = PAPID_OK
                    if self.flakes > 0 and i == 0:
                        status = PAPID_EAGAIN
                    out.append(OpResult(sid=op.sid, kind=op.kind,
                                        seq=op.seq, status=status))
                self.flakes -= 1
                return out

        server = HalfFlaky(flakes=1)
        with fast_client(server) as client:
            client.read_many(["s-0", "s-1"])
        assert [len(b) for b in server.batches] == [2, 1]
        assert server.batches[1][0].sid == "s-0"

    def test_retry_budget_exhaustion_raises(self):
        server = FlakyServer(flakes=10_000)
        policy = RetryPolicy(max_retries=2, backoff_cycles=10)
        client = fast_client(server, policy=policy)
        with pytest.raises(SystemError_, match="retry budget"):
            client.read_many(["s-0"])
        client.close()

    def test_expired_deadline_raises(self):
        server = FlakyServer(flakes=10_000)
        client = fast_client(server)
        with pytest.raises(SystemError_, match="deadline"):
            client.read_many(["s-0"], deadline=0.0)
        client.close()


class TestBackoffDeterminism:
    def test_same_seed_same_fate_same_log(self):
        logs = []
        for _ in range(2):
            client = fast_client(FlakyServer(flakes=5), seed=7)
            client.read_many(["s-0"])
            logs.append(list(client.backoff_log))
            client.close()
        assert logs[0] == logs[1]
        assert len(logs[0]) == 5

    def test_different_seeds_jitter_apart(self):
        logs = []
        for seed in (1, 2):
            client = fast_client(FlakyServer(flakes=6), seed=seed)
            client.read_many(["s-0"])
            logs.append(list(client.backoff_log))
            client.close()
        assert logs[0] != logs[1]

    def test_jitter_stays_within_policy_bounds(self):
        client = fast_client(FlakyServer(flakes=8), seed=3)
        client.read_many(["s-0"])
        policy = client.policy
        for attempt, wait in enumerate(client.backoff_log):
            exact = policy.backoff_cycles * policy.backoff_multiplier ** attempt
            assert exact * (1 - policy.jitter_frac) - 1 <= wait
            assert wait <= exact * (1 + policy.jitter_frac) + 1
        client.close()


class TestOwnedSessions:
    def _server(self):
        return PapidServer(DaemonConfig(
            transport="inline", nshards=1, heartbeat_interval=60.0,
        ))

    def test_close_stops_and_destroys_owned_sessions(self):
        with self._server() as server:
            client = PapidClient(server, seed=0)
            client.create(SessionSpec(sid="own-0"))
            client.start("own-0")
            client.read("own-0")
            client.close()
            assert "own-0" not in server.registry
            assert server.check_consistency() == []

    def test_close_is_idempotent(self):
        with self._server() as server:
            client = PapidClient(server, seed=0)
            client.create(SessionSpec(sid="own-0"))
            client.close()
            client.close()
            assert "own-0" not in server.registry

    def test_closed_client_refuses_new_work(self):
        with self._server() as server:
            client = PapidClient(server, seed=0)
            client.close()
            with pytest.raises(SystemError_, match="closed"):
                client.create(SessionSpec(sid="own-1"))

    def test_read_result_converts_lost_intervals(self):
        from repro.core.resilience import LostInterval
        from repro.daemon import ReadResult

        res = OpResult(
            sid="s", kind="read", status=PAPID_OK,
            values={"PAPI_TOT_INS": 5}, cycle=9, advanced=5,
            recovered=True,
            lost=[{"start_cycle": 1, "end_cycle": 4,
                   "natives": ["PAPI_TOT_INS"], "reason": "crash",
                   "recovered": True}],
        )
        rr = ReadResult.from_op_result(res)
        assert rr.recovered
        assert isinstance(rr.lost[0], LostInterval)
        assert rr.lost[0].end_cycle == 4

"""Unit tests: the command-line utilities."""

import pytest

from repro.tools.cli import build_parser, main


class TestPlatforms:
    def test_lists_all(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        for name in ("simT3E", "simX86", "simPOWER", "simALPHA",
                     "simIA64", "simSPARC"):
            assert name in out


class TestAvail:
    def test_full_listing(self, capsys):
        assert main(["avail", "simPOWER"]) == 0
        out = capsys.readouterr().out
        assert "PAPI_FP_OPS" in out
        assert "derived" in out
        assert "presets available" in out

    def test_available_only_filters(self, capsys):
        main(["avail", "simT3E"])
        full = capsys.readouterr().out
        main(["avail", "simT3E", "--available-only"])
        filtered = capsys.readouterr().out
        assert len(filtered.splitlines()) < len(full.splitlines())
        assert " no " not in filtered

    def test_unknown_platform_rejected(self):
        with pytest.raises(SystemExit):
            main(["avail", "simVAX"])


class TestNativeAvail:
    def test_native_table(self, capsys):
        assert main(["native-avail", "simX86"]) == 0
        out = capsys.readouterr().out
        assert "FLOPS" in out
        assert "0" in out  # the counter-0 pinning is displayed

    def test_groups_shown_on_power(self, capsys):
        main(["native-avail", "simPOWER"])
        out = capsys.readouterr().out
        assert "counter groups" in out
        assert "group 0" in out


class TestComponentAvail:
    def test_lists_all_components(self, capsys):
        assert main(["component-avail", "simX86"]) == 0
        out = capsys.readouterr().out
        assert "3 components" in out
        assert "component 0: cpu" in out
        assert "component 1: uncore" in out
        assert "component 2: energy" in out
        assert "uncore:::MEM_BW_RD" in out
        assert "energy:::PKG_ENERGY" in out

    def test_shows_mux_policy_and_capacity(self, capsys):
        main(["component-avail", "simSPARC"])
        out = capsys.readouterr().out
        assert "multiplex: no" in out      # the energy plane
        assert "multiplex: yes" in out
        assert "counters: 2" in out        # simSPARC's narrow uncore bank


class TestPapirunCmd:
    def test_runs_kernel(self, capsys):
        assert main(["papirun", "simPOWER", "dot", "--n", "500"]) == 0
        out = capsys.readouterr().out
        assert "papirun" in out and "PAPI_TOT_CYC" in out

    def test_custom_events(self, capsys):
        assert main([
            "papirun", "simIA64", "triad", "--n", "300",
            "--events", "PAPI_FP_OPS,PAPI_LD_INS",
        ]) == 0
        out = capsys.readouterr().out
        assert "PAPI_LD_INS" in out

    def test_component_events(self, capsys):
        assert main([
            "papirun", "simX86", "dot", "--n", "2000",
            "--events", "uncore:::MEM_BW_RD,PAPI_TOT_INS",
        ]) == 0
        out = capsys.readouterr().out
        assert "uncore:::MEM_BW_RD" in out
        assert "PAPI_TOT_INS" in out

    def test_multiplex_flag(self, capsys):
        assert main(["papirun", "simX86", "dot", "--n", "4000",
                     "--multiplex"]) == 0
        out = capsys.readouterr().out
        assert "multiplexed" in out

    def test_unknown_workload_errors(self, capsys):
        assert main(["papirun", "simPOWER", "fibonacci"]) == 2
        assert "unknown workload" in capsys.readouterr().err


class TestCalibrateCmd:
    def test_direct_platform_exact(self, capsys):
        assert main(["calibrate", "simT3E", "--n", "500"]) == 0
        out = capsys.readouterr().out
        assert "FP_OPS error %" in out
        assert "expected FLOPs" in out

    def test_sampling_platform_with_period(self, capsys):
        rc = main(["calibrate", "simALPHA", "--n", "40000",
                   "--sampling-period", "256"])
        assert rc == 0  # within the 25% health threshold
        assert "calibrate" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for cmd in ("platforms", "avail", "native-avail", "papirun",
                    "calibrate"):
            args = parser.parse_args(
                [cmd] + (["simT3E"] if cmd not in ("platforms",) else [])
                + (["dot"] if cmd == "papirun" else [])
            )
            assert args.command == cmd


class TestLintCmd:
    def test_clean_script_exits_zero(self, tmp_path, capsys):
        script = tmp_path / "ok.py"
        script.write_text(
            "from repro.core.library import Papi\n"
            "from repro.platforms import create\n"
            'papi = Papi(create("simT3E"))\n'
            "es = papi.create_eventset()\n"
            'es.add_named("PAPI_TOT_CYC")\n'
            "es.start()\n"
            "es.stop()\n"
        )
        assert main(["lint", str(script)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_error_findings_exit_one(self, tmp_path, capsys):
        script = tmp_path / "bad.py"
        script.write_text(
            "from repro.core.library import Papi\n"
            "from repro.platforms import create\n"
            'papi = Papi(create("simX86"))\n'
            "es = papi.create_eventset()\n"
            "es.read()\n"
            'es.add_named("PAPI_FP_OPS", "PAPI_L1_DCM")\n'
            'PLATFORM_PRESET_TABLES["simX86"]["PAPI_TOT_CYC"] = '
            '[("BOGUS", 1)]\n'
        )
        assert main(["lint", str(script)]) == 1
        out = capsys.readouterr().out
        # the three analyzers each contribute their acceptance finding
        assert "PL001" in out      # read before start
        assert "PL101" in out      # infeasible EventSet
        assert "PL201" in out      # dangling preset term
        assert f"{script}:5:" in out  # file:line positions

    def test_json_format(self, tmp_path, capsys):
        import json

        script = tmp_path / "bad.py"
        script.write_text(
            "from repro.core.library import Papi\n"
            "from repro.platforms import create\n"
            'papi = Papi(create("simT3E"))\n'
            "es = papi.create_eventset()\n"
            "es.read()\n"
        )
        assert main(["lint", str(script), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1
        assert payload["findings"][0]["code"] == "PL001"
        assert payload["findings"][0]["line"] == 5

    def test_platform_flag_supplies_context(self, tmp_path, capsys):
        script = tmp_path / "generic.py"
        script.write_text(
            "def measure(papi):\n"
            "    es = papi.create_eventset()\n"
            '    es.add_named("PAPI_FP_OPS", "PAPI_L1_DCM")\n'
        )
        assert main(["lint", str(script)]) == 0
        capsys.readouterr()
        assert main(["lint", str(script), "--platform", "simX86"]) == 1
        assert "PL101" in capsys.readouterr().out

    def test_syntax_error_exits_one(self, tmp_path, capsys):
        script = tmp_path / "broken.py"
        script.write_text("def broken(:\n")
        assert main(["lint", str(script)]) == 1
        assert "PL900" in capsys.readouterr().out

    def test_examples_lint_clean(self, capsys):
        import glob

        files = sorted(glob.glob("examples/*.py"))
        assert files, "examples/ must exist for this test"
        assert main(["lint"] + files) == 0


class TestCheckEventsCmd:
    def test_feasible_set_exits_zero(self, capsys):
        rc = main(["check-events", "PAPI_TOT_CYC", "PAPI_TOT_INS",
                   "--platform", "simX86"])
        assert rc == 0
        assert "feasible" in capsys.readouterr().out

    def test_mpx_only_set_exits_two(self, capsys):
        rc = main(["check-events", "PAPI_L1_DCM", "PAPI_L1_ICM",
                   "--platform", "simSPARC"])
        assert rc == 2
        out = capsys.readouterr().out
        assert "minimal conflicting subset" in out
        assert "Hall violation" in out
        assert "set_multiplex" in out

    def test_unknown_event_exits_one(self, capsys):
        rc = main(["check-events", "PAPI_NO_SUCH",
                   "--platform", "simX86"])
        assert rc == 1

    def test_matrix_lists_all_platforms(self, capsys):
        rc = main(["check-events", "PAPI_TOT_CYC",
                   "--platform", "simX86", "--matrix"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("simT3E", "simPOWER", "simALPHA", "simIA64",
                     "simSPARC"):
            assert name in out

    def test_json_format(self, capsys):
        import json

        rc = main(["check-events", "PAPI_L1_DCM", "PAPI_L1_ICM",
                   "--platform", "simSPARC", "--format", "json",
                   "--matrix"])
        assert rc == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "mpx"
        assert payload["hall_witness"]["counters"] == [1]
        assert payload["matrix"]["simX86"] == "ok"


class TestCheckPresetsCmd:
    def test_shipped_tables_pass(self, capsys):
        assert main(["check-presets"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_platform_filter(self, capsys):
        assert main(["check-presets", "--platform", "simPOWER"]) == 0
        out = capsys.readouterr().out
        assert "simPOWER" in out
        assert "simSPARC" not in out

    def test_power3_drift_is_visible(self, capsys):
        main(["check-presets", "--platform", "simPOWER"])
        out = capsys.readouterr().out
        assert "PL204" in out
        assert "PAPI_FP_INS" in out

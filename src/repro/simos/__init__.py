"""A tiny simulated operating system.

PAPI's semantics lean on OS services the paper repeatedly references:
per-thread *virtualized* counters (saved/restored across context
switches), virtual vs real timers, signal delivery for counter-overflow
interrupts, and -- for the PAPI-3 memory extensions -- per-process memory
accounting.  This subpackage provides exactly those services on top of a
:class:`repro.hw.machine.Machine`:

- :class:`~repro.simos.thread.Thread`: an execution context plus the set
  of PMU counters virtualized to it;
- :class:`~repro.simos.scheduler.OS`: a round-robin scheduler that
  multiplexes threads onto the machine's single CPU, pausing/resuming
  each thread's counters around its time slices and charging context
  switch costs;
- :class:`~repro.simos.signals.SignalRouter`: per-thread routing of
  overflow interrupt records to handlers;
- :class:`~repro.simos.vmem.MemoryAccounting`: resident-set /
  high-water-mark / swap accounting per thread.
"""

from repro.simos.scheduler import OS, OSError_, SchedulerStats
from repro.simos.signals import SignalRouter
from repro.simos.thread import Thread, ThreadState
from repro.simos.vmem import MemoryAccounting, MemoryInfo

__all__ = [
    "MemoryAccounting",
    "MemoryInfo",
    "OS",
    "OSError_",
    "SchedulerStats",
    "SignalRouter",
    "Thread",
    "ThreadState",
]

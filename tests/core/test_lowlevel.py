"""Unit tests: the C-flavoured low-level facade."""

import pytest

from repro.core import constants as C
from repro.core.errors import InvalidArgumentError, NoSuchEventSetError
from repro.core.lowlevel import LowLevelAPI
from repro.core.profile import ProfileBuffer
from repro.hw.isa import INS_BYTES
from repro.workloads import dot


@pytest.fixture
def api(simpower):
    api = LowLevelAPI(simpower)
    api.library_init()
    return api


class TestLifecycle:
    def test_init_returns_version(self, simpower):
        api = LowLevelAPI(simpower)
        assert api.library_init() == LowLevelAPI.PAPI_VER_CURRENT
        assert api.is_initialized()

    def test_version_check(self, simpower):
        api = LowLevelAPI(simpower)
        with pytest.raises(InvalidArgumentError):
            api.library_init(version=0x01020304)
        api.library_init(version=LowLevelAPI.PAPI_VER_CURRENT)

    def test_calls_before_init_rejected(self, simpower):
        api = LowLevelAPI(simpower)
        with pytest.raises(InvalidArgumentError):
            api.create_eventset()

    def test_shutdown(self, api):
        es = api.create_eventset()
        api.add_named(es, "PAPI_TOT_INS")
        api.shutdown()
        assert not api.is_initialized()


class TestEventSetFacade:
    def test_full_counting_cycle(self, api, simpower):
        wl = dot(600, use_fma=True)
        simpower.machine.load(wl.program)
        es = api.create_eventset()
        api.add_event(es, api.event_name_to_code("PAPI_FP_OPS"))
        api.add_event(es, api.event_name_to_code("PAPI_TOT_CYC"))
        assert api.num_events(es) == 2
        api.start(es)
        simpower.machine.run_to_completion()
        values = api.stop(es)
        assert values[0] == wl.expect.flops
        api.destroy_eventset(es)

    def test_read_accum_reset(self, api, simpower):
        wl = dot(2000, use_fma=True)
        simpower.machine.load(wl.program)
        es = api.create_eventset()
        api.add_named(es, "PAPI_TOT_INS")
        api.start(es)
        simpower.machine.run(max_instructions=800)
        assert api.read(es)[0] >= 800
        api.reset(es)
        assert api.read(es)[0] < 50
        acc = api.accum(es, [0])
        assert isinstance(acc, list)
        api.stop(es)

    def test_state_and_listing(self, api):
        es = api.create_eventset()
        api.add_named(es, "PAPI_TOT_INS", "PAPI_TOT_CYC")
        codes = api.list_events(es)
        assert [api.event_code_to_name(c) for c in codes] == [
            "PAPI_TOT_INS", "PAPI_TOT_CYC",
        ]
        assert api.state(es) & C.PAPI_STOPPED

    def test_remove_and_cleanup(self, api):
        es = api.create_eventset()
        code = api.event_name_to_code("PAPI_TOT_INS")
        api.add_event(es, code)
        api.remove_event(es, code)
        assert api.num_events(es) == 0
        api.add_event(es, code)
        api.cleanup_eventset(es)
        assert api.num_events(es) == 0

    def test_unknown_handle_rejected(self, api):
        with pytest.raises(NoSuchEventSetError):
            api.start(999)

    def test_multiplex_flag(self, api):
        es = api.create_eventset()
        assert not api.get_multiplex(es)
        api.set_multiplex(es)
        assert api.get_multiplex(es)


class TestQueries:
    def test_query_and_info(self, api):
        code = api.event_name_to_code("PAPI_FP_OPS")
        assert api.query_event(code)
        info = api.get_event_info(code)
        assert info.symbol == "PAPI_FP_OPS"
        assert info.available

    def test_enum_presets(self, api):
        infos = api.enum_presets(available_only=True)
        assert all(i.available for i in infos)
        assert len(api.enum_presets()) >= len(infos)

    def test_enum_native(self, api, simpower):
        codes = api.enum_native()
        assert len(codes) == len(simpower.native_events)
        names = {api.event_code_to_name(c) for c in codes}
        assert "PM_FPU_FMA" in names

    def test_num_counters_alias(self, api, simpower):
        assert api.num_counters() == api.num_hwctrs() == simpower.n_counters

    def test_strerror(self):
        assert "PAPI_ECNFLCT" in LowLevelAPI.strerror(C.PAPI_ECNFLCT)
        assert "unknown" in LowLevelAPI.strerror(-999)


class TestTimersAndMemory:
    def test_timer_reads(self, api, simpower):
        wl = dot(300, use_fma=True)
        simpower.machine.load(wl.program)
        t0 = api.get_real_cyc()
        simpower.machine.run_to_completion()
        assert api.get_real_cyc() > t0
        assert api.get_real_usec() > 0
        assert api.get_virt_cyc() <= api.get_real_cyc()
        assert api.get_virt_usec() <= api.get_real_usec()

    def test_dmem_info(self, api, simpower):
        wl = dot(2000, use_fma=True)
        simpower.machine.load(wl.program)
        simpower.machine.run_to_completion()
        info = api.get_dmem_info()
        assert info.thread_rss_pages > 0
        assert info.used_pages <= info.total_pages


class TestOverflowProfilFacade:
    def test_overflow_via_facade(self, api, simpower):
        wl = dot(3000, use_fma=True)
        simpower.machine.load(wl.program)
        es = api.create_eventset()
        api.add_named(es, "PAPI_TOT_INS")
        hits = []
        api.overflow(es, api.event_name_to_code("PAPI_TOT_INS"), 1000,
                     hits.append)
        api.start(es)
        simpower.machine.run_to_completion()
        api.stop(es)
        assert hits

    def test_profil_via_facade(self, api, simpower):
        wl = dot(3000, use_fma=True)
        simpower.machine.load(wl.program)
        es = api.create_eventset()
        api.add_named(es, "PAPI_TOT_INS")
        buf = ProfileBuffer.covering(0, len(wl.program) * INS_BYTES)
        prof = api.profil(buf, es, api.event_name_to_code("PAPI_TOT_INS"),
                          300)
        api.start(es)
        simpower.machine.run_to_completion()
        api.stop(es)
        prof.collect()
        assert buf.hits > 0

"""Unit tests: PAPI_overflow dispatch and PAPI_profil histograms."""

import pytest

from repro.core import constants as C
from repro.core.errors import (
    InvalidArgumentError,
    NoSuchEventError,
    SubstrateFeatureError,
)
from repro.core.library import Papi
from repro.core.profile import (
    Profil,
    ProfileBuffer,
    profile_from_ears,
    profile_from_samples,
)
from repro.hw.isa import INS_BYTES
from repro.workloads import dot, matmul


class TestOverflow:
    def _setup(self, substrate, n=2000):
        papi = Papi(substrate)
        wl = dot(n, use_fma=substrate.HAS_FMA)
        substrate.machine.load(wl.program)
        es = papi.create_eventset()
        es.add_named("PAPI_FP_OPS", "PAPI_TOT_INS")
        return papi, es, wl

    def test_overflow_fires_and_reports(self, simia64):
        papi, es, wl = self._setup(simia64)
        infos = []
        code = papi.event_name_to_code("PAPI_TOT_INS")
        es.overflow(code, 1000, infos.append)
        es.start()
        simia64.machine.run_to_completion()
        total = es.stop()[1]
        assert len(infos) == total // 1000
        assert all(i.symbol == "PAPI_TOT_INS" for i in infos)
        assert all(i.threshold == 1000 for i in infos)

    def test_overflow_address_is_bytes(self, simia64):
        papi, es, wl = self._setup(simia64)
        infos = []
        code = papi.event_name_to_code("PAPI_TOT_INS")
        es.overflow(code, 500, infos.append)
        es.start()
        simia64.machine.run_to_completion()
        es.stop()
        n_ins = len(wl.program)
        for i in infos:
            assert 0 <= i.address <= (n_ins + 1) * INS_BYTES

    def test_overflow_requires_member_event(self, simia64):
        papi, es, _ = self._setup(simia64)
        code = papi.event_name_to_code("PAPI_L1_DCM")
        with pytest.raises(NoSuchEventError):
            es.overflow(code, 100, lambda i: None)

    def test_overflow_rejects_derived_event(self, simia64):
        papi = Papi(simia64)
        es = papi.create_eventset()
        es.add_named("PAPI_FP_OPS")  # derived on simIA64 (2 natives)
        code = papi.event_name_to_code("PAPI_FP_OPS")
        with pytest.raises(InvalidArgumentError):
            es.overflow(code, 100, lambda i: None)

    def test_overflow_threshold_minimum(self, simia64):
        papi, es, _ = self._setup(simia64)
        code = papi.event_name_to_code("PAPI_TOT_INS")
        with pytest.raises(InvalidArgumentError):
            es.overflow(code, C.PAPI_MIN_OVERFLOW - 1, lambda i: None)

    def test_overflow_unavailable_on_sampling_substrate(self, simalpha):
        papi = Papi(simalpha)
        es = papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        code = papi.event_name_to_code("PAPI_TOT_INS")
        with pytest.raises(SubstrateFeatureError):
            es.overflow(code, 1000, lambda i: None)

    def test_overflow_incompatible_with_multiplex(self, simia64):
        papi = Papi(simia64)
        es = papi.create_eventset()
        es.set_multiplex()
        es.add_named("PAPI_TOT_INS")
        code = papi.event_name_to_code("PAPI_TOT_INS")
        with pytest.raises(InvalidArgumentError):
            es.overflow(code, 1000, lambda i: None)

    def test_clear_overflow_stops_callbacks(self, simia64):
        papi, es, _ = self._setup(simia64, n=4000)
        infos = []
        code = papi.event_name_to_code("PAPI_TOT_INS")
        es.overflow(code, 500, infos.append)
        es.start()
        simia64.machine.run(max_instructions=5000)
        n = len(infos)
        assert n > 0
        es.clear_overflow(code)
        simia64.machine.run_to_completion()
        es.stop()
        assert len(infos) == n

    def test_state_reports_overflowing(self, simia64):
        papi, es, _ = self._setup(simia64)
        code = papi.event_name_to_code("PAPI_TOT_INS")
        es.overflow(code, 1000, lambda i: None)
        assert es.state() & C.PAPI_OVERFLOWING

    def test_skid_makes_reported_differ_from_true(self, simx86):
        """simX86 is deeply out of order: reported != true addresses."""
        papi = Papi(simx86)
        wl = dot(3000, use_fma=False)
        simx86.machine.load(wl.program)
        es = papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        infos = []
        es.overflow(papi.event_name_to_code("PAPI_TOT_INS"), 200,
                    infos.append)
        es.start()
        simx86.machine.run_to_completion()
        es.stop()
        assert any(i.address != i.true_address for i in infos)


class TestProfileBuffer:
    def test_scale_one_maps_two_bytes_per_bucket(self):
        buf = ProfileBuffer(16, offset=0, scale=C.PAPI_PROFIL_SCALE_ONE)
        buf.hit(0)
        buf.hit(2)
        buf.hit(3)
        assert buf.buckets[0] == 1
        assert buf.buckets[1] == 2

    def test_scale_for_roundtrip(self):
        scale = ProfileBuffer.scale_for(INS_BYTES)
        buf = ProfileBuffer(8, offset=0, scale=scale)
        for pc in range(8):
            buf.hit(pc * INS_BYTES)
        assert buf.buckets == [1] * 8

    def test_offset_applied(self):
        buf = ProfileBuffer.covering(offset=100, length_bytes=40)
        buf.hit(100)
        buf.hit(96)     # below range
        buf.hit(148)    # beyond range
        assert buf.hits == 1
        assert buf.out_of_range == 2

    def test_hottest_and_concentration(self):
        buf = ProfileBuffer.covering(offset=0, length_bytes=40)
        for _ in range(9):
            buf.hit(8)
        buf.hit(0)
        assert buf.hottest() == buf.bucket_index(8)
        assert buf.concentration(buf.hottest()) == pytest.approx(0.9)

    def test_bucket_address_inverse(self):
        buf = ProfileBuffer.covering(offset=64, length_bytes=64)
        for addr in range(64, 128, INS_BYTES):
            idx = buf.bucket_index(addr)
            assert buf.bucket_address(idx) <= addr

    def test_validation(self):
        with pytest.raises(InvalidArgumentError):
            ProfileBuffer(0, 0, 65536)
        with pytest.raises(InvalidArgumentError):
            ProfileBuffer(4, 0, 0)
        with pytest.raises(InvalidArgumentError):
            ProfileBuffer.scale_for(1)


class TestProfil:
    def test_overflow_profil_finds_hot_loop(self, simia64):
        """PAPI_profil on a dot kernel: hits concentrate in the loop."""
        papi = Papi(simia64)
        n = 4000
        wl = dot(n, use_fma=True)
        simia64.machine.load(wl.program)
        es = papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        buf = ProfileBuffer.covering(
            offset=0, length_bytes=len(wl.program) * INS_BYTES
        )
        prof = Profil(es, buf, papi.event_name_to_code("PAPI_TOT_INS"), 200)
        prof.install()
        es.start()
        simia64.machine.run_to_completion()
        es.stop()
        prof.collect()
        assert buf.hits > 10
        # the loop body spans instructions ~5..12 of the program; with
        # simIA64's tiny skid, >=90% of hits land inside the function
        loop_buckets = set(
            buf.bucket_index(pc * INS_BYTES) for pc in range(len(wl.program))
        )
        assert sum(buf.buckets[b] for b in loop_buckets if b is not None) \
            >= 0.9 * buf.hits

    def test_sampling_profil_precise(self, simalpha):
        """On simALPHA, profil post-processes ProfileMe samples."""
        papi = Papi(simalpha)
        papi.sampling_period = 64
        n = 3000
        wl = dot(n, use_fma=False)
        simalpha.machine.load(wl.program)
        es = papi.create_eventset()
        es.add_named("PAPI_FP_OPS")
        es.start()
        buf = ProfileBuffer.covering(
            offset=0, length_bytes=len(wl.program) * INS_BYTES
        )
        prof = Profil(es, buf, papi.event_name_to_code("PAPI_FP_OPS"), 64)
        prof.install()
        simalpha.machine.run_to_completion()
        prof.collect()
        es.stop()
        assert buf.hits > 5
        # every fp hit must be at one of the two fp instructions
        fp_pcs = [
            pc for pc, ins in enumerate(wl.program.instructions)
            if ins.mnemonic() in ("FMUL", "FADD")
        ]
        allowed = {buf.bucket_index(pc * INS_BYTES) for pc in fp_pcs}
        assert set(buf.nonzero()) <= allowed

    def test_sampling_profil_requires_running(self, simalpha):
        papi = Papi(simalpha)
        es = papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        buf = ProfileBuffer.covering(0, 64)
        prof = Profil(es, buf, papi.event_name_to_code("PAPI_TOT_INS"), 64)
        from repro.core.errors import NotRunningError
        with pytest.raises(NotRunningError):
            prof.install()

    def test_uninstall_is_idempotent(self, simia64):
        papi = Papi(simia64)
        wl = dot(100, use_fma=True)
        simia64.machine.load(wl.program)
        es = papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        buf = ProfileBuffer.covering(0, 1024)
        prof = Profil(es, buf, papi.event_name_to_code("PAPI_TOT_INS"), 100)
        prof.install()
        prof.uninstall()
        prof.uninstall()


class TestHelperProfiles:
    def test_profile_from_samples(self, simalpha):
        wl = matmul(10, use_fma=False)
        session = simalpha.sampling_session(
            [simalpha.query_native("RET_INS")], period=64
        )
        simalpha.machine.load(wl.program)
        session.start()
        simalpha.machine.run_to_completion()
        session.stop()
        buf = ProfileBuffer.covering(0, len(wl.program) * INS_BYTES)
        profile_from_samples(buf, session.samples())
        assert buf.hits == session.n_samples

    def test_profile_from_samples_weighted(self, simalpha):
        wl = matmul(8, use_fma=False)
        session = simalpha.sampling_session(
            [simalpha.query_native("RET_INS")], period=64
        )
        simalpha.machine.load(wl.program)
        session.start()
        simalpha.machine.run_to_completion()
        session.stop()
        buf = ProfileBuffer.covering(0, len(wl.program) * INS_BYTES)
        profile_from_samples(buf, session.samples(), weighted=True)
        assert buf.hits >= session.n_samples  # latencies weigh >= 1

    def test_profile_from_ears(self, simia64):
        from repro.workloads import strided_scan

        line_words = simia64.machine.hierarchy.config.l1d.line_bytes // 8
        wl = strided_scan(4096, line_words)
        ear = simia64.add_ear(2, "l1d_miss")
        simia64.machine.load(wl.program)
        simia64.machine.run_to_completion()
        buf = ProfileBuffer.covering(0, len(wl.program) * INS_BYTES)
        profile_from_ears(buf, ear.records)
        assert buf.hits == ear.n_records > 0
        # all records come from the single load instruction
        assert len(buf.nonzero()) == 1

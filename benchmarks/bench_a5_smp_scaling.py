"""A5: SMP scaling -- per-CPU PMUs, thread migration, exact virtual counts.

Not a paper experiment: the paper's platforms were measured one CPU at a
time, but the ROADMAP north-star shards monitored work across cores
(LIKWID/ScALPEL lineage).  This ablation schedules a fixed pool of
worker threads over 1, 2, 4 and 8 simulated CPUs and reports the
*makespan* (busiest CPU's cycle tally -- the reconstructed parallel wall
clock).  Two hard invariants are asserted on every configuration:

- **conservation**: the per-thread virtual counts of the bound FMA
  counters sum exactly to the per-CPU signal totals;
- **placement independence**: each thread's virtual count is identical
  whatever the CPU count, even though threads migrate freely.

The committed baseline in ``BENCH_a5_smp_scaling.json`` stores the
expected speedups; the simulation is deterministic, so ``--check``
failures mean the scheduler's placement or accounting changed.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from _shared import emit, run_once
from repro.analysis import Table
from repro.hw import Assembler, Signal
from repro.hw.machine import Machine, MachineConfig
from repro.hw.pmu import PMUConfig
from repro.simos.scheduler import OS

BASELINE_PATH = Path(__file__).parent / "BENCH_a5_smp_scaling.json"

#: a speedup drop worse than this factor vs the baseline fails --check.
REGRESSION_TOLERANCE = 0.10

NCPUS_SWEEP = [1, 2, 4, 8]
NTHREADS = 8
QUANTUM_CYCLES = 4000


def worker(iters: int, name: str) -> "object":
    """A loop-heavy worker with FMA traffic and some memory churn."""
    asm = Assembler(name=name)
    base = asm.reserve_data(64)
    asm.label("main")
    asm.li("r1", 0)
    asm.li("r2", iters)
    asm.li("r9", base)
    asm.fli("f1", 1.0001)
    asm.fli("f2", 0.75)
    asm.label("loop")
    asm.fma("f3", "f1", "f2", "f1")
    asm.load("r6", "r9", 3)
    asm.addi("r4", "r4", 1)
    asm.addi("r1", "r1", 1)
    asm.blt("r1", "r2", "loop")
    asm.halt()
    return asm.build()


def _run_pool(ncpus: int):
    machine = Machine(MachineConfig(
        ncpus=ncpus, pmu=PMUConfig(n_counters=NTHREADS)
    ))
    os_ = OS(machine, quantum_cycles=QUANTUM_CYCLES)
    threads = [
        os_.spawn(worker(2_000 + 250 * i, f"w{i}")) for i in range(NTHREADS)
    ]
    for i, t in enumerate(threads):
        machine.cpus[0].pmu.program(i, [Signal.FP_FMA])
        os_.bind_counter(t, i)
        os_.counter_start(t, i)
    t0 = time.perf_counter()
    stats = os_.run()
    sim_seconds = time.perf_counter() - t0
    per_thread = [os_.counter_stop(t, i) for i, t in enumerate(threads)]
    per_cpu_total = sum(
        cpu.counts[Signal.FP_FMA] for cpu in machine.cpus
    )
    assert sum(per_thread) == per_cpu_total, (
        f"conservation violated at ncpus={ncpus}: "
        f"{sum(per_thread)} != {per_cpu_total}"
    )
    return {
        "ncpus": ncpus,
        "makespan_cycles": stats.makespan_cycles,
        "total_cycles": sum(stats.cpu_busy_cycles),
        "migrations": stats.migrations,
        "counter_migrations": stats.counter_migrations,
        "per_thread_fma": per_thread,
        "sim_seconds": sim_seconds,
    }


def run_experiment():
    rows = [_run_pool(ncpus) for ncpus in NCPUS_SWEEP]
    base = rows[0]
    for r in rows:
        r["speedup"] = base["makespan_cycles"] / r["makespan_cycles"]
        # placement independence: virtual counts never depend on ncpus
        assert r["per_thread_fma"] == base["per_thread_fma"], (
            f"per-thread counts changed at ncpus={r['ncpus']}"
        )
    return rows


def render(rows) -> str:
    table = Table(
        ["ncpus", "makespan cycles", "speedup", "migrations",
         "counter moves"],
        title=f"A5: SMP scaling, {NTHREADS} workers, "
              f"{QUANTUM_CYCLES}-cycle quantum (virtual counts exact)",
    )
    for r in rows:
        table.add_row(
            r["ncpus"], r["makespan_cycles"], f"{r['speedup']:.2f}x",
            r["migrations"], r["counter_migrations"],
        )
    return table.render()


def load_baseline():
    if not BASELINE_PATH.exists():
        return None
    return json.loads(BASELINE_PATH.read_text())


def check_against_baseline(rows, baseline) -> list:
    """Regression messages ([] = pass): speedup drops >10% vs baseline."""
    problems = []
    expected = baseline["speedups"]
    for r in rows:
        key = str(r["ncpus"])
        if key not in expected:
            continue
        floor = expected[key] * (1.0 - REGRESSION_TOLERANCE)
        if r["speedup"] < floor:
            problems.append(
                f"ncpus={key}: speedup {r['speedup']:.2f}x below "
                f"{floor:.2f}x (baseline {expected[key]:.2f}x - 10%)"
            )
    return problems


def update_baseline(rows) -> None:
    baseline = load_baseline() or {"speedups": {}, "trajectory": []}
    baseline["speedups"] = {
        str(r["ncpus"]): round(r["speedup"], 2) for r in rows
    }
    baseline["trajectory"].append(baseline["speedups"])
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")


def bench_a5_smp_scaling(benchmark, capsys):
    rows = run_once(benchmark, run_experiment)
    emit(capsys, render(rows))
    by_ncpus = {r["ncpus"]: r for r in rows}
    # the tentpole acceptance: adding CPUs must shorten the makespan
    assert by_ncpus[2]["speedup"] > 1.5
    assert by_ncpus[4]["speedup"] > by_ncpus[2]["speedup"]
    baseline = load_baseline()
    if baseline is not None:
        problems = check_against_baseline(rows, baseline)
        assert not problems, problems


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="fail on >10%% speedup regression vs baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the committed baseline ratios")
    args = parser.parse_args(argv)

    rows = run_experiment()
    print(render(rows))
    if args.update_baseline:
        update_baseline(rows)
        print(f"baseline updated: {BASELINE_PATH}")
        return 0
    if args.check:
        baseline = load_baseline()
        if baseline is None:
            print(f"no baseline at {BASELINE_PATH}; "
                  f"run with --update-baseline first")
            return 1
        problems = check_against_baseline(rows, baseline)
        for p in problems:
            print("FAIL:", p)
        if problems:
            return 1
        print("ok: all speedups within 10% of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

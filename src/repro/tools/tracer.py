"""A Vampir-style event tracer.

Section 3: "To study the spatial and temporal aspects of performance
data, event tracing ... is more appropriate.  Event [tracing] usually
results in a log of the events that characterize the execution" and, on
the Vampir integration: "Collecting PAPI data for various events over
intervals of time and displaying this data alongside the Vampir timeline
view enables correlation of various event frequencies with message
passing behavior."

The tracer records timestamped ENTER/EXIT records (from dynaprof probes)
and periodic COUNTER records (PAPI event deltas), per thread; traces
from multiple threads merge by timestamp, and export to a simple
line-oriented format in the spirit of ALOG/SDDF.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, TextIO

from repro.core.errors import InvalidArgumentError
from repro.core.library import Papi
from repro.tools.dynaprof import Dynaprof, Probe


class TraceKind(enum.Enum):
    ENTER = "ENTER"
    EXIT = "EXIT"
    COUNTER = "COUNTER"
    MARKER = "MARKER"


@dataclass(frozen=True)
class TraceRecord:
    """One trace log entry."""

    t_cycles: int
    tid: int
    kind: TraceKind
    name: str
    values: tuple = ()

    def to_line(self) -> str:
        vals = " ".join(str(v) for v in self.values)
        return f"{self.t_cycles} {self.tid} {self.kind.value} {self.name} {vals}".rstrip()

    @classmethod
    def from_line(cls, line: str) -> "TraceRecord":
        parts = line.split()
        if len(parts) < 4:
            raise InvalidArgumentError(f"bad trace line: {line!r}")
        return cls(
            t_cycles=int(parts[0]),
            tid=int(parts[1]),
            kind=TraceKind(parts[2]),
            name=parts[3],
            values=tuple(int(v) for v in parts[4:]),
        )


class Trace:
    """An ordered log of trace records."""

    def __init__(self, records: Optional[List[TraceRecord]] = None) -> None:
        self.records: List[TraceRecord] = list(records or [])

    def add(self, record: TraceRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def sorted(self) -> "Trace":
        return Trace(sorted(self.records, key=lambda r: (r.t_cycles, r.tid)))

    def by_kind(self, kind: TraceKind) -> List[TraceRecord]:
        return [r for r in self.records if r.kind is kind]

    def functions_seen(self) -> List[str]:
        seen: List[str] = []
        for r in self.records:
            if r.kind is TraceKind.ENTER and r.name not in seen:
                seen.append(r.name)
        return seen

    # -- merge / export (the "merged and converted" pipeline) ----------------

    @staticmethod
    def merge(traces: Sequence["Trace"]) -> "Trace":
        merged: List[TraceRecord] = []
        for t in traces:
            merged.extend(t.records)
        return Trace(sorted(merged, key=lambda r: (r.t_cycles, r.tid)))

    def export(self, fh: TextIO) -> int:
        """Write the native line format; returns record count."""
        for r in self.sorted().records:
            fh.write(r.to_line() + "\n")
        return len(self.records)

    def convert(self, fh: TextIO, fmt: str) -> int:
        """Convert to a third-party trace format (Section 3's pipeline:
        "merged and converted to ALOG, SDDF, Paraver, or Vampir trace
        formats").  Simplified but structurally faithful renderings:

        - ``alog``: fixed-field integer records (event type, process,
          timestamp), with a string table appended;
        - ``sddf``: self-describing named-field records;
        - ``paraver``: colon-separated state records (``1:`` prefix)
          with enter/exit folded into state intervals.
        """
        records = self.sorted().records
        if fmt == "alog":
            names = {}
            n = 0
            for r in records:
                if r.name not in names:
                    names[r.name] = len(names)
                etype = {"ENTER": -101, "EXIT": -102,
                         "COUNTER": -103, "MARKER": -104}[r.kind.value]
                fh.write(
                    f"{etype} {r.tid} 0 {names[r.name]} 0 {r.t_cycles} "
                    + " ".join(str(v) for v in r.values) + "\n"
                )
                n += 1
            for name, idx in names.items():
                fh.write(f"-9 0 0 {idx} 0 0 {name}\n")
            return n
        if fmt == "sddf":
            fh.write('#1: "TraceRecord" {\n'
                     '  int timestamp; int thread; char kind[];\n'
                     '  char name[]; int values[];\n};;\n')
            for r in records:
                vals = ", ".join(str(v) for v in r.values)
                fh.write(
                    f'"TraceRecord" {{ {r.t_cycles}, {r.tid}, '
                    f'"{r.kind.value}", "{r.name}", [{vals}] }};;\n'
                )
            return len(records)
        if fmt == "paraver":
            # fold ENTER/EXIT pairs into Paraver state records:
            # 1:cpu:appl:task:thread:begin:end:state
            open_frames: Dict[int, List[TraceRecord]] = {}
            states = {}
            n = 0
            for r in records:
                if r.kind is TraceKind.ENTER:
                    open_frames.setdefault(r.tid, []).append(r)
                elif r.kind is TraceKind.EXIT:
                    frames = open_frames.get(r.tid)
                    if frames:
                        entry = frames.pop()
                        sid = states.setdefault(entry.name, len(states) + 1)
                        fh.write(
                            f"1:1:1:{r.tid}:1:{entry.t_cycles}:"
                            f"{r.t_cycles}:{sid}\n"
                        )
                        n += 1
            for name, sid in states.items():
                fh.write(f"# state {sid} = {name}\n")
            return n
        raise InvalidArgumentError(
            f"unknown trace format {fmt!r}; known: alog, sddf, paraver"
        )

    @classmethod
    def parse(cls, fh: TextIO) -> "Trace":
        records = [
            TraceRecord.from_line(line)
            for line in fh
            if line.strip() and not line.startswith("#")
        ]
        return cls(records)

    # -- simple timeline analysis ----------------------------------------

    def region_durations(self) -> Dict[str, int]:
        """Total cycles spent inside each function (flat, from the log)."""
        stack: Dict[int, List[TraceRecord]] = {}
        totals: Dict[str, int] = {}
        for r in self.sorted().records:
            if r.kind is TraceKind.ENTER:
                stack.setdefault(r.tid, []).append(r)
            elif r.kind is TraceKind.EXIT:
                frames = stack.get(r.tid)
                if frames:
                    entry = frames.pop()
                    totals[entry.name] = (
                        totals.get(entry.name, 0) + r.t_cycles - entry.t_cycles
                    )
        return totals


class TracerProbe(Probe):
    """Dynaprof probe emitting ENTER/EXIT (+ optional counter) records."""

    def __init__(self, papi: Papi, trace: Trace, tid: int = 0,
                 events: Sequence[str] = ()) -> None:
        self.papi = papi
        self.trace = trace
        self.tid = tid
        self.event_names = list(events)
        self.eventset = None

    def prepare(self, dynaprof: Dynaprof) -> None:
        if self.event_names:
            es = self.papi.create_eventset()
            for name in self.event_names:
                es.add_event(self.papi.event_name_to_code(name))
            self.eventset = es

    def _counter_values(self) -> tuple:
        if self.eventset is None:
            return ()
        if not self.eventset.running:
            self.eventset.start()
        return tuple(self.eventset.read())

    def on_entry(self, function: str, cpu) -> None:
        self.trace.add(
            TraceRecord(
                t_cycles=self.papi.get_real_cyc(),
                tid=self.tid,
                kind=TraceKind.ENTER,
                name=function,
                values=self._counter_values(),
            )
        )

    def on_exit(self, function: str, cpu) -> None:
        self.trace.add(
            TraceRecord(
                t_cycles=self.papi.get_real_cyc(),
                tid=self.tid,
                kind=TraceKind.EXIT,
                name=function,
                values=self._counter_values(),
            )
        )

    def finish(self) -> None:
        if self.eventset is not None and self.eventset.running:
            self.eventset.stop()

"""Command-line utilities: papi_avail, papi_native_avail, papirun, lint.

The real PAPI distribution ships small command-line programs next to the
library; the paper's Section 5 explicitly plans "a papirun utility that
will allow users to execute a program and easily collect basic timing
and hardware counter data".  This module provides them over the
simulated platforms, plus the papi-lint static analyzers::

    python -m repro.tools.cli avail simPOWER
    python -m repro.tools.cli native-avail simX86
    python -m repro.tools.cli component-avail simX86
    python -m repro.tools.cli papirun simX86 dot \\
        --events uncore:::MEM_BW_RD,PAPI_TOT_INS
    python -m repro.tools.cli papirun simIA64 dot --n 2000 --multiplex
    python -m repro.tools.cli papirun simPOWER dot --inject 2718:loss
    python -m repro.tools.cli calibrate simALPHA --kernel dot --n 50000
    python -m repro.tools.cli platforms
    python -m repro.tools.cli lint examples/quickstart.py --platform simX86
    python -m repro.tools.cli check-events PAPI_L1_DCM PAPI_L1_ICM \\
        --platform simSPARC --matrix
    python -m repro.tools.cli check-presets --format json

Every subcommand returns 0 on success and prints a table to stdout, so
the utilities compose with shell pipelines like their C ancestors.
Lint exit codes follow linter convention: 0 clean (warnings/info do not
fail), 1 on error-severity findings; ``check-events`` additionally
returns 2 when the set needs multiplexing to run.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.report import Table
from repro.core.calibrate import calibrate
from repro.core.library import Papi
from repro.core.presets import PRESETS
from repro.platforms import PLATFORM_NAMES, create
from repro.tools.papirun import DEFAULT_EVENTS, papirun
from repro.workloads import CALIBRATION_KERNELS


def cmd_platforms(_args) -> int:
    """List the simulated platforms."""
    table = Table(["platform", "description"])
    for name in PLATFORM_NAMES:
        sub = create(name)
        table.add_row(name, sub.describe())
    print(table.render())
    return 0


def cmd_avail(args) -> int:
    """papi_avail: preset availability on one platform."""
    papi = Papi(create(args.platform))
    table = Table(
        ["preset", "avail", "kind", "description"],
        title=f"papi_avail: {args.platform} "
              f"({papi.num_counters} hardware counters)",
    )
    available = 0
    for preset in PRESETS:
        info = papi.event_info(preset.code)
        if args.available_only and not info.available:
            continue
        available += info.available
        table.add_row(
            info.symbol,
            "yes" if info.available else "no",
            info.kind,
            info.description,
        )
    print(table.render())
    print(f"{available} of {len(PRESETS)} presets available")
    return 0


def cmd_native_avail(args) -> int:
    """papi_native_avail: the platform's native event table."""
    substrate = create(args.platform)
    table = Table(
        ["native event", "counters", "description"],
        title=f"papi_native_avail: {args.platform}",
    )
    for event in substrate.list_native():
        allowed = (
            "any"
            if event.allowed_counters is None
            else ",".join(map(str, event.allowed_counters))
        )
        table.add_row(event.name, allowed, event.description)
    print(table.render())
    if substrate.uses_groups:
        print(f"\ncounter groups ({len(substrate.groups)}):")
        for g in substrate.groups:
            print(f"  group {g.gid}: {', '.join(sorted(g.assignments))}")
    return 0


def cmd_component_avail(args) -> int:
    """papi_component_avail: registered components and their events."""
    papi = Papi(create(args.platform))
    print(
        f"component-avail: {args.platform} "
        f"({papi.num_components()} components)"
    )
    for comp in papi.components:
        info = comp.describe()
        print(
            f"\ncomponent {info['cid']}: {info['name']} -- "
            f"{info['description']}"
        )
        print(
            f"  counters: {info['n_counters']}, multiplex: "
            f"{'yes' if info['supports_multiplex'] else 'no'}"
        )
        if comp.name == "cpu":
            print(
                f"  events: {len(comp.event_names())} native "
                f"(see native-avail)"
            )
            continue
        table = Table(["event", "units", "description"])
        for short in comp.event_names():
            ev = comp.query(short)
            table.add_row(
                f"{comp.name}:::{short}", ev.units, ev.description
            )
        print(table.render())
    return 0


def cmd_papirun(args) -> int:
    """papirun: run a workload and print timing + counters."""
    try:
        factory = CALIBRATION_KERNELS[args.workload]
    except KeyError:
        print(
            f"unknown workload {args.workload!r}; "
            f"known: {', '.join(sorted(CALIBRATION_KERNELS))}",
            file=sys.stderr,
        )
        return 2
    substrate = create(args.platform)
    workload = factory(args.n, use_fma=substrate.HAS_FMA)
    try:
        result = papirun(
            substrate,
            workload,
            events=args.events.split(",") if args.events else None,
            multiplex=args.multiplex,
            inject=args.inject,
        )
    except ValueError as exc:      # a malformed --inject spec
        print(f"papirun: {exc}", file=sys.stderr)
        return 2
    print(result.to_text())
    return 0


def cmd_calibrate(args) -> int:
    """calibrate: measured vs expected FLOPs for a known kernel."""
    result = calibrate(
        create(args.platform),
        kernel=args.kernel,
        n=args.n,
        sampling_period=args.sampling_period,
    )
    table = Table(
        ["quantity", "value"],
        title=f"calibrate: {result.kernel}(n={result.n}) on {result.platform}",
    )
    table.add_row("expected FLOPs", result.expected_flops)
    table.add_row("measured PAPI_FP_OPS", result.measured_fp_ops)
    table.add_row("FP_OPS error %", round(result.fp_ops_error * 100, 3))
    table.add_row("expected fp instructions", result.expected_fp_ins)
    table.add_row("measured PAPI_FP_INS", result.measured_fp_ins)
    table.add_row("cycles", result.cycles)
    table.add_row("real usec", round(result.real_usec, 2))
    print(table.render())
    # nonzero exit when calibration is badly off: scriptable health check
    return 0 if result.fp_ops_error < 0.25 else 1


def cmd_validate(args) -> int:
    """validate: conformance & accuracy matrix over the simulated fleet."""
    from repro.validate import run_all

    try:
        matrix = run_all(
            platforms=args.platform or None,
            planes=args.planes.split(",") if args.planes else None,
            thorough=args.thorough,
            seed=args.seed,
        )
    except ValueError as exc:
        print(f"validate: {exc}", file=sys.stderr)
        return 2
    if args.json_out:
        with open(args.json_out, "w") as fh:
            fh.write(matrix.to_json_str())
            fh.write("\n")
    if args.format == "json":
        print(matrix.to_json_str())
    else:
        print(matrix.to_text())
    return 0 if matrix.passed else 1


def cmd_refute(args) -> int:
    """refute: adversarial model/measurement disagreement hunt."""
    from repro.refute import RefuteConfig, run_refute
    from repro.validate.seeds import derive_seed

    # same derivation the validate matrix uses for its refute plane, so
    # `refute --seed N` and `validate --seed N --planes refute` exercise
    # the identical program corpus.
    seed = derive_seed(args.seed, "plane:refute")
    config = (RefuteConfig.thorough(seed=seed,
                                    platforms=args.platform or None)
              if args.thorough else
              RefuteConfig.quick(seed=seed, platforms=args.platform or None))
    report = run_refute(config)
    if args.json_out:
        with open(args.json_out, "w") as fh:
            fh.write(report.to_json_str())
            fh.write("\n")
    if args.format == "json":
        print(report.to_json_str())
    else:
        print(report.to_markdown())
        tally = report.summary()
        verdict = "PASS" if report.passed else "FAIL"
        print(
            f"\nrefute: {verdict} ({tally['confirmed']} confirmed, "
            f"{tally['refuted']} refuted, "
            f"{tally['undecidable']} undecidable)"
        )
    return 0 if report.passed else 1


def expand_lint_targets(paths) -> list:
    """Files stay files; directories are walked for ``*.py`` files."""
    import os

    targets = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs if not d.startswith(".")
                           and d != "__pycache__"]
                targets.extend(
                    os.path.join(root, name)
                    for name in sorted(names) if name.endswith(".py")
                )
        else:
            targets.append(path)
    return targets


def cmd_lint(args) -> int:
    """papi-lint: static analysis of instrumentation scripts."""
    from repro.lint import (
        Severity,
        lint_file,
        render_json,
        render_sarif,
        render_text,
        worst_severity,
    )

    flow = getattr(args, "flow", False)
    diagnostics = []
    for path in expand_lint_targets(args.files):
        diagnostics.extend(
            lint_file(path, default_platform=args.platform, flow=flow)
        )
    sarif_out = getattr(args, "sarif_out", None)
    if sarif_out:
        with open(sarif_out, "w") as fh:
            fh.write(render_sarif(diagnostics))
            fh.write("\n")
    if args.format == "json":
        print(render_json(diagnostics))
    elif args.format == "sarif":
        print(render_sarif(diagnostics))
    else:
        print(render_text(diagnostics))
    return 1 if worst_severity(diagnostics) == Severity.ERROR else 0


def cmd_check_events(args) -> int:
    """Static feasibility verdict for an event list on one platform."""
    from repro.lint import check_events, portability_matrix

    report = check_events(tuple(args.events), args.platform)

    if args.format == "json":
        import json

        payload = {
            "platform": report.platform,
            "events": list(report.events),
            "status": report.status,
            "resolutions": [
                {
                    "name": r.name,
                    "kind": r.kind,
                    "natives": list(r.natives),
                }
                for r in report.resolutions
            ],
            "feasible_direct": report.feasible_direct,
            "feasible_multiplexed": report.feasible_multiplexed,
            "assignment": report.assignment,
            "group": report.group,
            "conflict_witness": list(report.conflict_witness),
            "hall_witness": (
                None if report.hall_witness is None else {
                    "natives": list(report.hall_witness[0]),
                    "counters": list(report.hall_witness[1]),
                }
            ),
        }
        if args.matrix:
            payload["matrix"] = {
                name: rep.status
                for name, rep in portability_matrix(
                    tuple(args.events)
                ).items()
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        table = Table(
            ["event", "resolves to", "natives"],
            title=f"check-events: {args.platform} [{report.status}]",
        )
        for r in report.resolutions:
            table.add_row(
                r.name, r.kind, ", ".join(r.natives) or "-"
            )
        print(table.render())
        if report.unknown:
            print(f"unknown event name(s): {', '.join(report.unknown)}")
        if report.unavailable:
            print(
                f"not available on {args.platform}: "
                f"{', '.join(report.unavailable)}"
            )
        if report.unknown or report.unavailable:
            # no allocation verdict: it would only cover resolved events
            pass
        elif report.sampling and report.feasible_direct:
            print(
                "sampling platform: counts are derived from samples, "
                "no counter allocation"
            )
        elif report.feasible_direct:
            if report.group is not None:
                print(f"feasible: counter group {report.group}")
            elif report.assignment:
                placed = ", ".join(
                    f"{name}->c{counter}"
                    for name, counter in sorted(report.assignment.items())
                )
                print(f"feasible: {placed}")
            else:
                print("feasible")
        else:
            witness = ", ".join(report.conflict_witness)
            print(f"infeasible: minimal conflicting subset {{{witness}}}")
            if report.hall_witness is not None:
                natives, counters = report.hall_witness
                print(
                    f"Hall violation: natives {list(natives)} share "
                    f"only counters {list(counters)}"
                )
            if report.feasible_multiplexed:
                print("set_multiplex() would make this set runnable")
        if args.matrix:
            matrix = portability_matrix(tuple(args.events))
            mtable = Table(
                ["platform", "status"], title="portability matrix (E8)"
            )
            for name in PLATFORM_NAMES:
                mtable.add_row(name, matrix[name].status)
            print()
            print(mtable.render())

    if report.unknown or report.unavailable:
        return 1
    if report.feasible_direct:
        return 0
    return 2 if report.feasible_multiplexed else 1


def cmd_papid(args) -> int:
    """papid: run a monitored session fleet under the daemon.

    Serves a fleet of --sessions monitoring sessions across --shards
    supervised workers, drives --rounds batched read sweeps through a
    PapidClient, then drains.  With --inject SEED:daemon-chaos the
    saboteur kills/wedges workers mid-run and the exit code asserts the
    robustness contract: every session recovered (with an explicit
    lost-interval ledger) or reported unrecovered, counts monotone,
    journal and registry consistent, drain clean.
    """
    import json as _json
    import signal

    from repro.daemon import (
        DaemonConfig,
        PapidClient,
        PapidServer,
        SessionSpec,
    )

    platforms = args.platform or ["simX86"]
    config = DaemonConfig(
        nshards=args.shards,
        transport=args.transport,
        inject=args.inject,
        journal_path=args.journal,
        batch_timeout=args.batch_timeout,
        heartbeat_interval=args.heartbeat,
        wedge_timeout=args.wedge_timeout,
    )
    server = PapidServer(config)
    signal.signal(signal.SIGTERM, lambda *_: server.drain())
    specs = [
        SessionSpec(
            sid=f"papid-{i:05d}",
            platform=platforms[i % len(platforms)],
            seed=args.seed + i,
            priority=i % 3,
        )
        for i in range(args.sessions)
    ]
    sids = [s.sid for s in specs]
    monotone = True
    prev: dict = {}
    try:
        with PapidClient(server, seed=args.seed) as client:
            created = client.create_fleet(specs)
            failed = [r for r in created if not r.ok]
            client.start_many(sids)
            for _round in range(args.rounds):
                for res in client.read_many(sids):
                    if not res.ok:
                        continue
                    old = prev.get(res.sid, {})
                    if any(res.values[k] < old.get(k, 0)
                           for k in res.values):
                        monotone = False
                    prev[res.sid] = res.values
            client.stop_many(sids)
            problems = server.check_consistency()
            digest = server.fleet_digest()
            health = server.health()
    finally:
        health_final = server.drain()
    summary = health.summary()
    summary["drained"] = health_final.drained
    summary["fleet_digest"] = digest
    summary["monotone"] = monotone
    summary["consistency_problems"] = problems
    summary["create_failures"] = len(failed)
    if args.format == "json":
        print(_json.dumps(summary, indent=2, sort_keys=True))
    else:
        table = Table(
            ["quantity", "value"],
            title=f"papid: {args.sessions} sessions / {args.shards} shards"
                  f" ({args.transport})"
                  + (f", inject {args.inject}" if args.inject else ""),
        )
        for key in (
            "sessions", "running", "stopped", "crashes_detected",
            "wedges_detected", "recoveries", "sessions_recovered",
            "sessions_unrecovered", "shed_reads", "stale_reads",
            "deadline_expiries", "transient_returns", "journal_records",
        ):
            table.add_row(key, summary[key])
        table.add_row("monotone", monotone)
        table.add_row("consistent", not problems)
        table.add_row("drained", health_final.drained)
        table.add_row("fleet digest", digest[:16])
        print(table.render())
    healthy = (
        monotone
        and not problems
        and not failed
        and summary["sessions_unrecovered"] == 0
        and health_final.drained
    )
    return 0 if healthy else 1


def cmd_check_presets(args) -> int:
    """Cross-validate the shipped preset->native tables."""
    from repro.lint import (
        Severity,
        lint_preset_tables,
        render_json,
        render_text,
        worst_severity,
    )

    platforms = args.platform or None
    diagnostics = lint_preset_tables(platforms)
    if args.format == "json":
        print(render_json(diagnostics))
    else:
        print(render_text(diagnostics))
    return 1 if worst_severity(diagnostics) == Severity.ERROR else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.cli",
        description="PAPI-reproduction command line utilities",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("platforms", help="list simulated platforms")

    p = sub.add_parser("avail", help="preset availability (papi_avail)")
    p.add_argument("platform", choices=PLATFORM_NAMES)
    p.add_argument("--available-only", action="store_true")

    p = sub.add_parser(
        "native-avail", help="native event table (papi_native_avail)"
    )
    p.add_argument("platform", choices=PLATFORM_NAMES)

    p = sub.add_parser(
        "component-avail",
        help="registered components and their event namespaces "
             "(papi_component_avail)",
    )
    p.add_argument("platform", choices=PLATFORM_NAMES)

    p = sub.add_parser("papirun", help="run a workload with counters")
    p.add_argument("platform", choices=PLATFORM_NAMES)
    p.add_argument("workload", help="kernel name (dot, axpy, triad, ...)")
    p.add_argument("--n", type=int, default=2000, help="problem size")
    p.add_argument(
        "--events",
        help=f"comma-separated preset list "
             f"(default: {','.join(DEFAULT_EVENTS)})",
    )
    p.add_argument("--multiplex", action="store_true")
    p.add_argument(
        "--inject", metavar="SEED:PROFILE", default=None,
        help="run under deterministic fault injection, e.g. 2718:chaos "
             "(profiles: none, transient, loss, irq, corrupt, jitter, "
             "chaos); the same spec reproduces the same fault schedule",
    )

    p = sub.add_parser("calibrate", help="check counts against ground truth")
    p.add_argument("platform", choices=PLATFORM_NAMES)
    p.add_argument("--kernel", default="dot",
                   choices=sorted(CALIBRATION_KERNELS))
    p.add_argument("--n", type=int, default=2000)
    p.add_argument("--sampling-period", type=int, default=None)

    p = sub.add_parser(
        "validate",
        help="conformance & accuracy matrix (oracle, components, cost, "
             "convergence, skid, refute planes)",
    )
    p.add_argument(
        "--platform", choices=PLATFORM_NAMES, action="append",
        help="restrict to one platform (repeatable; default: all six)",
    )
    p.add_argument(
        "--planes", default=None,
        help="comma-separated subset of oracle,virtual,components,cost,"
             "convergence,skid,refute (default: all)",
    )
    p.add_argument(
        "--thorough", action="store_true",
        help="nightly-scale matrix: longer sweeps, denser sampling",
    )
    p.add_argument("--seed", type=int, default=12345)
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument(
        "--json-out", metavar="PATH", default=None,
        help="also write the JSON report to PATH (the CI artifact)",
    )

    p = sub.add_parser(
        "refute",
        help="hunt for model/measurement disagreements with generated "
             "adversarial micro-programs",
    )
    p.add_argument(
        "--platform", choices=PLATFORM_NAMES, action="append",
        help="restrict to one platform (repeatable; default: all six)",
    )
    p.add_argument(
        "--thorough", action="store_true",
        help="nightly-scale sweep: more/bigger programs, full "
             "tier x ncpus cross per program",
    )
    p.add_argument("--seed", type=int, default=12345)
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument(
        "--json-out", metavar="PATH", default=None,
        help="also write the repro.refute/1 JSON report to PATH",
    )

    p = sub.add_parser(
        "lint", help="papi-lint: static analysis of counter scripts"
    )
    p.add_argument(
        "files", nargs="+",
        help="Python scripts to lint (directories are walked for *.py)",
    )
    p.add_argument(
        "--platform", choices=PLATFORM_NAMES, default=None,
        help="platform for feasibility checks when the script does not "
             "pin one statically",
    )
    p.add_argument(
        "--flow", action="store_true",
        help="also run the CFG-based typestate pass (PL3xx/PL4xx: "
             "path-sensitive lifecycle, leak-on-exception and SMP "
             "misuse rules)",
    )
    p.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text"
    )
    p.add_argument(
        "--sarif-out", metavar="PATH", default=None,
        help="also write a SARIF 2.1.0 log to PATH (the CI artifact), "
             "independent of --format",
    )

    p = sub.add_parser(
        "check-events",
        help="static allocability of an event list on one platform",
    )
    p.add_argument("events", nargs="+", help="preset or native names")
    p.add_argument("--platform", choices=PLATFORM_NAMES, required=True)
    p.add_argument(
        "--matrix", action="store_true",
        help="also print the cross-platform portability matrix",
    )
    p.add_argument("--format", choices=["text", "json"], default="text")

    p = sub.add_parser(
        "papid",
        help="run a monitored session fleet under the supervised daemon",
    )
    p.add_argument("--sessions", type=int, default=64,
                   help="fleet size (default 64)")
    p.add_argument("--shards", type=int, default=4,
                   help="supervised worker count (default 4)")
    p.add_argument("--rounds", type=int, default=5,
                   help="batched read sweeps over the fleet (default 5)")
    p.add_argument(
        "--platform", choices=PLATFORM_NAMES, action="append",
        help="platform(s) for the sessions, round-robin (repeatable; "
             "default simX86)",
    )
    p.add_argument(
        "--transport", choices=["process", "inline"], default="process",
        help="worker transport (inline = in-process, for quick checks)",
    )
    p.add_argument(
        "--inject", metavar="SEED:PROFILE", default=None,
        help="chaos spec, e.g. 42:daemon-chaos (kills/wedges workers "
             "mid-run; the run must still satisfy the recovery contract)",
    )
    p.add_argument("--journal", metavar="PATH", default=None,
                   help="write the append-only session journal to PATH")
    p.add_argument("--seed", type=int, default=12345)
    p.add_argument("--batch-timeout", type=float, default=10.0)
    p.add_argument("--heartbeat", type=float, default=0.25)
    p.add_argument("--wedge-timeout", type=float, default=2.0)
    p.add_argument("--format", choices=["text", "json"], default="text")

    p = sub.add_parser(
        "check-presets",
        help="cross-validate the shipped preset->native tables",
    )
    p.add_argument(
        "--platform", choices=PLATFORM_NAMES, action="append",
        help="restrict to one platform (repeatable; default: all)",
    )
    p.add_argument("--format", choices=["text", "json"], default="text")

    return parser


_COMMANDS = {
    "platforms": cmd_platforms,
    "avail": cmd_avail,
    "native-avail": cmd_native_avail,
    "component-avail": cmd_component_avail,
    "papirun": cmd_papirun,
    "calibrate": cmd_calibrate,
    "validate": cmd_validate,
    "refute": cmd_refute,
    "lint": cmd_lint,
    "check-events": cmd_check_events,
    "check-presets": cmd_check_presets,
    "papid": cmd_papid,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

#!/usr/bin/env python
"""Multiplexing: more events than counters, and why it is opt-in.

simX86 has two physical counters.  We want five events.  Without
multiplexing, PAPI_add_event fails with PAPI_ECNFLCT; with an explicit
PAPI_set_multiplex it works -- but the counts are *estimates*, and on a
short run of a phased program they are badly wrong, which is exactly why
the specification refused to enable multiplexing transparently in the
high-level interface (Section 2).

Run:  python examples/multiplex_accuracy.py
"""

from repro import Papi, create
from repro.analysis import Table, rel_error_pct
from repro.core.errors import ConflictError
from repro.workloads import phased

EVENTS = ["PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_FP_OPS", "PAPI_L1_DCM",
          "PAPI_BR_MSP"]


def run_multiplexed(repeats: int):
    substrate = create("simX86")
    papi = Papi(substrate)
    papi.mpx_quantum_cycles = 6000
    es = papi.create_eventset()
    es.set_multiplex()
    es.add_named(*EVENTS)
    work = phased([("fp", 1500), ("mem", 1500), ("br", 1500)],
                  repeats=repeats, use_fma=False)
    substrate.machine.load(work.program)
    # this study is simX86-specific by design (PAPI_BR_MSP has no
    # simT3E mapping, so the set is not portable -- and need not be).
    es.start()  # papi-lint: disable=PL103
    substrate.machine.run_to_completion()
    values = dict(zip(es.event_names, es.stop()))
    return values, work.expect.flops


def main() -> None:
    print("simX86 has", create("simX86").n_counters, "physical counters;",
          "we want", len(EVENTS), "events\n")

    # -- the conflict without multiplexing --------------------------------
    papi = Papi(create("simX86"))
    es = papi.create_eventset()
    try:
        es.add_named(*EVENTS)
    except ConflictError as exc:
        print("without multiplexing:", exc)
    print()

    # -- with multiplexing: accuracy depends on run length -----------------
    table = Table(
        ["phase repeats", "true FLOPs", "estimated", "error %"],
        title="multiplexed PAPI_FP_OPS estimate vs run length "
              "(phased program, quantum 6000 cycles)",
    )
    for repeats in (1, 2, 4, 8, 16, 32):
        values, true_flops = run_multiplexed(repeats)
        est = values["PAPI_FP_OPS"]
        table.add_row(repeats, true_flops, est,
                      round(rel_error_pct(est, true_flops), 1))
    print(table.render())
    print()
    print("short runs mis-extrapolate the phases a subset never observed;")
    print("long runs average over phases and converge -- the reason tool")
    print("developers who multiplex 'take care of ensuring that runtimes")
    print("are sufficiently long to yield accurate results' (Section 2).")


if __name__ == "__main__":
    main()

"""Crash-consistent append-only session journal for papid.

The journal is the daemon's source of truth for re-homing sessions
after a worker crash: one JSON record per line, append-only, written by
the *server* process strictly after it has received (acked) a worker's
result — write-behind of acks, write-ahead of anything a client could
observe.  A client therefore never sees a count the journal cannot
reproduce, which is what makes post-recovery counts monotone: the
restored base is always a value the client was actually shown (or an
older one).

Record types (``"t"`` field):

- ``create``  — session spec admitted (written on the create ack);
- ``ack``     — last-acked snapshot: values/cycle/advanced/state after
  a successful start/read/stop;
- ``recover`` — the session was re-homed after a crash; carries the
  lost-interval entry appended to its ledger;
- ``destroy`` — session removed;
- ``drain``   — clean-shutdown marker (the journal's epilogue).

Recovery (:func:`recover_sessions`) is a pure left fold, last record
wins.  A torn final line — the crash was mid-append — is ignored, so a
journal is readable after any prefix of itself.
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.daemon.protocol import SessionSpec


@dataclass
class SessionImage:
    """Folded journal state for one session: what a worker needs to adopt."""

    spec: SessionSpec
    state: str = "created"          # created | running | stopped
    values: Dict[str, int] = field(default_factory=dict)
    cycle: int = 0
    advanced: int = 0
    recovered: bool = False
    lost: List[dict] = field(default_factory=list)

    def restore_wire(self) -> Dict[str, Any]:
        """The ``restore`` payload of a supervisor ``adopt`` op."""
        return {
            "state": self.state,
            "values": dict(self.values),
            "cycle": self.cycle,
            "advanced": self.advanced,
            "recovered": self.recovered,
            "lost": [dict(iv) for iv in self.lost],
        }


class Journal:
    """Append-only JSONL journal; ``path=None`` keeps it in memory.

    The in-memory mode exists for the inline transport and property
    tests, where thousands of short-lived daemons would otherwise churn
    the filesystem; it honours the same API and ordering guarantees.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._records: List[dict] = []
        self._fh: Optional[io.TextIOWrapper] = None
        if path is not None:
            self._fh = open(path, "a", encoding="utf-8")

    @property
    def n_records(self) -> int:
        return len(self._records)

    def append(self, rec: dict) -> None:
        """Append one record; the line is complete before returning."""
        self._records.append(rec)
        if self._fh is not None:
            self._fh.write(json.dumps(rec, sort_keys=True) + "\n")
            self._fh.flush()

    def records(self) -> List[dict]:
        return list(self._records)

    def sync(self) -> None:
        """Force the journal onto stable storage (drain epilogue)."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self.sync()
            self._fh.close()
            self._fh = None

    @staticmethod
    def load(path: str) -> List[dict]:
        """Read a journal file, tolerating a torn (mid-append) last line."""
        records: List[dict] = []
        try:
            with open(path, "r", encoding="utf-8") as fh:
                lines = fh.read().split("\n")
        except FileNotFoundError:
            return records
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if i == len(lines) - 1 or not any(
                    s.strip() for s in lines[i + 1:]
                ):
                    break  # torn tail: the crash interrupted this append
                raise
        return records


def recover_sessions(records: List[dict]) -> Dict[str, SessionImage]:
    """Fold journal records into per-session images (last record wins)."""
    images: Dict[str, SessionImage] = {}
    for rec in records:
        t = rec.get("t")
        sid = rec.get("sid")
        if t == "create":
            images[sid] = SessionImage(spec=SessionSpec.from_wire(rec["spec"]))
        elif t == "ack":
            img = images.get(sid)
            if img is None:
                continue  # ack for a session created before a compaction
            img.values = dict(rec["values"])
            img.cycle = rec["cycle"]
            img.advanced = rec["advanced"]
            img.state = rec["state"]
        elif t == "recover":
            img = images.get(sid)
            if img is None:
                continue
            img.recovered = True
            img.lost.append(dict(rec["lost"]))
        elif t == "destroy":
            images.pop(sid, None)
    return images

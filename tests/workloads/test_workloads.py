"""Unit tests: workload kernels match their analytic expectations.

Validated against the raw hardware signal counts on a generic machine --
no PAPI in the loop -- so workload bugs and PAPI bugs cannot mask each
other.
"""

import pytest

from repro.hw import Machine
from repro.hw.events import Signal
from repro.workloads import (
    CALIBRATION_KERNELS,
    axpy,
    demo_app,
    dot,
    matmul,
    mixed_precision_sum,
    phased,
    pointer_chase,
    predictable_branches,
    random_branches,
    strided_scan,
    tlb_walker,
    triad,
    working_set_sweep,
)
from repro.workloads.builder import Flow, trip_count_overhead
from repro.hw.isa import Assembler


def run(workload):
    m = Machine()
    m.load(workload.program)
    m.run_to_completion()
    return m


def fp_arith(m):
    c = m.counts
    return (c[Signal.FP_ADD] + c[Signal.FP_MUL] + c[Signal.FP_DIV]
            + c[Signal.FP_SQRT] + c[Signal.FP_FMA])


def flops(m):
    return fp_arith(m) + m.counts[Signal.FP_FMA]


class TestLinalgExpectations:
    @pytest.mark.parametrize("use_fma", [True, False])
    @pytest.mark.parametrize("kernel", [dot, axpy, triad])
    def test_streaming_kernels(self, kernel, use_fma):
        n = 257
        wl = kernel(n, use_fma=use_fma)
        m = run(wl)
        assert flops(m) == wl.expect.flops == 2 * n
        assert fp_arith(m) == wl.expect.fp_ins
        assert m.counts[Signal.LD_INS] == wl.expect.loads
        if wl.expect.stores is not None:
            assert m.counts[Signal.SR_INS] == wl.expect.stores

    @pytest.mark.parametrize("blocked", [False, True])
    def test_matmul(self, blocked):
        n = 8
        wl = matmul(n, use_fma=True, blocked=blocked, block=4)
        m = run(wl)
        assert flops(m) == wl.expect.flops == 2 * n ** 3
        assert m.counts[Signal.FP_FMA] == n ** 3

    def test_matmul_computes_correct_product(self):
        """The blocked and naive kernels produce identical matrices."""
        n = 8
        results = []
        for blocked in (False, True):
            wl = matmul(n, use_fma=False, blocked=blocked, block=4)
            m = run(wl)
            c_base = None
            # C occupies the last n*n words of initialized data space
            c_base = wl.program.data_size - n * n
            results.append([m.cpu.memory[c_base + i] for i in range(n * n)])
        assert results[0] == pytest.approx(results[1])

    def test_blocked_matmul_misses_fewer_lines(self):
        n = 24
        naive = run(matmul(n, use_fma=True, blocked=False))
        blocked = run(matmul(n, use_fma=True, blocked=True, block=4))
        assert blocked.counts[Signal.L1D_MISS] < naive.counts[Signal.L1D_MISS]

    def test_mixed_precision_sum(self):
        n = 123
        wl = mixed_precision_sum(n)
        m = run(wl)
        assert m.counts[Signal.FP_CVT] == n
        assert m.counts[Signal.FP_ADD] == n
        assert flops(m) == wl.expect.flops == n

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            dot(0)
        with pytest.raises(ValueError):
            matmul(8, blocked=True, block=3)


class TestMemoryExpectations:
    def test_pointer_chase_loads(self):
        wl = pointer_chase(256, steps=500)
        m = run(wl)
        assert m.counts[Signal.LD_INS] == 500

    def test_pointer_chase_visits_whole_cycle(self):
        """Sattolo permutation: the walk returns to node 0 after n steps."""
        n_nodes = 64
        wl = pointer_chase(n_nodes, steps=n_nodes)
        m = run(wl)
        assert m.cpu.iregs[1] == 0  # back at start after one full cycle

    def test_strided_scan_counts(self):
        wl = strided_scan(1000, stride=4, passes=2)
        m = run(wl)
        assert m.counts[Signal.LD_INS] == wl.expect.loads == 500

    def test_working_set_sweep_counts(self):
        wl = working_set_sweep(200, passes=3)
        m = run(wl)
        assert m.counts[Signal.LD_INS] == 600
        assert m.counts[Signal.SR_INS] == 600
        # every word incremented passes times
        base = 0
        assert all(m.cpu.memory[base + i] == 3 for i in range(200))

    def test_tlb_walker_touches_pages(self):
        m = Machine()
        page_words = m.hierarchy.config.tlb.page_bytes // 8
        wl = tlb_walker(10, page_words=page_words)
        m.load(wl.program)
        m.run_to_completion()
        assert len(m.cpu.touched_pages) == 10

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            pointer_chase(1, 1)
        with pytest.raises(ValueError):
            strided_scan(10, 0)
        with pytest.raises(ValueError):
            working_set_sweep(0, 1)
        with pytest.raises(ValueError):
            tlb_walker(0)


class TestBranchExpectations:
    def test_predictable_low_mispredict(self):
        m = run(predictable_branches(2000))
        rate = m.counts[Signal.BR_MSP] / m.counts[Signal.BR_CN]
        assert rate < 0.02

    def test_random_data_recorded(self):
        wl = random_branches(500, seed=3, taken_prob=0.5)
        m = run(wl)
        assert m.cpu.iregs[5] == wl.expect.extra["data_ones"]

    def test_random_branches_deterministic_per_seed(self):
        a = random_branches(300, seed=1).program.data_init
        b = random_branches(300, seed=1).program.data_init
        c = random_branches(300, seed=2).program.data_init
        assert a == b
        assert a != c  # different seed, different bit sequence

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            random_branches(10, taken_prob=1.5)


class TestPhasedPrograms:
    def test_phase_functions_exist(self):
        wl = phased([("fp", 10), ("mem", 10), ("br", 10)], names=("a", "b", "c"))
        assert set(wl.program.functions) == {"a", "b", "c", "main"}

    def test_fp_counts_scale_with_repeats(self):
        one = run(phased([("fp", 100)], repeats=1))
        three = run(phased([("fp", 100)], repeats=3))
        assert fp_arith(three) == 3 * fp_arith(one)

    def test_demo_app_structure(self):
        wl = demo_app(scale=5)
        assert list(wl.program.functions) == [
            "compute", "memwalk", "branchy", "main",
        ]

    def test_names_arity_checked(self):
        with pytest.raises(ValueError):
            phased([("fp", 10)], names=("a", "b"))

    def test_bad_phase_kind_rejected(self):
        with pytest.raises(ValueError):
            phased([("gpu", 10)])


class TestBuilder:
    def test_flow_loop_zero_trip(self):
        asm = Assembler()
        flow = Flow(asm)
        asm.func("main")
        asm.li("r5", 0)
        with flow.loop(0, "r30", "r31"):
            asm.addi("r5", "r5", 1)
        asm.halt()
        asm.endfunc()
        m = Machine()
        m.load(asm.build())
        m.run_to_completion()
        assert m.cpu.iregs[5] == 0

    def test_flow_nested_loops(self):
        asm = Assembler()
        flow = Flow(asm)
        asm.func("main")
        asm.li("r5", 0)
        with flow.loop(7, "r28", "r29"):
            with flow.loop(5, "r30", "r31"):
                asm.addi("r5", "r5", 1)
        asm.halt()
        asm.endfunc()
        m = Machine()
        m.load(asm.build())
        m.run_to_completion()
        assert m.cpu.iregs[5] == 35

    def test_trip_count_overhead_formula(self):
        n = 13
        asm = Assembler()
        flow = Flow(asm)
        asm.func("main")
        with flow.loop(n, "r30", "r31"):
            pass
        asm.halt()
        asm.endfunc()
        m = Machine()
        m.load(asm.build())
        m.run_to_completion()
        assert m.counts[Signal.TOT_INS] == trip_count_overhead(n) + 1  # +HALT

    def test_calibration_registry_complete(self):
        for name, factory in CALIBRATION_KERNELS.items():
            wl = factory(50, use_fma=False)
            assert wl.expect.flops is not None, name

"""simALPHA: a Compaq Tru64/Alpha EV67-like platform over DCPI/DADD.

This is the paper's star witness for hardware-assisted sampling
(Section 4): the Alpha's aggregate counter interface could not do direct
per-process counting, so PAPI's substrate sits on DCPI's ProfileMe
sampler through the DADD package.  Aggregate event counts are
*estimated* from samples (count ~= matching_samples x sampling_period),
attribution is *precise* (ProfileMe records the exact pc of the sampled
instruction -- no skid), and the overhead is the amortized interrupt
cost rather than per-read syscalls: "one to two percent overhead, as
compared to up to 30 percent on other substrates that use direct
counting".

Direct counter operations therefore raise :class:`SubstrateError` here;
the PAPI core drives this platform through :class:`SamplingSession`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.hw.cache import CacheConfig, HierarchyConfig, TLBConfig
from repro.hw.cpu import CPUConfig
from repro.hw.events import Signal
from repro.hw.isa import Op
from repro.hw.machine import MachineConfig
from repro.hw.pmu import PMUConfig, SampleRecord
from repro.platforms.base import (
    AccessCosts,
    CounterGroup,
    NativeEvent,
    Substrate,
    SubstrateError,
)

#: Default ProfileMe sampling period (instructions between samples),
#: chosen so the interrupt overhead lands in the paper's 1-2 % band.
DEFAULT_PERIOD = 4096

_Predicate = Callable[[SampleRecord], bool]

#: How to recognize, from one precise sample, whether the sampled
#: instruction would have incremented a given hardware signal.
_SIGNAL_PREDICATES: Dict[int, _Predicate] = {
    Signal.TOT_INS: lambda s: True,
    Signal.LD_INS: lambda s: s.is_load,
    Signal.SR_INS: lambda s: s.is_store,
    Signal.BR_INS: lambda s: s.is_branch,
    Signal.BR_CN: lambda s: Op.BEQ <= s.opcode <= Op.BGE,
    Signal.BR_MSP: lambda s: s.br_mispred,
    Signal.L1D_MISS: lambda s: s.l1d_miss,
    Signal.L2_MISS: lambda s: s.l2_miss,
    Signal.TLB_DM: lambda s: s.tlb_miss,
    Signal.FP_ADD: lambda s: s.opcode in (Op.FADD, Op.FSUB),
    Signal.FP_MUL: lambda s: s.opcode == Op.FMUL,
    Signal.FP_DIV: lambda s: s.opcode == Op.FDIV,
    Signal.FP_SQRT: lambda s: s.opcode == Op.FSQRT,
    Signal.FP_FMA: lambda s: s.opcode == Op.FMA,
    Signal.FP_CVT: lambda s: s.opcode == Op.FCVT,
    Signal.INT_INS: lambda s: Op.LI <= s.opcode <= Op.MULI,
}


def sample_matches(event: NativeEvent, sample: SampleRecord) -> bool:
    """Does *sample* witness one occurrence of *event*?

    Multi-signal events match if any constituent signal matches (an
    instruction increments at most one signal of any instruction-class
    event, so OR equals SUM here).
    """
    for sig in event.signals:
        pred = _SIGNAL_PREDICATES.get(sig)
        if pred is not None and pred(sample):
            return True
    return False


class SamplingSession:
    """One DADD-style measurement interval on the sampling substrate.

    Counts are estimated as ``matches * period``; ``CYCLES`` is exact
    because DCPI reads the cycle counter directly.  The raw samples stay
    available for precise profiling (E5) and for the PAPI profil/overflow
    emulation on this platform.
    """

    def __init__(self, substrate: "SimALPHA", events: Sequence[NativeEvent],
                 period: int) -> None:
        self.substrate = substrate
        self.events = list(events)
        self.period = period
        self.running = False
        self._start_cycles = 0
        self._stop_cycles: Optional[int] = None
        self._samples: List[SampleRecord] = []
        self._sampler = None

    def start(self) -> None:
        if self.running:
            raise SubstrateError("sampling session already running")
        self.substrate._charge(self.substrate.COSTS.start)
        self._sampler = self.substrate.machine.pmu.enable_profileme(self.period)
        self._start_cycles = self.substrate.machine.user_cycles
        self._stop_cycles = None
        self.running = True

    def stop(self) -> None:
        if not self.running:
            raise SubstrateError("sampling session is not running")
        self.substrate._charge(self.substrate.COSTS.stop)
        self._samples.extend(self._sampler.drain())
        self._stop_cycles = self.substrate.machine.user_cycles
        self.substrate.machine.pmu.disable_profileme()
        self._sampler = None
        self.running = False

    # -- data access ----------------------------------------------------

    def samples(self) -> List[SampleRecord]:
        """All samples captured so far (drains the live sampler)."""
        if self.running and self._sampler is not None:
            self._samples.extend(self._sampler.drain())
        return list(self._samples)

    @property
    def n_samples(self) -> int:
        return len(self.samples())

    def elapsed_cycles(self) -> int:
        end = (
            self._stop_cycles
            if self._stop_cycles is not None
            else self.substrate.machine.user_cycles
        )
        return end - self._start_cycles

    def estimate(self, event: NativeEvent) -> int:
        """Estimated aggregate count of *event* over this session."""
        self.substrate._charge(self.substrate.COSTS.read)
        if Signal.TOT_CYC in event.signals:
            return self.elapsed_cycles()
        matches = sum(1 for s in self.samples() if sample_matches(event, s))
        return matches * self.period

    def estimate_all(self) -> Dict[str, int]:
        return {ev.name: self.estimate(ev) for ev in self.events}

    def reset(self) -> None:
        """Discard accumulated samples and restart the interval clock."""
        if self.running and self._sampler is not None:
            self._sampler.drain()
        self._samples.clear()
        self._start_cycles = self.substrate.machine.user_cycles
        self._stop_cycles = None


class SimALPHA(Substrate):
    NAME = "simALPHA"
    STYLE = "sampling"
    COUNTING = "sampling"
    DESCRIPTION = "Tru64/Alpha EV67-like: DCPI/DADD sampling, precise attribution"
    COSTS = AccessCosts(
        read=260,            # ask the DCPI daemon for its tallies
        read_per_counter=0,
        start=1400,          # arm the sampler
        stop=900,
        program=0,
        reset=200,
        pollute_lines=2,
    )
    #: EV6-family Alphas have no fused multiply-add instruction.
    HAS_FMA = False
    #: DCPI ProfileMe: retire-time samples carry the exact pc.
    PROFILING = "profileme"
    DEFAULT_PERIOD = DEFAULT_PERIOD

    def _machine_config(self, seed: int) -> MachineConfig:
        return MachineConfig(
            name=self.NAME,
            cpu=CPUConfig(predictor="gshare", branch_penalty=7),
            hierarchy=HierarchyConfig(
                l1d=CacheConfig("L1D", size_bytes=8192, line_bytes=64, assoc=2),
                l1i=CacheConfig("L1I", size_bytes=8192, line_bytes=64, assoc=2),
                l2=CacheConfig("L2", size_bytes=262144, line_bytes=64, assoc=1),
                tlb=TLBConfig(entries=128, page_bytes=8192),
                l2_latency=7,
                mem_latency=65,
                tlb_walk_latency=22,
            ),
            # ProfileMe hardware; skid irrelevant since attribution is
            # taken from samples, not interrupt pcs.
            pmu=PMUConfig(
                n_counters=2, skid_max=10, has_profileme=True, interrupt_cost=80
            ),
            mhz=667,
            seed=seed,
        )

    def _native_events(self) -> Sequence[NativeEvent]:
        return [
            NativeEvent("CYCLES", (Signal.TOT_CYC,), "cycle counter (exact)"),
            NativeEvent("RET_INS", (Signal.TOT_INS,), "retired instructions"),
            NativeEvent(
                "RET_FLOPS",
                (
                    Signal.FP_ADD,
                    Signal.FP_MUL,
                    Signal.FP_DIV,
                    Signal.FP_SQRT,
                    Signal.FP_FMA,
                ),
                "retired floating point operations",
            ),
            NativeEvent("RET_LOADS", (Signal.LD_INS,), "retired loads"),
            NativeEvent("RET_STORES", (Signal.SR_INS,), "retired stores"),
            NativeEvent("DC_MISSES", (Signal.L1D_MISS,), "D-cache misses"),
            NativeEvent("BCACHE_MISSES", (Signal.L2_MISS,), "board cache misses"),
            NativeEvent("DTB_MISSES", (Signal.TLB_DM,), "data TB misses"),
            NativeEvent("RET_BRANCHES", (Signal.BR_INS,), "retired branches"),
            NativeEvent(
                "RET_COND_BR_MSP", (Signal.BR_MSP,), "mispredicted cond. branches"
            ),
        ]

    def _groups(self) -> Optional[List[CounterGroup]]:
        return None

    def _uncore_counters(self) -> int:
        # DCPI only surfaces two board-level (Bcache/memory) tallies;
        # they are free-running, so sampling cannot break them.
        return 2

    # -- direct counting is unavailable ------------------------------------

    _NO_DIRECT = (
        "the DCPI aggregate interface has no direct per-process counting; "
        "use a SamplingSession (this is the paper's Tru64 story)"
    )

    def program_counter(self, index, event):  # noqa: D102
        raise SubstrateError(self._NO_DIRECT)

    def clear_counter(self, index):  # noqa: D102
        raise SubstrateError(self._NO_DIRECT)

    def start_counters(self, indices):  # noqa: D102
        raise SubstrateError(self._NO_DIRECT)

    def stop_counters(self, indices):  # noqa: D102
        raise SubstrateError(self._NO_DIRECT)

    def read_counters(self, indices):  # noqa: D102
        raise SubstrateError(self._NO_DIRECT)

    def reset_counters(self, indices):  # noqa: D102
        raise SubstrateError(self._NO_DIRECT)

    # -- sampling API ------------------------------------------------------------

    def sampling_session(
        self, events: Sequence[NativeEvent], period: Optional[int] = None
    ) -> SamplingSession:
        return SamplingSession(self, events, period or DEFAULT_PERIOD)

"""Edge-case tests: multiplexing on the pinned-PIC platform and misc."""

import pytest

from repro.core.errors import ConflictError
from repro.core.library import Papi
from repro.core.multiplex import partition_natives
from repro.workloads import demo_app, dot


class TestSparcMultiplex:
    def test_conflicting_pics_partition_into_subsets(self, simsparc):
        """DC_rd_miss and IC_miss share PIC1: multiplexing splits them."""
        natives = {
            n: simsparc.query_native(n)
            for n in ("DC_rd_miss", "IC_miss", "EC_misses")
        }
        subsets = partition_natives(simsparc, natives)
        assert len(subsets) == 3  # all three are PIC1-only
        for subset in subsets:
            assert list(subset.values()) == [1]

    def test_multiplexed_counting_on_sparc(self, simsparc):
        papi = Papi(simsparc)
        papi.mpx_quantum_cycles = 2000
        es = papi.create_eventset()
        es.set_multiplex()
        es.add_named("PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_FP_OPS",
                     "PAPI_L1_DCM", "PAPI_BR_MSP")
        wl = dot(8000, use_fma=False)
        simsparc.machine.load(wl.program)
        es.start()
        simsparc.machine.run_to_completion()
        values = dict(zip(es.event_names, es.stop()))
        assert values["PAPI_FP_OPS"] == pytest.approx(16000, rel=0.15)

    def test_l1_tcm_unavailable_by_design(self, simsparc):
        """Both L1-miss natives live on PIC1 -> no L1_TCM preset."""
        papi = Papi(simsparc)
        from repro.core.presets import preset_from_symbol

        assert not papi.query_event(preset_from_symbol("PAPI_L1_TCM").code)
        # and the underlying pair really does conflict
        es = papi.create_eventset()
        es.add_named("DC_rd_miss")
        with pytest.raises(ConflictError):
            es.add_named("IC_miss")

    def test_direct_counting_exact_on_sparc(self, simsparc):
        papi = Papi(simsparc)
        es = papi.create_eventset()
        es.add_named("PAPI_FP_OPS", "PAPI_LD_INS")
        n = 700
        wl = dot(n, use_fma=False)
        simsparc.machine.load(wl.program)
        es.start()
        simsparc.machine.run_to_completion()
        values = es.stop()
        assert values == [2 * n, 2 * n]

    def test_profiler_batches_around_pins(self):
        from repro.tools.profiler import Profiler

        prof = Profiler(
            "simSPARC", ["PAPI_TOT_CYC", "PAPI_L1_DCM", "PAPI_BR_MSP"]
        )
        report = prof.profile(lambda: demo_app(scale=15, use_fma=False))
        assert report.hottest("PAPI_L1_DCM") == "memwalk"
        assert report.hottest("PAPI_BR_MSP") == "branchy"

"""The performance monitoring unit of the simulated machine.

The PMU owns a small, platform-dependent number of *physical counter
registers*.  Each register can be programmed with a set of event signals
(see :mod:`repro.hw.events`) whose occurrences it accumulates while
started.  This is the scarce resource that drives the paper's counter
allocation problem (Section 5) and the motivation for software
multiplexing (Section 2).

Beyond plain counting, the PMU models the three hardware profiling
mechanisms the paper compares (Section 4):

- **overflow interrupts** with out-of-order *skid*: when a counter crosses
  its threshold, the interrupt is delivered several instructions late on
  out-of-order platforms, so the reported program counter may fall in a
  different basic block than the causing instruction;
- a **ProfileMe-style sampler** (Alpha DCPI): periodically selects an
  in-flight instruction at random and records its state -- pc, opcode
  class, cache-miss flags, incurred latency -- with *precise* attribution;
- **Event Address Registers** (Itanium EARs): record the exact instruction
  and data address of sampled cache-miss events.

The CPU drives the PMU through a handful of hot-path hooks
(:meth:`PMU.check_overflow`, countdown-based sampling); everything else is
control-plane and can afford normal Python costs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.hw.events import Signal, signal_name


class PMUError(Exception):
    """Raised for invalid PMU programming (bad counter index, conflicts)."""


@dataclass(frozen=True)
class PMUConfig:
    """Per-platform PMU capabilities."""

    n_counters: int = 4
    #: maximum overflow-interrupt skid, in retired instructions.  0 models
    #: an in-order machine or precise interrupt hardware; larger values
    #: model deep out-of-order windows.
    skid_max: int = 0
    #: whether the ProfileMe-style instruction sampler exists.
    has_profileme: bool = False
    #: whether event address registers exist.
    has_ear: bool = False
    #: cycles charged for delivering one overflow/sampling interrupt.
    interrupt_cost: int = 120

    def __post_init__(self) -> None:
        if self.n_counters < 1:
            raise ValueError("a PMU needs at least one counter")
        if self.skid_max < 0:
            raise ValueError("skid cannot be negative")
        if self.interrupt_cost < 0:
            raise ValueError("interrupt cost cannot be negative")


@dataclass
class CounterControl:
    """Control state of one physical counter register."""

    index: int
    signals: Tuple[int, ...] = ()
    running: bool = False
    #: accumulated value while paused plus completed run intervals.
    accum: int = 0
    #: snapshot of the signal totals at the moment the counter last started.
    armed: Tuple[int, ...] = ()

    def describe(self) -> str:
        names = "+".join(signal_name(s) for s in self.signals) or "<idle>"
        state = "run" if self.running else "stop"
        return f"ctr{self.index}[{names}:{state}]={self.accum}"


@dataclass(frozen=True)
class CounterSnapshot:
    """Frozen state of one counter, carried across a CPU migration.

    ``watch`` preserves an armed overflow watch as ``(threshold,
    headroom, handler, overflow_count)`` where *headroom* is how far the
    counter sat below its next trigger at export time -- re-arming as
    ``value + headroom`` on the destination PMU preserves partial
    progress toward the next interrupt exactly, the same invariant a
    stop/start pair preserves on one CPU.
    """

    signals: Tuple[int, ...]
    value: int
    watch: Optional[Tuple[int, int, Callable, int]] = None


@dataclass(frozen=True)
class OverflowRecord:
    """Delivered to overflow handlers.

    ``trigger_pc`` is the instruction that actually crossed the threshold;
    ``reported_pc`` is what the interrupt hardware reports after skid --
    profiling tools only ever see ``reported_pc`` (the paper's attribution
    accuracy problem is exactly the gap between the two).
    """

    counter: int
    trigger_pc: int
    reported_pc: int
    cycle: int
    threshold: int
    overflow_count: int


@dataclass(frozen=True)
class SampleRecord:
    """One ProfileMe sample: precise state of a random in-flight instruction."""

    pc: int
    opcode: int
    cycle: int
    is_load: bool
    is_store: bool
    is_fp: bool
    is_branch: bool
    br_mispred: bool
    l1d_miss: bool
    l2_miss: bool
    tlb_miss: bool
    latency: int


@dataclass(frozen=True)
class EARRecord:
    """One event-address-register capture: exact pc + data address of a miss."""

    pc: int
    data_addr: int
    cycle: int
    event: str  # "l1d_miss" or "tlb_miss"


@dataclass
class _OverflowWatch:
    counter: int
    signals: Tuple[int, ...]
    threshold: int
    next_trigger: int
    handler: Callable[[OverflowRecord], None]
    overflow_count: int = 0


@dataclass
class _PendingDelivery:
    watch: _OverflowWatch
    trigger_pc: int
    remaining_skid: int


class ProfileMeSampler:
    """Periodic random-instruction sampler (DCPI/ProfileMe style).

    The CPU decrements a countdown per retired instruction; when it hits
    zero the *current* instruction is recorded precisely.  The next period
    is jittered uniformly in ``[period/2, 3*period/2]`` to avoid aliasing
    with loop bodies, mirroring DCPI's randomized sampling.
    """

    def __init__(self, period: int, rng: random.Random) -> None:
        if period < 2:
            raise PMUError("sampling period must be >= 2")
        self.period = period
        self._rng = rng
        self.samples: List[SampleRecord] = []
        self.n_samples = 0

    def next_countdown(self) -> int:
        half = self.period // 2
        return self._rng.randint(max(1, self.period - half), self.period + half)

    def record(self, sample: SampleRecord) -> None:
        self.samples.append(sample)
        self.n_samples += 1

    def drain(self) -> List[SampleRecord]:
        out = self.samples
        self.samples = []
        return out


class EventAddressRegister:
    """Samples every Nth miss event with exact instruction/data addresses."""

    def __init__(self, period: int, event: str) -> None:
        if period < 1:
            raise PMUError("EAR period must be >= 1")
        self.period = period
        self.event = event
        self._countdown = period
        self.records: List[EARRecord] = []
        self.n_records = 0

    def tick(self, pc: int, data_addr: int, cycle: int) -> bool:
        """Called once per miss; returns True when a record was captured."""
        self._countdown -= 1
        if self._countdown > 0:
            return False
        self._countdown = self.period
        self.records.append(EARRecord(pc, data_addr, cycle, self.event))
        self.n_records += 1
        return True

    def drain(self) -> List[EARRecord]:
        out = self.records
        self.records = []
        return out


class PMU:
    """Physical counters + overflow + sampling hardware.

    The PMU reads event totals out of the CPU's signal-counts array (shared
    by reference); a counter's value is
    ``accum + sum(counts[s] - armed[s] for its signals)`` while running.
    """

    def __init__(self, config: PMUConfig, counts: List[int], seed: int = 12345) -> None:
        self.config = config
        self._counts = counts
        self.counters: List[CounterControl] = [
            CounterControl(i) for i in range(config.n_counters)
        ]
        self._rng = random.Random(seed)
        # overflow machinery
        self._watches: Dict[int, _OverflowWatch] = {}
        self._pending: List[_PendingDelivery] = []
        self.watch_active = False  # fast-path flag read by the CPU
        # cycle timer (used by software multiplexing / the simulated OS)
        self._timer_period = 0
        self._timer_next = 0
        self._timer_handler: Optional[Callable[[int], None]] = None
        self.timer_active = False
        # sampling hardware
        self.sampler: Optional[ProfileMeSampler] = None
        self.sample_countdown = 0  # decremented inline by the CPU
        self.ears: List[EventAddressRegister] = []
        self.ear_active = False
        #: interrupts delivered (overflow + timer + samples); the machine
        #: charges ``interrupt_cost`` cycles for each.
        self.interrupts_delivered = 0
        #: flush-before-read barrier: invoked before any externally
        #: observable counter read so an execution engine that batches
        #: count updates (see :mod:`repro.hw.blockcache`) can drain them
        #: first.  ``None`` when no engine is attached.
        self._flush_hook: Optional[Callable[[], None]] = None
        #: fault-injection hook consulted when a pending overflow
        #: delivery becomes due: returns ``None`` (deliver), ``"drop"``
        #: (discard the interrupt) or an ``int`` of extra skid
        #: instructions.  ``None`` (the default) is the clean path.
        self.delivery_gate: Optional[Callable[[int], object]] = None
        #: fault-injection hook perturbing each cycle-timer period by a
        #: signed offset (multiplex-timer jitter).  ``None`` = exact.
        self.timer_jitter: Optional[Callable[[int], int]] = None
        #: invoked whenever asynchronous machinery is armed (overflow
        #: watch, cycle timer, sampler, EAR).  The execution engine
        #: installs :meth:`BlockEngine.unbind` here so a compiled region
        #: whose probe handler arms instrumentation side-exits at the
        #: next probe: the region's probe guard only has to test
        #: ``engine._table is None`` instead of four PMU flags per
        #: dispatch.  ``None`` when no engine is attached.
        self.unquiet_hook: Optional[Callable[[], None]] = None

    def set_flush_hook(self, hook: Optional[Callable[[], None]]) -> None:
        """Install the barrier invoked before counter reads/stops."""
        self._flush_hook = hook

    def _notify_unquiet(self) -> None:
        hook = self.unquiet_hook
        if hook is not None:
            hook()

    # ------------------------------------------------------------------
    # counter control
    # ------------------------------------------------------------------

    def _counter(self, index: int) -> CounterControl:
        if not 0 <= index < self.config.n_counters:
            raise PMUError(
                f"counter index {index} out of range "
                f"(PMU has {self.config.n_counters})"
            )
        return self.counters[index]

    def program(self, index: int, signals: Sequence[int]) -> None:
        """Program counter *index* to count the sum of *signals*."""
        ctr = self._counter(index)
        if ctr.running:
            raise PMUError(f"counter {index} is running; stop it first")
        for s in signals:
            signal_name(s)  # validates
        ctr.signals = tuple(signals)
        ctr.accum = 0
        ctr.armed = ()

    def clear(self, index: int) -> None:
        ctr = self._counter(index)
        if ctr.running:
            raise PMUError(f"counter {index} is running; stop it first")
        if index in self._watches:
            self.clear_overflow(index)
        ctr.signals = ()
        ctr.accum = 0
        ctr.armed = ()

    def _live_delta(self, ctr: CounterControl) -> int:
        counts = self._counts
        total = 0
        for s, base in zip(ctr.signals, ctr.armed):
            total += counts[s] - base
        return total

    def start(self, index: int) -> None:
        ctr = self._counter(index)
        if not ctr.signals:
            raise PMUError(f"counter {index} is not programmed")
        if ctr.running:
            raise PMUError(f"counter {index} is already running")
        counts = self._counts
        ctr.armed = tuple(counts[s] for s in ctr.signals)
        ctr.running = True
        # NOTE: the overflow baseline is intentionally *not* refreshed here:
        # a stop/start pair (e.g. a context switch descheduling the owning
        # thread) must preserve partial progress toward the next overflow.

    def stop(self, index: int) -> int:
        """Stop counting; returns the final value."""
        if self._flush_hook is not None:
            self._flush_hook()
        ctr = self._counter(index)
        if ctr.running:
            ctr.accum += self._live_delta(ctr)
            ctr.running = False
            ctr.armed = ()
        return ctr.accum

    def read(self, index: int) -> int:
        """Externally observable read: flush-barrier, then the value."""
        if self._flush_hook is not None:
            self._flush_hook()
        return self._read(index)

    def _read(self, index: int) -> int:
        """Barrier-free read for internal hot paths (overflow checks)."""
        ctr = self._counter(index)
        if ctr.running:
            return ctr.accum + self._live_delta(ctr)
        return ctr.accum

    def write(self, index: int, value: int) -> None:
        """Set the counter value (PAPI reset writes 0)."""
        ctr = self._counter(index)
        ctr.accum = int(value)
        if ctr.running:
            counts = self._counts
            ctr.armed = tuple(counts[s] for s in ctr.signals)
        self._refresh_watch_baseline(index)

    def running(self, index: int) -> bool:
        return self._counter(index).running

    # ------------------------------------------------------------------
    # migration (per-thread counters moving between per-CPU PMUs)
    # ------------------------------------------------------------------

    def export_counter(self, index: int) -> CounterSnapshot:
        """Freeze counter *index* for migration and free the register.

        The counter is stopped (accumulating its live delta), any armed
        overflow watch is packed with its remaining headroom, and any
        interrupt still in its skid window is delivered immediately --
        the migration IPI drains the source CPU's interrupt queue, so an
        already-crossed threshold is never lost.
        """
        if self._flush_hook is not None:
            self._flush_hook()
        ctr = self._counter(index)
        if ctr.running:
            ctr.accum += self._live_delta(ctr)
            ctr.running = False
            ctr.armed = ()
        watch_state = None
        watch = self._watches.get(index)
        if watch is not None:
            watch_state = (
                watch.threshold,
                watch.next_trigger - ctr.accum,
                watch.handler,
                watch.overflow_count,
            )
            for p in [p for p in self._pending if p.watch.counter == index]:
                watch.overflow_count += 1
                self.interrupts_delivered += 1
                p.watch.handler(OverflowRecord(
                    counter=index,
                    trigger_pc=p.trigger_pc,
                    reported_pc=p.trigger_pc,  # drained precisely
                    cycle=self._counts[Signal.TOT_CYC],
                    threshold=watch.threshold,
                    overflow_count=watch.overflow_count,
                ))
                watch_state = (watch.threshold, watch_state[1],
                               watch.handler, watch.overflow_count)
            self.clear_overflow(index)
        snap = CounterSnapshot(signals=ctr.signals, value=ctr.accum,
                               watch=watch_state)
        ctr.signals = ()
        ctr.accum = 0
        ctr.armed = ()
        return snap

    def import_counter(self, index: int, snap: CounterSnapshot) -> None:
        """Install a migrated counter (left stopped; caller restarts)."""
        ctr = self._counter(index)
        if ctr.running:
            raise PMUError(
                f"counter {index} is running; cannot import into it"
            )
        ctr.signals = snap.signals
        ctr.accum = snap.value
        ctr.armed = ()
        if snap.watch is not None:
            threshold, headroom, handler, count = snap.watch
            self._watches[index] = _OverflowWatch(
                counter=index,
                signals=ctr.signals,
                threshold=threshold,
                next_trigger=snap.value + headroom,
                handler=handler,
                overflow_count=count,
            )
            self.watch_active = True
            self._notify_unquiet()

    # ------------------------------------------------------------------
    # overflow interrupts
    # ------------------------------------------------------------------

    def set_overflow(
        self,
        index: int,
        threshold: int,
        handler: Callable[[OverflowRecord], None],
    ) -> None:
        """Raise an interrupt each time counter *index* advances *threshold*."""
        ctr = self._counter(index)
        if threshold < 1:
            raise PMUError("overflow threshold must be >= 1")
        if not ctr.signals:
            raise PMUError(f"counter {index} is not programmed")
        watch = _OverflowWatch(
            counter=index,
            signals=ctr.signals,
            threshold=threshold,
            next_trigger=self.read(index) + threshold,
            handler=handler,
        )
        self._watches[index] = watch
        self.watch_active = True
        self._notify_unquiet()

    def clear_overflow(self, index: int) -> None:
        self._watches.pop(index, None)
        self._pending = [p for p in self._pending if p.watch.counter != index]
        self.watch_active = bool(self._watches or self._pending)

    def _refresh_watch_baseline(self, index: int) -> None:
        watch = self._watches.get(index)
        if watch is not None:
            watch.next_trigger = self.read(index) + watch.threshold

    def check_overflow(self, pc: int, cycle: int) -> int:
        """Hot-path hook called by the CPU after each retired instruction.

        Returns the number of interrupts delivered (the CPU charges their
        cost).  Handles both threshold crossing (which *schedules* a
        delivery after a random skid) and the draining of pending
        deliveries.
        """
        delivered = 0
        if self._watches:
            for watch in self._watches.values():
                value = self._read(watch.counter)
                if value >= watch.next_trigger:
                    # schedule delivery; catch up if multiple thresholds
                    # were crossed at once (possible with multi-signal
                    # events or externally charged cycles).
                    while value >= watch.next_trigger:
                        watch.next_trigger += watch.threshold
                    skid = (
                        self._rng.randint(0, self.config.skid_max)
                        if self.config.skid_max
                        else 0
                    )
                    self._pending.append(_PendingDelivery(watch, pc, skid))
        if self._pending:
            still_pending: List[_PendingDelivery] = []
            for p in self._pending:
                if p.remaining_skid <= 0:
                    if self.delivery_gate is not None:
                        verdict = self.delivery_gate(p.watch.counter)
                        if verdict == "drop":
                            continue
                        if isinstance(verdict, int) and verdict > 0:
                            p.remaining_skid = verdict
                            still_pending.append(p)
                            continue
                    p.watch.overflow_count += 1
                    record = OverflowRecord(
                        counter=p.watch.counter,
                        trigger_pc=p.trigger_pc,
                        reported_pc=pc,
                        cycle=cycle,
                        threshold=p.watch.threshold,
                        overflow_count=p.watch.overflow_count,
                    )
                    self.interrupts_delivered += 1
                    delivered += 1
                    p.watch.handler(record)
                else:
                    p.remaining_skid -= 1
                    still_pending.append(p)
            self._pending = still_pending
            self.watch_active = bool(self._watches or self._pending)
        return delivered

    # ------------------------------------------------------------------
    # deadline queries (block-engine support)
    # ------------------------------------------------------------------

    def has_pending(self) -> bool:
        """True while overflow deliveries are in their skid window.

        Pending deliveries drain one skid step per retired instruction,
        so any bulk executor must fall back to the precise path until the
        queue is empty.
        """
        return bool(self._pending)

    def quiet(self) -> bool:
        """True when no PMU machinery can observe instruction retirement.

        The trace engine only compiles probe instructions into a region
        while the PMU is quiet: overflow watches, the cycle timer,
        ProfileMe sampling and in-flight skid deliveries all force the
        probe back onto the precise interpreter path (deadline/flush
        crossings must be attributed at exact instruction boundaries).
        """
        return not (
            self.watch_active
            or self.timer_active
            or self.sampler is not None
            or self._pending
        )

    def watch_constraints(self) -> List[Tuple[int, Tuple[int, ...]]]:
        """``(headroom, signals)`` per armed overflow watch.

        ``headroom`` is how far the watched counter sits below its next
        trigger; a bulk step may advance the watch's signals by strictly
        less than that without crossing the threshold.  Watches on
        stopped counters are omitted: their value is frozen, so no amount
        of signal traffic can cross them.
        """
        out: List[Tuple[int, Tuple[int, ...]]] = []
        for watch in self._watches.values():
            if self.counters[watch.counter].running:
                out.append(
                    (watch.next_trigger - self._read(watch.counter), watch.signals)
                )
        return out

    def cycles_to_timer(self, cycle: int) -> int:
        """Cycles until the next cycle-timer tick (undefined when off)."""
        return self._timer_next - cycle

    # ------------------------------------------------------------------
    # cycle timer
    # ------------------------------------------------------------------

    def set_cycle_timer(self, period: int, handler: Callable[[int], None]) -> None:
        """Invoke *handler(cycle)* every *period* cycles (multiplex driver)."""
        if period < 1:
            raise PMUError("timer period must be >= 1")
        self._timer_period = period
        self._timer_next = self._counts[Signal.TOT_CYC] + period
        self._timer_handler = handler
        self.timer_active = True
        self._notify_unquiet()

    def clear_cycle_timer(self) -> None:
        self._timer_handler = None
        self.timer_active = False

    def check_timer(self, cycle: int) -> int:
        """Hot-path hook: fire the timer if its period elapsed."""
        if self._timer_handler is None or cycle < self._timer_next:
            return 0
        delivered = 0
        while cycle >= self._timer_next:
            period = self._timer_period
            if self.timer_jitter is not None:
                period = max(1, period + self.timer_jitter(period))
            self._timer_next += period
            delivered += 1
        # deliver once per check even if several periods elapsed inside a
        # long-latency instruction; periods are tracked so time accounting
        # in the handler stays consistent.
        self.interrupts_delivered += delivered
        self._timer_handler(cycle)
        return delivered

    # ------------------------------------------------------------------
    # sampling hardware
    # ------------------------------------------------------------------

    def enable_profileme(self, period: int) -> ProfileMeSampler:
        if not self.config.has_profileme:
            raise PMUError("this PMU has no ProfileMe-style sampler")
        self.sampler = ProfileMeSampler(period, self._rng)
        self.sample_countdown = self.sampler.next_countdown()
        self._notify_unquiet()
        return self.sampler

    def disable_profileme(self) -> None:
        self.sampler = None
        self.sample_countdown = 0

    def deliver_sample(self, sample: SampleRecord) -> int:
        """Record a sample and re-arm the countdown; returns interrupts."""
        assert self.sampler is not None
        self.sampler.record(sample)
        self.sample_countdown = self.sampler.next_countdown()
        self.interrupts_delivered += 1
        return 1

    def add_ear(self, period: int, event: str = "l1d_miss") -> EventAddressRegister:
        if not self.config.has_ear:
            raise PMUError("this PMU has no event address registers")
        if event not in ("l1d_miss", "tlb_miss"):
            raise PMUError(f"unsupported EAR event: {event!r}")
        ear = EventAddressRegister(period, event)
        self.ears.append(ear)
        self.ear_active = True
        self._notify_unquiet()
        return ear

    def remove_ear(self, ear: EventAddressRegister) -> None:
        self.ears.remove(ear)
        self.ear_active = bool(self.ears)

    def ear_miss(self, pc: int, data_addr: int, cycle: int, event: str) -> None:
        """Called by the CPU on each qualifying miss while EARs are active."""
        for ear in self.ears:
            if ear.event == event:
                ear.tick(pc, data_addr, cycle)

    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Return the PMU to power-on state (counters, watches, samplers)."""
        for ctr in self.counters:
            ctr.signals = ()
            ctr.running = False
            ctr.accum = 0
            ctr.armed = ()
        self._watches.clear()
        self._pending.clear()
        self.watch_active = False
        self.clear_cycle_timer()
        self.disable_profileme()
        self.ears.clear()
        self.ear_active = False

    def describe(self) -> str:
        return " ".join(c.describe() for c in self.counters)

"""Simulated platform substrates.

One substrate per platform family the paper discusses, each with its own
native event table, counter geometry/constraints, access-cost model and
interface style:

=========  ==========  =========  ========================================
platform   interface   counters   modelled after
=========  ==========  =========  ========================================
simT3E     register    4, free    Cray T3E (Alpha 21164) register access
simX86     syscall     2, pairs   Linux/x86 kernel-patch (perfctr) P6
simPOWER   library     8, groups  IBM AIX pmtoolkit / POWER3
simALPHA   sampling    --         Tru64 DCPI/DADD ProfileMe sampling
simIA64    syscall     4, light   Itanium2 perfmon with EARs
simSPARC   library     2, pinned  Sun Solaris libcpc / UltraSPARC-II PICs
=========  ==========  =========  ========================================

Use :func:`create` to instantiate one by name.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Type

from repro.platforms.base import (
    AccessCosts,
    CounterGroup,
    NativeEvent,
    Substrate,
    SubstrateError,
)
from repro.platforms.simalpha import SamplingSession, SimALPHA
from repro.platforms.simia64 import SimIA64
from repro.platforms.simpower import SimPOWER
from repro.platforms.simsparc import SimSPARC
from repro.platforms.simt3e import SimT3E
from repro.platforms.simx86 import SimX86

_REGISTRY: Dict[str, Type[Substrate]] = {
    cls.NAME: cls
    for cls in (SimT3E, SimX86, SimPOWER, SimALPHA, SimIA64, SimSPARC)
}

#: Canonical platform order used by tables and the portability matrix.
PLATFORM_NAMES: List[str] = [
    "simT3E", "simX86", "simPOWER", "simALPHA", "simIA64", "simSPARC"
]

#: Platforms that support direct counting (everything but simALPHA).
DIRECT_PLATFORMS: List[str] = [
    name for name in PLATFORM_NAMES if _REGISTRY[name].COUNTING == "direct"
]


def create(name: str, seed: int = 12345, block_engine: bool = True,
           ncpus: int = 1, inject: Optional[str] = None,
           engine: Optional[str] = None) -> Substrate:
    """Instantiate the named platform substrate.

    ``block_engine=False`` forces the machine onto the pure-interpreter
    reference path (see :class:`repro.hw.machine.MachineConfig`); results
    are bit-identical either way, only simulation speed differs.

    ``engine`` selects the execution-engine tier explicitly: ``"off"``
    (interpreter), ``"block"`` (per-block compilation + steady-loop
    replay) or ``"trace"`` (blocks plus superblock traces and compiled
    multi-block regions, the default).  All tiers are bit-exact; when
    given, ``engine`` wins over ``block_engine``.

    ``ncpus`` builds an SMP machine: that many CPUs, each with a private
    PMU and block engine, behind one shared memory hierarchy.  The OS
    scheduler then dispatches threads across all of them, migrating
    bound counters so per-thread counts stay exact (``ncpus=1`` is
    bit-exact with the historical single-CPU substrate).

    ``inject`` attaches a deterministic fault injector from a
    ``seed:profile`` spec (see :mod:`repro.faults`).  When ``None``, the
    ``REPRO_FAULT_PROFILE`` environment variable is consulted instead
    (the CI chaos knob); an unset variable leaves the substrate on the
    byte-identical clean path.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise SubstrateError(
            f"unknown platform {name!r}; known: {PLATFORM_NAMES}"
        ) from None
    substrate = cls(seed=seed, block_engine=block_engine, ncpus=ncpus,
                    engine=engine)
    spec = inject if inject is not None else os.environ.get(
        "REPRO_FAULT_PROFILE"
    )
    if spec:
        from repro.faults import attach_from_spec

        attach_from_spec(substrate, spec)
    return substrate


def all_platforms(seed: int = 12345) -> List[Substrate]:
    """One instance of every platform (fresh machines)."""
    return [create(name, seed=seed) for name in PLATFORM_NAMES]


__all__ = [
    "AccessCosts",
    "CounterGroup",
    "DIRECT_PLATFORMS",
    "NativeEvent",
    "PLATFORM_NAMES",
    "SamplingSession",
    "SimALPHA",
    "SimIA64",
    "SimPOWER",
    "SimSPARC",
    "SimT3E",
    "SimX86",
    "Substrate",
    "SubstrateError",
    "all_platforms",
    "create",
]

"""Statistics helpers for the experiment harnesses."""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple


def mean(xs: Sequence[float]) -> float:
    if not xs:
        raise ValueError("mean of empty sequence")
    return sum(xs) / len(xs)


def geometric_mean(xs: Sequence[float]) -> float:
    if not xs:
        raise ValueError("geometric mean of empty sequence")
    if any(x <= 0 for x in xs):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def stddev(xs: Sequence[float]) -> float:
    if len(xs) < 2:
        return 0.0
    m = mean(xs)
    return math.sqrt(sum((x - m) ** 2 for x in xs) / (len(xs) - 1))


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation; the tool-integration experiment's measure of
    "important correlations, such as ... the correlation of time with
    operation counts and cache or TLB misses" (Section 3)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two sequences of equal length >= 2")
    mx, my = mean(xs), mean(ys)
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    sxx = sum((x - mx) ** 2 for x in xs)
    syy = sum((y - my) ** 2 for y in ys)
    if sxx == 0 or syy == 0:
        return 0.0
    return sxy / math.sqrt(sxx * syy)


def overhead_pct(instrumented: float, baseline: float) -> float:
    """Relative overhead in percent (E1/E7's headline metric)."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return (instrumented - baseline) / baseline * 100.0


def rel_error_pct(measured: float, expected: float) -> float:
    if expected == 0:
        return math.inf if measured else 0.0
    return abs(measured - expected) / abs(expected) * 100.0


def rank_by(values: Dict[str, float]) -> List[Tuple[str, float]]:
    """Keys sorted by descending value (profile hot-spot ranking)."""
    return sorted(values.items(), key=lambda kv: kv[1], reverse=True)


def top_share(values: Dict[str, float]) -> Tuple[str, float]:
    """(hottest key, its fraction of the total)."""
    total = sum(values.values())
    if total <= 0:
        raise ValueError("no mass to rank")
    name, v = rank_by(values)[0]
    return name, v / total

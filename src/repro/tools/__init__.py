"""Tools built on PAPI, as described in Sections 2-3 of the paper.

- :mod:`~repro.tools.dynaprof`: dynamic probe insertion (PAPI probe,
  wallclock probe, user probes; load or attach);
- :mod:`~repro.tools.perfometer`: real-time metric monitoring with trace
  files and an ASCII front-end (Figure 2);
- :mod:`~repro.tools.papirun`: run-and-report convenience utility
  (the Section-5 plan);
- :mod:`~repro.tools.profiler`: TAU/VProf-style multi-metric
  inclusive/exclusive function profiles with derived ratios;
- :mod:`~repro.tools.tracer`: Vampir-style timestamped event tracing
  with merge and export;
- :mod:`~repro.tools.vprof`: VProf-style source annotation (profiles
  correlated with the program listing);
- :mod:`~repro.tools.cli`: papi_avail / papi_native_avail / papirun /
  calibrate command-line utilities.
"""

from repro.tools.dynaprof import (
    Dynaprof,
    FunctionProfile,
    PapiProbe,
    Probe,
    UserProbe,
    WallclockProbe,
)
from repro.tools.papirun import DEFAULT_EVENTS, PapirunResult, papirun
from repro.tools.perfometer import (
    Perfometer,
    PerfometerProbe,
    PerfometerTrace,
    TracePoint,
)
from repro.tools.profiler import ProfileReport, Profiler
from repro.tools.sampling_probe import SamplingPapiProbe
from repro.tools.tracer import Trace, TraceKind, TraceRecord, TracerProbe
from repro.tools.vprof import SourceAnnotation, annotate

__all__ = [
    "DEFAULT_EVENTS",
    "Dynaprof",
    "FunctionProfile",
    "PapiProbe",
    "SourceAnnotation",
    "annotate",
    "PapirunResult",
    "Perfometer",
    "PerfometerProbe",
    "PerfometerTrace",
    "Probe",
    "ProfileReport",
    "Profiler",
    "SamplingPapiProbe",
    "Trace",
    "TraceKind",
    "TracePoint",
    "TraceRecord",
    "TracerProbe",
    "UserProbe",
    "WallclockProbe",
    "papirun",
]

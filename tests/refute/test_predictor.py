"""Predictor: documented-model snapshots and closed-form expectations."""

from __future__ import annotations

import pytest

from repro.hw.events import Signal
from repro.platforms import PLATFORM_NAMES, create
from repro.refute.generator import generate
from repro.refute.predictor import SubstrateModel, predict
from repro.validate.oracle import ORACLE_SIGNALS, expected_signal_counts
from repro.validate.seeds import derive_seed

SEED = derive_seed(12345, "refute:generate")


@pytest.fixture(scope="module")
def corpus():
    return generate(SEED, count=4, budget=3000)


@pytest.mark.parametrize("platform", PLATFORM_NAMES)
def test_model_matches_published_tables(platform):
    substrate = create(platform)
    model = SubstrateModel.from_substrate(substrate)
    assert model.platform == platform
    assert model.counting == substrate.COUNTING
    assert model.costs == substrate.COSTS
    assert model.has_fma == substrate.HAS_FMA
    assert model.native_signals == {
        name: tuple(ev.signals)
        for name, ev in substrate.native_events.items()
    }
    line = substrate.machine.hierarchy.config.l1i
    assert model.l1i_line_bytes == line.line_bytes
    assert model.l1i_line_bits == line.line_bits
    # `of` is the same snapshot without handing the caller a substrate
    assert SubstrateModel.of(platform) == model


def test_prediction_reuses_reference_interpreter(corpus):
    model = SubstrateModel.of("simT3E")
    for gp in corpus:
        pred = predict(gp, model)
        plain = expected_signal_counts(gp.program)
        for sig in ORACLE_SIGNALS:
            assert pred.signal_counts[sig] == plain[sig]
        assert pred.l1i_accesses == pred.signal_counts[Signal.L1I_ACC]
        assert pred.l1i_accesses > 0


def test_prediction_static_cross_check_clean(corpus):
    model = SubstrateModel.of("simT3E")
    for gp in corpus:
        pred = predict(gp, model)
        assert pred.static_violations == ()


def test_fetch_prediction_tracks_line_width(corpus):
    """Halving the documented line width must change the L1I claim --
    this is the lever the x86-fetch-line mutant pulls."""
    gp = max(corpus, key=lambda g: g.dynamic_bound)
    model = SubstrateModel.of("simX86")
    narrow = model.with_line_bytes(model.l1i_line_bytes // 2)
    wide = predict(gp, model).l1i_accesses
    assert predict(gp, narrow).l1i_accesses > wide


def test_checkable_presets_are_architectural(corpus):
    for platform in PLATFORM_NAMES:
        model = SubstrateModel.of(platform)
        pred = predict(corpus[0], model)
        for symbol, exp in pred.checkable_presets().items():
            assert exp.expected is not None
            assert all(sig in ORACLE_SIGNALS for sig in exp.signals)


def test_mutation_helpers_do_not_touch_base():
    model = SubstrateModel.of("simPOWER")
    mutated = model.with_native_signals("PM_FPU_INS", (Signal.FP_ADD,))
    assert model.native_signals["PM_FPU_INS"] != (Signal.FP_ADD,)
    assert mutated.native_signals["PM_FPU_INS"] == (Signal.FP_ADD,)
    bumped = model.with_costs(read=model.costs.read + 7)
    assert bumped.costs.read == model.costs.read + 7
    with pytest.raises(KeyError):
        model.with_native_signals("NO_SUCH_EVENT", ())

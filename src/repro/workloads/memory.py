"""Memory-behaviour kernels: pointer chasing, strided scans, sweeps.

These exercise the cache and TLB event signals -- the raw material of
the PAPI_L1_DCM / PAPI_TLB_DM presets -- with controllable locality, and
they are the memory-bound phases of the mixed/phased applications.
"""

from __future__ import annotations

import random
from typing import List

from repro.hw.isa import Assembler
from repro.workloads.builder import Expectations, Flow, Workload


def _chase_permutation(n_nodes: int, seed: int) -> List[int]:
    """A single-cycle permutation (Sattolo's algorithm) for pointer chasing."""
    rng = random.Random(seed)
    order = list(range(n_nodes))
    rng.shuffle(order)
    nxt = [0] * n_nodes
    for i in range(n_nodes):
        nxt[order[i]] = order[(i + 1) % n_nodes]
    return nxt


def pointer_chase(n_nodes: int, steps: int, seed: int = 7) -> Workload:
    """Walk a shuffled linked list: one dependent load per step.

    With n_nodes spanning more than the L1 (or TLB reach), nearly every
    step misses -- the classic latency-bound workload.
    """
    if n_nodes < 2 or steps < 1:
        raise ValueError("need at least 2 nodes and 1 step")
    asm = Assembler(name=f"chase{n_nodes}")
    flow = Flow(asm)
    base = asm.init_array(
        [base_next + 0 for base_next in _chase_permutation(n_nodes, seed)]
    )
    asm.func("main")
    asm.li("r1", 0)          # current node index
    with flow.loop(steps, "r30", "r31"):
        asm.addi("r2", "r1", base)
        asm.load("r1", "r2", 0)   # r1 = next[r1]
    asm.halt()
    asm.endfunc()
    return Workload(
        name=f"pointer_chase(nodes={n_nodes},steps={steps})",
        program=asm.build(),
        expect=Expectations(
            flops=0,
            fp_ins=0,
            loads=steps,
            stores=0,
            hot_function="main",
            notes="dependent loads; miss rate ~1 when nodes >> L1 lines",
        ),
    )


def strided_scan(n: int, stride: int, passes: int = 1) -> Workload:
    """Read an n-word array with the given stride, *passes* times.

    Stride 1 enjoys spatial locality (1 miss per line); strides at or
    beyond the line size miss every access once the array exceeds L1.
    """
    if n < 1 or stride < 1 or passes < 1:
        raise ValueError("n, stride and passes must be positive")
    asm = Assembler(name=f"scan{n}s{stride}")
    flow = Flow(asm)
    base = asm.init_array([1] * n)
    per_pass = (n + stride - 1) // stride
    asm.func("main")
    asm.li("r5", 0)  # checksum
    with flow.loop(passes, "r28", "r29"):
        asm.li("r1", base)
        with flow.loop(per_pass, "r30", "r31"):
            asm.load("r2", "r1", 0)
            asm.add("r5", "r5", "r2")
            asm.addi("r1", "r1", stride)
    asm.halt()
    asm.endfunc()
    return Workload(
        name=f"strided_scan(n={n},stride={stride},passes={passes})",
        program=asm.build(),
        expect=Expectations(
            flops=0,
            fp_ins=0,
            loads=per_pass * passes,
            stores=0,
            hot_function="main",
            extra={"per_pass": per_pass},
        ),
    )


def working_set_sweep(words: int, passes: int) -> Workload:
    """Repeatedly stream a working set of *words* words (read-modify-write).

    Sweeping *words* across cache sizes traces out the classic miss-rate
    staircase; used by the cache-study example.
    """
    if words < 1 or passes < 1:
        raise ValueError("words and passes must be positive")
    asm = Assembler(name=f"sweep{words}")
    flow = Flow(asm)
    base = asm.init_array([0] * words)
    asm.func("main")
    with flow.loop(passes, "r28", "r29"):
        asm.li("r1", base)
        with flow.loop(words, "r30", "r31"):
            asm.load("r2", "r1", 0)
            asm.addi("r2", "r2", 1)
            asm.store("r2", "r1", 0)
            asm.addi("r1", "r1", 1)
    asm.halt()
    asm.endfunc()
    return Workload(
        name=f"working_set_sweep(words={words},passes={passes})",
        program=asm.build(),
        expect=Expectations(
            flops=0,
            fp_ins=0,
            loads=words * passes,
            stores=words * passes,
            hot_function="main",
        ),
    )


def tlb_walker(pages: int, touches_per_page: int = 1,
               page_words: int = 512, passes: int = 1) -> Workload:
    """Touch one word on each of *pages* distinct pages, round robin.

    With *pages* beyond the TLB entry count, every touch is a TLB miss;
    also the footprint generator for the memory-utilization extension
    tests (each page touched enters the thread's resident set).
    """
    if pages < 1 or touches_per_page < 1 or passes < 1:
        raise ValueError("pages, touches and passes must be positive")
    asm = Assembler(name=f"tlb{pages}")
    flow = Flow(asm)
    base = asm.reserve_data(pages * page_words)
    asm.func("main")
    with flow.loop(passes, "r26", "r27"):
        asm.li("r1", base)
        with flow.loop(pages, "r28", "r29"):
            with flow.loop(touches_per_page, "r30", "r31"):
                asm.load("r2", "r1", 0)
            asm.addi("r1", "r1", page_words)
    asm.halt()
    asm.endfunc()
    return Workload(
        name=f"tlb_walker(pages={pages})",
        program=asm.build(),
        expect=Expectations(
            flops=0,
            fp_ins=0,
            loads=pages * touches_per_page * passes,
            stores=0,
            hot_function="main",
            extra={"pages": pages},
        ),
    )

"""PAPI constants: return codes, states, domains, event-code encoding.

Mirrors the constants of the C PAPI specification the paper describes,
so code written against this reproduction reads like code written
against real PAPI.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# return codes (negative = error, matching the C library's convention)
# ---------------------------------------------------------------------------

PAPI_OK = 0             #: no error
PAPI_EINVAL = -1        #: invalid argument
PAPI_ENOMEM = -2        #: insufficient memory
PAPI_ESYS = -3          #: a system/C library call failed
PAPI_ESBSTR = -4        #: substrate returned an error / unsupported feature
PAPI_ECLOST = -5        #: access to the counters was lost or interrupted
PAPI_EBUG = -6          #: internal error
PAPI_ENOEVNT = -7       #: event does not exist / cannot be counted
PAPI_ECNFLCT = -8       #: event exists but cannot be counted due to conflicts
PAPI_ENOTRUN = -9       #: eventset is currently not running
PAPI_EISRUN = -10       #: eventset is currently running
PAPI_ENOEVST = -11      #: no such eventset
PAPI_ENOTPRESET = -12   #: event is not a valid preset
PAPI_ENOCNTR = -13      #: hardware does not support enough counters
PAPI_EMISC = -14        #: unknown error
PAPI_ENOCMP = -15       #: no such component (PAPI-C component layer)

#: error code -> short name (mirrors PAPI_strerror)
ERROR_NAMES = {
    PAPI_OK: "PAPI_OK",
    PAPI_EINVAL: "PAPI_EINVAL",
    PAPI_ENOMEM: "PAPI_ENOMEM",
    PAPI_ESYS: "PAPI_ESYS",
    PAPI_ESBSTR: "PAPI_ESBSTR",
    PAPI_ECLOST: "PAPI_ECLOST",
    PAPI_EBUG: "PAPI_EBUG",
    PAPI_ENOEVNT: "PAPI_ENOEVNT",
    PAPI_ECNFLCT: "PAPI_ECNFLCT",
    PAPI_ENOTRUN: "PAPI_ENOTRUN",
    PAPI_EISRUN: "PAPI_EISRUN",
    PAPI_ENOEVST: "PAPI_ENOEVST",
    PAPI_ENOTPRESET: "PAPI_ENOTPRESET",
    PAPI_ENOCNTR: "PAPI_ENOCNTR",
    PAPI_EMISC: "PAPI_EMISC",
    PAPI_ENOCMP: "PAPI_ENOCMP",
}

ERROR_MESSAGES = {
    PAPI_OK: "no error",
    PAPI_EINVAL: "invalid argument",
    PAPI_ENOMEM: "insufficient memory",
    PAPI_ESYS: "a system call failed",
    PAPI_ESBSTR: "substrate does not support this feature",
    PAPI_ECLOST: "access to the counters was lost",
    PAPI_EBUG: "internal error in the PAPI library",
    PAPI_ENOEVNT: "hardware event does not exist on this platform",
    PAPI_ECNFLCT: "event conflicts with others already in the eventset",
    PAPI_ENOTRUN: "eventset is not running",
    PAPI_EISRUN: "eventset is already running",
    PAPI_ENOEVST: "no such eventset",
    PAPI_ENOTPRESET: "not a valid preset event",
    PAPI_ENOCNTR: "not enough hardware counters",
    PAPI_EMISC: "unspecified error",
    PAPI_ENOCMP: "no such component",
}

# ---------------------------------------------------------------------------
# eventset states (bit flags, as in PAPI_state)
# ---------------------------------------------------------------------------

PAPI_STOPPED = 0x01
PAPI_RUNNING = 0x02
PAPI_PAUSED = 0x04
PAPI_NOT_INIT = 0x08
PAPI_OVERFLOWING = 0x10
PAPI_PROFILING = 0x20
PAPI_MULTIPLEXING = 0x40
PAPI_ATTACHED = 0x80

# ---------------------------------------------------------------------------
# counting domains and granularities
# ---------------------------------------------------------------------------

PAPI_DOM_USER = 0x1     #: count while the application runs
PAPI_DOM_KERNEL = 0x2   #: count interface/kernel work too
PAPI_DOM_ALL = PAPI_DOM_USER | PAPI_DOM_KERNEL

PAPI_GRN_THR = 0x1      #: per-thread granularity
PAPI_GRN_SYS = 0x4      #: system-wide granularity

# ---------------------------------------------------------------------------
# event code encoding (as in the C library: high bits tag the namespace)
# ---------------------------------------------------------------------------

PAPI_PRESET_MASK = 0x80000000   #: preset events have this bit set
PAPI_NATIVE_MASK = 0x40000000   #: native events have this bit set
PAPI_CODE_MASK = 0x3FFFFFFF     #: low bits: index within the namespace

#: PAPI-C component layer: native codes carry the owning component id in
#: bits 24..29 (component 0 is the CPU component, so legacy native codes
#: -- whose component field is zero -- are unchanged bit patterns).
PAPI_COMPONENT_SHIFT = 24
PAPI_COMPONENT_MASK = 0x3F000000
PAPI_NATIVE_INDEX_MASK = 0x00FFFFFF

#: the CPU component always registers as component 0.
PAPI_CPU_COMPONENT = 0

#: component-qualified event names use the PAPI-C triple-colon form,
#: e.g. ``uncore:::MEM_BW_RD``.
PAPI_COMPONENT_SEPARATOR = ":::"


def is_preset(code: int) -> bool:
    return bool(code & PAPI_PRESET_MASK)


def is_native(code: int) -> bool:
    return bool(code & PAPI_NATIVE_MASK) and not is_preset(code)


def preset_index(code: int) -> int:
    return code & PAPI_CODE_MASK


def native_index(code: int) -> int:
    return code & PAPI_NATIVE_INDEX_MASK


def component_id(code: int) -> int:
    """Component id carried in a native event code (0 for CPU/legacy)."""
    return (code & PAPI_COMPONENT_MASK) >> PAPI_COMPONENT_SHIFT

# ---------------------------------------------------------------------------
# profiling flags (PAPI_profil)
# ---------------------------------------------------------------------------

PAPI_PROFIL_POSIX = 0x0     #: default SVR4-compatible histogram
PAPI_PROFIL_RANDOM = 0x1    #: randomize lower bits of the address
PAPI_PROFIL_WEIGHTED = 0x2  #: weight by latency (hardware-sampling only)

#: scale constant: 65536 means one bucket per 2 address bytes (1:1 in
#: SVR4 terms); 32768 halves the resolution, and so on.
PAPI_PROFIL_SCALE_ONE = 65536

# ---------------------------------------------------------------------------
# misc limits
# ---------------------------------------------------------------------------

PAPI_MAX_MPX_EVENTS = 32    #: max events in a multiplexed eventset
PAPI_MPX_DEF_US = 10000     #: default multiplex quantum, microseconds
PAPI_MIN_OVERFLOW = 10      #: smallest accepted overflow threshold

#: the TAU integration supports up to 25 metrics per run (Section 3).
PAPI_MAX_TOOL_METRICS = 25

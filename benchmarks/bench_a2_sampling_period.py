"""A2 (ablation): sampling period vs accuracy and overhead.

Design question behind Section 4's sampling advocacy: the sampling
period is the overhead/accuracy dial.  Finer periods take more samples
(tighter estimates, 1/sqrt(n) error) but deliver more interrupts (more
overhead); the paper's 1-2% figure corresponds to one point on this
curve.  The PAPI-3 "estimate counts from samples" option needs a
default, which this sweep motivates.
"""

from _shared import emit, run_once
from repro.analysis import Table, rel_error_pct
from repro.core.library import Papi
from repro.hw.events import Signal
from repro.platforms import create
from repro.workloads import dot

PERIODS = [128, 512, 2048, 8192]
N = 60_000


def measure(period: int):
    baseline = create("simALPHA")
    baseline.machine.load(dot(N, use_fma=False).program)
    baseline.machine.run_to_completion()
    base_cycles = baseline.machine.real_cycles

    substrate = create("simALPHA")
    papi = Papi(substrate)
    papi.sampling_period = period
    es = papi.create_eventset()
    es.add_named("PAPI_FP_OPS", "PAPI_TOT_INS")
    work = dot(N, use_fma=False)
    substrate.machine.load(work.program)
    es.start()
    substrate.machine.run_to_completion()
    values = dict(zip(es.event_names, es.stop()))
    err = rel_error_pct(values["PAPI_FP_OPS"], work.expect.flops)
    overhead = (substrate.machine.real_cycles - base_cycles) / base_cycles * 100
    n_samples = substrate.machine.counts[Signal.HW_INT]
    return err, overhead, n_samples


def run_experiment():
    return {p: measure(p) for p in PERIODS}


def bench_a2_sampling_period(benchmark, capsys):
    results = run_once(benchmark, run_experiment)

    table = Table(
        ["period (instructions)", "samples", "FP_OPS error %", "overhead %"],
        title=f"A2: ProfileMe sampling-period ablation (dot n={N}, "
              f"estimate = matches x period)",
    )
    for p, (err, ovh, n) in results.items():
        table.add_row(p, n, round(err, 2), round(ovh, 2))
    emit(capsys, table.render())

    overheads = [results[p][1] for p in PERIODS]
    samples = [results[p][2] for p in PERIODS]
    errors = [results[p][0] for p in PERIODS]
    # finer period -> more samples -> more overhead
    assert samples == sorted(samples, reverse=True)
    assert overheads == sorted(overheads, reverse=True)
    # finest period is very accurate
    assert errors[0] < 5.0
    # the *predicted* relative stderr (deterministic in the sample count,
    # unlike any single realized error) shrinks with finer periods:
    # stderr ~ 1/sqrt(samples)
    import math

    stderrs = [1.0 / math.sqrt(n) for n in samples]
    assert stderrs == sorted(stderrs)
    # realized errors stay within a few predicted sigmas everywhere
    for err, se in zip(errors, stderrs):
        assert err / 100.0 < 6 * se, (err, se)
    # the coarse end reaches negligible overhead (< 1%)
    assert overheads[-1] < 1.0

"""Simulated hardware substrate.

This subpackage implements the machine-dependent layer that PAPI sits on
top of: a deterministic instruction-level machine simulator consisting of

- an ISA, assembler and program representation (:mod:`repro.hw.isa`),
- set-associative caches and a TLB (:mod:`repro.hw.cache`),
- branch predictors (:mod:`repro.hw.branch`),
- the catalogue of microarchitectural event *signals*
  (:mod:`repro.hw.events`),
- a performance monitoring unit with a limited number of physical counter
  registers, overflow interrupts, sampling hardware and event address
  registers (:mod:`repro.hw.pmu`),
- the interpreter CPU that executes programs and raises event signals
  (:mod:`repro.hw.cpu`),
- a basic-block execution engine that caches decoded blocks and replays
  steady-state loops in O(1), bit-exactly (:mod:`repro.hw.blockcache`),
  and
- the :class:`~repro.hw.machine.Machine` that wires all of the above
  together (:mod:`repro.hw.machine`).

Real hardware counters are registers incremented by event signals wired
out of the pipeline; the simulator generates exactly those signals from
real (simulated) program executions, so everything the paper observes
about counters -- multiplexing error, overflow profiles, attribution skid,
measurement perturbation -- emerges from genuine program behaviour.
"""

from repro.hw.blockcache import BlockEngine, EngineStats
from repro.hw.cache import Cache, CacheConfig, TLB, TLBConfig
from repro.hw.cpu import CPU, CPUConfig
from repro.hw.events import Signal, SIGNAL_NAMES, signal_name
from repro.hw.isa import (
    Assembler,
    Instruction,
    Op,
    Program,
    ProgramError,
)
from repro.hw.machine import Machine, MachineConfig
from repro.hw.pmu import (
    PMU,
    PMUConfig,
    CounterControl,
    EventAddressRegister,
    OverflowRecord,
    ProfileMeSampler,
    SampleRecord,
)

__all__ = [
    "Assembler",
    "BlockEngine",
    "CPU",
    "CPUConfig",
    "EngineStats",
    "Cache",
    "CacheConfig",
    "CounterControl",
    "EventAddressRegister",
    "Instruction",
    "Machine",
    "MachineConfig",
    "Op",
    "OverflowRecord",
    "PMU",
    "PMUConfig",
    "Program",
    "ProgramError",
    "ProfileMeSampler",
    "SampleRecord",
    "Signal",
    "SIGNAL_NAMES",
    "TLB",
    "TLBConfig",
    "signal_name",
]

"""Unit tests: caches, TLB, memory hierarchy."""

import pytest

from repro.hw.cache import (
    Cache,
    CacheConfig,
    HierarchyConfig,
    MemoryHierarchy,
    TLB,
    TLBConfig,
    default_hierarchy,
)


def small_cache(assoc=2, sets=4):
    return Cache(CacheConfig("T", size_bytes=32 * assoc * sets,
                             line_bytes=32, assoc=assoc))


class TestCacheConfig:
    def test_geometry_derivation(self):
        cfg = CacheConfig("L1", 4096, 32, 2)
        assert cfg.n_sets == 64
        assert cfg.line_bits == 5

    def test_bad_line_size_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("L1", 4096, 33, 2)

    def test_bad_assoc_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("L1", 4096, 32, 0)

    def test_non_pow2_sets_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("L1", 96 * 32, 32, 1)  # 96 sets


class TestCache:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        assert c.access(100) is False
        assert c.access(100) is True
        assert (c.hits, c.misses) == (1, 1)

    def test_conflict_eviction_lru(self):
        c = small_cache(assoc=2, sets=1)  # fully determined: 2 ways, 1 set
        c.access(1)
        c.access(2)
        c.access(1)      # 1 becomes MRU
        c.access(3)      # evicts 2 (LRU)
        assert c.probe(1) and c.probe(3)
        assert not c.probe(2)

    def test_capacity_bounded(self):
        c = small_cache(assoc=2, sets=4)
        for line in range(100):
            c.access(line)
        total = sum(len(w) for _i, w in c.contents())
        assert total <= 8

    def test_probe_does_not_count(self):
        c = small_cache()
        c.probe(1)
        assert c.accesses == 0

    def test_evict_removes_line(self):
        c = small_cache()
        c.access(5)
        assert c.evict(5) is True
        assert c.evict(5) is False
        assert not c.probe(5)

    def test_flush_keeps_stats(self):
        c = small_cache()
        c.access(1)
        c.flush()
        assert not c.probe(1)
        assert c.misses == 1

    def test_reset_stats(self):
        c = small_cache()
        c.access(1)
        c.reset_stats()
        assert c.accesses == 0

    def test_set_isolation(self):
        c = small_cache(assoc=1, sets=4)
        # lines 0 and 1 land in different sets -> no conflict
        c.access(0)
        c.access(1)
        assert c.probe(0) and c.probe(1)
        # lines 0 and 4 share set 0 with assoc 1 -> conflict
        c.access(4)
        assert not c.probe(0)


class TestTLB:
    def test_miss_then_hit(self):
        t = TLB(TLBConfig(entries=4, page_bytes=4096))
        assert t.access(1) is False
        assert t.access(1) is True

    def test_lru_replacement(self):
        t = TLB(TLBConfig(entries=2, page_bytes=4096))
        t.access(1)
        t.access(2)
        t.access(1)   # 1 MRU
        t.access(3)   # evicts 2
        assert t.resident() == [1, 3]

    def test_capacity(self):
        t = TLB(TLBConfig(entries=3, page_bytes=4096))
        for p in range(10):
            t.access(p)
        assert len(t.resident()) == 3

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            TLBConfig(entries=0, page_bytes=4096)
        with pytest.raises(ValueError):
            TLBConfig(entries=4, page_bytes=1000)


class TestHierarchy:
    def test_data_access_miss_chain(self):
        h = MemoryHierarchy()
        lat, l1m, l2m, tlbm = h.data_access(0)
        assert l1m and l2m and tlbm  # everything cold
        cfg = h.config
        assert lat == cfg.l2_latency + cfg.mem_latency + cfg.tlb_walk_latency

    def test_data_access_hit_is_free(self):
        h = MemoryHierarchy()
        h.data_access(0)
        lat, l1m, l2m, tlbm = h.data_access(0)
        assert lat == 0 and not (l1m or l2m or tlbm)

    def test_l2_catches_l1_evictions(self):
        h = MemoryHierarchy()
        line = h.config.l1d.line_bytes
        n_lines = h.config.l1d.size_bytes // line
        addrs = [i * line for i in range(n_lines * 2)]
        for a in addrs:
            h.data_access(a)
        # second pass: L1 misses (capacity), but L2 (16x larger) hits
        lat, l1m, l2m, _ = h.data_access(addrs[0])
        assert l1m and not l2m
        assert lat == h.config.l2_latency

    def test_inst_fetch_separate_from_data(self):
        h = MemoryHierarchy()
        h.inst_fetch(0)
        # same address as data: still a data miss (separate L1s)
        _, l1m, _, _ = h.data_access(0)
        assert l1m

    def test_pollution_evicts_but_does_not_count(self):
        h = MemoryHierarchy()
        h.data_access(0)
        hits, misses = h.l1d.hits, h.l1d.misses
        # pollute with enough conflicting lines to evict line 0
        line = h.config.l1d.line_bytes
        size = h.config.l1d.size_bytes
        h.pollute(range(0, size * 2, line))
        assert (h.l1d.hits, h.l1d.misses) == (hits, misses)
        lat, l1m, _, _ = h.data_access(0)
        assert l1m  # the application line was really evicted

    def test_invalid_latency_rejected(self):
        base = default_hierarchy()
        with pytest.raises(ValueError):
            HierarchyConfig(
                l1d=base.l1d, l1i=base.l1i, l2=base.l2, tlb=base.tlb,
                l2_latency=-1,
            )

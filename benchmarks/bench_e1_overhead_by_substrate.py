"""E1: instrumentation overhead by substrate (Section 4's headline numbers).

Paper claim: sampling-based estimation on the DCPI substrate costs "only
one to two percent overhead, as compared to up to 30 percent on other
substrates that use direct counting".

Reproduction: a phased application whose functions are instrumented at
entry/exit with a PAPI probe (two counter reads per call) on every
direct-counting substrate; on simALPHA the same per-function information
comes from ProfileMe samples with no per-call reads at all.  Overhead is
the dilation of real (wall-clock) cycles versus an uninstrumented run of
the same program.
"""


from _shared import emit, run_once
from repro.analysis import Table, overhead_pct
from repro.core.library import Papi
from repro.platforms import DIRECT_PLATFORMS, create
from repro.tools.dynaprof import Dynaprof, PapiProbe
from repro.workloads import phased

PROBE_EVENTS = ["PAPI_TOT_CYC", "PAPI_TOT_INS"]


def app():
    return phased([("fp", 800), ("mem", 800)], repeats=20, use_fma=False)


def baseline_cycles(platform: str) -> int:
    sub = create(platform)
    sub.machine.load(app().program)
    sub.machine.run_to_completion()
    return sub.machine.real_cycles


def instrumented_cycles_direct(platform: str) -> int:
    sub = create(platform)
    papi = Papi(sub)
    dyn = Dynaprof(sub, papi)
    dyn.load(app())
    probe = dyn.add_probe(PapiProbe(papi, PROBE_EVENTS))
    dyn.instrument()
    dyn.run()
    assert probe.profiles, "probes must have produced data"
    return sub.machine.real_cycles


def instrumented_cycles_sampling() -> int:
    sub = create("simALPHA")
    papi = Papi(sub)
    es = papi.create_eventset()
    es.add_named(*PROBE_EVENTS)
    sub.machine.load(app().program)
    es.start()
    sub.machine.run_to_completion()
    values = es.stop()
    assert values[1] > 0, "sampled estimates must exist"
    return sub.machine.real_cycles


def run_experiment():
    rows = []
    for platform in DIRECT_PLATFORMS:
        base = baseline_cycles(platform)
        inst = instrumented_cycles_direct(platform)
        style = create(platform).STYLE
        rows.append((platform, style + " (direct reads)", base, inst,
                     overhead_pct(inst, base)))
    base = baseline_cycles("simALPHA")
    inst = instrumented_cycles_sampling()
    rows.append(("simALPHA", "sampling (DCPI/DADD)", base, inst,
                 overhead_pct(inst, base)))
    return rows


def bench_e1_overhead_by_substrate(benchmark, capsys):
    rows = run_once(benchmark, run_experiment)

    table = Table(
        ["platform", "interface", "baseline cyc", "instrumented cyc",
         "overhead %"],
        title="E1: per-function instrumentation overhead by substrate "
              "(paper: sampling 1-2% vs direct counting up to ~30%)",
    )
    overhead = {}
    for platform, style, base, inst, pct in rows:
        table.add_row(platform, style, base, inst, round(pct, 2))
        overhead[platform] = pct
    emit(capsys, table.render())

    # --- shape assertions (the paper's qualitative claims) ----------------
    # sampling substrate lands in the 1-2% band (we allow 0.3-3)
    assert 0.3 <= overhead["simALPHA"] <= 3.0, overhead["simALPHA"]
    # the kernel-patch syscall substrate reaches the tens of percent
    assert overhead["simX86"] >= 20.0
    # sampling beats every syscall/library substrate (the paper compared
    # against those; T3E's raw register reads are legitimately near-free)
    for platform in ("simX86", "simPOWER", "simIA64"):
        assert overhead[platform] > overhead["simALPHA"]
    # interface cost ordering: register < library < syscall
    assert overhead["simT3E"] < overhead["simPOWER"] < overhead["simX86"]

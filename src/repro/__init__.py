"""repro: a reproduction of PAPI (IPPS 2003) over a simulated substrate.

Reproduces "Experiences and Lessons Learned with a Portable Interface to
Hardware Performance Counters" (Dongarra et al., University of
Tennessee ICL): the PAPI specification and reference implementation --
high-level and low-level counter APIs, EventSets, preset/native events,
software multiplexing, overflow interrupts, SVR4 statistical profiling,
hardware-assisted sampling, bipartite-matching counter allocation,
portable timers, the PAPI-3 memory extensions -- together with the tools
built on it (dynaprof, perfometer, papirun, TAU/Vampir-style profiler
and tracer) and the simulated hardware/OS substrate everything runs on.

Quickstart::

    from repro import create, Papi, HighLevel
    from repro.workloads import matmul

    substrate = create("simPOWER")          # pick a simulated platform
    papi = Papi(substrate)                  # PAPI_library_init
    hl = HighLevel(papi)

    work = matmul(16, use_fma=substrate.HAS_FMA)
    substrate.machine.load(work.program)
    hl.start_counters(["PAPI_FP_OPS", "PAPI_TOT_CYC", "PAPI_L1_DCM"])
    substrate.machine.run_to_completion()
    fp_ops, cycles, l1_misses = hl.stop_counters()

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-claim reproductions.
"""

from repro.core import (
    EventSet,
    HighLevel,
    LowLevelAPI,
    Papi,
    PapiError,
    ProfileBuffer,
    calibrate,
)
from repro.platforms import PLATFORM_NAMES, Substrate, all_platforms, create

__version__ = "1.0.0"

__all__ = [
    "EventSet",
    "HighLevel",
    "LowLevelAPI",
    "PLATFORM_NAMES",
    "Papi",
    "PapiError",
    "ProfileBuffer",
    "Substrate",
    "all_platforms",
    "calibrate",
    "create",
    "__version__",
]

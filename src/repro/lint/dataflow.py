"""A generic forward worklist dataflow solver over :mod:`repro.lint.cfg`.

The framework is deliberately tiny: a client supplies three callables
(initial fact, join, transfer) and gets back the fixed-point IN fact of
every node.  The typestate analysis, the interprocedural summary
computation and the SMP/thread rules are all instances of this solver
with different fact types; the solver itself knows nothing about PAPI.

Facts must be *value-comparable* (``==``) and the transfer/join pair
must be monotone over a finite lattice, or the worklist will not
terminate.  The typestate domain satisfies this by construction: facts
are finite sets over a finite universe of (object, state) pairs and all
transfers are elementwise filter/map.

Exception edges carry ``join(IN, OUT)`` of their source rather than just
OUT: an exception can surface before or after the source statement's
effect took place (``es.start()`` can raise before the set is running,
``work(); es.stop()`` can raise after it already was), and joining both
sides is sound for either ordering without modelling sub-statement
program points.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Generic, Tuple, TypeVar

from repro.lint.cfg import CFG, EXC

Fact = TypeVar("Fact")


class Analysis(Generic[Fact]):
    """Client hooks for one forward dataflow problem."""

    def initial(self) -> Fact:
        """Fact at the scope entry."""
        raise NotImplementedError

    def bottom(self) -> Fact:
        """Fact for not-yet-reached nodes (identity of join)."""
        raise NotImplementedError

    def join(self, a: Fact, b: Fact) -> Fact:
        raise NotImplementedError

    def transfer(self, node, fact: Fact) -> Fact:
        """OUT fact of *node* given its IN fact.  Must not mutate."""
        raise NotImplementedError

    def exc_adapt(self, fact: Fact) -> Fact:
        """Transform a fact flowing along an exception edge.

        The typestate client overrides this to tag every lifecycle
        element as exception-reached, which is what the leak rules
        (PL303/PL304) key on.  Default: identity.
        """
        return fact


def solve(
    cfg: CFG, analysis: Analysis[Fact], max_iterations: int = 100_000
) -> Tuple[Dict[int, Fact], Dict[int, Fact]]:
    """Run *analysis* to fixpoint; returns (IN, OUT) facts per node id.

    ``max_iterations`` is a safety valve against a non-monotone client:
    hitting it raises rather than spinning, because a linter that hangs
    is worse than one that crashes.
    """
    preds = cfg.preds()
    ins: Dict[int, Fact] = {n.id: analysis.bottom() for n in cfg.nodes}
    outs: Dict[int, Fact] = {n.id: analysis.bottom() for n in cfg.nodes}
    ins[cfg.entry] = analysis.initial()

    work = deque(n.id for n in cfg.nodes)
    queued = set(work)
    iterations = 0
    while work:
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError(
                "dataflow did not converge (non-monotone transfer?)"
            )
        node_id = work.popleft()
        queued.discard(node_id)
        node = cfg.nodes[node_id]

        if node_id != cfg.entry:
            fact = analysis.bottom()
            for src, kind in preds[node_id]:
                contrib = outs[src]
                if kind == EXC:
                    contrib = analysis.exc_adapt(
                        analysis.join(ins[src], outs[src])
                    )
                fact = analysis.join(fact, contrib)
            ins[node_id] = fact

        new_out = analysis.transfer(node, ins[node_id])
        if new_out != outs[node_id]:
            outs[node_id] = new_out
            for dst, _kind in cfg.succs[node_id]:
                if dst not in queued:
                    work.append(dst)
                    queued.add(dst)
    return ins, outs


def solve_ins(cfg: CFG, analysis: Analysis[Fact]) -> Dict[int, Fact]:
    """Convenience wrapper returning only the IN facts."""
    return solve(cfg, analysis)[0]


TransferFn = Callable[[object, Fact], Fact]

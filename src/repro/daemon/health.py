"""DaemonHealth: the papid service's self-reported vital signs.

Everything the robustness layer does silently on a client's behalf —
crashes absorbed, sessions re-homed, reads shed or served stale,
deadlines expired — is counted here and exposed through
``PapidServer.health()`` and the ``papid`` CLI verb.  The convention
matches :class:`~repro.core.resilience.EventSetHealth`: degradation is
never hidden, it is itemized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class DaemonHealth:
    """Snapshot of fleet state and absorbed-fault counters."""

    nshards: int = 0
    transport: str = "process"
    sessions: int = 0
    running: int = 0
    stopped: int = 0
    destroyed: int = 0
    #: dead worker processes detected by the supervisor or submit path.
    crashes_detected: int = 0
    #: unresponsive-but-alive workers the supervisor had to kill.
    wedges_detected: int = 0
    #: shard respawn+re-home rounds completed.
    recoveries: int = 0
    #: sessions successfully adopted by a respawned worker.
    sessions_recovered: int = 0
    #: sessions that could not be re-homed (their images stay in the
    #: registry with their lost-interval ledger; never silently dropped).
    sessions_unrecovered: int = 0
    #: reads rejected by admission control (lowest priority first).
    shed_reads: int = 0
    #: reads served from the snapshot cache instead of a worker.
    stale_reads: int = 0
    #: RPCs whose deadline expired before their shard answered.
    deadline_expiries: int = 0
    #: transient (EAGAIN/ESHED) results handed to clients.
    transient_returns: int = 0
    journal_records: int = 0
    draining: bool = False
    drained: bool = False
    per_shard: List[Dict[str, object]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no fault of any kind was absorbed or surfaced."""
        return (
            self.crashes_detected == 0
            and self.wedges_detected == 0
            and self.sessions_unrecovered == 0
            and self.shed_reads == 0
            and self.stale_reads == 0
            and self.deadline_expiries == 0
            and self.transient_returns == 0
        )

    def summary(self) -> dict:
        """JSON-friendly snapshot (CLI output, bench artifacts, tests)."""
        return {
            "nshards": self.nshards,
            "transport": self.transport,
            "sessions": self.sessions,
            "running": self.running,
            "stopped": self.stopped,
            "destroyed": self.destroyed,
            "crashes_detected": self.crashes_detected,
            "wedges_detected": self.wedges_detected,
            "recoveries": self.recoveries,
            "sessions_recovered": self.sessions_recovered,
            "sessions_unrecovered": self.sessions_unrecovered,
            "shed_reads": self.shed_reads,
            "stale_reads": self.stale_reads,
            "deadline_expiries": self.deadline_expiries,
            "transient_returns": self.transient_returns,
            "journal_records": self.journal_records,
            "draining": self.draining,
            "drained": self.drained,
            "per_shard": list(self.per_shard),
        }

"""Unit tests: Machine composition -- clocks, charging, probes, reset."""

import pytest

from repro.hw import Assembler, Machine
from repro.hw.cpu import MachineFault
from repro.hw.events import Signal, fresh_counts, signal_name, signal_by_name
from repro.hw.machine import MachineConfig


class TestClocks:
    def test_real_includes_system_cycles(self, fma_loop_program):
        m = Machine()
        m.load(fma_loop_program)
        m.run_to_completion()
        user = m.user_cycles
        m.charge(1234)
        assert m.real_cycles == user + 1234
        assert m.user_cycles == user

    def test_real_usec_uses_clock_rate(self):
        m = Machine(MachineConfig(mhz=500))
        m.charge(5000)
        assert m.real_usec == pytest.approx(10.0)

    def test_negative_charge_rejected(self):
        m = Machine()
        with pytest.raises(ValueError):
            m.charge(-1)


class TestPollution:
    @staticmethod
    def _rereading_program():
        """Reads the same 64 words over and over (pollution-sensitive)."""
        asm = Assembler()
        base = asm.init_array([1] * 64)
        asm.func("main")
        asm.li("r9", 40)
        asm.li("r8", 0)
        asm.label("outer")
        asm.li("r1", base)
        asm.li("r2", 0)
        asm.li("r3", 64)
        asm.label("inner")
        asm.load("r4", "r1", 0)
        asm.addi("r1", "r1", 1)
        asm.addi("r2", "r2", 1)
        asm.blt("r2", "r3", "inner")
        asm.addi("r8", "r8", 1)
        asm.blt("r8", "r9", "outer")
        asm.halt()
        asm.endfunc()
        return asm.build()

    def test_charge_with_pollution_perturbs_cache(self):
        # run the same re-reading program twice; the polluted machine
        # sees more data cache misses because interface lines evict the
        # program's hot working set mid-run.
        program = self._rereading_program()
        results = []
        for pollute in (0, 512):
            m = Machine()
            m.load(program)
            m.run(max_instructions=2000)
            m.charge(100, pollute_lines=pollute)
            m.run_to_completion()
            results.append(m.counts[Signal.L1D_MISS])
        assert results[1] > results[0]


class TestProbes:
    def test_probe_dispatch(self):
        asm = Assembler()
        asm.func("main")
        asm.probe(7)
        asm.probe(7)
        asm.halt()
        asm.endfunc()
        m = Machine()
        calls = []
        m.register_probe(7, lambda pid, cpu: calls.append((pid, cpu.pc)))
        m.load(asm.build())
        m.run_to_completion()
        assert calls == [(7, 0), (7, 1)]
        assert m.counts[Signal.PRB_INS] == 2

    def test_unregistered_probe_is_noop(self):
        asm = Assembler()
        asm.func("main")
        asm.probe(3)
        asm.halt()
        asm.endfunc()
        m = Machine()
        m.load(asm.build())
        m.run_to_completion()  # must not raise

    def test_duplicate_probe_id_rejected(self):
        m = Machine()
        m.register_probe(1, lambda p, c: None)
        with pytest.raises(ValueError):
            m.register_probe(1, lambda p, c: None)

    def test_unregister_probe(self):
        m = Machine()
        m.register_probe(1, lambda p, c: None)
        m.unregister_probe(1)
        m.register_probe(1, lambda p, c: None)  # ok again


class TestSyscall:
    def test_syscall_charges_cycles(self):
        asm = Assembler()
        asm.func("main")
        asm.syscall(1)
        asm.halt()
        asm.endfunc()
        m = Machine()
        m.load(asm.build())
        m.run_to_completion()
        assert m.counts[Signal.SYS_INS] == 1
        assert m.counts[Signal.TOT_CYC] >= m.config.cpu.syscall_cost


class TestReset:
    def test_reset_zeroes_everything(self, fma_loop_program):
        m = Machine()
        m.load(fma_loop_program)
        m.pmu.program(0, (Signal.TOT_INS,))
        m.pmu.start(0)
        m.run_to_completion()
        m.charge(100)
        m.reset()
        assert m.real_cycles == 0
        assert all(c == 0 for c in m.counts)
        assert m.cpu.halted
        assert m.program is None

    def test_reload_after_reset(self, fma_loop_program):
        m = Machine()
        m.load(fma_loop_program)
        m.run_to_completion()
        m.reset()
        m.load(fma_loop_program)
        m.run_to_completion()
        assert m.counts[Signal.FP_FMA] == 1000


class TestRunToCompletion:
    def test_budget_guard(self, fma_loop_program):
        m = Machine()
        m.load(fma_loop_program)
        with pytest.raises(MachineFault, match="did not halt"):
            m.run_to_completion(budget_instructions=10)


class TestSignalCatalogue:
    def test_names_roundtrip(self):
        for i in range(Signal.N_SIGNALS):
            assert signal_by_name(signal_name(i)) == i

    def test_fresh_counts_length(self):
        assert len(fresh_counts()) == Signal.N_SIGNALS

    def test_bad_signal_name(self):
        with pytest.raises(ValueError):
            signal_by_name("BOGUS")
        with pytest.raises(ValueError):
            signal_name(Signal.N_SIGNALS)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(mhz=0)

"""PAPI_profil: SVR4-compatible statistical profiling.

"The PAPI_profil call implements SVR4-compatible code profiling based on
any hardware counter metric.  The code to be profiled need only be
bracketed by calls to the PAPI_profil routine." (Section 2)

A :class:`ProfileBuffer` is the classic ``profil(2)`` histogram: text
addresses are mapped to buckets by ``((addr - offset) * scale) >> 17``
(scale is 16.16 fixed point; 65536 means one bucket per two address
bytes).  Hits come from one of three mechanisms, mirroring Section 4:

- **interrupt-PC profiling** (direct substrates): an overflow watch on
  the chosen event samples the *interrupt* pc -- which skids on
  out-of-order platforms, smearing the histogram;
- **ProfileMe sampling** (simALPHA): precise pcs from hardware samples;
- **EAR capture** (simIA64): precise pcs of sampled miss events.

Experiment E5 compares the attribution accuracy of all three.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional

from repro.core import constants as C
from repro.core.errors import (
    InvalidArgumentError,
    NotRunningError,
)
from repro.core.overflow import OverflowInfo
from repro.hw.isa import INS_BYTES

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.eventset import EventSet
    from repro.hw.pmu import EARRecord, SampleRecord


class ProfileBuffer:
    """An SVR4 ``profil`` histogram over a text-address range."""

    def __init__(self, nbuckets: int, offset: int, scale: int) -> None:
        if nbuckets < 1:
            raise InvalidArgumentError("need at least one bucket")
        if scale <= 0 or scale > C.PAPI_PROFIL_SCALE_ONE:
            raise InvalidArgumentError(
                f"scale must be in (0, {C.PAPI_PROFIL_SCALE_ONE}]"
            )
        self.nbuckets = nbuckets
        self.offset = offset
        self.scale = scale
        self.buckets: List[int] = [0] * nbuckets
        self.hits = 0
        self.out_of_range = 0

    @staticmethod
    def scale_for(bytes_per_bucket: int) -> int:
        """The scale value giving *bytes_per_bucket* per histogram bucket."""
        if bytes_per_bucket < 2:
            raise InvalidArgumentError("buckets cover at least 2 bytes")
        return (2 * C.PAPI_PROFIL_SCALE_ONE) // bytes_per_bucket

    @classmethod
    def covering(cls, offset: int, length_bytes: int,
                 bytes_per_bucket: int = INS_BYTES) -> "ProfileBuffer":
        """Buffer covering ``[offset, offset+length_bytes)``."""
        nbuckets = (length_bytes + bytes_per_bucket - 1) // bytes_per_bucket
        return cls(nbuckets, offset, cls.scale_for(bytes_per_bucket))

    def bucket_index(self, address: int) -> Optional[int]:
        if address < self.offset:
            return None
        idx = ((address - self.offset) * self.scale) >> 17
        if idx >= self.nbuckets:
            return None
        return idx

    def hit(self, address: int, weight: int = 1) -> None:
        idx = self.bucket_index(address)
        if idx is None:
            self.out_of_range += 1
            return
        self.buckets[idx] += weight
        self.hits += weight

    def hottest(self) -> int:
        """Index of the hottest bucket."""
        return max(range(self.nbuckets), key=lambda i: self.buckets[i])

    def bucket_address(self, index: int) -> int:
        """Start address covered by bucket *index*."""
        # inverse of bucket_index for the bucket's first byte
        return self.offset + ((index << 17) // self.scale)

    def concentration(self, index: int) -> float:
        """Fraction of all hits landing in bucket *index*."""
        return self.buckets[index] / self.hits if self.hits else 0.0

    def nonzero(self) -> List[int]:
        return [i for i, b in enumerate(self.buckets) if b]


class Profil:
    """One PAPI_profil registration on an EventSet."""

    def __init__(
        self,
        eventset: "EventSet",
        buffer: ProfileBuffer,
        code: int,
        threshold: int,
        flags: int = C.PAPI_PROFIL_POSIX,
    ) -> None:
        self.eventset = eventset
        self.buffer = buffer
        self.code = code
        self.threshold = threshold
        self.flags = flags
        self._installed = False
        self._session = None

    def install(self) -> None:
        """Arm profiling (overflow-based or sampling-based)."""
        if self._installed:
            raise InvalidArgumentError("profil already installed")
        es = self.eventset
        if es.substrate.supports_sampling_counts():
            if not es.running:
                raise NotRunningError(
                    "on the sampling substrate, install profil after "
                    "PAPI_start (it post-processes the hardware samples)"
                )
            self._session = es._session
        else:
            es.overflow(self.code, self.threshold, self._on_overflow)
        self._installed = True

    def _on_overflow(self, info: OverflowInfo) -> None:
        self.buffer.hit(info.address)

    def collect(self) -> ProfileBuffer:
        """Finalize the histogram (no-op for overflow-based profiling)."""
        if self._session is not None:
            from repro.platforms.simalpha import sample_matches

            terms = self.eventset._terms[self.code]
            weighted = bool(self.flags & C.PAPI_PROFIL_WEIGHTED)
            for sample in self._session.samples():
                if any(sample_matches(native, sample) for native, _c in terms):
                    weight = sample.latency if weighted else 1
                    self.buffer.hit(sample.pc * INS_BYTES, weight)
        return self.buffer

    def uninstall(self) -> None:
        if not self._installed:
            return
        if self._session is None:
            self.eventset.clear_overflow(self.code)
        self._session = None
        self._installed = False


def profile_from_samples(
    buffer: ProfileBuffer,
    samples: Iterable["SampleRecord"],
    predicate=None,
    weighted: bool = False,
) -> ProfileBuffer:
    """Fill *buffer* from ProfileMe samples (precise attribution)."""
    for s in samples:
        if predicate is None or predicate(s):
            buffer.hit(s.pc * INS_BYTES, s.latency if weighted else 1)
    return buffer


def profile_from_ears(
    buffer: ProfileBuffer, records: Iterable["EARRecord"]
) -> ProfileBuffer:
    """Fill *buffer* from event-address-register captures (precise)."""
    for r in records:
        buffer.hit(r.pc * INS_BYTES)
    return buffer


def attribution_score(
    buffer: ProfileBuffer, true_addresses: Iterable[int]
) -> float:
    """Fraction of histogram hits landing on the true instructions.

    *true_addresses* are the text addresses (bytes) of the instructions
    that actually cause the profiled event; the score is the mass of the
    histogram inside their buckets.  1.0 means perfect attribution
    (precise sampling hardware); interrupt-pc profiling on out-of-order
    cores scores lower as skid smears hits downstream.
    """
    true_buckets = {buffer.bucket_index(a) for a in true_addresses}
    true_buckets.discard(None)
    if not buffer.hits:
        return 0.0
    return sum(buffer.buckets[b] for b in true_buckets) / buffer.hits

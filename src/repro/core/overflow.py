"""Overflow dispatch: counter threshold crossings -> user callbacks.

"The low-level interface ... provides the functionality of user
callbacks on counter overflow" (Section 2).  The PMU raises an
:class:`~repro.hw.pmu.OverflowRecord` with the *interrupt* program
counter -- which, on out-of-order platforms, has skidded several
instructions past the instruction that caused the event (Section 4's
attribution problem).  This module packages the record into the
PAPI-level :class:`OverflowInfo` handed to user handlers.

``true_address`` carries the skid-free causing address.  Real hardware
does not reveal it through this interface; it is exposed here (clearly
marked) because the reproduction's E5 experiment needs ground truth to
*measure* the attribution error the paper describes.  Portable tools
must only use ``address``.

Interaction with the block execution engine: overflow thresholds are
*deadlines* for the engine (:mod:`repro.hw.blockcache`).  Before each
bulk step the engine queries ``PMU.watch_constraints`` for the headroom
below every armed ``next_trigger`` and declines any block that could
cross it, so the threshold-crossing instruction, the skid draw and the
delivery all happen on the precise interpreter path -- overflow handlers
observe identical ``OverflowInfo`` records (addresses, cycles, counts)
whether the engine is on or off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.hw.isa import INS_BYTES
from repro.hw.pmu import PMU, OverflowRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.eventset import EventSet
    from repro.platforms.base import NativeEvent


@dataclass(frozen=True)
class OverflowInfo:
    """What a PAPI overflow handler receives."""

    eventset_handle: int
    code: int                 #: the overflowing event's code
    symbol: str               #: its name
    address: int              #: interrupt pc as a byte address (with skid)
    overflow_count: int       #: how many times this watch has fired
    threshold: int
    cycle: int                #: machine cycle of delivery
    #: ground-truth causing address (simulation-only diagnostic; see
    #: module docstring).  Portable code must ignore this.
    true_address: int


@dataclass
class OverflowRegistration:
    """One PAPI_overflow registration, installable onto a PMU counter."""

    eventset: "EventSet"
    code: int
    native: "NativeEvent"
    threshold: int
    handler: Callable[[OverflowInfo], None]

    def make_dispatch(self) -> Callable[[OverflowRecord], None]:
        """The PMU-level handler wrapping the user callback."""
        symbol = self.eventset.papi.event_code_to_name(self.code)
        handle = self.eventset.handle
        threshold = self.threshold
        user_handler = self.handler

        def _dispatch(record: OverflowRecord) -> None:
            user_handler(
                OverflowInfo(
                    eventset_handle=handle,
                    code=self.code,
                    symbol=symbol,
                    address=record.reported_pc * INS_BYTES,
                    overflow_count=record.overflow_count,
                    threshold=threshold,
                    cycle=record.cycle,
                    true_address=record.trigger_pc * INS_BYTES,
                )
            )

        return _dispatch

    def install(self, pmu: PMU, counter_index: int) -> None:
        pmu.set_overflow(counter_index, self.threshold, self.make_dispatch())


@dataclass
class _SoftWatch:
    """Emulator-side state for one registration."""

    reg: OverflowRegistration
    index: int
    next_trigger: int
    overflow_count: int = 0


class SoftwareOverflowEmulator:
    """Timer-driven overflow emulation: the graceful-degradation path.

    When hardware overflow arming fails for good (``PAPI_ESYS`` through
    every retry), the library falls back to polling the counter from the
    PMU cycle timer and synthesizing :class:`OverflowInfo` callbacks in
    software -- the strategy PAPI uses on platforms whose substrate has
    no interrupt support at all (Section 2: overflows "implemented in
    software using a high resolution interval timer" where hardware
    support is missing).

    The price is attribution: the reported ``address`` is wherever the
    program happened to be at the *poll* that noticed the crossing, not
    within interrupt skid of the causing instruction.  ``true_address``
    equals ``address`` here -- the emulator genuinely does not know the
    causing pc, and pretending otherwise would falsify E5-style skid
    studies.  The EventSet's health record sets ``overflow_emulated`` so
    callers know the quality of what they got.
    """

    def __init__(self, eventset: "EventSet", poll_cycles: int = 2000) -> None:
        self.eventset = eventset
        self.poll_cycles = poll_cycles
        machine = eventset.substrate.machine
        self._cpu = machine.cpus[eventset.cpu]
        self._pmu = self._cpu.pmu
        self._watches: dict = {}  # code -> _SoftWatch
        self._running = False

    def arm(self, reg: OverflowRegistration, index: int) -> None:
        self._watches[reg.code] = _SoftWatch(
            reg=reg,
            index=index,
            next_trigger=self._pmu.read(index) + reg.threshold,
        )
        if not self._running:
            self._pmu.set_cycle_timer(self.poll_cycles, self._on_tick)
            self._running = True

    def disarm(self, code: int) -> None:
        self._watches.pop(code, None)
        if not self._watches:
            self.stop()

    def stop(self) -> None:
        if self._running:
            self._pmu.clear_cycle_timer()
            self._running = False

    def rebase(self, code: int, index: int) -> None:
        """Re-home a watch after counter-loss recovery."""
        watch = self._watches.get(code)
        if watch is not None:
            watch.index = index
            watch.next_trigger = (
                self._pmu.read(index) + watch.reg.threshold
            )

    def _on_tick(self, cycle: int) -> None:
        pc_bytes = self._cpu.pc * INS_BYTES
        for watch in self._watches.values():
            value = self._pmu.read(watch.index)
            reg = watch.reg
            while value >= watch.next_trigger:
                watch.next_trigger += reg.threshold
                watch.overflow_count += 1
                reg.handler(
                    OverflowInfo(
                        eventset_handle=self.eventset.handle,
                        code=reg.code,
                        symbol=self.eventset.papi.event_code_to_name(reg.code),
                        address=pc_bytes,
                        overflow_count=watch.overflow_count,
                        threshold=reg.threshold,
                        cycle=cycle,
                        true_address=pc_bytes,
                    )
                )

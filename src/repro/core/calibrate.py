"""The PAPI calibrate utility.

Section 4: "test programs may need to be written to determine exactly
what events are being counted.  These test programs can take the form of
micro-benchmarks for which the expected counts are known" and "Test runs
of the PAPI calibrate utility on this substrate have shown that event
counts converge to the expected value, given a long enough run time".

:func:`calibrate` runs known-FLOP kernels under PAPI_FP_OPS (and
PAPI_FP_INS) and reports measured vs expected;
:func:`calibrate_convergence` sweeps run lengths on a sampling substrate
to reproduce the convergence behaviour (experiment E2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.library import Papi
from repro.core.sampling import ConvergenceStudy, relative_error
from repro.platforms.base import Substrate
from repro.workloads import CALIBRATION_KERNELS, Workload


@dataclass(frozen=True)
class CalibrationResult:
    """Measured vs expected counts for one kernel on one platform."""

    platform: str
    kernel: str
    n: int
    expected_flops: int
    measured_fp_ops: int
    expected_fp_ins: int
    measured_fp_ins: int
    cycles: int
    real_usec: float

    @property
    def fp_ops_error(self) -> float:
        return relative_error(self.measured_fp_ops, self.expected_flops)

    @property
    def fp_ins_error(self) -> float:
        return relative_error(self.measured_fp_ins, self.expected_fp_ins)

    @property
    def fp_ops_ok(self, tolerance: float = 0.05) -> bool:
        return self.fp_ops_error <= tolerance


def run_measured(papi: Papi, workload: Workload,
                 symbols: Sequence[str]) -> Dict[str, int]:
    """Load + run *workload* with the given presets counted.

    The canonical measure-one-workload loop (create EventSet, add
    presets, load, start, run to completion, stop, destroy), shared by
    the calibrate utility and the validate harness.
    """
    machine = papi.substrate.machine
    es = papi.create_eventset()
    try:
        for symbol in symbols:
            es.add_event(papi.event_name_to_code(symbol))
        machine.load(workload.program)
        es.start()
        machine.run_to_completion()
        values = es.stop()
    finally:
        if es.running:  # an exception left the set running
            es.stop()
        papi.destroy_eventset(es)
    return dict(zip(symbols, values))


#: historical private name, kept for callers that predate the promotion.
_run_measured = run_measured


def calibrate(
    substrate: Substrate,
    kernel: str = "dot",
    n: int = 2000,
    papi: Optional[Papi] = None,
    sampling_period: Optional[int] = None,
) -> CalibrationResult:
    """Run one calibration kernel and compare against its expectations.

    *sampling_period* tunes the sample-based estimation on the sampling
    substrate (finer period = more samples = tighter estimates, at more
    interrupt overhead).
    """
    try:
        factory = CALIBRATION_KERNELS[kernel]
    except KeyError:
        raise ValueError(
            f"unknown calibration kernel {kernel!r}; "
            f"known: {sorted(CALIBRATION_KERNELS)}"
        ) from None
    papi = papi or Papi(substrate)
    if sampling_period is not None:
        papi.sampling_period = sampling_period
    use_fma = getattr(substrate, "HAS_FMA", False)
    workload = factory(n, use_fma=use_fma)
    values = _run_measured(papi, workload, ["PAPI_FP_OPS", "PAPI_FP_INS"])
    assert workload.expect.flops is not None
    assert workload.expect.fp_ins is not None
    return CalibrationResult(
        platform=substrate.NAME,
        kernel=kernel,
        n=n,
        expected_flops=workload.expect.flops,
        measured_fp_ops=values["PAPI_FP_OPS"],
        expected_fp_ins=workload.expect.fp_ins,
        measured_fp_ins=values["PAPI_FP_INS"],
        cycles=substrate.machine.user_cycles,
        real_usec=substrate.real_usec(),
    )


def calibrate_all(substrate: Substrate, n: int = 2000) -> List[CalibrationResult]:
    """Calibrate every known kernel on *substrate* (fresh runs share the
    machine, so counts are per-run via the EventSet, not machine totals)."""
    papi = Papi(substrate)
    return [
        calibrate(substrate, kernel, n=n, papi=papi)
        for kernel in sorted(CALIBRATION_KERNELS)
    ]


def calibrate_convergence(
    substrate: Substrate,
    sizes: Sequence[int],
    kernel: str = "dot",
    sampling_period: Optional[int] = None,
) -> ConvergenceStudy:
    """Sweep kernel sizes and record estimate error vs run length (E2).

    Meaningful on the sampling substrate, where counts are estimated
    from samples (error ~ 1/sqrt(samples)); on direct substrates the
    error is identically ~0, which the study will show.
    """
    factory = CALIBRATION_KERNELS[kernel]
    use_fma = getattr(substrate, "HAS_FMA", False)
    papi = Papi(substrate)
    if sampling_period is not None:
        papi.sampling_period = sampling_period
    study = ConvergenceStudy(label=f"{substrate.NAME}:{kernel}")
    for n in sizes:
        workload = factory(n, use_fma=use_fma)
        values = _run_measured(papi, workload, ["PAPI_FP_OPS", "PAPI_TOT_INS"])
        assert workload.expect.flops is not None
        study.add(
            run_instructions=values["PAPI_TOT_INS"],
            n_samples=0,  # refined below when the substrate samples
            estimate=values["PAPI_FP_OPS"],
            expected=workload.expect.flops,
        )
    return study

"""Property-based tests: program rewriting and execution invariants."""

from hypothesis import given, settings, strategies as st

from repro.hw import Assembler, Machine
from repro.hw.events import Signal
from repro.hw.isa import Instruction, Op


def accumulator_program(increments):
    """r1 += each increment, in a function call per value."""
    asm = Assembler()
    asm.func("bump")
    asm.add("r1", "r1", "r2")
    asm.ret()
    asm.endfunc()
    asm.func("main")
    asm.li("r1", 0)
    for inc in increments:
        asm.li("r2", inc)
        asm.call("bump")
    asm.halt()
    asm.endfunc()
    return asm.build()


increment_lists = st.lists(
    st.integers(min_value=-100, max_value=100), min_size=1, max_size=20
)


class TestExecutionProperties:
    @given(increment_lists)
    @settings(max_examples=50)
    def test_result_matches_python_semantics(self, incs):
        m = Machine()
        m.load(accumulator_program(incs))
        m.run_to_completion()
        assert m.cpu.iregs[1] == sum(incs)

    @given(increment_lists)
    @settings(max_examples=50)
    def test_call_ret_balanced(self, incs):
        m = Machine()
        m.load(accumulator_program(incs))
        m.run_to_completion()
        assert m.counts[Signal.CALL_INS] == len(incs)
        assert m.counts[Signal.RET_INS] == len(incs)
        assert not m.cpu.call_stack

    @given(increment_lists, st.integers(min_value=1, max_value=50))
    @settings(max_examples=50)
    def test_sliced_execution_equals_straight_run(self, incs, slice_len):
        """Running in max_instruction slices must not change results."""
        straight = Machine()
        straight.load(accumulator_program(incs))
        straight.run_to_completion()

        sliced = Machine()
        sliced.load(accumulator_program(incs))
        while not sliced.cpu.halted:
            sliced.run(max_instructions=slice_len)
        assert sliced.cpu.iregs[1] == straight.cpu.iregs[1]
        assert sliced.counts[Signal.TOT_INS] == straight.counts[Signal.TOT_INS]


class TestRewritingProperties:
    @given(
        increment_lists,
        st.sets(st.integers(min_value=0, max_value=10), max_size=5),
    )
    @settings(max_examples=50)
    def test_nop_insertion_preserves_semantics(self, incs, points):
        """Inserting NOPs anywhere never changes architectural results."""
        program = accumulator_program(incs)
        valid_points = {p for p in points if p <= len(program)}
        if valid_points:
            program, _ = program.insert(
                {p: [Instruction(Op.NOP)] for p in valid_points}
            )
        m = Machine()
        m.load(program)
        m.run_to_completion()
        assert m.cpu.iregs[1] == sum(incs)

    @given(increment_lists)
    @settings(max_examples=30)
    def test_probe_everywhere_preserves_semantics(self, incs):
        """A probe before every instruction is still semantics-neutral."""
        program = accumulator_program(incs)
        program, _ = program.insert(
            {i: [Instruction(Op.PROBE, i)] for i in range(len(program))}
        )
        m = Machine()
        m.load(program)
        m.run_to_completion()
        assert m.cpu.iregs[1] == sum(incs)
        assert m.counts[Signal.PRB_INS] > 0

    @given(increment_lists, st.integers(min_value=0, max_value=30))
    @settings(max_examples=40)
    def test_migration_mid_run_preserves_semantics(self, incs, pause_at):
        """Pause anywhere, insert a NOP at every index, migrate, finish."""
        program = accumulator_program(incs)
        m = Machine()
        m.load(program)
        m.run(max_instructions=pause_at)
        new_prog, remap = program.insert(
            {i: [Instruction(Op.NOP)] for i in range(len(program))}
        )
        m.cpu.migrate(new_prog, remap)
        m.run_to_completion()
        assert m.cpu.iregs[1] == sum(incs)

"""Unit tests: static EventSet feasibility (PL1xx machinery)."""

from repro.core import constants as C
from repro.lint import check_events, portability_matrix, resolve_event


class TestResolution:
    def test_direct_preset(self):
        res = resolve_event("PAPI_TOT_CYC", "simX86")
        assert res.kind == "direct"
        assert res.natives == ("CPU_CLK_UNHALTED",)

    def test_derived_preset(self):
        res = resolve_event("PAPI_FP_OPS", "simPOWER")
        assert res.kind == "derived"
        assert len(res.natives) > 1

    def test_native_name(self):
        res = resolve_event("CPU_CLK_UNHALTED", "simX86")
        assert res.kind == "native"

    def test_unavailable_preset(self):
        # in the catalogue, but no simT3E mapping
        res = resolve_event("PAPI_BR_MSP", "simT3E")
        assert res.kind == "unavailable"
        assert not res.available

    def test_unknown_name(self):
        assert resolve_event("PAPI_NO_SUCH", "simX86").kind == "unknown"
        assert resolve_event("NOT_A_NATIVE", "simX86").kind == "unknown"


class TestConstraintPlatforms:
    def test_feasible_pair_on_simx86(self):
        report = check_events(("PAPI_TOT_CYC", "PAPI_TOT_INS"), "simX86")
        assert report.ok
        assert report.status == "ok"
        assert set(report.assignment) == {
            "CPU_CLK_UNHALTED", "INST_RETIRED",
        }

    def test_pinned_conflict_on_simx86(self):
        # FLOPS and DCU_LINES_IN both pin to counter 0.
        report = check_events(("PAPI_FP_OPS", "PAPI_L1_DCM"), "simX86")
        assert not report.feasible_direct
        assert report.status == "mpx"
        assert set(report.conflict_witness) == {
            "PAPI_FP_OPS", "PAPI_L1_DCM",
        }
        assert report.hall_witness is not None
        natives, counters = report.hall_witness
        assert len(natives) == len(counters) + 1

    def test_simsparc_icache_dcache_conflict(self):
        report = check_events(("PAPI_L1_DCM", "PAPI_L1_ICM"), "simSPARC")
        assert not report.feasible_direct
        assert report.feasible_multiplexed
        natives, counters = report.hall_witness
        assert set(natives) == {"DC_rd_miss", "IC_miss"}
        assert counters == (1,)

    def test_minimal_conflict_is_minimal(self):
        report = check_events(
            ("PAPI_TOT_CYC", "PAPI_FP_OPS", "PAPI_L1_DCM"), "simX86"
        )
        witness = report.conflict_witness
        assert witness
        # removing any one member of the witness leaves a feasible rest
        for name in witness:
            rest = tuple(n for n in witness if n != name)
            if rest:
                assert check_events(rest, "simX86").feasible_direct

    def test_too_many_events_infeasible_not_mpx_capped(self):
        report = check_events(
            ("PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_FP_INS",
             "PAPI_L1_DCM", "PAPI_BR_INS"),
            "simT3E",
        )
        assert not report.feasible_direct  # only 4 counters
        assert report.feasible_multiplexed
        assert len(report.events) <= C.PAPI_MAX_MPX_EVENTS


class TestGroupPlatforms:
    def test_group_allocation_reports_group(self):
        report = check_events(("PAPI_TOT_CYC", "PAPI_TOT_INS"), "simPOWER")
        assert report.feasible_direct
        assert report.group is not None
        assert report.hall_witness is None  # not a constraint platform

    def test_cross_group_conflict(self):
        # FP and branch natives live in different counter groups.
        report = check_events(("PAPI_FP_INS", "PAPI_BR_MSP"), "simPOWER")
        assert not report.feasible_direct
        assert report.hall_witness is None
        assert report.conflict_witness


class TestSamplingPlatform:
    def test_sampling_always_feasible(self):
        from repro.core.presets import PLATFORM_PRESET_TABLES

        # every available preset at once: no allocation on the sampler.
        events = tuple(sorted(PLATFORM_PRESET_TABLES["simALPHA"]))
        report = check_events(events, "simALPHA")
        assert report.sampling
        assert report.ok
        assert report.status == "sampling"

    def test_unavailable_still_reported_on_sampling(self):
        report = check_events(("PAPI_FP_OPS", "PAPI_HW_INT"), "simALPHA")
        assert report.sampling
        if report.unavailable:
            assert not report.ok


class TestStatuses:
    def test_unknown_event_status(self):
        report = check_events(("PAPI_NO_SUCH",), "simX86")
        assert report.status == "unknown-event"
        assert not report.ok

    def test_unavailable_status(self):
        report = check_events(("PAPI_BR_MSP",), "simT3E")
        assert report.status == "unavailable"

    def test_empty_set_is_ok(self):
        assert check_events((), "simX86").ok


class TestPortabilityMatrix:
    def test_matrix_covers_all_platforms(self):
        matrix = portability_matrix(("PAPI_TOT_CYC", "PAPI_TOT_INS"))
        assert set(matrix) == {
            "simT3E", "simX86", "simPOWER", "simALPHA",
            "simIA64", "simSPARC",
        }

    def test_e8_shape(self):
        # the L1 miss pair: fine most places, mpx-only on simSPARC
        matrix = portability_matrix(("PAPI_L1_DCM", "PAPI_L1_ICM"))
        assert matrix["simSPARC"].status == "mpx"
        assert matrix["simX86"].status == "ok"
        assert matrix["simALPHA"].status in ("sampling", "unavailable")

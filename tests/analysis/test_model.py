"""Unit tests: performance models parameterized from PAPI data."""

import pytest

from repro.analysis.model import (
    DEFAULT_FEATURES,
    PerformanceModel,
    collect_counters,
    fit_model,
    fit_platform_model,
)
from repro.platforms import create
from repro.workloads import dot, matmul


class TestCollect:
    def test_collect_counters(self):
        counters, cycles = collect_counters(
            "simIA64", lambda: dot(500, use_fma=True),
            ["PAPI_FP_OPS", "PAPI_TOT_INS"],
        )
        assert counters["PAPI_FP_OPS"] == 1000
        assert cycles > counters["PAPI_TOT_INS"] > 0

    def test_collect_is_deterministic(self):
        a = collect_counters("simPOWER", lambda: dot(300, use_fma=True),
                             ["PAPI_TOT_INS"])
        b = collect_counters("simPOWER", lambda: dot(300, use_fma=True),
                             ["PAPI_TOT_INS"])
        assert a == b


class TestFit:
    def test_model_fits_the_simulated_cost_function(self):
        """The VM's cycle cost is ~linear in counters: R^2 must be high."""
        model, _data = fit_platform_model("simIA64")
        assert model.r_squared > 0.95
        assert set(model.coefficients) == set(DEFAULT_FEATURES)

    def test_model_predicts_unseen_workload(self):
        """Train on the suite, predict a workload it never saw."""
        model, _data = fit_platform_model("simIA64")
        counters, cycles = collect_counters(
            "simIA64", lambda: matmul(20, use_fma=True), DEFAULT_FEATURES
        )
        assert model.relative_error(counters, cycles) < 0.25

    def test_miss_coefficient_reflects_memory_latency(self):
        """The fitted L2-miss coefficient lands near the machine's
        memory latency -- the model recovers hardware parameters."""
        model, _data = fit_platform_model("simIA64")
        mem_latency = create("simIA64").machine.hierarchy.config.mem_latency
        coef = model.coefficients["PAPI_L2_TCM"]
        assert 0.3 * mem_latency < coef < 3 * mem_latency

    def test_describe_mentions_platform_and_r2(self):
        model, _ = fit_platform_model("simT3E",
                                      features=["PAPI_TOT_INS",
                                                "PAPI_FP_OPS",
                                                "PAPI_L1_DCM"])
        text = model.describe()
        assert "simT3E" in text and "R^2" in text

    def test_underdetermined_fit_rejected(self):
        with pytest.raises(ValueError):
            fit_model("x", [({f: 1 for f in DEFAULT_FEATURES}, 100)])

    def test_predict_missing_feature_rejected(self):
        model = PerformanceModel(
            platform="x", features=["PAPI_TOT_INS"],
            coefficients={"PAPI_TOT_INS": 2.0}, r_squared=1.0,
            n_observations=3,
        )
        with pytest.raises(ValueError):
            model.predict({"PAPI_FP_OPS": 10})
        assert model.predict({"PAPI_TOT_INS": 5}) == 10.0

    def test_relative_error_validation(self):
        model = PerformanceModel(
            platform="x", features=["PAPI_TOT_INS"],
            coefficients={"PAPI_TOT_INS": 1.0}, r_squared=1.0,
            n_observations=3,
        )
        with pytest.raises(ValueError):
            model.relative_error({"PAPI_TOT_INS": 5}, 0)

"""Estimating aggregate counts from hardware samples (PAPI 3 preview).

Section 4: "aggregate event counts can be estimated from sampling data
with lower overhead than direct counting ... Future versions of PAPI
will ... provide an option for estimating aggregate counts from sampling
data."  The simALPHA substrate uses this machinery internally; the
helpers here are also the analysis layer for the calibrate-convergence
experiment (E2) and the sampling-period ablation (A2).
"""

from __future__ import annotations

import math
from dataclasses import astuple, dataclass
from typing import Callable, List, Sequence, Tuple

from repro.hw.pmu import SampleRecord


@dataclass(frozen=True)
class Estimate:
    """One sample-based count estimate with its statistical error bar."""

    value: float              #: estimated aggregate count
    n_samples: int            #: samples observed in total
    n_matches: int            #: samples matching the event
    period: float             #: average instructions per sample

    @property
    def relative_stderr(self) -> float:
        """Approximate relative standard error of the estimate.

        The match count is binomial(n_samples, p); the relative error of
        ``matches * period`` is sqrt((1-p)/(n*p)) -- the 1/sqrt(samples)
        convergence the paper's calibrate runs exhibit.
        """
        if self.n_matches == 0 or self.n_samples == 0:
            return math.inf
        p = self.n_matches / self.n_samples
        return math.sqrt((1.0 - p) / (self.n_samples * p))


def estimate_count(
    samples: Sequence[SampleRecord],
    period: float,
    predicate: Callable[[SampleRecord], bool],
) -> Estimate:
    """Estimate an aggregate event count from ProfileMe *samples*."""
    if period <= 0:
        raise ValueError("sampling period must be positive")
    matches = sum(1 for s in samples if predicate(s))
    return Estimate(
        value=matches * period,
        n_samples=len(samples),
        n_matches=matches,
        period=period,
    )


def sample_signature(samples: Sequence[SampleRecord]) -> Tuple[tuple, ...]:
    """Canonical hashable form of a sample stream, for exact comparison.

    Sampling is driven by a jittered countdown whose RNG draws are part of
    the simulated hardware state, so two runs of the same machine
    configuration must produce *identical* streams -- in particular with
    the block execution engine on vs. off (the engine defers to the
    interpreter around every sampling tick precisely so this holds).
    Equality of signatures is the strongest form of that check.
    """
    return tuple(astuple(s) for s in samples)


def relative_error(estimate: float, expected: float) -> float:
    """|estimate - expected| / expected (inf when expected == 0)."""
    if expected == 0:
        return math.inf if estimate else 0.0
    return abs(estimate - expected) / abs(expected)


@dataclass
class ConvergencePoint:
    """One (run length, error) observation in a convergence study."""

    run_instructions: int
    n_samples: int
    estimate: float
    expected: float

    @property
    def rel_error(self) -> float:
        return relative_error(self.estimate, self.expected)


class ConvergenceStudy:
    """Accumulates (run length, estimate, expected) points (E2 harness)."""

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.points: List[ConvergencePoint] = []

    def add(self, run_instructions: int, n_samples: int,
            estimate: float, expected: float) -> ConvergencePoint:
        point = ConvergencePoint(run_instructions, n_samples, estimate, expected)
        self.points.append(point)
        return point

    def errors(self) -> List[float]:
        return [p.rel_error for p in self.points]

    def is_converging(self, factor: float = 2.0) -> bool:
        """True when the last error beats the first by at least *factor*.

        Deliberately loose: sampling error is stochastic, so we check the
        trend, not monotonicity.
        """
        errs = self.errors()
        if len(errs) < 2:
            return False
        if errs[0] == 0:
            return errs[-1] == 0
        return errs[-1] <= errs[0] / factor or errs[-1] < 0.01

    def final_error(self) -> float:
        if not self.points:
            return math.inf
        return self.points[-1].rel_error

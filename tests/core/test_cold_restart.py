"""Regression tests: Papi.shutdown() followed by create() / init().

papid workers run many sessions through one interpreter, so a library
instance must come back from ``shutdown()`` with pristine state: fresh
handle numbering, a rebuilt preset map, and no PMU counter left running
from the previous life (the mid-run shutdown path sweeps every PMU).
"""

import pytest

from repro.core.errors import PapiError
from repro.core.library import Papi
from repro.platforms import PLATFORM_NAMES, create
from repro.workloads import CALIBRATION_KERNELS


def fresh(platform="simX86", seed=7):
    sub = create(platform, seed=seed)
    work = CALIBRATION_KERNELS["axpy"](16, use_fma=sub.HAS_FMA)
    sub.machine.load(work.program)
    return sub, Papi(sub), work


class TestColdRestart:
    @pytest.mark.parametrize("platform", PLATFORM_NAMES)
    def test_create_after_shutdown_resets_state(self, platform):
        sub, papi, work = fresh(platform)
        es = papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        es.start()
        sub.machine.run(max_instructions=500)
        es.stop()
        first_handle = es.handle
        papi.shutdown()
        assert not papi.initialized
        # create_eventset on a shut-down library re-initializes it and
        # numbering restarts from scratch (a cold restart, not a leak)
        es2 = papi.create_eventset()
        assert papi.initialized
        assert es2.handle == first_handle == 1
        es2.add_named("PAPI_TOT_INS")
        es2.start()
        sub.machine.load(work.program)  # the first life may have halted
        sub.machine.run(max_instructions=500)
        counts = dict(zip(es2.event_names, es2.stop()))
        if platform != "simALPHA":
            # simALPHA estimates counts from samples; a 167-instruction
            # kernel is far below its sampling period and rounds to 0
            assert counts["PAPI_TOT_INS"] > 0
        assert counts["PAPI_TOT_INS"] >= 0

    def test_mid_run_shutdown_quiesces_pmus(self):
        sub, papi, work = fresh()
        es = papi.create_eventset()
        es.add_named("PAPI_TOT_INS", "PAPI_TOT_CYC")
        es.start()
        sub.machine.run(max_instructions=500)
        # shutdown with the set still running: every PMU counter must
        # end up stopped, or the next life inherits phantom counts
        papi.shutdown()
        for cpu in sub.machine.cpus:
            for idx in range(sub.n_counters):
                assert not cpu.pmu.running(idx)

    def test_shutdown_is_idempotent_and_restartable(self):
        sub, papi, work = fresh()
        papi.shutdown()
        papi.shutdown()
        papi.init()
        es = papi.create_eventset()
        assert es.handle == 1

    def test_init_is_idempotent_on_a_live_library(self):
        sub, papi, work = fresh()
        es = papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        papi.init()  # must not clobber live eventsets
        assert papi._eventsets
        assert list(es.event_names) == ["PAPI_TOT_INS"]

    def test_old_eventset_is_dead_after_restart(self):
        sub, papi, work = fresh()
        es = papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        papi.shutdown()
        papi.init()
        with pytest.raises(PapiError):
            es.start()

"""Typestate lattice and transfer functions for the flow-sensitive linter.

The abstract domain tracks, per control-flow point:

- an **environment** mapping variable names to sets of abstract values
  (EventSet/Thread creation sites, PMU references);
- per abstract object a :class:`ObjFact`: the set of *possible*
  lifecycle states -- each element tagged with whether it was reached
  through an exception edge -- plus thread-attachment, ``bind_cpu`` and
  OS-level counter-binding facts.

Everything is a finite powerset, joins are elementwise unions (except
``must_bound``, which is an intersection), and all transfers are
elementwise filter/map -- so the worklist solver terminates and the
analysis is monotone by construction.

Rule logic (PL3xx/PL4xx) lives here too: after the fixpoint, a report
pass re-runs every node's transfer against its final IN fact with a
diagnostic sink attached.  The rules report both may-violations (wrong
on *some* path) and must-violations (wrong on every path); the engine's
shadow dedup drops the flow finding when PR 1's AST pass already
reported the same hazard on the same line, so must-cases surface under
the flow rules only where the AST pass is blind (summary-returned sets,
loop-carried state).  Objects whose state is completely unknown
(function parameters before any observed operation) are never reported.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.cfg import CFG, Node
from repro.lint.dataflow import Analysis
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import RULES

# -- lifecycle states ---------------------------------------------------

CREATED = "created"
RUNNING = "running"
STOPPED = "stopped"

ALL_STATES = frozenset({CREATED, RUNNING, STOPPED})

#: (state, via_exception) pairs for a fully unknown object.
UNKNOWN_ELEMENTS = frozenset((s, False) for s in ALL_STATES)

#: EventSet methods that require the set to be running.
REQUIRES_RUNNING = frozenset({"read", "stop", "reset", "accum"})

#: EventSet methods that require the set NOT to be running.  ``bind_cpu``
#: is here too: PR 3's runtime raises IsRunningError for it, but PR 1's
#: AST pass has no rule for it, so the flow pass is its only checker.
REQUIRES_STOPPED = frozenset({
    "start", "add_event", "add_events", "add_named", "remove_event",
    "cleanup", "set_multiplex", "set_domain", "attach", "detach",
    "overflow", "bind_cpu",
})

#: OS-level virtualized-counter operations requiring a prior bind.
OS_COUNTER_OPS = frozenset({
    "counter_start", "counter_stop", "counter_value", "unbind_counter",
})


# -- abstract values ----------------------------------------------------

PMU_VALUE = "pmu"


def eventset_id(line: int, col: int) -> str:
    return f"es@{line}:{col}"


def thread_id(line: int, col: int) -> str:
    return f"thread@{line}:{col}"


def param_id(index: int) -> str:
    return f"param:{index}"


def is_eventset(val: str) -> bool:
    return val.startswith("es@") or val.startswith("param:")


def is_thread(val: str) -> bool:
    return val.startswith("thread@")


# -- facts --------------------------------------------------------------


@dataclass(frozen=True)
class ObjFact:
    """May-facts about one abstract object (creation site or parameter)."""

    #: lifecycle: set of (state, reached_via_exception_edge) pairs
    states: FrozenSet[Tuple[str, bool]] = frozenset()
    #: thread identities this EventSet may currently be attached to
    attached: FrozenSet[str] = frozenset()
    #: bind_cpu() was called on some path (suppresses sharing hazards)
    bound_cpu: bool = False
    #: source lines where start() was observed (for report anchoring)
    started_lines: FrozenSet[int] = frozenset()
    #: counter indices that MAY be os.bind_counter-bound to this thread
    may_bound: FrozenSet[int] = frozenset()
    #: counter indices bound on EVERY path reaching this point
    must_bound: FrozenSet[int] = frozenset()

    def join(self, other: "ObjFact") -> "ObjFact":
        return ObjFact(
            states=self.states | other.states,
            attached=self.attached | other.attached,
            bound_cpu=self.bound_cpu or other.bound_cpu,
            started_lines=self.started_lines | other.started_lines,
            may_bound=self.may_bound | other.may_bound,
            must_bound=self.must_bound & other.must_bound,
        )

    def mark_exceptional(self) -> "ObjFact":
        return replace(
            self, states=frozenset((s, True) for s, _via in self.states)
        )

    @property
    def state_names(self) -> FrozenSet[str]:
        return frozenset(s for s, _via in self.states)


@dataclass(frozen=True)
class FlowFact:
    """One program point's abstract state (immutable; value-compared)."""

    env: Tuple[Tuple[str, FrozenSet[str]], ...] = ()
    objs: Tuple[Tuple[str, ObjFact], ...] = ()
    #: the join identity ("this point not reached yet") -- distinct
    #: from an empty-but-reachable fact, which tracks nothing yet but
    #: must still flow through transfers.
    is_bottom: bool = False

    @staticmethod
    def make(
        env: Dict[str, FrozenSet[str]], objs: Dict[str, ObjFact]
    ) -> "FlowFact":
        return FlowFact(
            env=tuple(sorted(env.items())),
            objs=tuple(sorted(objs.items())),
        )

    def env_dict(self) -> Dict[str, FrozenSet[str]]:
        return dict(self.env)

    def objs_dict(self) -> Dict[str, ObjFact]:
        return dict(self.objs)


BOTTOM = FlowFact(is_bottom=True)


def join_facts(a: FlowFact, b: FlowFact) -> FlowFact:
    if a.is_bottom:
        return b
    if b.is_bottom:
        return a
    env_a, env_b = a.env_dict(), b.env_dict()
    env = {
        name: env_a.get(name, frozenset()) | env_b.get(name, frozenset())
        for name in set(env_a) | set(env_b)
    }
    objs_a, objs_b = a.objs_dict(), b.objs_dict()
    objs: Dict[str, ObjFact] = {}
    for oid in set(objs_a) | set(objs_b):
        if oid in objs_a and oid in objs_b:
            objs[oid] = objs_a[oid].join(objs_b[oid])
        else:
            objs[oid] = objs_a.get(oid) or objs_b[oid]
    return FlowFact.make(env, objs)


# -- interprocedural summaries -----------------------------------------


@dataclass(frozen=True)
class ParamEffect:
    """Effect of calling a function on one parameter, per entry state."""

    exit_states: FrozenSet[str]
    #: (rule code, method name) misuses triggered for this entry state
    violations: Tuple[Tuple[str, str], ...] = ()


@dataclass
class FunctionSummary:
    """Net typestate effect of one module-level function."""

    name: str
    params: List[str]
    #: param index -> entry state -> effect
    effects: Dict[int, Dict[str, ParamEffect]] = field(default_factory=dict)
    #: lifecycle states of a locally created EventSet this fn returns
    returns_states: Optional[FrozenSet[str]] = None


# -- the analysis -------------------------------------------------------

#: a sink receives (rule, node, objid, message, hint, method)
Sink = Callable[[str, Node, str, str, str, str], None]


class TypestateAnalysis(Analysis[FlowFact]):
    """Forward may-analysis of PAPI object lifecycles over one scope."""

    def __init__(
        self,
        summaries: Optional[Dict[str, FunctionSummary]] = None,
        param_names: Optional[List[str]] = None,
        seed_param: Optional[Tuple[int, str]] = None,
    ) -> None:
        self.summaries = summaries or {}
        self.param_names = param_names or []
        self.seed_param = seed_param
        #: summary-computation mode: the caller decides may-vs-must, so
        #: record violations even when every path is bad.
        self.must_mode = seed_param is not None
        self.sink: Optional[Sink] = None
        self._node: Optional[Node] = None

    # -- lattice hooks -------------------------------------------------

    def initial(self) -> FlowFact:
        env: Dict[str, FrozenSet[str]] = {}
        objs: Dict[str, ObjFact] = {}
        for i, name in enumerate(self.param_names):
            oid = param_id(i)
            env[name] = frozenset({oid})
            elements = UNKNOWN_ELEMENTS
            if self.seed_param is not None and self.seed_param[0] == i:
                elements = frozenset({(self.seed_param[1], False)})
            objs[oid] = ObjFact(states=elements)
        return FlowFact.make(env, objs)

    def bottom(self) -> FlowFact:
        return BOTTOM

    def join(self, a: FlowFact, b: FlowFact) -> FlowFact:
        return join_facts(a, b)

    def exc_adapt(self, fact: FlowFact) -> FlowFact:
        """Facts crossing an exception edge get their via-exc bit set."""
        if fact.is_bottom:
            return fact
        objs = {
            oid: f.mark_exceptional() for oid, f in fact.objs_dict().items()
        }
        return FlowFact.make(fact.env_dict(), objs)

    # -- transfer ------------------------------------------------------

    def transfer(self, node: Node, fact: FlowFact) -> FlowFact:
        if node.stmt is None or fact.is_bottom:
            return fact
        self._node = node
        if node.kind in ("assume_true", "assume_false"):
            return self._refine(node, fact)
        interp = _StmtInterpreter(self, fact)
        interp.run(node.stmt)
        return interp.result()

    def _refine(self, node: Node, fact: FlowFact) -> FlowFact:
        """Path-sensitive narrowing from ``if es.running:`` style tests.

        Only the ``<expr>.running`` idiom (optionally negated) refines;
        any other condition leaves the fact unchanged.  A refinement
        that empties an object's state set proves the branch infeasible
        and returns bottom, so the join ignores it.
        """
        test = node.stmt.test  # type: ignore[union-attr]
        truth = node.kind == "assume_true"
        while isinstance(test, ast.UnaryOp) and isinstance(
            test.op, ast.Not
        ):
            test, truth = test.operand, not truth
        if not (isinstance(test, ast.Attribute) and test.attr == "running"):
            return fact
        interp = _StmtInterpreter(self, fact)
        receivers = [
            v for v in interp.eval(test.value)
            if is_eventset(v) and v in interp.objs
        ]
        if len(receivers) != 1:
            return fact  # aliased or untracked: refinement unsound
        oid = receivers[0]
        old = interp.objs[oid]
        kept = frozenset(
            (s, via) for s, via in old.states
            if (s == RUNNING) == truth
        )
        if not kept:
            return BOTTOM  # contradiction: this branch cannot be taken
        interp.objs[oid] = replace(old, states=kept)
        return interp.result()

    # -- reporting -----------------------------------------------------

    def report(
        self,
        rule: str,
        objid: str,
        message: str,
        hint: str = "",
        method: str = "",
    ) -> None:
        if self.sink is None or self._node is None:
            return
        node = self._node
        declared = RULES[rule]
        if node.guards and declared.guards:
            catchable = set(declared.guards) | {"Exception", "BaseException"}
            if set(node.guards) & catchable:
                return  # the script statically expects this failure
        self.sink(rule, node, objid, message, hint, method)


class _StmtInterpreter:
    """Interprets one statement's expressions over a working copy."""

    def __init__(self, analysis: TypestateAnalysis, fact: FlowFact) -> None:
        self.analysis = analysis
        self.env = fact.env_dict()
        self.objs = fact.objs_dict()

    def result(self) -> FlowFact:
        return FlowFact.make(self.env, self.objs)

    # -- statement dispatch --------------------------------------------

    def run(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            vals = self.eval(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, vals)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            vals = self.eval(stmt.value)
            self._assign_target(stmt.target, vals)
        elif isinstance(stmt, ast.AugAssign):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.eval(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.eval(stmt.test)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.eval(stmt.iter)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = frozenset()
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                vals = self.eval(item.context_expr)
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    self.env[item.optional_vars.id] = vals
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, (ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)
        # Try nodes appear as handler-entry markers only; FunctionDef /
        # ClassDef bodies are separate scopes.

    def _assign_target(self, target: ast.expr, vals: FrozenSet[str]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = vals  # strong, path-local update
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, frozenset())
        # attribute/subscript targets: no tracking

    # -- expressions ---------------------------------------------------

    def eval(self, node: ast.expr) -> FrozenSet[str]:
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Name):
            return self.env.get(node.id, frozenset())
        if isinstance(node, ast.Attribute):
            self.eval(node.value)
            if node.attr == "pmu":
                return frozenset({PMU_VALUE})
            return frozenset()
        if isinstance(node, ast.Constant):
            return frozenset()
        out: FrozenSet[str] = frozenset()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                child_vals = self.eval(child)
                if isinstance(node, (ast.IfExp,)):
                    out |= child_vals
        return out

    def _eval_call(self, node: ast.Call) -> FrozenSet[str]:
        argvals = [
            self.eval(a.value if isinstance(a, ast.Starred) else a)
            for a in node.args
        ]
        for kw in node.keywords:
            self.eval(kw.value)

        func = node.func
        if isinstance(func, ast.Attribute):
            return self._method_call(func, node, argvals)
        if isinstance(func, ast.Name):
            return self._function_call(func.id, node, argvals)
        self.eval(func)
        return frozenset()

    # -- helper lookups -------------------------------------------------

    def _literal_int(self, node: ast.expr) -> Optional[int]:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return node.value
        return None

    def _thread_identities(self, node: ast.expr) -> FrozenSet[str]:
        """Resolve a thread-valued argument to stable identities."""
        vals = frozenset(v for v in self.eval(node) if is_thread(v))
        if vals:
            return vals
        try:
            return frozenset({ast.unparse(node)})
        except Exception:  # pragma: no cover - malformed expression
            return frozenset()

    # -- method dispatch ------------------------------------------------

    def _method_call(
        self, func: ast.Attribute, node: ast.Call, argvals
    ) -> FrozenSet[str]:
        basevals = self.eval(func.value)
        method = func.attr

        if method == "create_eventset":
            oid = eventset_id(node.lineno, node.col_offset)
            self.objs[oid] = ObjFact(states=frozenset({(CREATED, False)}))
            return frozenset({oid})
        if method == "spawn":
            tid = thread_id(node.lineno, node.col_offset)
            self.objs.setdefault(tid, ObjFact())
            return frozenset({tid})

        if method == "bind_counter":
            self._os_bind_counter(node)
            return frozenset()
        if method in OS_COUNTER_OPS:
            self._os_counter_op(method, node)
            return frozenset()

        es_ids = [v for v in basevals if is_eventset(v) and v in self.objs]
        if es_ids:
            return self._eventset_method(es_ids, method, node)
        if PMU_VALUE in basevals and method in ("read", "stop"):
            self._pmu_direct_access(method, node)
        return frozenset()

    # -- EventSet lifecycle ---------------------------------------------

    def _eventset_method(
        self, es_ids: List[str], method: str, node: ast.Call
    ) -> FrozenSet[str]:
        strong = len(es_ids) == 1
        for oid in es_ids:
            old = self.objs[oid]
            new = self._apply_eventset_method(oid, old, method, node)
            self.objs[oid] = new if strong else old.join(new)
        if method in ("read", "stop", "accum"):
            return frozenset()  # counter values, not tracked objects
        return frozenset()

    def _apply_eventset_method(
        self, oid: str, fact: ObjFact, method: str, node: ast.Call
    ) -> ObjFact:
        states = fact.states
        names = fact.state_names
        if method in REQUIRES_RUNNING:
            bad = frozenset(s for s in names if s != RUNNING)
            if bad and names != ALL_STATES:
                where = (
                    "along some path" if RUNNING in names
                    else "on every path"
                )
                self.analysis.report(
                    "PL301", oid,
                    f"{method}() executes on an EventSet that is "
                    f"{'/'.join(sorted(bad))} {where}",
                    hint="every path reaching this call must have "
                         "start()ed the set (PAPI_ENOTRUN otherwise)",
                    method=method,
                )
            # the operation succeeded => the set was running; a stop
            # leaves it stopped, everything else leaves it running.
            post = STOPPED if method == "stop" else RUNNING
            new_states = frozenset(
                (post, via) for s, via in states if s == RUNNING
            )
            return replace(fact, states=new_states)

        if method in REQUIRES_STOPPED:
            if RUNNING in names and names != ALL_STATES:
                where = (
                    "along some path" if names != {RUNNING}
                    else "on every path"
                )
                self.analysis.report(
                    "PL302", oid,
                    f"{method}() executes on an EventSet that is "
                    f"still running {where}",
                    hint="stop() the set on every path first "
                         "(PAPI_EISRUN otherwise)",
                    method=method,
                )
            kept = frozenset((s, via) for s, via in states if s != RUNNING)
            if method == "start":
                new_states = frozenset((RUNNING, via) for _s, via in kept)
                return replace(
                    fact,
                    states=new_states,
                    started_lines=fact.started_lines | {node.lineno},
                )
            if method == "attach":
                return self._attach(fact, kept, node)
            if method == "detach":
                return replace(fact, states=kept, attached=frozenset())
            if method == "bind_cpu":
                return replace(fact, states=kept, bound_cpu=True)
            return replace(fact, states=kept)
        return fact

    def _attach(
        self,
        fact: ObjFact,
        kept: FrozenSet[Tuple[str, bool]],
        node: ast.Call,
    ) -> ObjFact:
        identities = (
            self._thread_identities(node.args[0]) if node.args
            else frozenset()
        )
        foreign = fact.attached - identities
        if foreign and identities and not fact.bound_cpu:
            self.analysis.report(
                "PL401", "",
                "this EventSet may still be owned by a different "
                "spawned thread here (attached on another path without "
                "an intervening detach)",
                hint="detach() on every path first, or bind_cpu() to "
                     "pin the counters to one CPU",
            )
        return replace(fact, states=kept, attached=identities)

    # -- OS-level counter virtualization ---------------------------------

    def _os_bind_counter(self, node: ast.Call) -> None:
        if len(node.args) < 2:
            return
        threads = [
            v for v in self.eval(node.args[0])
            if is_thread(v) and v in self.objs
        ]
        index = self._literal_int(node.args[1])
        if index is None:
            return
        for tid, fact in self.objs.items():
            if not is_thread(tid) or tid in threads:
                continue
            if index in fact.may_bound:
                self.analysis.report(
                    "PL401", tid,
                    f"counter {index} may still be bound to another "
                    f"thread on some path reaching this bind_counter",
                    hint="unbind_counter() on every path first (a "
                         "counter register is exclusive machine-wide)",
                )
        for tid in threads:
            fact = self.objs[tid]
            self.objs[tid] = replace(
                fact,
                may_bound=fact.may_bound | {index},
                must_bound=fact.must_bound | {index},
            )

    def _os_counter_op(self, method: str, node: ast.Call) -> None:
        if len(node.args) < 2:
            return
        threads = [
            v for v in self.eval(node.args[0])
            if is_thread(v) and v in self.objs
        ]
        index = self._literal_int(node.args[1])
        if index is None or not threads:
            return
        if method == "unbind_counter":
            for tid in threads:
                fact = self.objs[tid]
                self.objs[tid] = replace(
                    fact,
                    may_bound=fact.may_bound - {index},
                    must_bound=fact.must_bound - {index},
                )
            return
        for tid in threads:
            fact = self.objs[tid]
            if index not in fact.must_bound:
                qualifier = (
                    "on some path" if index in fact.may_bound
                    else "on any path"
                )
                self.analysis.report(
                    "PL403", tid,
                    f"{method}(thread, {index}): counter {index} is not "
                    f"bound to this thread {qualifier} reaching this call",
                    hint="os.bind_counter(thread, index) must dominate "
                         "every virtualized counter operation",
                )

    def _pmu_direct_access(self, method: str, node: ast.Call) -> None:
        index = self._literal_int(node.args[0]) if node.args else None
        if index is None:
            return
        owners = [
            tid for tid, fact in self.objs.items()
            if is_thread(tid) and index in fact.may_bound
        ]
        if owners:
            self.analysis.report(
                "PL402", owners[0],
                f"direct PMU {method}({index}) of a counter that is "
                f"bound to a thread; migration may have re-homed it to "
                f"another CPU's PMU",
                hint="route through os.counter_value(thread, index) "
                     "(or counter_stop), which follows counter_home",
            )

    # -- calls to module-level functions ---------------------------------

    def _function_call(
        self, name: str, node: ast.Call, argvals
    ) -> FrozenSet[str]:
        summary = self.analysis.summaries.get(name)
        if summary is None:
            # unknown callee: anything it got may end up in any state
            for vals in argvals:
                for oid in vals:
                    if is_eventset(oid) and oid in self.objs:
                        self.objs[oid] = replace(
                            self.objs[oid], states=UNKNOWN_ELEMENTS
                        )
            return frozenset()

        for pos, vals in enumerate(argvals):
            effects = summary.effects.get(pos)
            if effects is None:
                continue
            for oid in vals:
                if not (is_eventset(oid) and oid in self.objs):
                    continue
                self._apply_summary_effect(name, oid, effects, node)

        if summary.returns_states is not None:
            oid = eventset_id(node.lineno, node.col_offset)
            self.objs[oid] = ObjFact(states=frozenset(
                (s, False) for s in summary.returns_states
            ))
            return frozenset({oid})
        return frozenset()

    def _apply_summary_effect(
        self,
        fname: str,
        oid: str,
        effects: Dict[str, ParamEffect],
        node: ast.Call,
    ) -> None:
        fact = self.objs[oid]
        names = fact.state_names
        if names == ALL_STATES:
            # completely unknown: havoc through the call, stay silent
            self.objs[oid] = replace(fact, states=UNKNOWN_ELEMENTS)
            return
        new_states: Set[Tuple[str, bool]] = set()
        reported: Set[Tuple[str, str]] = set()
        clean_states = frozenset(
            s for s in names if not effects[s].violations
        )
        for s, via in fact.states:
            effect = effects[s]
            for rule, method in effect.violations:
                if (rule, method) in reported:
                    continue
                reported.add((rule, method))
                if clean_states or self.analysis.must_mode:
                    self.analysis.report(
                        rule, oid,
                        f"call to {fname}() performs {method}() on an "
                        f"EventSet that may be {s} here",
                        hint=f"{fname}() requires a different lifecycle "
                             f"state; normalize the set's state on "
                             f"every path before the call",
                        method=method,
                    )
            for exit_state in effect.exit_states:
                new_states.add((exit_state, via))
        self.objs[oid] = replace(fact, states=frozenset(new_states))


def eval_expr_values(
    analysis: TypestateAnalysis, fact: FlowFact, expr: ast.expr
) -> Tuple[FrozenSet[str], Dict[str, ObjFact]]:
    """Evaluate *expr* against *fact* without committing side effects.

    Used by the summary computation to resolve what a ``return``
    statement hands back to the caller.
    """
    interp = _StmtInterpreter(analysis, fact)
    vals = interp.eval(expr)
    return vals, interp.objs

"""The papi-lint engine: parse, analyze, suppress, sort.

One entry point per input kind:

- :func:`lint_source` / :func:`lint_file` run the AST API-misuse
  checker (with its embedded feasibility and preset-table hooks) over a
  Python instrumentation script; with ``flow=True`` the CFG-based
  typestate pass (:mod:`repro.lint.flow`) runs as well and its findings
  are merged;
- the feasibility and preset-table analyzers are also usable directly
  via :mod:`repro.lint.feasibility` and :mod:`repro.lint.presetlint`
  for the ``check-events`` / ``check-presets`` CLI verbs.

The two passes overlap by design: the AST pass reports *must*-misuses
in source order, the flow pass *may*-misuses over all paths.  When both
flag the same hazard at the same line the flow finding is dropped
(:data:`FLOW_SHADOWED_BY`), and any finding is reported at most once
per ``(rule, file, line, col)`` -- so enabling ``--flow`` never
double-reports.

A file that does not parse yields exactly one PL900 diagnostic at the
syntax error's position rather than raising -- linters report, they do
not crash.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.apilint import ApiLinter
from repro.lint.diagnostics import (
    Diagnostic,
    apply_suppressions,
    parse_suppressions,
    sort_diagnostics,
)

#: flow-pass rule -> AST-pass rules that report the same hazard.  A flow
#: finding is dropped when a shadowing AST finding exists on its line.
FLOW_SHADOWED_BY: Dict[str, Tuple[str, ...]] = {
    "PL301": ("PL001",),
    "PL302": ("PL002", "PL005", "PL007", "PL014"),
    "PL303": ("PL008", "PL017"),
    "PL304": ("PL008",),
    "PL401": ("PL015", "PL016"),
    "PL403": ("PL016",),
}


def dedupe_diagnostics(diagnostics: List[Diagnostic]) -> List[Diagnostic]:
    """At most one finding per (rule, file, line, col), first one wins."""
    seen: Set[Tuple[str, str, int, int]] = set()
    kept: List[Diagnostic] = []
    for diag in diagnostics:
        key = (diag.code, diag.path, diag.line, diag.col)
        if key in seen:
            continue
        seen.add(key)
        kept.append(diag)
    return kept


def _drop_shadowed(
    ast_diags: List[Diagnostic], flow_diags: List[Diagnostic]
) -> List[Diagnostic]:
    positions = {(d.code, d.line) for d in ast_diags}
    kept = []
    for diag in flow_diags:
        shadows = FLOW_SHADOWED_BY.get(diag.code, ())
        if any((code, diag.line) in positions for code in shadows):
            continue
        kept.append(diag)
    return kept


def lint_source(
    source: str,
    path: str = "<string>",
    default_platform: Optional[str] = None,
    flow: bool = False,
) -> List[Diagnostic]:
    """Lint Python *source*; returns sorted, suppression-filtered findings.

    *default_platform* supplies a platform for feasibility checks when
    the script itself does not pin one statically (the CLI's
    ``--platform`` flag).  *flow* additionally runs the CFG-based
    typestate pass (PL3xx/PL4xx rules).
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Diagnostic(
            "PL900", path, exc.lineno or 0, (exc.offset or 1) - 1,
            f"cannot parse: {exc.msg}",
        )]
    linter = ApiLinter(path, default_platform=default_platform)
    diagnostics = linter.lint(tree)
    if flow:
        from repro.lint.flow import lint_flow

        diagnostics = diagnostics + _drop_shadowed(
            diagnostics, lint_flow(tree, path)
        )
    diagnostics = dedupe_diagnostics(diagnostics)
    diagnostics = apply_suppressions(
        diagnostics, parse_suppressions(source)
    )
    return sort_diagnostics(diagnostics)


def lint_file(
    path: str,
    default_platform: Optional[str] = None,
    flow: bool = False,
) -> List[Diagnostic]:
    """Lint one file on disk (unreadable files become PL900)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
    except OSError as exc:
        return [Diagnostic(
            "PL900", path, 0, 0, f"cannot read file: {exc.strerror}",
        )]
    return lint_source(
        source, path, default_platform=default_platform, flow=flow
    )

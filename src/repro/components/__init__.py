"""PAPI-C-style components: pluggable counter planes beyond the core PMU.

A substrate registers an ordered tuple of components; component 0 is
always its own CPU component (the legacy PMU path), followed by the
socket-scoped uncore and energy planes.  Event names qualify with the
PAPI-C triple-colon form (``uncore:::MEM_BW_RD``); unqualified native
names keep resolving to the CPU component, bit-exact with the
pre-component library.

``COMPONENT_EVENT_SHORTS`` is the static namespace of the non-CPU
components (class-level, no machine required) -- papi-lint's PL019 and
the feasibility checker resolve component-qualified names against it
without instantiating a substrate.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.components.base import Component, ComponentEvent
from repro.components.cpu import CpuComponent
from repro.components.energy import ENERGY_EVENTS, EnergyComponent
from repro.components.uncore import UNCORE_EVENTS, UncoreComponent

#: component names every substrate registers, in cid order.
STANDARD_COMPONENTS: Tuple[str, ...] = ("cpu", "uncore", "energy")

#: static event namespace of the non-CPU components (for lint/feasibility:
#: the CPU component's namespace is per-platform, these are universal).
COMPONENT_EVENT_SHORTS: Dict[str, Tuple[str, ...]] = {
    "uncore": tuple(sorted(UNCORE_EVENTS)),
    "energy": tuple(sorted(ENERGY_EVENTS)),
}


def build_components(substrate, uncore_counters: int) -> Tuple[Component, ...]:
    """Build and register a substrate's component tuple (cids assigned)."""
    components = (
        CpuComponent(substrate),
        UncoreComponent(substrate.machine, n_counters=uncore_counters),
        EnergyComponent(substrate.machine),
    )
    for cid, comp in enumerate(components):
        comp.cid = cid
    return components


__all__ = [
    "COMPONENT_EVENT_SHORTS",
    "Component",
    "ComponentEvent",
    "CpuComponent",
    "ENERGY_EVENTS",
    "EnergyComponent",
    "STANDARD_COMPONENTS",
    "UNCORE_EVENTS",
    "UncoreComponent",
    "build_components",
]

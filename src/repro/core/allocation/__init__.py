"""Counter allocation: mapping events onto scarce physical counters.

Section 5 of the paper casts the problem as bipartite graph matching --
event vertices on one side, physical counters on the other, an edge
where a constraint table permits the pairing -- and describes both the
optimal matching algorithm shipped in PAPI 2.3 and the PAPI-3 plan to
split allocation into a hardware-independent solver plus per-platform
translation.  This package implements all of it:

- :mod:`repro.core.allocation.graph`: the hardware-independent problem
  model (:class:`MappingProblem`);
- :mod:`repro.core.allocation.matching`: optimal solvers (maximum
  cardinality via augmenting paths, maximum weight via the Hungarian
  method);
- :mod:`repro.core.allocation.greedy`: the first-fit baseline that real
  early substrates used, for the E4 comparison;
- :mod:`repro.core.allocation.translate`: the hardware-dependent half --
  translating constraint pairs and POWER counter groups into
  :class:`MappingProblem` instances and back into concrete assignments.
"""

from repro.core.allocation.graph import MappingProblem
from repro.core.allocation.greedy import first_fit
from repro.core.allocation.matching import (
    deficiency_witness,
    max_cardinality_matching,
    max_weight_matching,
)
from repro.core.allocation.translate import (
    AllocationResult,
    allocate,
    allocate_greedy,
)


def component_assignment(shorts, n_counters):
    """Assign component events to slots in a free-running counter bank.

    Allocation partitions an EventSet per component: CPU events go
    through the constraint-table matching above, while non-CPU component
    banks are unconstrained (any event can occupy any slot), so a
    sequential pack is already optimal.  Slots wrap modulo the bank
    width; events sharing a slot belong to different multiplexing
    windows of the same component.
    """
    return {short: i % n_counters for i, short in enumerate(shorts)}


__all__ = [
    "AllocationResult",
    "MappingProblem",
    "allocate",
    "allocate_greedy",
    "component_assignment",
    "deficiency_witness",
    "first_fit",
    "max_cardinality_matching",
    "max_weight_matching",
]

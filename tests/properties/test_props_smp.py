"""Property-based tests: SMP counter virtualization conserves every count.

Random worker pools, CPU counts, quanta and forced-placement schedules
(which create real cross-CPU migrations, not just affinity dispatch):

- **conservation**: at every quiescent point (no thread on a CPU), the
  sum of per-thread virtual counts equals the sum of the per-CPU PMUs'
  real signal totals -- no slice is ever double-counted or lost;
- **ground truth**: each thread's final virtual FMA count equals the
  count implied by its instruction stream alone, independent of
  placement history, mid-run stop/restart, or how often it migrated;
- **engine equivalence**: the whole SMP schedule is bit-identical with
  the block engine on and off.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.hw import Assembler, Signal
from repro.hw.machine import Machine, MachineConfig
from repro.hw.pmu import PMUConfig
from repro.simos.scheduler import OS
from repro.simos.thread import ThreadState

MAX_THREADS = 4

workers = st.lists(
    st.tuples(
        st.integers(min_value=5, max_value=60),   # loop iterations
        st.integers(min_value=1, max_value=3),    # FMAs per iteration
        st.booleans(),                            # add memory traffic?
    ),
    min_size=2,
    max_size=MAX_THREADS,
)

schedules = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=MAX_THREADS - 1),  # thread pick
        st.integers(min_value=0, max_value=7),                # cpu pick
        st.booleans(),                            # stop/restart counter?
    ),
    min_size=0,
    max_size=10,
)

setups = st.fixed_dictionaries({
    "ncpus": st.integers(min_value=1, max_value=3),
    "quantum": st.integers(min_value=200, max_value=1500),
})


def build_worker(index, iters, fmas, mem):
    asm = Assembler(name=f"w{index}")
    base = asm.reserve_data(32)
    asm.label("main")
    asm.li("r1", 0)
    asm.li("r2", iters)
    asm.li("r9", base)
    asm.fli("f1", 1.25)
    asm.fli("f2", 0.5)
    asm.label("loop")
    for _ in range(fmas):
        asm.fma("f3", "f1", "f2", "f3")
    if mem:
        asm.load("r6", "r9", 2)
        asm.store("r4", "r9", 5)
    asm.addi("r1", "r1", 1)
    asm.blt("r1", "r2", "loop")
    asm.halt()
    return asm.build()


def run_schedule(specs, setup, schedule, block_engine):
    """Run one random SMP schedule; return every observable + checks."""
    machine = Machine(MachineConfig(
        ncpus=setup["ncpus"],
        pmu=PMUConfig(n_counters=MAX_THREADS),
        block_engine=block_engine,
    ))
    os_ = OS(machine, quantum_cycles=setup["quantum"])
    threads = [
        os_.spawn(build_worker(i, *spec)) for i, spec in enumerate(specs)
    ]
    truths = [iters * fmas for (iters, fmas, _mem) in specs]
    for i, t in enumerate(threads):
        machine.cpus[0].pmu.program(i, [Signal.FP_FMA])
        os_.bind_counter(t, i)
        os_.counter_start(t, i)

    def conservation_ok():
        virtual = sum(
            os_.counter_value(t, i) for i, t in enumerate(threads)
        )
        real = sum(cpu.counts[Signal.FP_FMA] for cpu in machine.cpus)
        return virtual == real

    checkpoints = []
    stopped = set()
    for tpick, cpick, toggle in schedule:
        ready = [t for t in threads if t.state is ThreadState.READY]
        if not ready:
            break
        t = ready[tpick % len(ready)]
        i = threads.index(t)
        os_.run_slice(t, cpu=cpick % setup["ncpus"])
        # stopping an EventSet mid-migration must neither double-count
        # nor lose the running slice: stop, observe, restart.
        if toggle and t.state is ThreadState.READY and i not in stopped:
            mid = os_.counter_stop(t, i)
            assert 0 <= mid <= truths[i]
            os_.counter_start(t, i)
        checkpoints.append(conservation_ok())
    stats = os_.run()
    checkpoints.append(conservation_ok())
    finals = [os_.counter_stop(t, i) for i, t in enumerate(threads)]
    assert all(checkpoints), "conservation violated at a quiescent point"
    assert finals == truths, (
        f"virtual counts {finals} != instruction-stream truth {truths} "
        f"(migrations={stats.migrations})"
    )
    return {
        "finals": finals,
        "per_cpu_fma": [c.counts[Signal.FP_FMA] for c in machine.cpus],
        "per_cpu_cyc": [c.counts[Signal.TOT_CYC] for c in machine.cpus],
        "thread_cycles": [t.user_cycles for t in threads],
        "thread_last_cpu": [t.last_cpu for t in threads],
        "migrations": stats.migrations,
        "counter_migrations": stats.counter_migrations,
        "cpu_slices": list(stats.cpu_slices),
        "cpu_busy": list(stats.cpu_busy_cycles),
        "system_cycles": machine.system_cycles,
    }


class TestSMPConservation:
    @given(workers, setups, schedules)
    @settings(deadline=None)
    def test_conservation_and_ground_truth(self, specs, setup, schedule):
        run_schedule(specs, setup, schedule, block_engine=True)

    @given(workers, setups, schedules)
    @settings(deadline=None)
    def test_engine_on_off_identical(self, specs, setup, schedule):
        on = run_schedule(specs, setup, schedule, block_engine=True)
        off = run_schedule(specs, setup, schedule, block_engine=False)
        for key in on:
            assert on[key] == off[key], key

    @given(workers, st.integers(min_value=200, max_value=1500))
    @settings(deadline=None)
    def test_cycle_conservation(self, specs, quantum):
        """Scheduled thread time sums to the CPUs' executed cycles."""
        machine = Machine(MachineConfig(
            ncpus=2, pmu=PMUConfig(n_counters=MAX_THREADS)
        ))
        os_ = OS(machine, quantum_cycles=quantum)
        threads = [
            os_.spawn(build_worker(i, *spec))
            for i, spec in enumerate(specs)
        ]
        os_.run()
        assert sum(t.user_cycles for t in threads) == sum(
            c.counts[Signal.TOT_CYC] for c in machine.cpus
        )

"""Statistical call sampling for probes: trading accuracy for overhead.

Section 4: "Unacceptable overhead has caused some tool developers to
reduce the number of calls through statistical sampling techniques
[Mendes & Reed]."  The technique: instead of reading counters on *every*
function entry/exit, read on every k-th call (per function) and scale
the accumulated deltas by k.  Overhead drops by ~k; per-function totals
become estimates whose error depends on call-to-call variance.

:class:`SamplingPapiProbe` is a drop-in replacement for
:class:`~repro.tools.dynaprof.PapiProbe`; the A4 ablation benchmark
sweeps k to trace the overhead/accuracy curve.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.errors import InvalidArgumentError
from repro.core.library import Papi
from repro.hw.cpu import CPU
from repro.tools.dynaprof import FunctionProfile, PapiProbe


class SamplingPapiProbe(PapiProbe):
    """A PAPI probe that measures only every k-th call per function.

    On a *measured* call the probe reads counters at entry and exit and
    accumulates the delta scaled by k; on skipped calls it does nothing
    but bump a counter (no reads -> no interface cost).  ``calls`` in
    the resulting profiles reflects *actual* calls; metric totals are
    scaled estimates.

    Exclusive-time accounting is not attempted under sampling (a skipped
    parent cannot subtract its children), matching the real tools, which
    report inclusive estimates in this mode; ``exclusive`` mirrors the
    inclusive estimate.
    """

    def __init__(self, papi: Papi, events: Sequence[str], k: int) -> None:
        super().__init__(papi, events)
        if k < 1:
            raise InvalidArgumentError("sampling factor k must be >= 1")
        self.k = k
        self._call_seen: Dict[str, int] = {}
        self._entry_stack: List[Tuple[str, bool, Dict[str, float]]] = []
        self.measured_calls = 0
        self.skipped_calls = 0

    def on_entry(self, function: str, cpu: CPU) -> None:
        seen = self._call_seen.get(function, 0)
        self._call_seen[function] = seen + 1
        measure = seen % self.k == 0
        if measure:
            self.measured_calls += 1
            snapshot = self._snapshot()  # the only costly operation
        else:
            self.skipped_calls += 1
            snapshot = {}
        self._entry_stack.append((function, measure, snapshot))

    def on_exit(self, function: str, cpu: CPU) -> None:
        if not self._entry_stack:
            return
        name, measured, entry = self._entry_stack.pop()
        prof = self.profiles.setdefault(name, FunctionProfile(name))
        prof.calls += 1
        if not measured:
            return
        now = self._snapshot()
        scaled = {m: (now[m] - entry[m]) * self.k for m in now}
        prof._add(prof.inclusive, scaled)
        prof._add(prof.exclusive, scaled)

    def estimate_error_bound(self, function: str) -> float:
        """Half-width heuristic: 1/sqrt(measured samples) of the total."""
        prof = self.profiles.get(function)
        if prof is None or prof.calls == 0:
            return float("inf")
        measured = (prof.calls + self.k - 1) // self.k
        return 1.0 / measured ** 0.5

"""Structured program construction helpers.

Hand-writing assembly for every workload gets error-prone fast; this
module adds the two abstractions the kernels need on top of
:class:`~repro.hw.isa.Assembler`:

- :class:`Flow`: structured control flow (counted loops with unique
  labels, so loops nest without label collisions);
- :class:`Expectations`: the analytically known event counts of a
  kernel, which calibration (E2/E6) and the test suite check measured
  counts against.

Register conventions used by all kernels in this package:

- ``r24``-``r31``: loop counters and limits (outermost uses the highest)
- ``r1``-``r15``: addresses and scratch integers
- ``f0``-``f15``: floating point working set
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.hw.isa import Assembler, Program


@dataclass
class Expectations:
    """Analytic ground truth for a kernel (fields are None when unknown).

    ``flops`` follows the PAPI_FP_OPS convention: an FMA contributes two,
    a precision convert contributes zero.  ``fp_ins`` counts fp
    *instructions*: FMA is one, converts count one each.
    """

    flops: Optional[int] = None
    fp_ins: Optional[int] = None
    fma: Optional[int] = None
    converts: Optional[int] = None
    loads: Optional[int] = None
    stores: Optional[int] = None
    #: name of the function expected to dominate the profile
    hot_function: Optional[str] = None
    notes: str = ""
    extra: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class Workload:
    """A program plus its analytic expectations."""

    name: str
    program: Program
    expect: Expectations


class Flow:
    """Structured control flow over an :class:`Assembler`."""

    def __init__(self, asm: Assembler) -> None:
        self.asm = asm
        self._counter = 0

    def unique(self, prefix: str) -> str:
        self._counter += 1
        return f"__{prefix}_{self._counter}"

    @contextmanager
    def loop(self, n: int, counter: str, limit: str) -> Iterator[str]:
        """``for counter in range(n)``; yields the loop-top label.

        The loop body must preserve *counter* and *limit*.  Executes the
        body exactly *n* times (not at all for n <= 0).
        """
        asm = self.asm
        top = self.unique("loop")
        done = self.unique("done")
        asm.li(counter, 0)
        asm.li(limit, int(n))
        asm.label(top)
        asm.bge(counter, limit, done)
        yield top
        asm.addi(counter, counter, 1)
        asm.jmp(top)
        asm.label(done)

    @contextmanager
    def loop_to_reg(self, limit_reg: str, counter: str) -> Iterator[str]:
        """``for counter in range(reg)`` with the limit already in a register."""
        asm = self.asm
        top = self.unique("loop")
        done = self.unique("done")
        asm.li(counter, 0)
        asm.label(top)
        asm.bge(counter, limit_reg, done)
        yield top
        asm.addi(counter, counter, 1)
        asm.jmp(top)
        asm.label(done)

    @contextmanager
    def if_ge(self, ra: str, rb: str) -> Iterator[None]:
        """Execute the body only when ``ra >= rb``."""
        asm = self.asm
        skip = self.unique("else")
        asm.blt(ra, rb, skip)
        yield
        asm.label(skip)

    def diamond_lt(self, ra: str, rb: str, then_body, else_body) -> None:
        """A full if/else diamond on ``ra < rb``.

        *then_body* and *else_body* are callables emitting the two arms
        (either may emit nothing).  Exactly one arm executes per entry:
        per dynamic pass this costs one conditional branch plus the arm,
        plus a ``jmp`` over the else arm on the taken side -- the
        canonical two-sided control shape the refutation generator uses
        to discriminate branch-accounting model parameters.
        """
        asm = self.asm
        other = self.unique("else")
        join = self.unique("join")
        asm.bge(ra, rb, other)
        then_body()
        asm.jmp(join)
        asm.label(other)
        else_body()
        asm.label(join)


def trip_count_overhead(n: int) -> int:
    """Loop-control instructions executed by one ``Flow.loop`` of *n* trips.

    Useful when a test wants an exact TOT_INS expectation: 2 setup
    instructions, then per trip one bge + body + addi + jmp, and a final
    bge that exits.  (Exposed for the test suite.)
    """
    return 2 + 3 * n + 1


def loop_control_vector(n: int) -> Dict[int, int]:
    """Exact per-signal counts of one ``Flow.loop``'s control overhead.

    Maps :class:`repro.hw.events.Signal` indices to the counts the loop
    scaffolding alone contributes for *n* trips: two ``li`` to set up
    counter and limit, per trip one ``bge`` (not taken), the body-free
    ``addi``/``jmp`` tail, and the final taken ``bge`` that exits.  The
    static counter oracle (:mod:`repro.lint.staticoracle`) derives the
    same numbers from first principles; exposing the closed form here
    lets tests pin both against each other and against the machine.
    """
    from repro.hw.events import Signal

    trips = max(0, int(n))
    return {
        Signal.TOT_INS: trip_count_overhead(trips),
        Signal.INT_INS: 2 + trips,          # 2x li + per-trip addi
        Signal.BR_INS: 2 * trips + 1,       # per-trip bge + jmp, final bge
        Signal.BR_CN: trips + 1,            # the bge checks
        Signal.BR_NTK: trips,               # every in-loop check falls through
        Signal.BR_TKN: 1,                   # the exit check
    }

"""The PAPI library object: initialization, event queries, eventsets.

One :class:`Papi` instance corresponds to one initialized PAPI library
on one platform substrate (``PAPI_library_init`` in C terms).  It owns:

- the resolved preset table for its platform (which presets exist, and
  whether each is direct or derived -- the data behind the portability
  matrix of experiment E8);
- the native event code space (``0x4000_0000 | index``);
- the registry of live EventSets (one may run at a time, anticipating
  PAPI 3's removal of overlapping EventSets, as Section 5 describes);
- the portable timer and memory-utilization services.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core import constants as C
from repro.core.errors import (
    NoSuchEventError,
    NoSuchEventSetError,
    PapiError,
)
from repro.core.resilience import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.core.presets import (
    PRESETS,
    PresetMapping,
    platform_preset_map,
    preset_from_code,
)
from repro.platforms.base import NativeEvent, Substrate
from repro.simos.thread import Thread
from repro.simos.vmem import MemoryInfo


@dataclass(frozen=True)
class EventInfo:
    """PAPI_get_event_info: everything known about one event code."""

    code: int
    symbol: str
    description: str
    is_preset: bool
    available: bool
    kind: str                       # "direct" | "derived" | "native" | "-"
    native_terms: Tuple[Tuple[str, int], ...]


class Papi:
    """An initialized PAPI library bound to one platform substrate."""

    #: specification version, mirroring PAPI_VER_CURRENT at paper time.
    VERSION = (2, 3, 4)

    def __init__(self, substrate: Substrate) -> None:
        self.substrate = substrate
        #: retry-with-backoff policy for transient substrate failures
        #: (see :mod:`repro.core.resilience`); replace to tune.
        self.retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY
        #: opt-in graceful degradation: when counter-loss recovery finds
        #: re-allocation infeasible, finish the run multiplexed instead
        #: of raising PAPI_ECLOST.  Off by default -- multiplexed counts
        #: are estimates, and the library never trades exactness away
        #: silently.
        self.degrade_to_multiplex = False
        self._initialize()

    def _initialize(self) -> None:
        """(Re)build the per-library state: tables, registry, handles."""
        substrate = self.substrate
        self.preset_map: Dict[str, PresetMapping] = platform_preset_map(
            substrate.NAME
        )
        self._native_names: List[str] = sorted(substrate.native_events)
        self._native_code_by_name: Dict[str, int] = {
            name: C.PAPI_NATIVE_MASK | i
            for i, name in enumerate(self._native_names)
        }
        # non-CPU component namespaces: cid -> sorted short names.  The
        # CPU component (cid 0) is the legacy native code space above, so
        # unqualified names and `cpu:::NAME` resolve to identical codes.
        self._component_event_names: Dict[int, Tuple[str, ...]] = {
            comp.cid: comp.event_names()
            for comp in substrate.components
            if comp.cid != C.PAPI_CPU_COMPONENT
        }
        self._eventsets: Dict[int, "EventSet"] = {}
        self._next_handle = 1
        self._running_handle: Optional[int] = None
        self.initialized = True

    def init(self) -> None:
        """PAPI_library_init after PAPI_shutdown: cold-restart the library.

        Rebuilds every piece of per-library state (preset tables, native
        code space, EventSet registry, handle allocator) so the instance
        behaves exactly like a freshly constructed one.  Idempotent on an
        already-initialized library (matching ``PAPI_library_init``
        returning the current version when called twice).  The daemon's
        worker-respawn path depends on this: a respawned worker re-uses
        the process and must get a genuinely fresh library.
        """
        if self.initialized:
            return
        self._initialize()

    # ------------------------------------------------------------------
    # event namespace
    # ------------------------------------------------------------------

    def event_name_to_code(self, name: str) -> int:
        """Resolve a preset symbol, native name, or ``comp:::EVENT``."""
        if C.PAPI_COMPONENT_SEPARATOR in name:
            comp_name, short = name.split(C.PAPI_COMPONENT_SEPARATOR, 1)
            comp = self.substrate.component(comp_name)
            if comp.cid == C.PAPI_CPU_COMPONENT:
                # cpu:::NAME is an alias for the legacy native code, so
                # qualified CPU events are trivially bit-exact.
                code = self._native_code_by_name.get(short)
                if code is None:
                    raise NoSuchEventError(
                        f"{name!r} on {self.substrate.NAME}"
                    )
                return code
            comp.query(short)  # raises NoSuchEventError for bad shorts
            index = self._component_event_names[comp.cid].index(short)
            return (C.PAPI_NATIVE_MASK
                    | (comp.cid << C.PAPI_COMPONENT_SHIFT)
                    | index)
        if name.startswith("PAPI_"):
            from repro.core.presets import preset_from_symbol

            return preset_from_symbol(name).code
        code = self._native_code_by_name.get(name)
        if code is None:
            raise NoSuchEventError(f"{name!r} on {self.substrate.NAME}")
        return code

    def event_code_to_name(self, code: int) -> str:
        if C.is_preset(code):
            return preset_from_code(code).symbol
        if C.is_native(code):
            cid = C.component_id(code)
            idx = C.native_index(code)
            if cid != C.PAPI_CPU_COMPONENT:
                names = self._component_event_names.get(cid)
                if names is not None and 0 <= idx < len(names):
                    comp = self.substrate.component_by_id(cid)
                    return (f"{comp.name}{C.PAPI_COMPONENT_SEPARATOR}"
                            f"{names[idx]}")
            elif 0 <= idx < len(self._native_names):
                return self._native_names[idx]
        raise NoSuchEventError(f"bad event code 0x{code:08x}")

    def query_event(self, code: int) -> bool:
        """PAPI_query_event: can this event be counted on this platform?"""
        if C.is_preset(code):
            preset = preset_from_code(code)
            return preset.symbol in self.preset_map
        if C.is_native(code):
            cid = C.component_id(code)
            if cid != C.PAPI_CPU_COMPONENT:
                names = self._component_event_names.get(cid)
                return (names is not None
                        and 0 <= C.native_index(code) < len(names))
            return 0 <= C.native_index(code) < len(self._native_names)
        return False

    def query_named(self, name: str) -> bool:
        """Name-level availability check (``PAPI_query_named_event``)."""
        try:
            self.event_name_to_code(name)
        except PapiError:
            return False
        return True

    def resolve_terms(self, code: int) -> Tuple[Tuple[NativeEvent, int], ...]:
        """Event code -> ((native event, coefficient), ...) for this platform."""
        if C.is_native(code) and C.component_id(code) != C.PAPI_CPU_COMPONENT:
            raise NoSuchEventError(
                f"{self.event_code_to_name(code)} is a component event; "
                "it has no CPU native-term decomposition"
            )
        if C.is_preset(code):
            preset = preset_from_code(code)
            mapping = self.preset_map.get(preset.symbol)
            if mapping is None:
                raise NoSuchEventError(
                    f"{preset.symbol} is not available on {self.substrate.NAME}"
                )
            return tuple(
                (self.substrate.query_native(name), coeff)
                for name, coeff in mapping.terms
            )
        if C.is_native(code):
            name = self.event_code_to_name(code)
            return ((self.substrate.query_native(name), 1),)
        raise NoSuchEventError(f"bad event code 0x{code:08x}")

    def event_info(self, code: int) -> EventInfo:
        if C.is_preset(code):
            preset = preset_from_code(code)
            mapping = self.preset_map.get(preset.symbol)
            if mapping is None:
                return EventInfo(
                    code, preset.symbol, preset.description,
                    True, False, "-", (),
                )
            return EventInfo(
                code, preset.symbol, preset.description,
                True, True, mapping.kind, mapping.terms,
            )
        if C.is_native(code) and C.component_id(code) != C.PAPI_CPU_COMPONENT:
            name = self.event_code_to_name(code)
            comp = self.substrate.component_by_id(C.component_id(code))
            short = name.split(C.PAPI_COMPONENT_SEPARATOR, 1)[1]
            return EventInfo(
                code, name, comp.query(short).description,
                False, True, "component", (),
            )
        name = self.event_code_to_name(code)
        native = self.substrate.query_native(name)
        return EventInfo(
            code, name, native.description, False, True, "native",
            ((name, 1),),
        )

    def list_presets(self, available_only: bool = False) -> List[EventInfo]:
        """Catalogue walk (PAPI_enum_event over presets)."""
        out = []
        for preset in PRESETS:
            info = self.event_info(preset.code)
            if info.available or not available_only:
                out.append(info)
        return out

    def list_native_codes(self) -> List[int]:
        return [self._native_code_by_name[n] for n in self._native_names]

    # ------------------------------------------------------------------
    # components (PAPI-C enumeration)
    # ------------------------------------------------------------------

    def num_components(self) -> int:
        """PAPI_num_components: registered counter planes (cpu included)."""
        return self.substrate.num_components

    @property
    def components(self) -> Tuple["object", ...]:
        return self.substrate.components

    def component(self, name: str):
        """Component by name; raises ``PAPI_ENOCMP`` when unregistered."""
        return self.substrate.component(name)

    def component_by_id(self, cid: int):
        return self.substrate.component_by_id(cid)

    def component_event_codes(self, name: str) -> List[int]:
        """All event codes of one component, in enumeration order."""
        comp = self.substrate.component(name)
        sep = C.PAPI_COMPONENT_SEPARATOR
        return [
            self.event_name_to_code(f"{comp.name}{sep}{short}")
            for short in comp.event_names()
        ]

    def availability_summary(self) -> Dict[str, str]:
        """Preset symbol -> 'direct' | 'derived' | '-' (for E8)."""
        out = {}
        for preset in PRESETS:
            mapping = self.preset_map.get(preset.symbol)
            out[preset.symbol] = mapping.kind if mapping else "-"
        return out

    # ------------------------------------------------------------------
    # eventsets
    # ------------------------------------------------------------------

    def create_eventset(self) -> "EventSet":
        from repro.core.eventset import EventSet  # cycle-free late import

        if not self.initialized:
            # shutdown() followed by create: cold-restart transparently,
            # the way PAPI_library_init may be called again after
            # PAPI_shutdown.  All prior handles are gone by definition.
            self.init()
        handle = self._next_handle
        self._next_handle += 1
        es = EventSet(self, handle)
        self._eventsets[handle] = es
        return es

    def eventset(self, handle: int) -> "EventSet":
        try:
            return self._eventsets[handle]
        except KeyError:
            raise NoSuchEventSetError(f"handle {handle}") from None

    def destroy_eventset(self, es: "EventSet") -> None:
        from repro.core.errors import IsRunningError

        if es.running:
            raise IsRunningError("stop the eventset before destroying it")
        self._eventsets.pop(es.handle, None)

    def _acquire_counters(self, es: "EventSet") -> None:
        from repro.core.errors import IsRunningError

        if self._eventsets.get(es.handle) is not es:
            # a handle from before a shutdown()/init() cold restart:
            # it must not grab the new life's counters
            raise NoSuchEventSetError(
                f"handle {es.handle} belongs to a previous library life"
            )
        if self._running_handle is not None and self._running_handle != es.handle:
            raise IsRunningError(
                "another EventSet is already running (overlapping EventSets "
                "are not supported, anticipating their removal in PAPI 3)"
            )
        self._running_handle = es.handle

    def _release_counters(self, es: "EventSet") -> None:
        if self._running_handle == es.handle:
            self._running_handle = None

    @property
    def num_counters(self) -> int:
        """PAPI_num_counters: physical counters on this platform."""
        return self.substrate.n_counters

    # ------------------------------------------------------------------
    # timers (the paper's "most popular feature")
    # ------------------------------------------------------------------

    def get_real_cyc(self) -> int:
        return self.substrate.real_cyc()

    def get_real_usec(self) -> float:
        return self.substrate.real_usec()

    def get_virt_cyc(self, thread: Optional[Thread] = None) -> int:
        return self.substrate.virt_cyc(thread)

    def get_virt_usec(self, thread: Optional[Thread] = None) -> float:
        return self.substrate.virt_usec(thread)

    # ------------------------------------------------------------------
    # memory utilization (the PAPI 3 extension, Section 5)
    # ------------------------------------------------------------------

    def get_dmem_info(self, thread: Optional[Thread] = None) -> MemoryInfo:
        from repro.core.memory import dmem_info

        return dmem_info(self, thread)

    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """PAPI_shutdown: stop anything running and drop all eventsets.

        Idempotent and tolerant of misbehaving clients: still-running
        EventSets are stopped (falling back to the emergency teardown if
        a clean stop fails), their counters released, and a second call
        finds nothing left to do instead of assuming clean behaviour.

        After the per-EventSet teardown a raw per-CPU PMU sweep stops
        and clears every physical counter.  Multiplexed sets own no
        direct assignment, so their emergency path cannot name the
        counters it should scrub; the sweep guarantees the PMU is
        quiesced regardless, which :meth:`init` relies on for a clean
        cold restart.
        """
        for es in list(self._eventsets.values()):
            if es.running:
                try:
                    es.stop()
                except PapiError:
                    es._emergency_stop()
        self._quiesce_pmus()
        self._eventsets.clear()
        self._running_handle = None
        self.initialized = False

    def _quiesce_pmus(self) -> None:
        """Stop and clear every physical counter on every CPU; never raises.

        Bypasses the substrate call boundary (and therefore the fault
        injector) the same way :meth:`EventSet._quiesce_direct` does:
        raw register cleanup is the one operation shutdown can always
        rely on.
        """
        machine = getattr(self.substrate, "machine", None)
        for cpu in getattr(machine, "cpus", ()) or ():
            pmu = getattr(cpu, "pmu", None)
            if pmu is None:
                continue
            for idx in range(self.substrate.n_counters):
                try:
                    if pmu.running(idx):
                        pmu.stop(idx)
                    pmu.clear(idx)
                except Exception:
                    pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Papi v{'.'.join(map(str, self.VERSION))} on "
            f"{self.substrate.NAME}, {len(self._eventsets)} eventsets>"
        )

"""Overflow dispatch: counter threshold crossings -> user callbacks.

"The low-level interface ... provides the functionality of user
callbacks on counter overflow" (Section 2).  The PMU raises an
:class:`~repro.hw.pmu.OverflowRecord` with the *interrupt* program
counter -- which, on out-of-order platforms, has skidded several
instructions past the instruction that caused the event (Section 4's
attribution problem).  This module packages the record into the
PAPI-level :class:`OverflowInfo` handed to user handlers.

``true_address`` carries the skid-free causing address.  Real hardware
does not reveal it through this interface; it is exposed here (clearly
marked) because the reproduction's E5 experiment needs ground truth to
*measure* the attribution error the paper describes.  Portable tools
must only use ``address``.

Interaction with the block execution engine: overflow thresholds are
*deadlines* for the engine (:mod:`repro.hw.blockcache`).  Before each
bulk step the engine queries ``PMU.watch_constraints`` for the headroom
below every armed ``next_trigger`` and declines any block that could
cross it, so the threshold-crossing instruction, the skid draw and the
delivery all happen on the precise interpreter path -- overflow handlers
observe identical ``OverflowInfo`` records (addresses, cycles, counts)
whether the engine is on or off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.hw.isa import INS_BYTES
from repro.hw.pmu import PMU, OverflowRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.eventset import EventSet
    from repro.platforms.base import NativeEvent


@dataclass(frozen=True)
class OverflowInfo:
    """What a PAPI overflow handler receives."""

    eventset_handle: int
    code: int                 #: the overflowing event's code
    symbol: str               #: its name
    address: int              #: interrupt pc as a byte address (with skid)
    overflow_count: int       #: how many times this watch has fired
    threshold: int
    cycle: int                #: machine cycle of delivery
    #: ground-truth causing address (simulation-only diagnostic; see
    #: module docstring).  Portable code must ignore this.
    true_address: int


@dataclass
class OverflowRegistration:
    """One PAPI_overflow registration, installable onto a PMU counter."""

    eventset: "EventSet"
    code: int
    native: "NativeEvent"
    threshold: int
    handler: Callable[[OverflowInfo], None]

    def install(self, pmu: PMU, counter_index: int) -> None:
        symbol = self.eventset.papi.event_code_to_name(self.code)
        handle = self.eventset.handle
        threshold = self.threshold
        user_handler = self.handler

        def _dispatch(record: OverflowRecord) -> None:
            user_handler(
                OverflowInfo(
                    eventset_handle=handle,
                    code=self.code,
                    symbol=symbol,
                    address=record.reported_pc * INS_BYTES,
                    overflow_count=record.overflow_count,
                    threshold=threshold,
                    cycle=record.cycle,
                    true_address=record.trigger_pc * INS_BYTES,
                )
            )

        pmu.set_overflow(counter_index, threshold, _dispatch)

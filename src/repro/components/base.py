"""The component abstraction: PAPI-C-style pluggable counter planes.

The 2003 substrate boundary assumes every event lives on a core PMU.
PAPI-C generalizes that: a *component* is one counter plane with its own
event namespace (``uncore:::MEM_BW_RD``), its own counter capacity and
its own multiplexing policy.  Component 0 is always the CPU component
(the legacy substrate PMU path, bit-exact with pre-component behaviour);
further components expose socket-scoped hardware -- the uncore memory
interface and the RAPL-like energy plane here.

Non-CPU components model *free-running* counters, the way real uncore
and RAPL MSRs behave: the hardware accumulates continuously and a
measurement is the difference between two snapshots.  ``raw_value``
returns the machine-lifetime total; the EventSet layer snapshots it at
``start()``/``reset()`` and reports deltas.  Because reads are snapshot
subtraction, component counter operations are charge-free (like
``arm_overflow``: control-plane work that must not perturb the counts
being measured) and multiplexed component reads are *exact* -- rotation
is pure bookkeeping for free-running hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.core.errors import NoSuchEventError


@dataclass(frozen=True)
class ComponentEvent:
    """One event in a component's namespace."""

    name: str                   #: short name within the component
    description: str
    #: human-readable unit ("bytes", "energy units", "lines", ...)
    units: str = "count"


class Component:
    """One counter plane: name, event namespace, capacity, mux policy.

    Subclasses define ``EVENTS`` (the class-level namespace, so static
    tools can enumerate it without building a machine) and implement
    :meth:`raw_value`.  ``cid`` is assigned by the substrate at
    registration time; component 0 is always the CPU component.
    """

    #: component name, the prefix of ``name:::EVENT`` qualified events.
    NAME = "component"
    DESCRIPTION = ""
    #: whether this component's counters can be time-sliced.  Energy
    #: planes say no: a RAPL MSR cannot be rotated.
    SUPPORTS_MULTIPLEX = True
    #: class-level event namespace (short name -> ComponentEvent).
    EVENTS: Mapping[str, ComponentEvent] = {}

    def __init__(self, n_counters: int) -> None:
        self.n_counters = n_counters
        self.cid = -1  # assigned at registration

    @property
    def name(self) -> str:
        return self.NAME

    @property
    def events(self) -> Mapping[str, ComponentEvent]:
        return self.EVENTS

    def event_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self.EVENTS))

    def query(self, short: str) -> ComponentEvent:
        """Look up *short* in this component's namespace."""
        try:
            return self.EVENTS[short]
        except KeyError:
            raise NoSuchEventError(
                f"{short!r} is not an event of component {self.NAME!r}"
            ) from None

    def raw_value(self, short: str) -> int:
        """Machine-lifetime free-running total of one component event."""
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.NAME,
            "cid": self.cid,
            "description": self.DESCRIPTION,
            "n_counters": self.n_counters,
            "supports_multiplex": self.SUPPORTS_MULTIPLEX,
            "events": sorted(self.EVENTS),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Component {self.NAME!r} cid={self.cid} "
            f"{self.n_counters} counters, {len(self.EVENTS)} events>"
        )

"""Interprocedural summaries: lifecycle effects across helper calls."""

from repro.lint import lint_source


def flow_codes(src):
    diags = lint_source(src, "t.py", flow=True)
    return [(d.code, d.line) for d in diags]


def just_codes(src):
    return [c for c, _line in flow_codes(src)]


class TestSummaryEffects:
    def test_helper_start_propagates_to_caller(self):
        # arm() leaves the set running, so the read is legal: the flow
        # pass must NOT report PL301 (the AST pass, blind to the
        # helper, still reports its own PL001 -- that is its known
        # flow-insensitive false positive, not ours).
        src = """\
def arm(es):
    es.start()

def main(papi):
    es = papi.create_eventset()
    es.add_named("PAPI_TOT_INS")
    arm(es)
    counts = es.read()
    es.stop()
"""
        codes = just_codes(src)
        assert "PL301" not in codes
        assert "PL302" not in codes

    def test_conditional_double_arm_reports_pl302(self):
        # second arm() sees {created, running}: a may-violation the AST
        # pass cannot observe (start happens inside the callee).
        src = """\
def arm(es):
    es.start()

def main(papi, warmup):
    es = papi.create_eventset()
    es.add_named("PAPI_TOT_INS")
    if warmup():
        arm(es)
    arm(es)
    es.stop()
"""
        assert ("PL302", 9) in flow_codes(src)


class TestFactoryReturn:
    def test_factory_returning_running_set(self):
        # the summary records returns_states={running}; attaching to
        # the returned set must fire PL302 at the attach site.
        src = """\
from repro import Papi, create
substrate = create("simPOWER", ncpus=2)
papi = Papi(substrate)

def make_running_set():
    es = papi.create_eventset()
    es.add_named("PAPI_TOT_INS")
    es.start()
    return es

thread = substrate.os.spawn(prog)
es = make_running_set()
es.attach(thread)
"""
        assert ("PL302", 13) in flow_codes(src)


class TestUnknownCallee:
    def test_unknown_callee_havocs_and_silences(self):
        # mystery(es) may have started or stopped the set; with the
        # state fully unknown the flow pass must stay silent on the
        # following read rather than guess.
        src = """\
def main(papi, mystery):
    es = papi.create_eventset()
    es.add_named("PAPI_TOT_INS")
    mystery(es)
    counts = es.read()
"""
        assert "PL301" not in just_codes(src)

"""Skid-plane regressions: attribution accuracy pinned per mechanism."""

import pytest

from repro.platforms import PLATFORM_NAMES
from repro.validate.skid import run_skid_plane


@pytest.fixture(scope="module")
def cells():
    return run_skid_plane(list(PLATFORM_NAMES))


def _cell(cells, platform, name=None):
    picked = [c for c in cells if c.platform == platform
              and (name is None or c.name == name)]
    assert len(picked) == 1, picked
    return picked[0]


def test_all_cells_pass(cells):
    assert [c for c in cells if c.status == "fail"] == []


def test_profileme_attribution_is_perfect(cells):
    c = _cell(cells, "simALPHA")
    assert c.actual == 1.0


def test_zero_skid_pmu_is_perfect(cells):
    c = _cell(cells, "simT3E")
    assert c.actual == 1.0


def test_ear_capture_is_perfect(cells):
    c = _cell(cells, "simIA64", "EAR:l1d_miss")
    assert c.actual == 1.0


@pytest.mark.parametrize("platform", ["simX86", "simPOWER", "simIA64",
                                      "simSPARC"])
def test_skidding_pmus_visibly_smear(cells, platform):
    name = [c.name for c in cells
            if c.platform == platform and not c.name.startswith("EAR")][0]
    c = _cell(cells, platform, name)
    assert 0.0 < c.actual < 1.0
    assert "skid_max" in c.detail

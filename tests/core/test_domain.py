"""Unit tests: counting domains (PAPI_set_domain)."""

import pytest

from repro.core import constants as C
from repro.core.errors import (
    InvalidArgumentError,
    IsRunningError,
    SubstrateFeatureError,
)
from repro.core.library import Papi
from repro.core.lowlevel import LowLevelAPI
from repro.workloads import dot


def run_with_domain(substrate, domain, interface_work=20_000):
    papi = Papi(substrate)
    es = papi.create_eventset()
    es.add_named("PAPI_TOT_CYC", "PAPI_TOT_INS")
    es.set_domain(domain)
    wl = dot(500, use_fma=substrate.HAS_FMA)
    substrate.machine.load(wl.program)
    es.start()
    substrate.machine.run(max_instructions=2000)
    substrate.machine.charge(interface_work)  # kernel/interface activity
    substrate.machine.run_to_completion()
    return dict(zip(es.event_names, es.stop()))


class TestDomains:
    def test_default_is_user(self, simpower):
        papi = Papi(simpower)
        es = papi.create_eventset()
        assert es.get_domain() == C.PAPI_DOM_USER

    def test_user_domain_excludes_interface_work(self, simpower):
        values = run_with_domain(simpower, C.PAPI_DOM_USER)
        assert values["PAPI_TOT_CYC"] == simpower.machine.user_cycles

    def test_all_domain_includes_interface_work(self, simpower):
        charged = 20_000
        values = run_with_domain(simpower, C.PAPI_DOM_ALL,
                                 interface_work=charged)
        user_values = run_with_domain(type(simpower)(), C.PAPI_DOM_USER,
                                      interface_work=charged)
        delta = values["PAPI_TOT_CYC"] - user_values["PAPI_TOT_CYC"]
        # the ALL-domain counter saw the charged cycles plus the counter
        # interface's own start/read costs while running
        assert delta >= charged
        # instruction counts are unaffected by the domain
        assert values["PAPI_TOT_INS"] == user_values["PAPI_TOT_INS"]

    def test_all_domain_sees_own_interface_cost(self, simx86):
        """With DOM_ALL, each read's syscall cost shows up in TOT_CYC --
        measurement perturbing the measurement, made visible."""
        papi = Papi(simx86)
        es = papi.create_eventset()
        es.add_named("PAPI_TOT_CYC")
        es.set_domain(C.PAPI_DOM_ALL)
        wl = dot(4000, use_fma=False)
        simx86.machine.load(wl.program)
        es.start()
        reads = []
        while not simx86.machine.cpu.halted:
            simx86.machine.run(max_instructions=2000)
            reads.append(es.read()[0])
        es.stop()
        # each successive read includes the previous reads' costs
        deltas = [b - a for a, b in zip(reads, reads[1:])]
        assert all(d > 0 for d in deltas)
        assert reads[-1] > simx86.machine.user_cycles

    def test_invalid_domain_rejected(self, simpower):
        papi = Papi(simpower)
        es = papi.create_eventset()
        with pytest.raises(InvalidArgumentError):
            es.set_domain(0x1234)
        with pytest.raises(InvalidArgumentError):
            es.set_domain(C.PAPI_DOM_KERNEL)  # kernel-only unsupported

    def test_domain_change_while_running_rejected(self, simpower):
        papi = Papi(simpower)
        es = papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        wl = dot(100, use_fma=True)
        simpower.machine.load(wl.program)
        es.start()
        with pytest.raises(IsRunningError):
            es.set_domain(C.PAPI_DOM_ALL)
        es.stop()

    def test_sampling_platform_user_only(self, simalpha):
        papi = Papi(simalpha)
        es = papi.create_eventset()
        with pytest.raises(SubstrateFeatureError):
            es.set_domain(C.PAPI_DOM_ALL)
        es.set_domain(C.PAPI_DOM_USER)  # the default is always fine

    def test_multiplex_excludes_dom_all(self, simx86):
        papi = Papi(simx86)
        es = papi.create_eventset()
        es.set_multiplex()
        with pytest.raises(InvalidArgumentError):
            es.set_domain(C.PAPI_DOM_ALL)

    def test_lowlevel_facade(self, simpower):
        api = LowLevelAPI(simpower)
        api.library_init()
        es = api.create_eventset()
        api.set_domain(es, C.PAPI_DOM_ALL)
        assert api.get_domain(es) == C.PAPI_DOM_ALL

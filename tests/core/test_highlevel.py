"""Unit tests: the high-level interface and rate calls."""

import pytest

from repro.core.errors import InvalidArgumentError, NotRunningError
from repro.core.highlevel import HighLevel
from repro.core.library import Papi
from repro.workloads import dot, mixed_precision_sum


@pytest.fixture
def hl_power(simpower):
    return simpower, HighLevel(Papi(simpower))


def load(substrate, wl):
    substrate.machine.load(wl.program)
    return wl


class TestStartStopRead:
    def test_basic_counting(self, hl_power):
        sub, hl = hl_power
        wl = load(sub, dot(500, use_fma=True))
        hl.start_counters(["PAPI_FP_OPS", "PAPI_TOT_INS"])
        sub.machine.run_to_completion()
        values = hl.stop_counters()
        assert values[0] == wl.expect.flops

    def test_read_resets(self, hl_power):
        """PAPI_read_counters resets -- the documented C semantics."""
        sub, hl = hl_power
        load(sub, dot(2000, use_fma=True))
        hl.start_counters(["PAPI_TOT_INS"])
        sub.machine.run(max_instructions=1000)
        first = hl.read_counters()
        second = hl.read_counters()
        assert first[0] >= 1000
        assert second[0] < 100
        hl.stop_counters()

    def test_accum_counters(self, hl_power):
        sub, hl = hl_power
        load(sub, dot(2000, use_fma=True))
        hl.start_counters(["PAPI_TOT_INS"])
        acc = [0]
        sub.machine.run(max_instructions=500)
        acc = hl.accum_counters(acc)
        sub.machine.run(max_instructions=500)
        acc = hl.accum_counters(acc)
        assert acc[0] >= 1000
        hl.stop_counters()

    def test_double_start_rejected(self, hl_power):
        sub, hl = hl_power
        load(sub, dot(100, use_fma=True))
        hl.start_counters(["PAPI_TOT_INS"])
        with pytest.raises(InvalidArgumentError):
            hl.start_counters(["PAPI_TOT_CYC"])
        hl.stop_counters()

    def test_read_without_start_rejected(self, hl_power):
        _, hl = hl_power
        with pytest.raises(NotRunningError):
            hl.read_counters()
        with pytest.raises(NotRunningError):
            hl.stop_counters()

    def test_codes_and_names_mixed(self, hl_power):
        sub, hl = hl_power
        load(sub, dot(100, use_fma=True))
        code = hl.papi.event_name_to_code("PAPI_TOT_CYC")
        hl.start_counters([code, "PAPI_TOT_INS"])
        sub.machine.run_to_completion()
        values = hl.stop_counters()
        assert len(values) == 2

    def test_failed_start_cleans_up(self, hl_power):
        _, hl = hl_power
        with pytest.raises(Exception):
            hl.start_counters(["PAPI_NOT_A_THING"])
        assert hl._es is None

    def test_num_counters(self, hl_power):
        sub, hl = hl_power
        assert hl.num_counters() == sub.n_counters


class TestFlopsCall:
    def test_flops_two_call_protocol(self, hl_power):
        sub, hl = hl_power
        n = 1000
        wl = load(sub, dot(n, use_fma=True))
        first = hl.flops()
        assert first.count == 0 and first.real_time == 0.0
        sub.machine.run_to_completion()
        report = hl.flops()
        assert report.count == wl.expect.flops
        assert report.real_time > 0
        assert report.rate > 0
        assert report.mrate == pytest.approx(report.rate / 1e6)
        hl.stop_rates()

    def test_flops_uses_normalized_mapping(self, hl_power):
        """The high level normalizes; flips reports raw instructions.

        On simPOWER the convert-heavy kernel makes FP_INS read 2n (the
        POWER3 discrepancy) while flops() reports the corrected n.
        """
        sub, hl = hl_power
        n = 400
        load(sub, mixed_precision_sum(n))
        hl.flops()
        sub.machine.run_to_completion()
        flops_report = hl.flops()
        hl.stop_rates()
        assert flops_report.count == n

    def test_flips_reports_raw_instructions(self, hl_power):
        sub, hl = hl_power
        n = 400
        load(sub, mixed_precision_sum(n))
        hl.flips()
        sub.machine.run_to_completion()
        flips_report = hl.flips()
        hl.stop_rates()
        assert flips_report.count == 2 * n  # converts included: raw

    def test_ipc_call(self, hl_power):
        sub, hl = hl_power
        load(sub, dot(500, use_fma=True))
        hl.ipc()
        sub.machine.run_to_completion()
        report = hl.ipc()
        hl.stop_rates()
        from repro.hw.events import Signal

        assert report.count == sub.machine.counts[Signal.TOT_INS]

    def test_stop_rates_idempotent(self, hl_power):
        _, hl = hl_power
        hl.stop_rates()
        hl.stop_rates()

    def test_rates_work_on_sampling_platform(self, simalpha):
        hl = HighLevel(Papi(simalpha))
        wl = dot(4000, use_fma=False)
        simalpha.machine.load(wl.program)
        hl.flops()
        simalpha.machine.run_to_completion()
        report = hl.flops()
        hl.stop_rates()
        # sampled estimate: right order of magnitude
        assert report.count == pytest.approx(wl.expect.flops, rel=0.5)

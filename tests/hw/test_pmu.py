"""Unit tests: PMU counters, overflow, skid, timer, sampling hardware."""

import pytest

from repro.hw import Assembler, Machine
from repro.hw.events import Signal
from repro.hw.machine import MachineConfig
from repro.hw.pmu import PMU, PMUConfig, PMUError


def make_pmu(n=4, **kwargs):
    counts = [0] * Signal.N_SIGNALS
    return PMU(PMUConfig(n_counters=n, **kwargs), counts), counts


class TestCounterControl:
    def test_program_and_read_delta(self):
        pmu, counts = make_pmu()
        pmu.program(0, (Signal.FP_FMA,))
        counts[Signal.FP_FMA] = 50
        pmu.start(0)
        counts[Signal.FP_FMA] = 80
        assert pmu.read(0) == 30

    def test_multi_signal_counter_sums(self):
        pmu, counts = make_pmu()
        pmu.program(0, (Signal.LD_INS, Signal.SR_INS))
        pmu.start(0)
        counts[Signal.LD_INS] = 5
        counts[Signal.SR_INS] = 7
        assert pmu.read(0) == 12

    def test_stop_freezes_value(self):
        pmu, counts = make_pmu()
        pmu.program(0, (Signal.TOT_INS,))
        pmu.start(0)
        counts[Signal.TOT_INS] = 10
        assert pmu.stop(0) == 10
        counts[Signal.TOT_INS] = 99
        assert pmu.read(0) == 10

    def test_stop_start_accumulates(self):
        pmu, counts = make_pmu()
        pmu.program(0, (Signal.TOT_INS,))
        pmu.start(0)
        counts[Signal.TOT_INS] = 10
        pmu.stop(0)
        counts[Signal.TOT_INS] = 20  # not counted: stopped
        pmu.start(0)
        counts[Signal.TOT_INS] = 25
        assert pmu.read(0) == 15  # 10 + 5

    def test_write_resets_value(self):
        pmu, counts = make_pmu()
        pmu.program(0, (Signal.TOT_INS,))
        pmu.start(0)
        counts[Signal.TOT_INS] = 10
        pmu.write(0, 0)
        counts[Signal.TOT_INS] = 14
        assert pmu.read(0) == 4

    def test_start_unprogrammed_rejected(self):
        pmu, _ = make_pmu()
        with pytest.raises(PMUError):
            pmu.start(0)

    def test_double_start_rejected(self):
        pmu, _ = make_pmu()
        pmu.program(0, (Signal.TOT_INS,))
        pmu.start(0)
        with pytest.raises(PMUError):
            pmu.start(0)

    def test_program_while_running_rejected(self):
        pmu, _ = make_pmu()
        pmu.program(0, (Signal.TOT_INS,))
        pmu.start(0)
        with pytest.raises(PMUError):
            pmu.program(0, (Signal.TOT_CYC,))

    def test_bad_counter_index_rejected(self):
        pmu, _ = make_pmu(n=2)
        with pytest.raises(PMUError):
            pmu.read(2)

    def test_bad_signal_rejected(self):
        pmu, _ = make_pmu()
        with pytest.raises(ValueError):
            pmu.program(0, (999,))

    def test_clear_releases_counter(self):
        pmu, _ = make_pmu()
        pmu.program(0, (Signal.TOT_INS,))
        pmu.clear(0)
        assert pmu.counters[0].signals == ()

    def test_reset_restores_poweron(self):
        pmu, counts = make_pmu()
        pmu.program(0, (Signal.TOT_INS,))
        pmu.start(0)
        pmu.set_overflow(0, 100, lambda r: None)
        pmu.reset()
        assert not pmu.watch_active
        assert all(not c.running and not c.signals for c in pmu.counters)


class TestOverflow:
    def _machine_with_loop(self, skid=0, n=1000):
        asm = Assembler()
        asm.func("main")
        asm.li("r1", n)
        asm.li("r2", 0)
        asm.label("loop")
        asm.fma("f1", "f1", "f1", "f1")
        asm.addi("r2", "r2", 1)
        asm.blt("r2", "r1", "loop")
        asm.halt()
        asm.endfunc()
        cfg = MachineConfig(pmu=PMUConfig(n_counters=4, skid_max=skid))
        m = Machine(cfg)
        m.load(asm.build())
        return m

    def test_overflow_fires_per_threshold(self):
        m = self._machine_with_loop()
        hits = []
        m.pmu.program(0, (Signal.FP_FMA,))
        m.pmu.set_overflow(0, 100, hits.append)
        m.pmu.start(0)
        m.run_to_completion()
        assert len(hits) == 10

    def test_overflow_counts_increment(self):
        m = self._machine_with_loop()
        hits = []
        m.pmu.program(0, (Signal.FP_FMA,))
        m.pmu.set_overflow(0, 250, hits.append)
        m.pmu.start(0)
        m.run_to_completion()
        assert [h.overflow_count for h in hits] == [1, 2, 3, 4]

    def test_zero_skid_reports_interrupt_pc_exactly(self):
        m = self._machine_with_loop(skid=0)
        hits = []
        m.pmu.program(0, (Signal.FP_FMA,))
        m.pmu.set_overflow(0, 100, hits.append)
        m.pmu.start(0)
        m.run_to_completion()
        for h in hits:
            assert h.reported_pc == h.trigger_pc

    def test_skid_shifts_reported_pc(self):
        m = self._machine_with_loop(skid=10)
        hits = []
        m.pmu.program(0, (Signal.FP_FMA,))
        m.pmu.set_overflow(0, 50, hits.append)
        m.pmu.start(0)
        m.run_to_completion()
        assert any(h.reported_pc != h.trigger_pc for h in hits)

    def test_overflow_cost_charged(self):
        m0 = self._machine_with_loop()
        m0.run_to_completion()
        base = m0.counts[Signal.TOT_CYC]

        m1 = self._machine_with_loop()
        m1.pmu.program(0, (Signal.FP_FMA,))
        m1.pmu.set_overflow(0, 10, lambda r: None)
        m1.pmu.start(0)
        m1.run_to_completion()
        assert m1.counts[Signal.TOT_CYC] > base
        assert m1.counts[Signal.HW_INT] == 100

    def test_threshold_validation(self):
        pmu, _ = make_pmu()
        pmu.program(0, (Signal.TOT_INS,))
        with pytest.raises(PMUError):
            pmu.set_overflow(0, 0, lambda r: None)

    def test_overflow_on_unprogrammed_rejected(self):
        pmu, _ = make_pmu()
        with pytest.raises(PMUError):
            pmu.set_overflow(0, 10, lambda r: None)

    def test_clear_overflow(self):
        m = self._machine_with_loop()
        hits = []
        m.pmu.program(0, (Signal.FP_FMA,))
        m.pmu.set_overflow(0, 100, hits.append)
        m.pmu.start(0)
        m.run(max_instructions=1500)
        n = len(hits)
        m.pmu.clear_overflow(0)
        m.run_to_completion()
        assert len(hits) == n


class TestCycleTimer:
    def test_timer_fires_periodically(self, fma_loop_program):
        m = Machine()
        m.load(fma_loop_program)
        ticks = []
        m.pmu.set_cycle_timer(1000, ticks.append)
        m.run_to_completion()
        total = m.counts[Signal.TOT_CYC]
        assert total // 1000 - 2 <= len(ticks) <= total // 1000 + 2

    def test_timer_clear(self, fma_loop_program):
        m = Machine()
        m.load(fma_loop_program)
        ticks = []
        m.pmu.set_cycle_timer(500, ticks.append)
        m.run(max_instructions=1000)
        n = len(ticks)
        assert n > 0
        m.pmu.clear_cycle_timer()
        m.run_to_completion()
        assert len(ticks) == n

    def test_timer_period_validation(self):
        pmu, _ = make_pmu()
        with pytest.raises(PMUError):
            pmu.set_cycle_timer(0, lambda c: None)


class TestProfileMe:
    def _sampling_machine(self, period, n=4000):
        asm = Assembler()
        asm.func("main")
        asm.li("r1", n)
        asm.li("r2", 0)
        asm.label("loop")
        asm.fadd("f1", "f1", "f1")
        asm.addi("r2", "r2", 1)
        asm.blt("r2", "r1", "loop")
        asm.halt()
        asm.endfunc()
        cfg = MachineConfig(pmu=PMUConfig(n_counters=2, has_profileme=True))
        m = Machine(cfg)
        m.load(asm.build())
        m.pmu.enable_profileme(period)
        return m

    def test_sampler_requires_capability(self):
        pmu, _ = make_pmu(has_profileme=False)
        with pytest.raises(PMUError):
            pmu.enable_profileme(100)

    def test_sample_rate_close_to_period(self):
        m = self._sampling_machine(period=200)
        m.run_to_completion()
        total = m.counts[Signal.TOT_INS]
        n_samples = m.pmu.sampler.n_samples
        assert n_samples == pytest.approx(total / 200, rel=0.35)

    def test_samples_record_true_instruction_mix(self):
        m = self._sampling_machine(period=64)
        m.run_to_completion()
        samples = m.pmu.sampler.drain()
        fp = sum(1 for s in samples if s.is_fp)
        # loop body: fadd, addi, blt -> roughly a third fp
        assert fp / len(samples) == pytest.approx(1 / 3, abs=0.12)

    def test_sample_pcs_inside_loop(self):
        m = self._sampling_machine(period=64)
        m.run_to_completion()
        samples = m.pmu.sampler.drain()
        assert samples
        for s in samples:
            assert 0 <= s.pc <= 6

    def test_sampling_cost_charged(self):
        m0 = self._sampling_machine(period=10**9)
        m0.run_to_completion()
        quiet = m0.counts[Signal.TOT_CYC]
        m1 = self._sampling_machine(period=50)
        m1.run_to_completion()
        assert m1.counts[Signal.TOT_CYC] > quiet
        assert m1.counts[Signal.HW_INT] == m1.pmu.sampler.n_samples

    def test_period_validation(self):
        pmu, _ = make_pmu(has_profileme=True)
        with pytest.raises(PMUError):
            pmu.enable_profileme(1)


class TestEAR:
    def _ear_machine(self, period):
        asm = Assembler()
        base = asm.reserve_data(4096)
        asm.func("main")
        asm.li("r1", base)
        asm.li("r2", 0)
        asm.li("r3", 512)
        asm.label("loop")
        asm.load("r4", "r1", 0)
        asm.addi("r1", "r1", 8)   # stride 8 words = 64B: every load misses
        asm.addi("r2", "r2", 1)
        asm.blt("r2", "r3", "loop")
        asm.halt()
        asm.endfunc()
        cfg = MachineConfig(pmu=PMUConfig(n_counters=4, has_ear=True))
        m = Machine(cfg)
        m.load(asm.build())
        return m

    def test_ear_requires_capability(self):
        pmu, _ = make_pmu(has_ear=False)
        with pytest.raises(PMUError):
            pmu.add_ear(4)

    def test_ear_samples_every_nth_miss(self):
        m = self._ear_machine(period=4)
        ear = m.pmu.add_ear(4, "l1d_miss")
        m.run_to_completion()
        misses = m.counts[Signal.L1D_MISS]
        assert ear.n_records == misses // 4

    def test_ear_records_exact_pc(self):
        m = self._ear_machine(period=2)
        ear = m.pmu.add_ear(2, "l1d_miss")
        m.run_to_completion()
        load_pc = 4  # li,li,li, [loop] load -> the load sits at index 3
        load_pc = 3
        assert ear.records
        for rec in ear.records:
            assert rec.pc == load_pc

    def test_ear_event_validation(self):
        pmu, _ = make_pmu(has_ear=True)
        with pytest.raises(PMUError):
            pmu.add_ear(4, "branch_mispredict")

    def test_remove_ear(self):
        m = self._ear_machine(period=2)
        ear = m.pmu.add_ear(2, "l1d_miss")
        m.pmu.remove_ear(ear)
        assert not m.pmu.ear_active
        m.run_to_completion()
        assert ear.n_records == 0

"""Oracle plane: measured counts vs analytic ground truth, per cell.

Two runners:

- :func:`run_oracle_plane` -- every preset of every platform, one
  EventSet per preset on direct substrates (exact equality required) and
  one sampling run for all checkable presets on simALPHA (statistical
  tolerance; sample-based estimates converge, they do not equal);
- :func:`run_virtualization_plane` -- the attach/SMP rung: counts
  attached to one thread while a decoy thread competes for the CPUs must
  equal the oracle counts of the attached program *alone*, on 1- and
  4-CPU machines.  Any leakage from the decoy (or loss across
  migrations) breaks the equality.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.errors import PapiError
from repro.core.library import Papi
from repro.core.sampling import relative_error
from repro.hw.events import Signal
from repro.platforms import create
from repro.platforms.base import Substrate
from repro.validate.matrix import MatrixCell
from repro.validate.oracle import (
    PresetExpectation,
    expected_preset_values,
    expected_signal_counts,
)
from repro.workloads import Workload, conformance_mix, decoy_spin

#: relative tolerance for sample-derived estimates on the sampling
#: substrate.  ProfileMe estimates carry ~1/sqrt(samples) noise; the
#: workload size and period below give every checkable preset enough
#: matches to land comfortably inside this.
SAMPLING_TOLERANCE = 0.20

#: ProfileMe interrupt period for oracle-plane runs (fine-grained: more
#: samples, tighter estimates; the run is short so the interrupt cost is
#: irrelevant here).
SAMPLING_PERIOD = 64


def _native_signal_table(substrate: Substrate) -> Dict[str, tuple]:
    return {name: ev.signals for name, ev in substrate.native_events.items()}


def _skip_reason(exp: PresetExpectation) -> str:
    if not exp.signals:
        return "mapping resolves to no hardware signals"
    return "touches micro-architectural signals (no analytic oracle)"


def _measure_one(papi: Papi, workload: Workload, symbol: str) -> int:
    """Run *workload* with a single-preset EventSet; return its count."""
    machine = papi.substrate.machine
    es = papi.create_eventset()
    try:
        es.add_event(papi.event_name_to_code(symbol))
        machine.load(workload.program)
        es.start()
        machine.run_to_completion()
        return es.stop()[0]
    finally:
        if es.running:  # an exception left the set running
            es.stop()
        papi.destroy_eventset(es)


def _oracle_cells_direct(
    platform: str,
    papi: Papi,
    workload: Workload,
    expectations: Dict[str, PresetExpectation],
) -> List[MatrixCell]:
    cells = []
    for symbol in sorted(expectations):
        exp = expectations[symbol]
        if not exp.checkable:
            cells.append(MatrixCell(
                plane="oracle", platform=platform, name=symbol,
                status="skip", detail=_skip_reason(exp),
            ))
            continue
        detail = ""
        if exp.drift:
            detail = (
                f"platform semantics drift: reference expects "
                f"{exp.reference_expected}"
            )
        try:
            actual = _measure_one(papi, workload, symbol)
        except PapiError as exc:
            cells.append(MatrixCell(
                plane="oracle", platform=platform, name=symbol,
                status="skip", expected=exp.expected,
                detail=f"not countable here: {exc}", drift=exp.drift,
            ))
            continue
        err = relative_error(actual, exp.expected)
        cells.append(MatrixCell(
            plane="oracle", platform=platform, name=symbol,
            status="pass" if actual == exp.expected else "fail",
            expected=exp.expected, actual=actual, error=err,
            drift=exp.drift, detail=detail,
        ))
    return cells


def _oracle_cells_sampling(
    platform: str,
    papi: Papi,
    workload: Workload,
    expectations: Dict[str, PresetExpectation],
    tolerance: float = SAMPLING_TOLERANCE,
) -> List[MatrixCell]:
    """One sampling run covering every checkable preset at once."""
    cells = []
    checkable = [s for s in sorted(expectations) if expectations[s].checkable]
    for symbol in sorted(expectations):
        if symbol not in checkable:
            cells.append(MatrixCell(
                plane="oracle", platform=platform, name=symbol,
                status="skip", detail=_skip_reason(expectations[symbol]),
            ))
    if not checkable:
        return cells
    papi.sampling_period = SAMPLING_PERIOD
    machine = papi.substrate.machine
    es = papi.create_eventset()
    try:
        for symbol in checkable:
            es.add_event(papi.event_name_to_code(symbol))
        machine.load(workload.program)
        es.start()
        machine.run_to_completion()
        values = es.stop()
    finally:
        if es.running:  # an exception left the set running
            es.stop()
        papi.destroy_eventset(es)
    for symbol, actual in zip(checkable, values):
        exp = expectations[symbol]
        err = relative_error(actual, exp.expected)
        cells.append(MatrixCell(
            plane="oracle", platform=platform, name=symbol,
            status="pass" if err <= tolerance else "fail",
            expected=exp.expected, actual=actual, error=err,
            drift=exp.drift,
            detail=f"sample-derived estimate, tolerance {tolerance:.0%}",
        ))
    return cells


def run_oracle_plane(
    platforms: Sequence[str],
    thorough: bool = False,
    seed: int = 12345,
) -> List[MatrixCell]:
    """Check every preset of every platform against the oracle."""
    n = 400 if thorough else 120
    cells: List[MatrixCell] = []
    for platform in platforms:
        substrate = create(platform, seed=seed)
        papi = Papi(substrate)
        workload = conformance_mix(n, use_fma=substrate.HAS_FMA)
        counts = expected_signal_counts(workload.program)
        expectations = expected_preset_values(
            platform, counts, _native_signal_table(substrate)
        )
        if substrate.supports_sampling_counts():
            cells.extend(_oracle_cells_sampling(
                platform, papi, workload, expectations
            ))
        else:
            cells.extend(_oracle_cells_direct(
                platform, papi, workload, expectations
            ))
    return cells


#: presets exercised on the attach/SMP rung; single-native everywhere,
#: so they fit even simSPARC's two pinned PICs.
VIRTUAL_SYMBOL = "PAPI_TOT_INS"


def run_virtualization_plane(
    platforms: Sequence[str],
    thorough: bool = False,
    seed: int = 12345,
    ncpus_list: Sequence[int] = (1, 4),
) -> List[MatrixCell]:
    """Attached counts must see exactly one thread, even across CPUs.

    Each cell spawns the conformance workload plus a pure-integer decoy
    on a fresh machine, attaches a ``PAPI_TOT_INS`` EventSet to the
    workload thread only, lets the scheduler interleave (and on SMP,
    migrate) both, and requires the stopped value to equal the oracle's
    instruction count for the workload program alone.
    """
    n = 250 if thorough else 80
    cells: List[MatrixCell] = []
    for platform in platforms:
        for ncpus in ncpus_list:
            cell_name = f"{VIRTUAL_SYMBOL}@ncpus={ncpus}"
            substrate = create(platform, seed=seed, ncpus=ncpus)
            if substrate.supports_sampling_counts():
                cells.append(MatrixCell(
                    plane="virtual", platform=platform, name=cell_name,
                    status="skip",
                    detail="sampling substrate has no per-thread attach",
                ))
                continue
            papi = Papi(substrate)
            workload = conformance_mix(n, use_fma=substrate.HAS_FMA)
            decoy = decoy_spin(40 * n)
            expected = expected_signal_counts(
                workload.program
            )[Signal.TOT_INS]
            worker = substrate.os.spawn(workload.program, name="work")
            substrate.os.spawn(decoy.program, name="decoy")
            es = papi.create_eventset()
            try:
                es.add_event(papi.event_name_to_code(VIRTUAL_SYMBOL))
                es.attach(worker)
                es.start()
                substrate.os.run()
                actual = es.stop()[0]
            finally:
                if es.running:  # an exception left the set running
                    es.stop()
                papi.destroy_eventset(es)
            cells.append(MatrixCell(
                plane="virtual", platform=platform, name=cell_name,
                status="pass" if actual == expected else "fail",
                expected=expected, actual=actual,
                error=relative_error(actual, expected),
                detail="attached thread vs decoy under round-robin",
            ))
    return cells

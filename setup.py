"""Legacy setup shim.

This environment has no ``wheel`` package and no network access, so PEP
660 editable installs cannot build; keeping a ``setup.py`` (and no
``[build-system]`` table in pyproject.toml) lets ``pip install -e .``
fall back to the classic ``setup.py develop`` path, which works offline.
"""

from setuptools import setup

setup()

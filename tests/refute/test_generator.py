"""Generator invariants: determinism, budgets, assumptions, round-trips."""

from __future__ import annotations

import pytest

from repro.hw.events import Signal
from repro.refute.generator import (
    SEGMENT_KINDS,
    Genome,
    Segment,
    assumptions_of,
    build_program,
    dynamic_bound,
    generate,
    genome_from_json,
    genome_to_json,
)
from repro.validate.oracle import expected_signal_counts
from repro.validate.seeds import derive_seed

SEED = derive_seed(12345, "refute:generate")


def test_generate_is_deterministic():
    a = generate(SEED, count=4, budget=3000)
    b = generate(SEED, count=4, budget=3000)
    assert [p.genome for p in a] == [p.genome for p in b]
    assert [p.program.resolve() for p in a] == [p.program.resolve() for p in b]


def test_different_seeds_differ():
    a = generate(SEED, count=4, budget=3000)
    b = generate(derive_seed(12345, "other"), count=4, budget=3000)
    assert [p.genome for p in a] != [p.genome for p in b]


@pytest.mark.parametrize("seed", [SEED, 1, 999_999])
@pytest.mark.parametrize("budget", [300, 3000])
def test_programs_halt_within_declared_bound(seed, budget):
    for gp in generate(seed, count=4, budget=budget):
        assert gp.dynamic_bound <= budget
        counts = expected_signal_counts(
            gp.program, max_instructions=gp.dynamic_bound
        )
        assert 0 < counts[Signal.TOT_INS] <= gp.dynamic_bound


def test_assumptions_cover_structure():
    for gp in generate(SEED, count=8, budget=3000):
        assert "preset-mapping" in gp.assumptions
        assert "tier-invariance" in gp.assumptions
        kinds = {seg.kind for seg in gp.genome.segments}
        if "calls" in kinds and gp.genome.leaves:
            assert "call-ret-pairing" in gp.assumptions
        if "probed" in kinds:
            assert "probe-accounting" in gp.assumptions
        ops = {op for seg in gp.genome.segments for op in seg.ops}
        if "fp_fma" in ops:
            assert "fma-normalization" in gp.assumptions


def test_genome_json_round_trip():
    for gp in generate(SEED, count=6, budget=3000):
        data = genome_to_json(gp.genome)
        assert genome_from_json(data) == gp.genome
        # the lowered program is a pure function of the genome
        rebuilt = build_program(genome_from_json(data))
        assert rebuilt.resolve() == gp.program.resolve()


def test_segment_validation_rejects_garbage():
    with pytest.raises(ValueError):
        Segment(kind="spaghetti", trips=1, ops=())
    with pytest.raises(ValueError):
        Segment(kind="loop", trips=0, ops=())
    with pytest.raises(ValueError):
        Segment(kind="loop", trips=1, ops=("warp_drive",))


def test_minimal_genome_is_a_tiny_program():
    """The shrinker's floor: one trip, one op lowers to a handful of
    instructions -- this is what keeps reproducers under the ceiling."""
    genome = Genome(seed=0, segments=(
        Segment(kind="loop", trips=1, ops=("alu_addi",)),
    ))
    program = build_program(genome)
    assert len(program.resolve()) <= 30
    counts = expected_signal_counts(program)
    assert counts[Signal.TOT_INS] <= dynamic_bound(genome)


def test_all_segment_kinds_lower_and_halt():
    leaves = (("alu_addi", "fp_add"),)
    for kind in SEGMENT_KINDS:
        genome = Genome(seed=0, segments=(
            Segment(kind=kind, trips=5,
                    ops=("alu_addi", "mem_load", "fp_mul")),
        ), leaves=leaves)
        counts = expected_signal_counts(build_program(genome))
        assert counts[Signal.TOT_INS] > 0
        if kind == "calls":
            assert counts[Signal.CALL_INS] == 5
            assert counts[Signal.RET_INS] == 5
        if kind == "probed":
            assert counts[Signal.PRB_INS] == 5


def test_unused_leaves_not_emitted():
    without_calls = Genome(seed=0, segments=(
        Segment(kind="loop", trips=2, ops=("alu_addi",)),
    ), leaves=(("alu_addi",), ("fp_add",)))
    with_calls = Genome(seed=0, segments=(
        Segment(kind="calls", trips=2, ops=("alu_addi",)),
    ), leaves=(("alu_addi",), ("fp_add",)))
    lean = Genome(seed=0, segments=without_calls.segments)
    assert (len(build_program(without_calls).resolve())
            == len(build_program(lean).resolve()))
    assert (len(build_program(with_calls).resolve())
            > len(build_program(without_calls).resolve()))

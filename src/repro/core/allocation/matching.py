"""Optimal solvers for the counter-mapping problem.

Two variants, matching Section 5's description:

- :func:`max_cardinality_matching`: "a maximum cardinality mapping if
  not all the events can be mapped" -- Kuhn's augmenting-path algorithm
  (problem sizes are tiny: tens of events, <= 8 counters, so the simple
  O(V*E) algorithm is the right tool);
- :func:`max_weight_matching`: "a maximum weight matching if some events
  have higher priority than others" -- reduced to rectangular assignment
  (the Hungarian method) via :func:`scipy.optimize.linear_sum_assignment`
  when scipy is available, with a pure-Python branch-and-bound fallback.

Both return partial assignments: events that cannot be placed are simply
absent (callers decide whether partial is acceptable).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.allocation.graph import MappingProblem

try:  # scipy is an optional dependency; the fallback covers its absence.
    import numpy as _np
    from scipy.optimize import linear_sum_assignment as _lsa
except Exception:  # pragma: no cover - exercised only without scipy
    _np = None
    _lsa = None


def max_cardinality_matching(problem: MappingProblem) -> Dict[str, int]:
    """Maximum-cardinality event->counter assignment (Kuhn's algorithm).

    Events are seeded in order of ascending degree (fewest allowed
    counters first), a standard heuristic that reduces augmentation work;
    the result is optimal regardless of order.
    """
    counter_owner: List[Optional[str]] = [None] * problem.n_counters
    assignment: Dict[str, int] = {}

    def try_place(event: str, visited: set) -> bool:
        for ctr in sorted(problem.allowed[event]):
            if ctr in visited:
                continue
            visited.add(ctr)
            owner = counter_owner[ctr]
            if owner is None or try_place(owner, visited):
                counter_owner[ctr] = event
                assignment[event] = ctr
                return True
        return False

    for event in sorted(problem.events, key=problem.degree):
        try_place(event, set())

    problem.validate_assignment(assignment)
    return assignment


def _weight_matrix(problem: MappingProblem):
    """Cost matrix for the assignment reduction (events x counters)."""
    n_ev, n_ctr = len(problem.events), problem.n_counters
    big = 1.0 + sum(abs(problem.weight(e)) for e in problem.events)
    mat = _np.full((n_ev, n_ctr), big, dtype=float)
    for i, ev in enumerate(problem.events):
        w = problem.weight(ev)
        for c in problem.allowed[ev]:
            # minimize cost == maximize weight; unmatched stays at `big`.
            mat[i, c] = -w
    return mat, big


def max_weight_matching(problem: MappingProblem) -> Dict[str, int]:
    """Maximum-total-weight assignment (ties broken toward more events).

    With uniform weights this coincides with maximum cardinality.
    """
    if not problem.events or problem.n_counters == 0:
        return {}
    if _lsa is None:  # pragma: no cover - scipy always present in CI
        return _branch_and_bound_weight(problem)
    mat, big = _weight_matrix(problem)
    rows, cols = _lsa(mat)
    assignment: Dict[str, int] = {}
    for i, c in zip(rows, cols):
        if mat[i, c] < big:  # a real edge, not the forbidden filler
            assignment[problem.events[i]] = int(c)
    problem.validate_assignment(assignment)
    return assignment


def _branch_and_bound_weight(problem: MappingProblem) -> Dict[str, int]:
    """Exhaustive fallback used when scipy is unavailable (small inputs)."""
    best: Dict[str, int] = {}
    best_weight = -1.0
    events = sorted(problem.events, key=problem.degree)

    def recurse(i: int, used: Dict[int, str], acc: Dict[str, int], w: float):
        nonlocal best, best_weight
        if i == len(events):
            if (w, len(acc)) > (best_weight, len(best)):
                best, best_weight = dict(acc), w
            return
        ev = events[i]
        # skip this event
        recurse(i + 1, used, acc, w)
        for c in problem.allowed[ev]:
            if c not in used:
                used[c] = ev
                acc[ev] = c
                recurse(i + 1, used, acc, w + problem.weight(ev))
                del used[c]
                del acc[ev]

    recurse(0, {}, {}, 0.0)
    problem.validate_assignment(best)
    return best


def deficiency_witness(
    problem: MappingProblem,
) -> Optional[Tuple[Tuple[str, ...], Tuple[int, ...]]]:
    """Hall-condition violation witness for an infeasible problem.

    By König's theorem, when the maximum matching leaves some event
    unmatched there is a set of events S whose combined allowed-counter
    neighbourhood N(S) is strictly smaller than S -- the certificate
    that no complete assignment can exist.  The witness is found by
    walking alternating paths from an unmatched event: every counter
    reachable that way is saturated, and the events owning them are
    pulled into S until a fixpoint, leaving ``|S| = |N(S)| + 1``.

    Returns ``(events, counters)`` -- the deficient event set and its
    entire neighbourhood -- or ``None`` when the problem is feasible.
    """
    matching = max_cardinality_matching(problem)
    unmatched = [e for e in problem.events if e not in matching]
    if not unmatched:
        return None
    owner: Dict[int, str] = {c: e for e, c in matching.items()}
    events = {unmatched[0]}
    counters: set = set()
    frontier = list(events)
    while frontier:
        ev = frontier.pop()
        for c in problem.allowed[ev]:
            if c in counters:
                continue
            counters.add(c)
            holder = owner.get(c)
            if holder is not None and holder not in events:
                events.add(holder)
                frontier.append(holder)
    return tuple(sorted(events)), tuple(sorted(counters))

"""Unit tests: dynaprof dynamic instrumentation."""

import pytest

from repro.core.errors import InvalidArgumentError
from repro.core.library import Papi
from repro.platforms import create
from repro.tools.dynaprof import (
    Dynaprof,
    PapiProbe,
    UserProbe,
    WallclockProbe,
)
from repro.workloads import demo_app, phased


@pytest.fixture
def setup():
    sub = create("simPOWER")
    papi = Papi(sub)
    return sub, papi, Dynaprof(sub, papi)


class TestStructureListing:
    def test_list_functions(self, setup):
        _, _, dyn = setup
        dyn.load(demo_app(scale=10))
        names = [n for n, _size in dyn.list_functions()]
        assert names == ["compute", "memwalk", "branchy", "main"]

    def test_list_before_load_rejected(self, setup):
        _, _, dyn = setup
        with pytest.raises(InvalidArgumentError):
            dyn.list_functions()


class TestInstrumentation:
    def test_calls_counted_per_function(self, setup):
        sub, papi, dyn = setup
        wl = phased([("fp", 100), ("mem", 100)], repeats=5)
        dyn.load(wl)
        probe = dyn.add_probe(WallclockProbe(papi))
        dyn.instrument()
        dyn.run()
        assert probe.profiles["phase_0"].calls == 5
        assert probe.profiles["phase_1"].calls == 5
        assert probe.profiles["main"].calls == 1

    def test_selective_instrumentation(self, setup):
        sub, papi, dyn = setup
        dyn.load(demo_app(scale=10))
        probe = dyn.add_probe(WallclockProbe(papi))
        dyn.instrument(functions=["memwalk"])
        dyn.run()
        assert set(probe.profiles) == {"memwalk"}

    def test_unknown_function_rejected(self, setup):
        _, _, dyn = setup
        dyn.load(demo_app(scale=5))
        with pytest.raises(InvalidArgumentError):
            dyn.instrument(functions=["bogus"])

    def test_double_instrument_rejected(self, setup):
        _, _, dyn = setup
        dyn.load(demo_app(scale=5))
        dyn.instrument()
        with pytest.raises(InvalidArgumentError):
            dyn.instrument()

    def test_program_result_unchanged_by_instrumentation(self):
        """Probes must not perturb architectural results."""
        wl = phased([("fp", 200)], repeats=1)
        plain = create("simPOWER")
        plain.machine.load(wl.program)
        plain.machine.run_to_completion()
        expected_f1 = plain.machine.cpu.fregs[1]

        sub = create("simPOWER")
        papi = Papi(sub)
        dyn = Dynaprof(sub, papi)
        dyn.load(phased([("fp", 200)], repeats=1))
        dyn.add_probe(WallclockProbe(papi))
        dyn.instrument()
        dyn.run()
        assert sub.machine.cpu.fregs[1] == expected_f1


class TestPapiProbe:
    def test_exclusive_metrics_attributed(self, setup):
        sub, papi, dyn = setup
        dyn.load(demo_app(scale=30))
        probe = dyn.add_probe(
            PapiProbe(papi, ["PAPI_TOT_CYC", "PAPI_L1_DCM"])
        )
        dyn.instrument()
        dyn.run()
        profs = probe.profiles
        # memwalk dominates L1 misses exclusively
        miss = {f: p.exclusive["PAPI_L1_DCM"] for f, p in profs.items()}
        assert max(miss, key=miss.get) == "memwalk"

    def test_inclusive_exceeds_exclusive_for_main(self, setup):
        sub, papi, dyn = setup
        dyn.load(demo_app(scale=20))
        probe = dyn.add_probe(PapiProbe(papi, ["PAPI_TOT_CYC"]))
        dyn.instrument()
        dyn.run()
        main = probe.profiles["main"]
        assert main.inclusive["PAPI_TOT_CYC"] > main.exclusive["PAPI_TOT_CYC"]
        # main's inclusive covers nearly the whole run
        total = sum(p.exclusive["PAPI_TOT_CYC"] for p in probe.profiles.values())
        assert main.inclusive["PAPI_TOT_CYC"] == pytest.approx(total, rel=0.05)

    def test_instrumentation_dilates_real_time(self):
        """Probe reads cost real cycles: measured overhead is visible."""
        wl_factory = lambda: phased([("fp", 500)], repeats=10)
        plain = create("simPOWER")
        plain.machine.load(wl_factory().program)
        plain.machine.run_to_completion()
        base = plain.machine.real_cycles

        sub = create("simPOWER")
        papi = Papi(sub)
        dyn = Dynaprof(sub, papi)
        dyn.load(wl_factory())
        dyn.add_probe(PapiProbe(papi, ["PAPI_TOT_CYC"]))
        dyn.instrument()
        dyn.run()
        assert sub.machine.real_cycles > base

    def test_empty_event_list_rejected(self, setup):
        _, papi, _ = setup
        with pytest.raises(InvalidArgumentError):
            PapiProbe(papi, [])


class TestUserProbe:
    def test_custom_callbacks(self, setup):
        sub, papi, dyn = setup
        entries, exits = [], []
        dyn.load(demo_app(scale=5))
        dyn.add_probe(UserProbe(
            entry=lambda fn, cpu: entries.append(fn),
            exit=lambda fn, cpu: exits.append(fn),
        ))
        dyn.instrument()
        dyn.run()
        assert entries == ["main", "compute", "memwalk", "branchy"]
        assert exits == ["compute", "memwalk", "branchy", "main"]


class TestAttach:
    def test_attach_to_running_program(self, setup):
        """The paper's headline dynaprof feature: attach without restart."""
        sub, papi, dyn = setup
        wl = phased([("fp", 300), ("mem", 300)], repeats=6)
        sub.machine.load(wl.program)
        # run ~half the program uninstrumented
        sub.machine.run(max_instructions=4000)
        assert not sub.machine.cpu.halted
        dyn.attach()
        probe = dyn.add_probe(WallclockProbe(papi))
        dyn.instrument()
        result = dyn.run()
        assert result.halted
        # phases called after attach were profiled
        assert probe.profiles
        assert all(p.calls >= 1 for p in probe.profiles.values())

    def test_attach_without_program_rejected(self, setup):
        _, _, dyn = setup
        with pytest.raises(InvalidArgumentError):
            dyn.attach()

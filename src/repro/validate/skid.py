"""Skid plane: PAPI_profil attribution accuracy per substrate skid model.

Section 4 of the paper: on out-of-order processors the interrupt pc "may
yield an address that is several instructions or even basic blocks
removed from the true address", while ProfileMe (Tru64 DCPI) and Itanium
EARs identify exact addresses.  Each cell profiles the
:func:`~repro.workloads.validation.skid_probe` workload -- all floating
point work isolated in one tiny ``fp_block`` function -- through the
real ``PAPI_profil`` machinery and scores the fraction of histogram mass
attributed to that block
(:func:`repro.core.profile.attribution_score`).

Pass criteria follow each platform's published skid model:

- precise mechanisms -- simALPHA's ProfileMe path and any direct
  platform with ``skid_max == 0`` (simT3E) -- must score exactly 1.0;
- skidding platforms must show the hazard: a strictly imperfect score
  (if simX86 ever profiled perfectly, its skid model is broken);
- the simIA64 EAR rung captures exact miss addresses and must score 1.0.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.library import Papi
from repro.core.profile import (
    Profil,
    ProfileBuffer,
    attribution_score,
    profile_from_ears,
)
from repro.hw.isa import INS_BYTES, Op
from repro.platforms import create
from repro.validate.matrix import MatrixCell
from repro.workloads import skid_probe, strided_scan

#: the profiled metric; the probe's FP work concentrates in one block.
SKID_SYMBOL = "PAPI_FP_INS"

#: overflow threshold for the interrupt-pc runs.
THRESHOLD = 50

#: ProfileMe interrupt period for the simALPHA run (fine-grained so the
#: short probe still yields a dense sample set).
SAMPLING_PERIOD = 64


def _profil_score(platform: str, n: int, seed: int) -> tuple:
    """(attribution score, samples, skid_max) for one profil run."""
    substrate = create(platform, seed=seed)
    papi = Papi(substrate)
    papi.sampling_period = SAMPLING_PERIOD
    work = skid_probe(n, use_fma=substrate.HAS_FMA)
    code = papi.event_name_to_code(SKID_SYMBOL)
    es = papi.create_eventset()
    try:
        es.add_event(code)
        buf = ProfileBuffer.covering(
            0, (len(work.program) + 64) * INS_BYTES
        )
        profil = Profil(es, buf, code, THRESHOLD)
        substrate.machine.load(work.program)
        sampling = substrate.supports_sampling_counts()
        if not sampling:
            # overflow watch must exist before start arms the counters
            profil.install()
        es.start()
        if sampling:
            # the sampling path post-processes the session's samples,
            # which only exists once the EventSet is running
            profil.install()
        substrate.machine.run_to_completion()
        profil.collect()
        es.stop()
        profil.uninstall()
    finally:
        if es.running:  # an exception left the set running
            es.stop()
        papi.destroy_eventset(es)
    block = work.program.functions["fp_block"]
    truth = [pc * INS_BYTES for pc in range(block.start, block.end)]
    skid = substrate.machine.cpus[0].pmu.config.skid_max
    return attribution_score(buf, truth), buf.hits, skid


def _ear_cell(seed: int, n: int) -> MatrixCell:
    """simIA64 event-address-register rung: exact miss pcs."""
    substrate = create("simIA64", seed=seed)
    line_words = substrate.machine.hierarchy.config.l1d.line_bytes // 8
    work = strided_scan(n, line_words)
    ear = substrate.add_ear(4, "l1d_miss")
    substrate.machine.load(work.program)
    substrate.machine.run_to_completion()
    buf = ProfileBuffer.covering(0, (len(work.program) + 64) * INS_BYTES)
    profile_from_ears(buf, ear.records)
    load_pcs = [pc for pc, ins in enumerate(work.program.instructions)
                if ins.op in (Op.LOAD, Op.FLOAD)]
    score = attribution_score(buf, [pc * INS_BYTES for pc in load_pcs])
    return MatrixCell(
        plane="skid", platform="simIA64", name="EAR:l1d_miss",
        status="pass" if (score == 1.0 and buf.hits) else "fail",
        expected=1.0, actual=score,
        detail=f"event address registers, {buf.hits} captures",
    )


def run_skid_plane(
    platforms: Sequence[str],
    thorough: bool = False,
    seed: int = 12345,
) -> List[MatrixCell]:
    n = 12000 if thorough else 4000
    cells: List[MatrixCell] = []
    for platform in platforms:
        score, hits, skid = _profil_score(platform, n, seed)
        precise = platform == "simALPHA" or skid == 0
        if not hits:
            cells.append(MatrixCell(
                plane="skid", platform=platform, name=SKID_SYMBOL,
                status="fail", actual=0.0,
                detail="profil produced no samples",
            ))
            continue
        if precise:
            mechanism = ("ProfileMe sample" if platform == "simALPHA"
                         else "interrupt pc, zero skid")
            cells.append(MatrixCell(
                plane="skid", platform=platform, name=SKID_SYMBOL,
                status="pass" if score == 1.0 else "fail",
                expected=1.0, actual=score,
                detail=f"{mechanism}, {hits} samples",
            ))
        else:
            # the skid model must visibly smear: perfect attribution
            # through a skidding PMU means the model stopped working.
            cells.append(MatrixCell(
                plane="skid", platform=platform, name=SKID_SYMBOL,
                status="pass" if 0.0 < score < 1.0 else "fail",
                actual=score,
                detail=f"interrupt pc, skid_max={skid}, {hits} samples",
            ))
    if "simIA64" in platforms:
        cells.append(_ear_cell(seed, 8192))
    return cells

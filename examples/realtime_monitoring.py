#!/usr/bin/env python
"""Real-time monitoring: the perfometer (Figure 2) + attach-without-restart.

1. Run a phased application under the perfometer and render the FLOPS
   trace -- the Figure 2 content -- in ASCII.
2. Press the "Select Metric button": switch to PAPI_L1_DCM mid-run and
   watch the memory phases light up instead.
3. The dynaprof trick: start an application *un*monitored, then attach
   the perfometer to the half-finished run without restarting it.
4. Save the trace file and load it back for off-line analysis.

Run:  python examples/realtime_monitoring.py
"""

import os
import tempfile

from repro import create
from repro.tools import Perfometer, PerfometerTrace
from repro.workloads import phased


def make_app():
    return phased(
        [("fp", 4000), ("mem", 4000), ("br", 3000)],
        repeats=3,
        names=("solver", "exchange", "bookkeeping"),
    )


def step1_flops_trace() -> None:
    print("== 1. runtime FLOPS trace (Figure 2) ==")
    substrate = create("simPOWER")
    pm = Perfometer(substrate, metric="PAPI_FP_OPS", interval_cycles=12_000)
    substrate.machine.load(make_app().program)
    pm.monitor()
    print(pm.render(width=66, height=7))
    print(f"   {len(pm.trace.points)} samples; the three humps per period "
          f"are the solver phases")
    print()
    return pm.trace


def step2_select_metric() -> None:
    print("== 2. Select Metric: FLOPS first, then L1 misses ==")
    substrate = create("simPOWER")
    pm = Perfometer(substrate, metric="PAPI_FP_OPS", interval_cycles=12_000)
    substrate.machine.load(make_app().program)
    pm.monitor(max_intervals=10)
    pm.select_metric("PAPI_L1_DCM")
    pm.monitor()
    print(pm.render("PAPI_FP_OPS", width=40, height=4))
    print(pm.render("PAPI_L1_DCM", width=40, height=4))
    print()


def step3_attach() -> None:
    print("== 3. attach to a running application ==")
    substrate = create("simPOWER")
    substrate.machine.load(make_app().program)
    substrate.machine.run(max_instructions=20_000)  # runs unmonitored...
    print(f"   application already at pc={substrate.machine.cpu.pc}, "
          f"{substrate.machine.user_cycles} cycles in")
    pm = Perfometer(substrate, metric="PAPI_TOT_INS", interval_cycles=15_000)
    pm.monitor()  # ...now monitored to completion, no restart
    print(f"   attached and captured {len(pm.trace.points)} samples "
          f"of the remaining run")
    print()


def step4_trace_file(trace: PerfometerTrace) -> None:
    print("== 4. trace file for off-line analysis ==")
    fd, path = tempfile.mkstemp(suffix=".perfometer.json")
    os.close(fd)
    try:
        trace.save(path)
        loaded = PerfometerTrace.load(path)
        rates = loaded.rates("PAPI_FP_OPS")
        print(f"   saved + reloaded {len(loaded.points)} points from {path}")
        print(f"   peak rate {max(rates):.3g}/s, mean "
              f"{sum(rates) / len(rates):.3g}/s")
    finally:
        os.unlink(path)


def main() -> None:
    trace = step1_flops_trace()
    step2_select_metric()
    step3_attach()
    step4_trace_file(trace)


if __name__ == "__main__":
    main()
